#!/usr/bin/env python
"""The on-disk pipeline: FASTA + BAM in, VCF out, in parallel.

Exercises the whole I/O substrate the way a downstream user would:
write a reference FASTA and a coordinate-sorted BGZF-compressed BAM,
build a linear index, run the parallel caller over the file with
per-worker readers, and write/read back the VCF.

Run:  python examples/bam_pipeline.py [workdir]
"""

import pathlib
import sys
import tempfile
import time

from repro import (
    BamSource,
    CallerConfig,
    ExecutionPolicy,
    Pipeline,
    ReadSimulator,
    VcfSink,
    random_panel,
    sars_cov_2_like,
)
from repro.io.bam import BamReader
from repro.io.fasta import load_reference, write_fasta
from repro.io.index import build_bai_index
from repro.io.vcf import read_vcf


def main() -> None:
    workdir = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    ref_path = workdir / "reference.fa"
    bam_path = workdir / "sample.bam"
    idx_path = workdir / "sample.bam.bai"
    vcf_path = workdir / "calls.vcf"

    # Simulate and persist.
    genome = sars_cov_2_like(length=3_000, seed=99)
    panel = random_panel(genome.sequence, 12, freq_range=(0.02, 0.1), seed=99)
    sample = ReadSimulator(genome, panel, read_length=100).simulate(
        depth=400, seed=99
    )
    write_fasta(ref_path, [genome])
    n = sample.write_bam(bam_path)
    print(f"wrote {n} reads to {bam_path} "
          f"({bam_path.stat().st_size / 1e6:.1f} MB BGZF-compressed)")

    # Standard BAI binning index for per-worker seeks (any samtools-
    # compatible tool can consume the sidecar too).
    index = build_bai_index(bam_path)
    index.save(idx_path)
    ref0 = index.references[0]
    print(f"BAI index: {len(ref0.bins)} bins, "
          f"{len(ref0.intervals)} linear windows -> {idx_path.name}")

    # Inspect the BAM like samtools view | head.
    with BamReader(bam_path) as reader:
        print(f"header: {reader.header.references}")
        for i, record in enumerate(reader):
            if i >= 3:
                break
            print(f"  {record.qname} {record.rname}:{record.pos + 1} "
                  f"{record.cigar_string} mapq={record.mapq}")

    # Parallel call straight off the file (independent reader/worker):
    # source -> engine -> sink, with the VCF streamed as calls finish.
    source = BamSource(bam_path, load_reference(ref_path), index=idx_path)
    t0 = time.perf_counter()
    result = Pipeline(
        source,
        config=CallerConfig.improved(),
        policy=ExecutionPolicy(
            mode="thread", n_workers=4, chunk_columns=256, schedule="dynamic"
        ),
        sinks=[VcfSink(vcf_path, contigs=source.contigs)],
    ).run()
    print(f"\npipeline call: {len(result.passed)} PASS calls in "
          f"{time.perf_counter() - t0:.2f}s with 4 workers")

    # Read the sink's VCF back.
    _, records = read_vcf(vcf_path)
    truth = {(v.pos, v.ref, v.alt) for v in panel}
    called = {(r.pos, r.ref, r.alt) for r in records if r.filter == "PASS"}
    print(f"VCF round trip: {len(records)} records; "
          f"recall vs truth {len(truth & called)}/{len(truth)}")
    print(f"artifacts left in {workdir}")


if __name__ == "__main__":
    main()
