#!/usr/bin/env python
"""The paper's SARS-CoV-2 analysis end to end (Figure 3).

Builds the five-dataset suite (scaled analogues of the 1,000x ...
1,000,000x samples), calls variants on each, and renders the upset
plot of shared SNVs plus a per-dataset recall table against the
ground-truth panels.

Run:  python examples/covid_five_datasets.py
"""

import time

from repro import CallerConfig, VariantCaller, paper_dataset_suite
from repro.analysis import compute_upset, render_upset


def main() -> None:
    print("building the five-dataset suite (scaled 200x down) ...")
    suite = paper_dataset_suite(
        genome_length=1_200, depth_scale=200.0, panel_scale=10.0, seed=2021
    )
    caller = VariantCaller(CallerConfig.improved())

    call_sets = {}
    print(f"\n{'dataset':>9} {'depth':>8} {'truth':>6} {'called':>7} "
          f"{'recall':>7} {'time (s)':>9} {'skip rate':>10}")
    for ds in suite:
        t0 = time.perf_counter()
        result = caller.call_sample(ds.sample)
        elapsed = time.perf_counter() - t0
        call_sets[ds.label] = result.keys()
        truth = {
            (ds.sample.genome.name, v.pos, v.ref, v.alt) for v in ds.panel
        }
        recall = len(truth & call_sets[ds.label]) / len(truth)
        print(
            f"{ds.label:>9} {ds.spec.depth:>8.0f} {len(truth):>6} "
            f"{len(call_sets[ds.label]):>7} {recall:>6.0%} {elapsed:>9.2f} "
            f"{result.stats.skip_fraction():>9.0%}"
        )

    print("\n" + render_upset(compute_upset(call_sets)))

    upset = compute_upset(call_sets)
    print(f"\nSNVs shared by all five datasets: {upset.shared_by_all()} "
          "(paper: 2)")
    pairs = upset.pairwise_shared()
    best = max(pairs, key=pairs.get)
    print(f"pair sharing the most SNVs: {best[0]} & {best[1]} "
          f"({pairs[best]}) (paper: the two deepest)")
    unique = upset.unique_counts()
    print(f"dataset with the most unique SNVs: "
          f"{max(unique, key=unique.get)} (paper: 100000x)")


if __name__ == "__main__":
    main()
