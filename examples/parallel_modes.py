#!/usr/bin/env python
"""Parallel operation: the OpenMP-style driver vs the legacy wrapper.

Demonstrates the paper's Section II-B contribution:

  1. the OpenMP-style parallel-for gives *identical* output at any
     worker count (and prints its Figure 2-style execution trace);
  2. the legacy partition-per-process wrapper, with its two dynamic
     filtering stages, produces partition-dependent output -- the bug
     the reorganisation fixed.

Run:  python examples/parallel_modes.py
"""

import time

from repro import CallerConfig, VariantCaller
from repro.parallel import (
    ParallelCallOptions,
    Tracer,
    legacy_parallel_call,
    parallel_call,
)
from repro.parallel.trace import imbalance_metrics, render_timeline
from repro.sim.genome import random_genome
from repro.sim.haplotypes import ArtifactSpec, random_panel
from repro.sim.reads import ReadSimulator


def build_sample():
    """A 500x sample with real variants plus strand-biased artifacts
    (the borderline calls that expose the legacy bug)."""
    genome = random_genome(2_000, seed=201)
    panel = random_panel(
        genome.sequence, 10, freq_range=(0.03, 0.1), seed=1,
        exclude_positions={100, 600, 1100, 1600},
    )
    artifacts = [
        ArtifactSpec(p, "T" if genome.sequence[p] != "T" else "G", rate)
        for p, rate in [(100, 0.04), (600, 0.05), (1100, 0.06), (1600, 0.045)]
    ]
    sim = ReadSimulator(genome, panel, read_length=80, artifacts=artifacts)
    return genome, sim.simulate(depth=500, seed=1)


def main() -> None:
    genome, sample = build_sample()
    single = VariantCaller(CallerConfig.improved()).call_sample(sample)
    print(f"single-process reference: {len(single.passed)} PASS calls")

    print("\n--- OpenMP-style shared-memory driver ---")
    tracer = Tracer()
    for workers in (1, 2, 4, 8):
        t0 = time.perf_counter()
        result = parallel_call(
            sample,
            genome.sequence,
            options=ParallelCallOptions(n_workers=workers, schedule="dynamic"),
            tracer=tracer if workers == 8 else None,
        )
        elapsed = time.perf_counter() - t0
        match = "==" if result.keys() == single.keys() else "!="
        print(
            f"  {workers} workers: {len(result.passed)} calls in "
            f"{elapsed:.2f}s  (output {match} single-process)"
        )

    print("\nexecution trace of the 8-worker run (cf. paper Figure 2):")
    print(render_timeline(tracer.events, width=90))
    m = imbalance_metrics(tracer.events)
    print(
        f"imbalance {m['imbalance']:.2f}, "
        f"prob share {m['share_prob']:.0%}, "
        f"pileup share {m['share_bam_iter']:.0%}, "
        f"scheduler share {m['share_sched']:.1%}"
    )

    print("\n--- legacy wrapper (double dynamic filtering) ---")
    outputs = set()
    for parts in (1, 2, 4, 8):
        result = legacy_parallel_call(
            sample, genome.sequence, n_partitions=parts
        )
        outputs.add(frozenset(result.keys()))
        match = "==" if result.keys() == single.keys() else "!="
        print(
            f"  {parts} partitions: {len(result.passed)} calls "
            f"(output {match} single-process)"
        )
    print(
        f"\nlegacy mode produced {len(outputs)} distinct outputs across "
        "partitionings -- the inconsistency the paper's OpenMP version fixes."
    )


if __name__ == "__main__":
    main()
