#!/usr/bin/env python
"""Figure 1a hands-on: the Poisson approximation vs the exact
Poisson-binomial at a deep pileup column.

Prints the two distributions side by side as a text histogram, the
right-tail test statistics, the Hodges--Le Cam error bound, and a
timing comparison of every tail algorithm in the library.

Run:  python examples/poibin_accuracy.py
"""

import time

import numpy as np

from repro.stats import (
    le_cam_bound,
    poibin_pmf_dftcf,
    poibin_pmf_dp,
    poibin_sf_dp,
    poibin_sf_refined_normal,
    poisson_lambda,
    poisson_pmf,
    poisson_sf,
    poisson_tail_approx,
)


def main() -> None:
    # One deep column: 5,000 reads, heterogeneous qualities.
    rng = np.random.default_rng(42)
    quals = rng.normal(32, 4, size=5_000).clip(2, 41)
    probs = 10.0 ** (-quals / 10.0) / 3.0  # specific-allele error model
    lam = poisson_lambda(probs)
    print(f"column depth {probs.size}, lambda = sum p_i = {lam:.3f}, "
          f"Le Cam bound = {le_cam_bound(probs):.2e}\n")

    pmf = poibin_pmf_dp(probs)
    k_max = int(lam) + 10
    print(f"{'k':>3} {'Poisson-binomial':>17} {'Poisson':>10}   pmf")
    for k in range(k_max):
        bar = "#" * int(round(pmf[k] * 150))
        dot_pos = int(round(poisson_pmf(k, lam) * 150))
        marked = list(bar.ljust(60))
        if 0 <= dot_pos < 60:
            marked[dot_pos] = "o"  # the continuous approximation
        print(f"{k:>3} {pmf[k]:>17.6f} {poisson_pmf(k, lam):>10.6f}   "
              + "".join(marked).rstrip())
    print("    (# = exact pmf bar, o = Poisson approximation)\n")

    print(f"{'K':>3} {'exact tail':>12} {'Poisson tail':>13} {'|error|':>10}")
    for k in (1, int(lam), int(lam) + 2, int(lam) + 5, int(lam) + 8):
        exact = poibin_sf_dp(k, probs).pvalue
        approx = poisson_sf(k, lam)
        print(f"{k:>3} {exact:>12.6f} {approx:>13.6f} "
              f"{abs(exact - approx):>10.2e}")

    print("\ntiming the tail algorithms at the borderline K "
          f"(K = {int(lam) + 2}):")
    k = int(lam) + 2
    algos = [
        ("exact DP (full)", lambda: poibin_sf_dp(k, probs).pvalue),
        ("exact DP (pruned @1e-6)",
         lambda: poibin_sf_dp(k, probs, prune_above=1e-6).pvalue),
        ("DFT-CF (Hong 2013)",
         lambda: float(poibin_pmf_dftcf(probs)[k:].sum())),
        ("refined normal (Biscarri 2018)",
         lambda: poibin_sf_refined_normal(k, probs)),
        ("Poisson (paper's first pass)",
         lambda: poisson_tail_approx(k, probs)),
    ]
    exact_value = poibin_sf_dp(k, probs).pvalue
    for name, fn in algos:
        t0 = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - t0
        print(f"  {name:<32} {elapsed * 1e3:>9.2f} ms   "
              f"value {value:.6f}   |err| {abs(value - exact_value):.2e}")


if __name__ == "__main__":
    main()
