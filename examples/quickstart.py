#!/usr/bin/env python
"""Quickstart: simulate an ultra-deep sample and call low-frequency
variants with both caller versions.

Run:  python examples/quickstart.py
"""

import time

from repro import (
    CallerConfig,
    ReadSimulator,
    VariantCaller,
    random_panel,
    sars_cov_2_like,
)


def main() -> None:
    # 1. A SARS-CoV-2-like reference (shortened for the demo).
    genome = sars_cov_2_like(length=2_000, seed=7)

    # 2. Ten true low-frequency variants (1% - 10% population frequency).
    panel = random_panel(genome.sequence, 10, freq_range=(0.01, 0.10), seed=7)
    print("ground truth:")
    for v in panel:
        print(f"  {v.pos + 1:>6} {v.ref}->{v.alt}  AF={v.frequency:.3f}")

    # 3. Sequence it to 2,000x with a calibrated HiSeq-like error model.
    sample = ReadSimulator(genome, panel, read_length=100).simulate(
        depth=2_000, seed=7
    )
    print(f"\nsimulated {sample.n_reads} reads ({sample.mean_depth:.0f}x)")

    # 4. Call variants: the paper's improved workflow vs the original.
    for label, config in (
        ("improved (Poisson first-pass filter)", CallerConfig.improved()),
        ("original (exact test everywhere)", CallerConfig.original()),
    ):
        caller = VariantCaller(config)
        t0 = time.perf_counter()
        result = caller.call_sample(sample)
        elapsed = time.perf_counter() - t0
        stats = result.stats
        print(f"\n=== {label} ===")
        print(f"  {len(result.passed)} PASS calls in {elapsed:.2f} s")
        print(
            f"  allele tests: {stats.tests_run}, "
            f"exact DP skipped: {stats.exact_skipped} "
            f"({stats.skip_fraction():.0%}), DP steps: {stats.dp_steps}"
        )
        for call in result.passed:
            print(
                f"    {call.pos + 1:>6} {call.ref}->{call.alt} "
                f"AF={call.af:.4f} DP={call.depth} Q={call.quality:.0f}"
            )

    # 5. The paper's headline: identical output, less work.
    improved = VariantCaller(CallerConfig.improved()).call_sample(sample)
    original = VariantCaller(CallerConfig.original()).call_sample(sample)
    assert improved.keys() == original.keys()
    print("\ncall sets identical between versions (the paper's Table I claim)")


if __name__ == "__main__":
    main()
