#!/usr/bin/env python
"""Quickstart: simulate an ultra-deep sample and call low-frequency
variants through the composable pipeline API.

The pipeline is three pluggable stages behind one ``run()``:

    source (where columns come from)
      -> engine (how work units are executed and filtered once)
        -> sinks (where calls stream to)

Run:  python examples/quickstart.py
"""

import io
import time

from repro import (
    CallerConfig,
    ExecutionPolicy,
    MapqProfile,
    Pipeline,
    PileupConfig,
    ReadSimulator,
    SampleSource,
    StatsSink,
    VcfSink,
    random_panel,
    sars_cov_2_like,
)


def main() -> None:
    # 1. A SARS-CoV-2-like reference (shortened for the demo).
    genome = sars_cov_2_like(length=2_000, seed=7)

    # 2. Ten true low-frequency variants (1% - 10% population frequency).
    panel = random_panel(genome.sequence, 10, freq_range=(0.01, 0.10), seed=7)
    print("ground truth:")
    for v in panel:
        print(f"  {v.pos + 1:>6} {v.ref}->{v.alt}  AF={v.frequency:.3f}")

    # 3. Sequence it to 2,000x with a calibrated HiSeq-like error model.
    sample = ReadSimulator(genome, panel, read_length=100).simulate(
        depth=2_000, seed=7
    )
    print(f"\nsimulated {sample.n_reads} reads ({sample.mean_depth:.0f}x)")

    # 4. Call variants: the paper's improved workflow vs the original.
    #    The source wraps the sample; the engine is picked by config.
    for label, config in (
        ("improved (Poisson first-pass filter)", CallerConfig.improved()),
        ("original (exact test everywhere)", CallerConfig.original()),
    ):
        t0 = time.perf_counter()
        result = Pipeline(SampleSource(sample), config=config).run()
        elapsed = time.perf_counter() - t0
        stats = result.stats
        print(f"\n=== {label} ===")
        print(f"  {len(result.passed)} PASS calls in {elapsed:.2f} s")
        print(
            f"  allele tests: {stats.tests_run}, "
            f"exact DP skipped: {stats.exact_skipped} "
            f"({stats.skip_fraction():.0%}), DP steps: {stats.dp_steps}"
        )
        for call in result.passed:
            print(
                f"    {call.pos + 1:>6} {call.ref}->{call.alt} "
                f"AF={call.af:.4f} DP={call.depth} Q={call.quality:.0f}"
            )

    # 4b. Mapping-quality realism: by default every simulated read is
    #     stamped mapq 60, so --min-mapq / --merge-mapq are no-ops on
    #     simulated data.  Pass a MapqProfile to sample per-read
    #     mapping qualities instead (an aligner-like mixture: ~92%
    #     unique mappers at 60, an ambiguous tail around 20) and the
    #     read-level filters engage end to end.
    noisy = ReadSimulator(
        genome, panel, read_length=100,
        mapq_profile=MapqProfile.aligner_like(),
    ).simulate(depth=500, seed=7)
    lax = Pipeline(SampleSource(noisy)).run()
    strict = Pipeline(
        SampleSource(noisy, pileup_config=PileupConfig(min_mapq=30))
    ).run()
    n_low = int((noisy.mapqs < 30).sum())
    print(
        f"\nmapq profile 'aligner_like': {n_low}/{noisy.n_reads} reads "
        f"below mapq 30 -- min_mapq=30 drops them "
        f"({len(strict.passed)} PASS calls with the filter, "
        f"{len(lax.passed)} without)"
    )

    # 5. Sinks stream the final calls incrementally -- here a VCF and a
    #    machine-readable stats report into in-memory buffers (pass file
    #    paths to write real files), under a 4-thread execution policy.
    vcf_buf, stats_buf = io.StringIO(), io.StringIO()
    result = Pipeline(
        SampleSource(sample),
        policy=ExecutionPolicy(mode="thread", n_workers=4, chunk_columns=256),
        sinks=[
            VcfSink(vcf_buf, contigs=[(genome.name, len(genome))]),
            StatsSink(stats_buf),
        ],
    ).run()
    vcf_lines = vcf_buf.getvalue().splitlines()
    print(f"\nVCF sink wrote {len(vcf_lines)} lines; first call line:")
    print("  " + next(ln for ln in vcf_lines if not ln.startswith("#")))
    print(f"stats sink wrote {len(stats_buf.getvalue())} bytes of JSON")

    # 6. The paper's headline: identical output, less work.
    improved = Pipeline(
        SampleSource(sample), config=CallerConfig.improved()
    ).run()
    original = Pipeline(
        SampleSource(sample), config=CallerConfig.original()
    ).run()
    assert improved.keys() == original.keys() == result.keys()
    print("\ncall sets identical between versions (the paper's Table I claim)")


if __name__ == "__main__":
    main()
