"""Call sinks: the output side of the pipeline.

A :class:`CallSink` receives the final (filtered) calls one at a time
-- the pipeline never materialises an output-format record list -- and
a closing :meth:`~CallSink.finish` with the complete
:class:`~repro.core.results.CallResult` for summary outputs.

* :class:`VcfSink` -- streaming VCF (LoFreq dialect, byte-identical to
  :func:`repro.io.vcf.write_vcf`);
* :class:`JsonlSink` -- one JSON object per call, for downstream
  tooling that would rather not parse VCF;
* :class:`StatsSink` -- machine-readable run statistics
  (:meth:`RunStats.to_dict`), the CLI's ``--stats-json``;
* :class:`TeeSink` -- fan one call stream out to several sinks.

The dynamic post-filter is fitted on the complete call set, so filter
labels only exist once calling has finished; sinks therefore see calls
after filtering, streamed in final sorted order.
"""

from __future__ import annotations

import json
import os
from typing import (
    IO,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.core.results import CallResult, VariantCall

__all__ = ["CallSink", "JsonlSink", "StatsSink", "TeeSink", "VcfSink"]

PathOrFile = Union[str, os.PathLike, IO]


@runtime_checkable
class CallSink(Protocol):
    """Anything that can consume a stream of final variant calls.

    Sinks may additionally define an ``abort()`` method; the pipeline
    calls it (instead of :meth:`finish`) if writing fails mid-stream,
    so file handles are released on error paths.
    """

    def start(self) -> None:
        """Called once before any calls are written."""
        ...

    def write(self, call: VariantCall) -> None:
        """Called once per final call, in sorted order."""
        ...

    def finish(self, result: CallResult) -> None:
        """Called once after the last call, with the full result."""
        ...


def _open_text(dest: PathOrFile):
    if hasattr(dest, "write"):
        return dest, False
    return open(dest, "w"), True


class VcfSink:
    """Stream calls to a VCF file (or open text handle).

    Args:
        dest: output path or text handle.
        contigs: ``(name, length)`` pairs for the ``##contig`` header
            lines (e.g. :attr:`BamSource.contigs`).
        source: the ``##source`` header value.
        extra_headers: extra ``##`` lines, verbatim.
    """

    def __init__(
        self,
        dest: PathOrFile,
        *,
        contigs: Optional[Sequence[Tuple[str, int]]] = None,
        source: str = "repro-lofreq",
        extra_headers: Optional[Sequence[str]] = None,
    ) -> None:
        self.dest = dest
        self.contigs = contigs
        self.source = source
        self.extra_headers = extra_headers
        self.records_written = 0
        self._writer = None

    def start(self) -> None:
        """Open the destination and emit the VCF header."""
        from repro.io.vcf import VcfWriter

        self._writer = VcfWriter(
            self.dest,
            reference=self.contigs,
            source=self.source,
            extra_headers=self.extra_headers,
        )

    def write(self, call: VariantCall) -> None:
        """Append one call as a VCF record line."""
        self._writer.write(call.to_vcf_record())

    def finish(self, result: CallResult) -> None:
        """Close the file and record the final record count."""
        if self._writer is not None:
            self.records_written = self._writer.records_written
            self._writer.close()
            self._writer = None

    def abort(self) -> None:
        """Close the underlying handle after a failed run."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None


def _call_payload(call: VariantCall) -> dict:
    """JSON-safe dict for one call (numpy scalars coerced)."""
    return {
        "chrom": call.chrom,
        "pos": int(call.pos),
        "ref": call.ref,
        "alt": call.alt,
        "quality": float(call.quality),
        "filter": call.filter,
        "pvalue": float(call.pvalue),
        "corrected_pvalue": float(call.corrected_pvalue),
        "depth": int(call.depth),
        "alt_count": int(call.alt_count),
        "af": float(call.af),
        "dp4": [int(x) for x in call.dp4],
        "strand_bias": float(call.strand_bias),
    }


class JsonlSink:
    """Stream calls as JSON Lines: one object per call.

    Positions are 0-based (unlike the 1-based VCF text), matching the
    in-memory :class:`~repro.core.results.VariantCall` model.
    """

    def __init__(self, dest: PathOrFile) -> None:
        self.dest = dest
        self.records_written = 0
        self._handle = None
        self._owned = False

    def start(self) -> None:
        """Open the destination handle."""
        self._handle, self._owned = _open_text(self.dest)
        self.records_written = 0

    def write(self, call: VariantCall) -> None:
        """Append one call as a JSON object line."""
        self._handle.write(json.dumps(_call_payload(call)) + "\n")
        self.records_written += 1

    def finish(self, result: CallResult) -> None:
        """Close the handle (only if this sink opened it)."""
        if self._handle is not None and self._owned:
            self._handle.close()
        self._handle = None

    def abort(self) -> None:
        """Close the underlying handle after a failed run."""
        self.finish(None)


class StatsSink:
    """Write run statistics as JSON when the run finishes."""

    def __init__(self, dest: PathOrFile) -> None:
        self.dest = dest

    def start(self) -> None:
        """Nothing to open -- the report is written on finish."""

    def write(self, call: VariantCall) -> None:
        """Per-call output is not part of a stats report."""

    def finish(self, result: CallResult) -> None:
        """Serialise the run's counters and call census as JSON."""
        payload = {
            "n_calls": len(result.calls),
            "n_pass": len(result.passed),
            "stats": result.stats.to_dict(),
        }
        handle, owned = _open_text(self.dest)
        try:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        finally:
            if owned:
                handle.close()


class TeeSink:
    """Fan the call stream out to several sinks."""

    def __init__(self, *sinks: CallSink) -> None:
        self.sinks: List[CallSink] = list(sinks)

    def start(self) -> None:
        """Start every downstream sink."""
        for sink in self.sinks:
            sink.start()

    def write(self, call: VariantCall) -> None:
        """Write the call to every downstream sink."""
        for sink in self.sinks:
            sink.write(call)

    def finish(self, result: CallResult) -> None:
        """Finish every downstream sink."""
        for sink in self.sinks:
            sink.finish(result)

    def abort(self) -> None:
        """Abort every downstream sink that supports it."""
        for sink in self.sinks:
            abort = getattr(sink, "abort", None)
            if abort is not None:
                abort()
