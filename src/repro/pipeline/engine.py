"""The pipeline execution layer: one ``run()`` for every mode.

:class:`Pipeline` composes a :class:`~repro.pipeline.sources.ColumnSource`
with an :class:`ExecutionPolicy` and a set of
:class:`~repro.pipeline.sinks.CallSink` objects:

* work units are the source's regions, re-chunked for scheduling when
  ``chunk_columns`` is set;
* workers evaluate chunks through
  :meth:`~repro.core.caller.VariantCaller.call_columns` (streaming or
  batched engine, per ``config.engine``) with ``apply_filters=False``;
  under the batched engine, sources that speak columnar hand the
  worker structure-of-arrays
  :class:`~repro.pileup.column.ColumnBatch` units via ``batches_for``
  instead of per-column objects;
* the dynamic post-filter runs exactly **once** on the merged calls --
  the paper's fix for the legacy wrapper's double-filtering bug --
  except in the deliberate ``"legacy"`` demonstration mode, which
  reproduces the bug faithfully (fit+apply per partition, then again
  on the merge);
* the Bonferroni scope is the *total* length of all regions, so a
  multi-contig run corrects genome-wide exactly like a single-contig
  run corrects over its one contig;
* final calls stream through the sinks one at a time.

The thread / process / serial workers and the trace bookkeeping here
were lifted from ``repro.parallel.openmp``;
:func:`repro.parallel.openmp.parallel_call` is now a thin adapter over
this module.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import List, Optional, Sequence, Tuple

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.core.filters import DynamicFilterPolicy, apply_filters, filter_once
from repro.core.results import CallResult, RunStats, VariantCall
from repro.io.regions import Region
from repro.parallel.partition import chunk_region, partition_region
from repro.parallel.scheduler import make_scheduler
from repro.parallel.trace import Category, Tracer
from repro.pipeline.sinks import CallSink
from repro.pipeline.sources import ColumnSource

__all__ = ["ExecutionPolicy", "Pipeline"]

_MODES = ("serial", "thread", "process", "legacy")


@dataclasses.dataclass(frozen=True)
class ExecutionPolicy:
    """How the pipeline executes its work units.

    Attributes:
        mode: ``"serial"`` (one worker, deterministic), ``"thread"``
            (shared memory, the OpenMP analogue), ``"process"``
            (fork-based, real CPU scaling) or ``"legacy"`` (the old
            wrapper-script pipeline, double-filtering bug included --
            demonstration only).
        n_workers: worker count (threads / processes; partition count
            in legacy mode).
        chunk_columns: columns per scheduling chunk; ``None`` processes
            each region as a single unit (the serial shims' mode).
        schedule: ``"static"`` / ``"dynamic"`` / ``"guided"``.
    """

    mode: str = "serial"
    n_workers: int = 1
    chunk_columns: Optional[int] = None
    schedule: str = "dynamic"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown execution mode {self.mode!r}")
        if self.n_workers <= 0:
            raise ValueError(
                f"n_workers must be positive, got {self.n_workers}"
            )
        if self.chunk_columns is not None and self.chunk_columns <= 0:
            raise ValueError("chunk_columns must be positive when set")
        if self.schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {self.schedule!r}")


def _flatten(item) -> List[Region]:
    """Schedulers may hand back one Region or a span of them."""
    if isinstance(item, Region):
        return [item]
    return list(item)


def _chunk_units(
    source: ColumnSource,
    caller: VariantCaller,
    chunk: Region,
    tracer: Tracer,
    worker: int,
) -> Tuple[object, bool]:
    """The work units of one chunk: structure-of-arrays batches for
    the batched engine (when the source speaks columnar), per-column
    objects otherwise.  Either form feeds
    :meth:`VariantCaller.call_columns` unchanged.

    Returns ``(units, is_batch_stream)``: batch streams may be lazy
    generators whose batches are built only as the worker pulls them,
    so the worker evaluates them one at a time (keeping in-flight
    memory one batch, and the trace's source/probability attribution
    disjoint).
    """
    if caller.config.engine == "batched":
        batches_for = getattr(source, "batches_for", None)
        if batches_for is not None:
            return batches_for(chunk, tracer, worker), True
    return source.columns_for(chunk, tracer, worker), False


def _evaluate_chunk(
    worker: int,
    source: ColumnSource,
    caller: VariantCaller,
    chunk: Region,
    scope: int,
    tracer: Tracer,
    merged: CallResult,
) -> None:
    """Evaluate one chunk's work units into ``merged``.

    Batch streams are pulled *outside* the probability span -- the
    source records its own BAM_ITER/DECOMPRESS time per pull -- and
    each batch is evaluated as its own unit, so a lazily-built chunk
    never has all its batches in memory at once.
    """
    units, is_batch_stream = _chunk_units(
        source, caller, chunk, tracer, worker
    )
    if not is_batch_stream:
        with tracer.span(worker, Category.PROB):
            result = caller.call_columns(units, scope, apply_filters=False)
        merged.merge(result)
        return
    for batch in units:
        with tracer.span(worker, Category.PROB):
            result = caller.call_columns(batch, scope, apply_filters=False)
        merged.merge(result)


def _worker_loop(
    worker: int,
    scheduler,
    source: ColumnSource,
    caller: VariantCaller,
    scope: int,
    tracer: Tracer,
) -> CallResult:
    """One worker: pull chunks until the scheduler runs dry."""
    merged = CallResult(calls=[], stats=RunStats())
    while True:
        with tracer.span(worker, Category.SCHED):
            item = scheduler.next(worker)
        if item is None:
            break
        for chunk in _flatten(item):
            _evaluate_chunk(
                worker, source, caller, chunk, scope, tracer, merged
            )
    return merged


def _record_barrier(tracer: Tracer, n_workers: int) -> None:
    """Synthesise end-barrier events: each worker waits from its last
    activity until the slowest worker finishes (the dark-green tail in
    Figure 2)."""
    events = tracer.events
    if not events:
        return
    t_end = max(e.end for e in events)
    for w in range(n_workers):
        w_events = [e for e in events if e.worker == w]
        if not w_events:
            continue
        last = max(e.end for e in w_events)
        if t_end - last > 1e-9:
            tracer.record(w, Category.BARRIER, last, t_end)


class Pipeline:
    """Source -> engine -> sinks, behind a single :meth:`run`.

    Example -- call every contig of a BAM with four threads, writing
    a VCF and a machine-readable stats report as the calls stream::

        from repro.pipeline import (BamSource, ExecutionPolicy,
                                    Pipeline, StatsSink, VcfSink)
        from repro.io.fasta import load_reference

        source = BamSource("sample.bam", load_reference("ref.fa"))
        result = Pipeline(
            source,
            policy=ExecutionPolicy(mode="thread", n_workers=4,
                                   chunk_columns=256),
            sinks=[VcfSink("calls.vcf", contigs=source.contigs),
                   StatsSink("stats.json")],
        ).run()

    Args:
        source: where columns come from (see
            :mod:`repro.pipeline.sources`).
        config: caller configuration (default: improved preset); its
            ``engine`` field picks streaming vs batched evaluation.
        filter_policy: dynamic post-filter, applied exactly once on the
            merged calls (``None`` skips post-filtering; legacy mode
            substitutes the default policy, since the bug it
            demonstrates *is* the filter).
        policy: execution policy (default: serial, unchunked).
        sinks: call sinks to stream the final calls into.
        tracer: optional tracer collecting Figure 2 events.
    """

    def __init__(
        self,
        source: ColumnSource,
        *,
        config: Optional[CallerConfig] = None,
        filter_policy: Optional[DynamicFilterPolicy] = DynamicFilterPolicy(),
        policy: Optional[ExecutionPolicy] = None,
        sinks: Sequence[CallSink] = (),
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.source = source
        self.config = config or CallerConfig.improved()
        self.filter_policy = filter_policy
        self.policy = policy or ExecutionPolicy()
        self.sinks: List[CallSink] = list(sinks)
        self.tracer = tracer

    def run(self) -> CallResult:
        """Execute the pipeline end to end and return the result.

        The returned :class:`CallResult` holds the filtered calls and
        the merged run statistics; the same calls have already been
        streamed through every sink.
        """
        regions = list(self.source.regions())
        if not regions:
            raise ValueError("source declares no regions to call")
        scope = sum(len(r) for r in regions)
        tracer = self.tracer or Tracer()
        if self.policy.mode == "legacy":
            result = self._run_legacy(regions, tracer)
        else:
            merged = self._execute(regions, scope, tracer)
            if self.filter_policy is not None:
                merged = CallResult(
                    calls=filter_once(merged.calls, self.filter_policy),
                    stats=merged.stats,
                )
            result = merged
        # Fold the source's I/O counters (BGZF block-cache hit/miss/
        # eviction tallies from every reader it created) into the run
        # stats before the sinks snapshot them.  Process-backend
        # children already folded their own readers' deltas into the
        # stats they returned (see _process_worker), so this fold adds
        # exactly the parent-side readers and nothing double-counts.
        io_stats = getattr(self.source, "io_stats", None)
        if io_stats is not None:
            counters = io_stats()
            result.stats.cache_hits += int(counters.get("cache_hits", 0))
            result.stats.cache_misses += int(counters.get("cache_misses", 0))
            result.stats.cache_evictions += int(
                counters.get("cache_evictions", 0)
            )
            result.stats.prefetch_hits += int(
                counters.get("prefetch_hits", 0)
            )
            result.stats.prefetch_wasted += int(
                counters.get("prefetch_wasted", 0)
            )
        # Sinks only open once calling has succeeded (filter labels are
        # fitted on the complete call set anyway, so nothing could
        # stream earlier) -- a failed run never leaves a header-only
        # output file behind.
        try:
            for sink in self.sinks:
                sink.start()
            for call in result.calls:
                for sink in self.sinks:
                    sink.write(call)
            for sink in self.sinks:
                sink.finish(result)
        except BaseException:
            for sink in self.sinks:
                abort = getattr(sink, "abort", None)
                if abort is not None:
                    abort()
            raise
        return result

    # -- execution backends --------------------------------------------------

    def _chunks(self, regions: Sequence[Region]) -> List[Region]:
        if self.policy.chunk_columns is None:
            return list(regions)
        return [
            chunk
            for region in regions
            for chunk in chunk_region(region, self.policy.chunk_columns)
        ]

    def _execute(
        self, regions: Sequence[Region], scope: int, tracer: Tracer
    ) -> CallResult:
        caller = VariantCaller(self.config, filter_policy=None)
        chunks = self._chunks(regions)
        mode = self.policy.mode
        if mode == "serial":
            scheduler = make_scheduler(self.policy.schedule, chunks, 1)
            merged = _worker_loop(0, scheduler, self.source, caller, scope, tracer)
            n_workers = 1
        elif mode == "thread":
            n_workers = self.policy.n_workers
            scheduler = make_scheduler(self.policy.schedule, chunks, n_workers)
            results: List[Optional[CallResult]] = [None] * n_workers
            errors: List[Optional[BaseException]] = [None] * n_workers

            def run_worker(w: int) -> None:
                """One thread's worker loop, errors captured for re-raise."""
                try:
                    results[w] = _worker_loop(
                        w, scheduler, self.source, caller, scope, tracer
                    )
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors[w] = exc

            threads = [
                threading.Thread(target=run_worker, args=(w,), name=f"omp-{w}")
                for w in range(n_workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for exc in errors:
                # A dead worker must fail the run, not shrink its output.
                if exc is not None:
                    raise exc
            merged = CallResult(calls=[], stats=RunStats())
            for r in results:
                if r is not None:
                    merged.merge(r)
        else:  # process
            n_workers = self.policy.n_workers
            merged = self._process_backend(chunks, caller, scope, tracer)
        _record_barrier(tracer, n_workers)
        return merged

    def _process_backend(
        self,
        chunks: Sequence[Region],
        caller: VariantCaller,
        scope: int,
        tracer: Tracer,
    ) -> CallResult:
        """Fork-based backend: chunks pre-partitioned round-robin
        (static) across processes; shared state inherited
        copy-on-write."""
        import multiprocessing as mp

        prepare = getattr(self.source, "prepare", None)
        if prepare is not None:
            prepare()  # e.g. build the BAM index before forking
        ctx = mp.get_context("fork")
        n = self.policy.n_workers
        assignments = [
            (w, [chunks[i] for i in range(w, len(chunks), n)])
            for w in range(n)
        ]
        _FORK_STATE["source"] = self.source
        _FORK_STATE["caller"] = caller
        _FORK_STATE["scope"] = scope
        try:
            with ctx.Pool(n) as pool:
                outputs = pool.map(_process_worker, assignments)
        finally:
            _FORK_STATE.clear()
        merged = CallResult(calls=[], stats=RunStats())
        for calls, stats, events in outputs:
            merged.merge(CallResult(calls=calls, stats=stats))
            for e in events:
                tracer.record(e.worker, e.category, e.start, e.end)
        return merged

    def _run_legacy(
        self, regions: Sequence[Region], tracer: Tracer
    ) -> CallResult:
        """The wrapper-script pipeline, double filtering included.

        Each partition is Bonferroni-corrected over *its own* length
        and filtered with thresholds fitted to its own calls; the
        merged survivors are then filtered again.  Output depends on
        the partitioning -- the bug, reproduced on purpose.
        """
        policy = self.filter_policy or DynamicFilterPolicy()
        merged_stats = RunStats()
        survivors: List[VariantCall] = []
        for region in regions:
            for part in partition_region(region, self.policy.n_workers):
                caller = VariantCaller(self.config, filter_policy=None)
                columns = self.source.columns_for(part, tracer, 0)
                result = caller.call_columns(
                    columns, len(part), apply_filters=False
                )
                merged_stats.merge(result.stats)
                filtered = apply_filters(result.calls, policy.fit(result.calls))
                survivors.extend(c for c in filtered if c.filter == "PASS")
        survivors.sort(key=lambda c: (c.chrom, c.pos, c.alt))
        final = apply_filters(survivors, policy.fit(survivors))
        return CallResult(calls=final, stats=merged_stats)


# -- process backend fork state ------------------------------------------------

_FORK_STATE: dict = {}


def _process_worker(args: Tuple[int, List[Region]]):
    """One forked worker's chunk loop.

    Readers this child creates live in its own address space, so their
    block-cache counters would be invisible to the parent; the child
    folds its ``io_stats()`` *delta* (new counts minus whatever was
    inherited from pre-fork readers via copy-on-write) into the
    returned stats, and the parent's own post-run ``io_stats()`` fold
    covers only parent-side readers -- totals add up exactly once.
    """
    worker, chunk_list = args
    source = _FORK_STATE["source"]
    caller = _FORK_STATE["caller"]
    scope = _FORK_STATE["scope"]
    tracer = Tracer()
    merged = CallResult(calls=[], stats=RunStats())
    io_stats = getattr(source, "io_stats", None)
    baseline = io_stats() if io_stats is not None else None
    for chunk in chunk_list:
        _evaluate_chunk(worker, source, caller, chunk, scope, tracer, merged)
    if baseline is not None:
        counters = io_stats()
        for attr, key in (
            ("cache_hits", "cache_hits"),
            ("cache_misses", "cache_misses"),
            ("cache_evictions", "cache_evictions"),
            ("prefetch_hits", "prefetch_hits"),
            ("prefetch_wasted", "prefetch_wasted"),
        ):
            delta = int(counters.get(key, 0)) - int(baseline.get(key, 0))
            setattr(merged.stats, attr, getattr(merged.stats, attr) + delta)
    return merged.calls, merged.stats, tracer.events
