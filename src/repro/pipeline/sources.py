"""Column sources: the input side of the pipeline.

A :class:`ColumnSource` owns an input substrate (a BAM file, a read
stream, an in-memory sample, pre-built columns) and exposes it as
``(region, columns)`` work units:

* :meth:`ColumnSource.regions` declares the top-level regions the
  source is responsible for -- one per contig for a multi-contig BAM,
  which is how the pipeline calls across **every** reference instead
  of only ``header.references[0]``;
* :meth:`ColumnSource.columns_for` produces the pileup columns of
  any sub-interval of those regions (lazily where the substrate
  permits -- :class:`BamSource` streams the ``pileup()`` generator
  per column), so the execution layer is free to re-chunk regions
  for scheduling;
* :meth:`ColumnSource.batches_for` is the columnar spine: the same
  span as structure-of-arrays
  :class:`~repro.pileup.column.ColumnBatch` work units, which the
  batched caller engine screens without materialising per-column
  Python objects.  ``columns_for`` remains as the per-column
  compatibility view (the streaming engine's input).

Both must be safe to call from multiple workers at once
(:class:`BamSource` keeps one reader per worker; :class:`SampleSource`
reads shared matrices), except :class:`ReadsSource` over a one-shot
iterator, which supports exactly one pass and is documented as such.
"""

from __future__ import annotations

import os
import threading
import time
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.io.records import AlignedRead
from repro.io.regions import Region
from repro.parallel.trace import Category, Tracer
from repro.pileup.column import ColumnBatch, PileupColumn
from repro.pileup.engine import PileupConfig, pileup, pileup_batches

__all__ = [
    "BamSource",
    "ColumnSource",
    "ColumnsSource",
    "ReadsSource",
    "SampleSource",
]

#: A reference is either one sequence string (single-contig inputs) or
#: a mapping ``{contig name: sequence}`` (``load_reference`` output or
#: ``FastaRecord`` values both work).
ReferenceLike = Union[str, Mapping[str, object]]

#: Default cap on the columns per emitted batch work unit, shared by
#: every source (16 engine-sized slices).  Small enough that a
#: worker's in-flight construction memory is a few batches, large
#: enough to amortise the vectorised passes.
DEFAULT_BATCH_COLUMNS = 16384


def _validate_batch_columns(batch_columns: Optional[int]) -> Optional[int]:
    """Shared ``batch_columns`` contract of every source: a positive
    column cap, or ``None`` for one batch per chunk."""
    if batch_columns is not None and batch_columns <= 0:
        raise ValueError(
            f"batch_columns must be positive, got {batch_columns}"
        )
    return batch_columns


@runtime_checkable
class ColumnSource(Protocol):
    """Anything that can hand the pipeline pileup columns by region."""

    def regions(self) -> Sequence[Region]:
        """Top-level regions this source will produce columns for."""
        ...

    def columns_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> Iterable[PileupColumn]:
        """Columns of ``chunk`` (any sub-interval of a region)."""
        ...

    def batches_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> Iterable[ColumnBatch]:
        """The same span as structure-of-arrays batches."""
        ...


class ColumnsSource:
    """Pre-built pileup columns (unit tests, custom pileup engines).

    Args:
        columns: pileup columns covering ``region`` (any iterable; a
            one-shot iterator is materialised on first use).
        region: the Bonferroni scope the columns represent.
        batch_columns: cap on the columns packed into one emitted
            :class:`~repro.pileup.column.ColumnBatch` work unit, so
            each pack's flat copies stay bounded; ``None`` packs each
            chunk as a single batch.
    """

    def __init__(
        self,
        columns: Iterable[PileupColumn],
        region: Region,
        *,
        batch_columns: Optional[int] = DEFAULT_BATCH_COLUMNS,
    ) -> None:
        self._columns = columns
        self._materialised: Optional[List[PileupColumn]] = None
        self._lock = threading.Lock()
        self.region = region
        self.batch_columns = _validate_batch_columns(batch_columns)

    def regions(self) -> Sequence[Region]:
        """The single region the pre-built columns cover."""
        return [self.region]

    def _materialise(self) -> List[PileupColumn]:
        # Double-checked under a lock: concurrent workers must not
        # split a shared one-shot iterator between them.
        if self._materialised is None:
            with self._lock:
                if self._materialised is None:
                    self._materialised = list(self._columns)
        return self._materialised

    def columns_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> List[PileupColumn]:
        """The pre-built columns falling inside ``chunk``."""
        return [
            c
            for c in self._materialise()
            if c.chrom == chunk.chrom and chunk.start <= c.pos < chunk.end
        ]

    def batches_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> List[ColumnBatch]:
        """The chunk's columns packed into bounded batches.

        A compatibility bridge (pre-built columns are per-column by
        construction): consecutive runs of at most ``batch_columns``
        columns are packed through
        :meth:`~repro.pileup.column.ColumnBatch.from_columns`, so each
        pack's flat copies stay bounded like the streaming sources'
        work units.
        """
        cols = self.columns_for(chunk, tracer, worker)
        cap = self.batch_columns or max(len(cols), 1)
        if not cols:
            return [ColumnBatch.from_columns([], chrom=chunk.chrom)]
        return [
            ColumnBatch.from_columns(cols[lo : lo + cap], chrom=chunk.chrom)
            for lo in range(0, len(cols), cap)
        ]


class ReadsSource:
    """Coordinate-sorted reads through the streaming pileup engine.

    Args:
        reads: alignments sorted by position.  A list/tuple supports
            any execution mode; a one-shot iterator streams lazily but
            supports only a single ``columns_for`` pass (serial,
            unchunked execution -- the :meth:`VariantCaller.call_reads`
            shim's mode).
        reference: reference sequence for ``region.chrom``.
        region: scope of the calling run.
        pileup_config: pileup filtering parameters.
        batch_columns: cap on the columns per batch work unit emitted
            by :meth:`batches_for` (the
            :class:`~repro.pileup.vectorized.ColumnBatchBuilder` flush
            granularity); ``None`` builds each chunk as one batch.
    """

    def __init__(
        self,
        reads: Iterable[AlignedRead],
        reference: str,
        region: Region,
        pileup_config: Optional[PileupConfig] = None,
        *,
        batch_columns: Optional[int] = DEFAULT_BATCH_COLUMNS,
    ) -> None:
        self._reads = reads
        self._consumed = False
        self.reference = reference
        self.region = region
        self.pileup_config = pileup_config or PileupConfig()
        self.batch_columns = _validate_batch_columns(batch_columns)

    def regions(self) -> Sequence[Region]:
        """The single region this read stream covers."""
        return [self.region]

    def _reads_for_pass(self) -> Iterable[AlignedRead]:
        if isinstance(self._reads, (list, tuple)):
            return iter(self._reads)
        if self._consumed:
            raise ValueError(
                "ReadsSource over a one-shot iterator supports a "
                "single pass; pass a list of reads for parallel or "
                "chunked execution"
            )
        self._consumed = True
        return self._reads

    def columns_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> Iterable[PileupColumn]:
        """The chunk's columns through the streaming pileup sweep."""
        return pileup(
            self._reads_for_pass(), self.reference, chunk, self.pileup_config
        )

    def batches_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> Iterable[ColumnBatch]:
        """The chunk as a lazy stream of bounded batches.

        Reads go through the incremental
        :class:`~repro.pileup.vectorized.ColumnBatchBuilder` (via
        :func:`repro.pileup.engine.pileup_batches`): columns are never
        lifted to per-column objects on the way and construction
        memory stays one flush window, not the chunk.
        """
        return pileup_batches(
            self._reads_for_pass(),
            self.reference,
            chunk,
            self.pileup_config,
            batch_columns=self.batch_columns,
        )


class SampleSource:
    """An in-memory :class:`~repro.sim.reads.SimulatedSample` through
    the vectorised pileup (the benchmark fast path).  Workers share the
    sample's matrices read-only, so every execution mode is safe.

    Args:
        sample: the simulated sample (its read matrices are consumed
            directly; no per-read objects are built).
        region: scope of the calling run (default: the whole genome).
        pileup_config: pileup filtering parameters.
        batch_columns: cap on the reference positions per batch work
            unit emitted by :meth:`batches_for`: each sub-window is
            built independently by the computed-permutation deposit,
            so construction memory is one window, not the chunk.
            ``None`` builds each chunk as a single batch.
    """

    def __init__(
        self,
        sample,
        region: Optional[Region] = None,
        pileup_config: Optional[PileupConfig] = None,
        *,
        batch_columns: Optional[int] = DEFAULT_BATCH_COLUMNS,
    ) -> None:
        self.sample = sample
        self._region = region
        self.pileup_config = pileup_config or PileupConfig()
        self.batch_columns = _validate_batch_columns(batch_columns)

    def regions(self) -> Sequence[Region]:
        """The configured region, or the sample's whole genome."""
        if self._region is not None:
            return [self._region]
        return [
            Region(self.sample.genome.name, 0, len(self.sample.genome))
        ]

    def columns_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> List[PileupColumn]:
        """The chunk's columns through the vectorised sample pileup."""
        from repro.pileup.vectorized import pileup_sample

        trc = tracer or Tracer()
        with trc.span(worker, Category.BAM_ITER):
            return list(
                pileup_sample(self.sample, chunk, self.pileup_config)
            )

    def batches_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> Iterable[ColumnBatch]:
        """The chunk as a lazy stream of bounded batches built
        directly from the sample's matrices -- no per-column slicing
        at all.

        Each window of at most ``batch_columns`` reference positions
        is deposited independently (the computed-permutation path
        windows its reads by ``searchsorted``), so peak construction
        memory is one window rather than the chunk; the concatenation
        of the yielded batches is exactly the whole-chunk batch.
        """
        from repro.pileup.vectorized import pileup_sample_batch

        trc = tracer or Tracer()
        cap = self.batch_columns
        if cap is None:
            spans = [chunk]
        else:
            spans = [
                Region(chunk.chrom, lo, min(lo + cap, chunk.end))
                for lo in range(chunk.start, chunk.end, cap)
            ]
        for span in spans:
            with trc.span(worker, Category.BAM_ITER):
                batch = pileup_sample_batch(
                    self.sample, span, self.pileup_config
                )
            if batch.n_columns:
                yield batch


class BamSource:
    """A BAM file on disk, with per-worker readers and per-contig seeks.

    The default region set is **every reference in the BAM header**, so
    multi-contig BAMs are called end to end.  Each worker (thread or
    forked process) gets an independent :class:`~repro.io.bam.BamReader`
    and seeks straight to its chunk through a
    :class:`~repro.io.index.RandomAccessIndex` -- by default a lazily
    built per-contig linear index
    (:func:`repro.io.index.build_linear_index`), or any index passed
    via ``index`` (a :class:`~repro.io.bai.BaiIndex` for the standard
    O(log) binned seek plan, or a sidecar path); the common serial
    whole-file case streams from the first record without paying for
    an index scan.  Per-worker readers keep an LRU buffer of
    decompressed BGZF blocks (``cache_blocks``), so repeated or
    overlapping region traffic stops re-inflating the same blocks;
    the buffer's hit/miss/eviction counters aggregate through
    :meth:`io_stats` into :class:`~repro.core.results.RunStats`.

    Args:
        path: coordinate-sorted BAM file.
        reference: one sequence string (valid only when all regions sit
            on a single contig) or a ``{name: sequence}`` mapping as
            returned by :func:`repro.io.fasta.load_reference`
            (:class:`~repro.io.fasta.FastaRecord` values also accepted).
        regions: explicit regions to call; default is one region per
            header reference -- except with a plain-string reference on
            a multi-contig BAM, where the default falls back to the
            first reference only (the legacy ``call_bam`` scope, since
            one string cannot cover several contigs).
        pileup_config: pileup filtering parameters.
        batch_columns: cap on the columns per emitted
            :class:`~repro.pileup.column.ColumnBatch` work unit: a
            chunk whose pileup covers more columns is re-sliced into
            consecutive zero-copy sub-batches at the source, so
            downstream per-batch structures (screen histograms,
            survivor planes, per-unit call buffers) stay bounded even
            for huge unchunked regions -- the engine no longer relies
            solely on its own ``slice_columns`` guard.  ``None``
            disables the re-slice (one batch per chunk).
        index: region-seek index.  ``None`` (default) lazily builds
            the per-contig linear index on first region seek; a
            :class:`~repro.io.index.RandomAccessIndex` instance (e.g.
            :func:`repro.io.index.build_bai_index` output) is used as
            given; a path loads a sidecar via
            :func:`repro.io.index.load_index` (``.bai`` files get the
            header's reference names attached automatically).  Every
            flavour produces byte-identical calls -- only the seek
            plans differ.
        cache_blocks: decompressed BGZF blocks kept resident per
            worker reader (~64 KiB each; the
            :data:`DEFAULT_CACHE_BLOCKS` default bounds a reader's
            buffer at ~2 MiB).  With ``shared_cache`` the same count
            bounds one buffer shared by *all* workers.
        decompress_threads: BGZF readahead inflation pool size per
            worker reader (``0`` = serial; see
            :class:`repro.io.bgzf.BgzfReader`).  Output is
            byte-identical at any setting.
        shared_cache: share one lock-guarded
            :class:`repro.io.bgzf.SharedBlockCache` (capacity
            ``cache_blocks`` total) across every worker reader of
            this source, so thread workers scanning adjacent chunks
            stop inflating the same blocks twice.  Shared per
            process: forked children get their own copy-on-write
            cache.

    Raises:
        ValueError: if a single reference string is paired with regions
            on more than one contig, ``batch_columns`` /
            ``cache_blocks`` is not positive, or
            ``decompress_threads`` is negative.
    """

    #: Default per-work-unit column cap (the module-wide
    #: :data:`DEFAULT_BATCH_COLUMNS`; kept as a class attribute for
    #: backward compatibility).
    DEFAULT_BATCH_COLUMNS = DEFAULT_BATCH_COLUMNS

    #: Default decompressed-block LRU capacity per worker reader.
    DEFAULT_CACHE_BLOCKS = 32

    def __init__(
        self,
        path,
        reference: ReferenceLike,
        regions: Optional[Sequence[Region]] = None,
        pileup_config: Optional[PileupConfig] = None,
        *,
        batch_columns: Optional[int] = DEFAULT_BATCH_COLUMNS,
        index=None,
        cache_blocks: Optional[int] = None,
        decompress_threads: int = 0,
        shared_cache: bool = False,
    ) -> None:
        from repro.io.bam import BamReader
        from repro.io.bgzf import SharedBlockCache

        self.path = os.fspath(path)
        self.batch_columns = _validate_batch_columns(batch_columns)
        if cache_blocks is None:
            cache_blocks = self.DEFAULT_CACHE_BLOCKS
        if cache_blocks <= 0:
            raise ValueError(
                f"cache_blocks must be positive, got {cache_blocks}"
            )
        if decompress_threads < 0:
            raise ValueError(
                f"decompress_threads must be >= 0, got {decompress_threads}"
            )
        self.cache_blocks = cache_blocks
        self.decompress_threads = decompress_threads
        #: one decompressed-block budget for all workers (or None for
        #: private per-reader buffers)
        self.block_cache = (
            SharedBlockCache(cache_blocks) if shared_cache else None
        )
        self.pileup_config = pileup_config or PileupConfig()
        with BamReader(self.path) as reader:
            self.contigs: List[Tuple[str, int]] = list(
                reader.header.references
            )
        self._rank = {name: i for i, (name, _) in enumerate(self.contigs)}
        self._index = None
        if isinstance(index, (str, os.PathLike)):
            from repro.io.index import load_index

            # Resolve sidecar paths eagerly: a bad --index surfaces at
            # construction, not at the first non-rewind seek.
            self._index = load_index(
                index, names=[name for name, _ in self.contigs]
            )
        elif index is not None:
            self._index = index
        if regions is None:
            if isinstance(reference, str) and len(self.contigs) > 1:
                # A single sequence string cannot describe more than
                # one contig, so fall back to the legacy first-reference
                # scope (the pre-pipeline call_bam/parallel_call
                # behaviour) instead of failing.
                name, length = self.contigs[0]
                self._regions = [Region(name, 0, length)]
            else:
                self._regions = [
                    Region(name, 0, length) for name, length in self.contigs
                ]
        else:
            self._regions = list(regions)
        self._refmap = self._build_refmap(reference)
        self._index_lock = threading.Lock()
        self._local = threading.local()
        self._all_readers: List[object] = []
        self._readers_lock = threading.Lock()

    def _build_refmap(self, reference: ReferenceLike) -> Dict[str, str]:
        if isinstance(reference, str):
            chroms = {r.chrom for r in self._regions}
            if len(chroms) > 1:
                raise ValueError(
                    "a single reference string covers one contig; pass "
                    "a {name: sequence} mapping to call "
                    f"{sorted(chroms)}"
                )
            return {chrom: reference for chrom in chroms}
        out: Dict[str, str] = {}
        for name, seq in reference.items():
            out[name] = seq.sequence if hasattr(seq, "sequence") else str(seq)
        return out

    def regions(self) -> Sequence[Region]:
        """The configured regions (default: one per header contig)."""
        return list(self._regions)

    def _reference_for(self, chrom: str) -> str:
        try:
            return self._refmap[chrom]
        except KeyError:
            raise ValueError(
                f"no reference sequence for contig {chrom!r}"
            ) from None

    def prepare(self) -> None:
        """Build (or load) the seek index eagerly (the process backend
        calls this before forking so children inherit it)."""
        self._ensure_index()

    def _ensure_index(self):
        """The :class:`~repro.io.index.RandomAccessIndex` behind every
        region seek.  Explicit indexes (instance or sidecar path) were
        resolved at construction; the default linear multi-index is
        built lazily here, on the first seek that needs it."""
        if self._index is None:
            with self._index_lock:
                if self._index is None:
                    from repro.io.index import build_linear_index

                    self._index = build_linear_index(self.path)
        return self._index

    def _reader(self):
        from repro.io.bam import BamReader

        # One reader per (process, thread): forked children must not
        # share the parent's file descriptor offset.
        key = os.getpid()
        reader = getattr(self._local, "reader", None)
        if reader is None or getattr(self._local, "pid", None) != key:
            # Independent reader per worker, with its own
            # decompressed-block LRU buffer (or the source-wide shared
            # one) and its own readahead pool.
            reader = BamReader(
                self.path,
                cache_blocks=self.cache_blocks,
                decompress_threads=self.decompress_threads,
                cache=self.block_cache,
            )
            self._local.reader = reader
            self._local.pid = key
            with self._readers_lock:
                self._all_readers.append(reader)
        return reader

    _NO_READS = object()
    _REWIND = object()

    def _chunk_plan(self, chunk: Region):
        """The seek plan for ``chunk``: the :data:`_REWIND` sentinel
        ("stream from the first record", no index needed -- the serial
        whole-file fast path), or the index's
        :meth:`~repro.io.index.RandomAccessIndex.chunks_for` list
        (empty when the contig has no indexed records)."""
        if (
            self.contigs
            and chunk.chrom == self.contigs[0][0]
            and chunk.start == 0
        ):
            return self._REWIND
        return self._ensure_index().chunks_for(
            chunk.chrom, chunk.start, chunk.end
        )

    def _iter_records(self, reader, chunk: Region, plan):
        """``chunk``'s records in file order, driven by the seek plan.

        The rewind plan streams from the first record; a chunk-list
        plan seeks to each range's start and stops at its end (ranges
        whose ``vend`` is :data:`~repro.io.index.MAX_VOFFSET` are
        open-ended, so the per-record ``tell()`` bound check is
        skipped -- the linear indexes' plans cost exactly what the old
        single-offset seek did).  Position/contig filtering is
        identical in both modes, which is what keeps every index
        flavour byte-identical: plans may cover extra records, but
        only records overlapping ``chunk`` survive the filters.
        """
        from repro.io.index import MAX_VOFFSET

        chunk_rank = self._rank.get(chunk.chrom)
        if chunk_rank is None:
            raise ValueError(
                f"contig {chunk.chrom!r} is not in the BAM header"
            )
        if plan is self._REWIND:
            reader.rewind()
            spans = [None]
        else:
            spans = plan
        for span in spans:
            if span is not None:
                reader.seek(span.vbegin)
                bounded = span.vend < MAX_VOFFSET
            else:
                bounded = False
            while True:
                if bounded and reader.tell() >= span.vend:
                    break  # past this range; try the plan's next one
                rec = reader.read_record()
                if rec is None:
                    return
                if rec.rname != chunk.chrom:
                    # Sorted BAM: a later contig means we are done; an
                    # earlier one (only possible after a rewind) is
                    # skipped until our contig's block starts.
                    if (
                        self._rank.get(rec.rname, len(self._rank))
                        > chunk_rank
                    ):
                        return
                    continue
                if rec.pos >= chunk.end:
                    return
                yield rec

    def _timed_pulls(self, reader, inner, trc: Tracer, worker: int):
        """Drive a lazy per-chunk stream (columns or batches) one pull
        at a time, attributing each pull's BGZF inflation to
        ``DECOMPRESS`` and the remaining decode/pileup work to
        ``BAM_ITER`` -- the per-pull twin of the old eager scan's
        one-block attribution."""
        while True:
            t_dec0 = reader._bgzf.time_decompress
            t0 = time.perf_counter()
            try:
                item = next(inner)
            except StopIteration:
                item = None
            t1 = time.perf_counter()
            dec = reader._bgzf.time_decompress - t_dec0
            trc.record(worker, Category.DECOMPRESS, t0, t0 + dec)
            trc.record(worker, Category.BAM_ITER, t0 + dec, t1)
            if item is None:
                return
            yield item

    def io_stats(self) -> Dict[str, float]:
        """Aggregate I/O counters over every reader this source has
        created (in this process): BGZF blocks inflated, inflation
        seconds, the decompressed-block LRU's hit/miss/eviction
        counts, and the readahead pool's prefetch-hit/wasted/queue-
        depth counters.  Readers created inside forked worker processes
        (process backend) live in the children and are not visible
        here -- but the process backend's workers fold their own
        deltas into the stats they return, so pipeline-level
        :class:`~repro.core.results.RunStats` totals are complete on
        every backend.
        """
        stats = {
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
            "blocks_read": 0,
            "time_decompress": 0.0,
            "prefetch_hits": 0,
            "prefetch_wasted": 0,
            "pool_depth_peak": 0,
        }
        with self._readers_lock:
            readers = list(self._all_readers)
        for reader in readers:
            bgzf = reader._bgzf
            stats["cache_hits"] += bgzf.cache_hits
            stats["cache_misses"] += bgzf.cache_misses
            stats["cache_evictions"] += bgzf.cache_evictions
            stats["blocks_read"] += bgzf.blocks_read
            stats["time_decompress"] += bgzf.time_decompress
            stats["prefetch_hits"] += bgzf.prefetch_hits
            stats["prefetch_wasted"] += bgzf.prefetch_wasted
            # Summed (not maxed) so the value is monotone, which keeps
            # baseline-delta accounting (serve RegionViews, the
            # process backend) correct.
            stats["pool_depth_peak"] += bgzf.pool_depth_peak
        return stats

    def columns_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> Iterable[PileupColumn]:
        """The chunk's columns as a lazy per-column stream.

        The :func:`~repro.pileup.engine.pileup` generator is pulled
        one column at a time over a seek-positioned per-worker reader
        -- the chunk's column list is never materialised, so the
        streaming engine's in-flight memory is one column's arrays
        plus the sweep's active accumulators (read length x depth),
        matching the batch path's bounded-construction guarantee.

        Each pull's time is attributed like :meth:`batches_for`:
        inflation to ``DECOMPRESS``, decode+pileup to ``BAM_ITER``
        (interleaved with the consumer's own spans).  Like the batch
        stream, at most **one** live stream per thread: exhaust (or
        abandon) a chunk's stream before starting the next chunk's on
        the same thread, as the pipeline's worker loop does.
        """
        trc = tracer or Tracer()
        plan = self._chunk_plan(chunk)
        if plan is not self._REWIND and not plan:
            return
        reader = self._reader()
        inner = pileup(
            self._iter_records(reader, chunk, plan),
            self._reference_for(chunk.chrom),
            chunk,
            self.pileup_config,
        )
        yield from self._timed_pulls(reader, inner, trc, worker)

    def _stream_batches(self, reader, chunk: Region, plan):
        """The untimed inner generator behind :meth:`batches_for`:
        stream the seek plan's records through a
        :class:`~repro.pileup.vectorized.ColumnBatchBuilder`, yielding
        each completed window's batches as soon as the scan passes
        them."""
        from repro.pileup.vectorized import ColumnBatchBuilder

        builder = ColumnBatchBuilder(
            self._reference_for(chunk.chrom),
            chunk,
            self.pileup_config,
            batch_columns=self.batch_columns,
        )
        for rec in self._iter_records(reader, chunk, plan):
            yield from builder.add_read(rec)
        yield from builder.finish()

    def batches_for(
        self,
        chunk: Region,
        tracer: Optional[Tracer] = None,
        worker: int = 0,
    ) -> Iterable[ColumnBatch]:
        """The chunk as a lazy stream of bounded batch work units.

        The columnar deposit path, now incremental: each record's
        aligned bases are decoded straight into flat arrays
        (:func:`repro.io.bam.aligned_base_arrays`) and deposited into
        a :class:`~repro.pileup.vectorized.ColumnBatchBuilder`, which
        flushes a :class:`~repro.pileup.column.ColumnBatch` of at most
        ``batch_columns`` columns as soon as the scan passes its last
        column -- no per-base tuples, no per-column objects, and **no
        whole-chunk flat arrays**: peak construction memory is one
        flush window regardless of how large (or unchunked) the
        region is.  Flushed windows wider than ``batch_columns``
        (sparse coverage) are sliced into zero-copy sub-batches with
        strand/mapq laziness preserved.

        Each pull's time is attributed like the eager scan used to be:
        BGZF inflation to ``DECOMPRESS``, the rest of the
        decode+deposit work to ``BAM_ITER``, now interleaved per batch
        instead of one block per chunk.

        The stream reads through this worker's thread-local reader, so
        at most **one** stream per thread may be live at a time:
        exhaust (or abandon) a chunk's stream before starting the next
        chunk's on the same thread, as the pipeline's worker loop
        does.  Concurrent streams are fine across threads/processes
        (each has its own reader).
        """
        trc = tracer or Tracer()
        plan = self._chunk_plan(chunk)
        if plan is not self._REWIND and not plan:
            return
        reader = self._reader()
        inner = self._stream_batches(reader, chunk, plan)
        yield from self._timed_pulls(reader, inner, trc, worker)
