"""The composable calling pipeline: sources -> engine -> sinks.

Every calling workload is the same three-stage pipe:

* a **source** (:mod:`repro.pipeline.sources`) turns an input substrate
  -- BAM file, read stream, in-memory sample, pre-built columns --
  into ``(region, columns)`` work units, covering every contig of a
  multi-contig BAM;
* the **engine** (:mod:`repro.pipeline.engine`) evaluates the units
  under an :class:`ExecutionPolicy` (serial / thread / process / the
  deliberately buggy legacy demo) and post-filters the merged calls
  exactly once;
* **sinks** (:mod:`repro.pipeline.sinks`) stream the final calls out
  incrementally (VCF, JSON Lines, stats JSON, tee).

One entry point::

    from repro.pipeline import BamSource, Pipeline, VcfSink

    source = BamSource("sample.bam", load_reference("ref.fa"))
    result = Pipeline(
        source, sinks=[VcfSink("calls.vcf", contigs=source.contigs)]
    ).run()

The pre-pipeline surfaces -- :meth:`VariantCaller.call_reads` /
``call_sample`` / ``call_bam`` and
:func:`repro.parallel.openmp.parallel_call` -- remain as thin,
equivalence-tested adapters over this package.
"""

from repro.pipeline.engine import ExecutionPolicy, Pipeline
from repro.pipeline.sinks import (
    CallSink,
    JsonlSink,
    StatsSink,
    TeeSink,
    VcfSink,
)
from repro.pipeline.sources import (
    BamSource,
    ColumnSource,
    ColumnsSource,
    ReadsSource,
    SampleSource,
)

__all__ = [
    "BamSource",
    "CallSink",
    "ColumnSource",
    "ColumnsSource",
    "ExecutionPolicy",
    "JsonlSink",
    "Pipeline",
    "ReadsSource",
    "SampleSource",
    "StatsSink",
    "TeeSink",
    "VcfSink",
]
