"""BGZF: blocked GNU zip format, the container underneath BAM.

A BGZF file is a concatenation of standalone gzip members ("blocks"),
each at most 64 KiB of uncompressed payload, with the *compressed*
block size recorded in a gzip extra subfield (``BC``).  Because each
block is independently decompressible, a reader can seek to any block
boundary -- this is what makes per-thread BAM readers (the paper's
OpenMP design) possible without coordination.

Virtual offsets follow the htslib convention::

    voffset = compressed_block_start << 16 | offset_within_block

The module implements a reader with ``seek``/``tell`` on virtual
offsets and a writer that emits spec-compliant blocks plus the 28-byte
EOF sentinel block.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import BinaryIO, List, Tuple, Union

__all__ = [
    "BgzfReader",
    "BgzfWriter",
    "BGZF_EOF",
    "make_virtual_offset",
    "split_virtual_offset",
    "block_offsets",
]

PathOrFile = Union[str, os.PathLike, BinaryIO]

#: Maximum uncompressed payload per block (htslib uses 64 KiB minus
#: worst-case deflate expansion headroom).
MAX_BLOCK_DATA = 65280

#: The canonical 28-byte BGZF EOF marker: an empty block.
BGZF_EOF = bytes.fromhex(
    "1f8b08040000000000ff0600424302001b0003000000000000000000"
)

# Base gzip header (12 bytes: magic, mtime, XFL, OS, XLEN) followed by
# the 6-byte BC extra subfield (SI1, SI2, SLEN=2, BSIZE).
_FULL_HEADER_FMT = "<4BIBBHBBHH"
_HEADER_SIZE = 12


def make_virtual_offset(block_start: int, within: int) -> int:
    """Pack a (compressed offset, intra-block offset) pair.

    Raises:
        ValueError: if ``within`` does not fit in 16 bits or either
            component is negative.
    """
    if not (0 <= within < 1 << 16):
        raise ValueError(f"within-block offset {within} out of range")
    if block_start < 0:
        raise ValueError("negative block offset")
    return (block_start << 16) | within


def split_virtual_offset(voffset: int) -> Tuple[int, int]:
    """Unpack a virtual offset into ``(block_start, within)``."""
    return voffset >> 16, voffset & 0xFFFF


class BgzfWriter:
    """Streaming BGZF compressor.

    Data written via :meth:`write` is buffered and flushed as
    independent gzip blocks of at most :data:`MAX_BLOCK_DATA` bytes.
    :meth:`tell` returns the virtual offset of the next byte, so callers
    can record seek points while writing (BAM indexing relies on this).
    """

    def __init__(self, dest: PathOrFile, compresslevel: int = 6) -> None:
        if hasattr(dest, "write"):
            self._handle: BinaryIO = dest  # type: ignore[assignment]
            self._owned = False
        else:
            self._handle = open(dest, "wb")
            self._owned = True
        self._buffer = bytearray()
        self._block_start = 0
        self._compresslevel = compresslevel
        self._closed = False
        #: number of blocks emitted (instrumentation for the tracer)
        self.blocks_written = 0

    def write(self, data: bytes) -> int:
        """Buffer ``data``, flushing complete blocks as they fill."""
        if self._closed:
            raise ValueError("write to closed BgzfWriter")
        self._buffer.extend(data)
        while len(self._buffer) >= MAX_BLOCK_DATA:
            self._flush_block(bytes(self._buffer[:MAX_BLOCK_DATA]))
            del self._buffer[:MAX_BLOCK_DATA]
        return len(data)

    def tell(self) -> int:
        """Virtual offset of the next byte to be written."""
        return make_virtual_offset(self._block_start, len(self._buffer))

    def flush(self) -> None:
        """Flush buffered data as a (possibly short) block."""
        if self._buffer:
            self._flush_block(bytes(self._buffer))
            self._buffer.clear()

    def _flush_block(self, data: bytes) -> None:
        comp = zlib.compressobj(
            self._compresslevel, zlib.DEFLATED, -15, zlib.DEF_MEM_LEVEL, 0
        )
        payload = comp.compress(data) + comp.flush()
        # Block layout: 12-byte base header, 6-byte BC extra subfield,
        # deflate payload, CRC32, ISIZE.  BSIZE field stores total-1.
        total = _HEADER_SIZE + 6 + len(payload) + 8
        header = struct.pack(
            _FULL_HEADER_FMT,
            0x1F,
            0x8B,
            0x08,
            0x04,  # magic + deflate + FEXTRA
            0,  # mtime
            0,  # XFL
            0xFF,  # OS = unknown
            6,  # XLEN
            ord("B"),
            ord("C"),
            2,  # SLEN
            total - 1,  # BSIZE
        )
        crc = zlib.crc32(data) & 0xFFFFFFFF
        self._handle.write(header + payload + struct.pack("<II", crc, len(data)))
        self._block_start += total
        self.blocks_written += 1

    def close(self) -> None:
        """Flush, append the EOF sentinel and close the stream."""
        if self._closed:
            return
        self.flush()
        self._handle.write(BGZF_EOF)
        if self._owned:
            self._handle.close()
        self._closed = True

    def __enter__(self) -> "BgzfWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BgzfReader:
    """Random-access BGZF decompressor with an LRU block buffer.

    Supports sequential :meth:`read` and virtual-offset
    :meth:`seek`/:meth:`tell`.  Up to ``cache_blocks`` decompressed
    blocks stay resident in a least-recently-used buffer
    (:class:`repro.cachesim.lru.LruCache`), so a seek back into a
    recently read block skips zlib entirely -- the behaviour
    bamnostic's ``_buffers`` LruDict gives htslib-style readers, and
    what makes repeated or overlapping region queries cache-friendly.
    The default of one block reproduces the classic
    single-block-cache reader exactly.

    Args:
        source: path or binary file object positioned at a BGZF stream.
        cache_blocks: decompressed blocks kept resident (positive; each
            holds at most 64 KiB, so memory is bounded by
            ``64 KiB * cache_blocks``).

    Raises:
        ValueError: if ``cache_blocks`` is not positive or the stream
            does not start with a BGZF block.
    """

    def __init__(self, source: PathOrFile, cache_blocks: int = 1) -> None:
        from repro.cachesim.lru import LruCache

        if hasattr(source, "read"):
            self._handle: BinaryIO = source  # type: ignore[assignment]
            self._owned = False
        else:
            self._handle = open(source, "rb")
            self._owned = True
        self._block_start = 0  # compressed offset of current block
        self._block_data = b""
        self._within = 0
        self._next_block = 0  # compressed offset of the block after the current
        self._eof = False
        #: decompressed-block LRU buffer: compressed offset -> (data, size)
        self._buffers: LruCache[int, Tuple[bytes, int]] = LruCache(cache_blocks)
        #: number of blocks decompressed (instrumentation for the tracer;
        #: cache hits do not re-count)
        self.blocks_read = 0
        #: cumulative seconds spent in zlib inflation (tracer: the
        #: "decompress" category of the Figure 2 reproduction)
        self.time_decompress = 0.0
        self._load_block(0)

    # -- cache instrumentation ---------------------------------------------

    @property
    def cache_blocks(self) -> int:
        """Capacity of the decompressed-block LRU buffer."""
        return self._buffers.capacity

    @property
    def cache_hits(self) -> int:
        """Block loads served from the LRU buffer (no inflation)."""
        return self._buffers.hits

    @property
    def cache_misses(self) -> int:
        """Block loads that had to inflate from disk."""
        return self._buffers.misses

    @property
    def cache_evictions(self) -> int:
        """Resident blocks dropped to make room."""
        return self._buffers.evictions

    # -- block machinery ---------------------------------------------------

    def _read_block_at(self, offset: int) -> Tuple[bytes, int]:
        """Decompress the block at compressed ``offset``.

        Returns ``(data, total_compressed_size)``; ``(b"", 0)`` at EOF.

        Raises:
            ValueError: if the bytes at ``offset`` are not a valid BGZF
                block (bad magic or missing BC subfield).
        """
        self._handle.seek(offset)
        header = self._handle.read(_HEADER_SIZE)
        if len(header) == 0:
            return b"", 0
        if len(header) < _HEADER_SIZE:
            raise ValueError("truncated BGZF block header")
        magic = header[:4]
        if magic[:2] != b"\x1f\x8b":
            raise ValueError(f"bad gzip magic {magic[:2]!r} at offset {offset}")
        if magic[2] != 8 or not magic[3] & 0x04:
            raise ValueError("gzip member lacks FEXTRA; not a BGZF file")
        xlen = struct.unpack("<H", header[10:12])[0]
        extra = self._handle.read(xlen)
        if len(extra) < xlen:
            raise ValueError("truncated BGZF extra field")
        bsize = None
        i = 0
        while i + 4 <= len(extra):
            si1, si2, slen = extra[i], extra[i + 1], struct.unpack(
                "<H", extra[i + 2 : i + 4]
            )[0]
            if si1 == ord("B") and si2 == ord("C") and slen == 2:
                bsize = struct.unpack("<H", extra[i + 4 : i + 6])[0] + 1
            i += 4 + slen
        if bsize is None:
            raise ValueError("BGZF BC subfield missing")
        payload_len = bsize - _HEADER_SIZE - xlen - 8
        payload = self._handle.read(payload_len)
        crc_isize = self._handle.read(8)
        if len(payload) < payload_len or len(crc_isize) < 8:
            raise ValueError("truncated BGZF block payload")
        t0 = time.perf_counter()
        data = zlib.decompress(payload, -15)
        self.time_decompress += time.perf_counter() - t0
        crc, isize = struct.unpack("<II", crc_isize)
        if len(data) != isize:
            raise ValueError(
                f"BGZF ISIZE mismatch: header says {isize}, got {len(data)}"
            )
        if (zlib.crc32(data) & 0xFFFFFFFF) != crc:
            raise ValueError("BGZF CRC mismatch")
        self.blocks_read += 1
        return data, bsize

    def _cached_block_at(self, offset: int) -> Tuple[bytes, int]:
        """The block at ``offset`` through the LRU buffer.

        A resident block is returned without touching the file or
        zlib; a miss inflates via :meth:`_read_block_at` and inserts.
        EOF probes (size 0) are never cached.
        """
        cached = self._buffers.get(offset)
        if cached is not None:
            return cached
        data, size = self._read_block_at(offset)
        if size:
            self._buffers.put(offset, (data, size))
        return data, size

    def _load_block(self, offset: int) -> None:
        data, size = self._cached_block_at(offset)
        self._block_start = offset
        self._block_data = data
        self._within = 0
        self._next_block = offset + size
        self._eof = size == 0 or (len(data) == 0 and size > 0 and self._at_physical_eof())

    def _at_physical_eof(self) -> bool:
        cur = self._handle.tell()
        probe = self._handle.read(1)
        self._handle.seek(cur)
        return probe == b""

    def _advance(self) -> bool:
        """Load the next non-empty block; False at physical EOF."""
        while True:
            data, size = self._cached_block_at(self._next_block)
            if size == 0:
                self._eof = True
                return False
            self._block_start = self._next_block
            self._next_block += size
            self._block_data = data
            self._within = 0
            if data:
                return True
            # empty block (e.g. EOF sentinel mid-file after flush) - skip

    # -- public API ---------------------------------------------------------

    def read(self, n: int = -1) -> bytes:
        """Read up to ``n`` decompressed bytes (all remaining if < 0)."""
        chunks: List[bytes] = []
        remaining = n
        while remaining != 0:
            avail = len(self._block_data) - self._within
            if avail == 0:
                if self._eof or not self._advance():
                    break
                continue
            take = avail if remaining < 0 else min(avail, remaining)
            chunks.append(self._block_data[self._within : self._within + take])
            self._within += take
            if remaining > 0:
                remaining -= take
        return b"".join(chunks)

    def readexact(self, n: int) -> bytes:
        """Read exactly ``n`` bytes.

        Raises:
            EOFError: if fewer than ``n`` bytes remain.
        """
        data = self.read(n)
        if len(data) != n:
            raise EOFError(f"wanted {n} bytes, got {len(data)}")
        return data

    def tell(self) -> int:
        """Virtual offset of the next byte to be read."""
        if self._within == len(self._block_data) and not self._eof:
            # Normalise to the start of the next block so offsets are unique.
            return make_virtual_offset(self._next_block, 0)
        return make_virtual_offset(self._block_start, self._within)

    def seek(self, voffset: int) -> int:
        """Seek to a virtual offset; returns the (normalised) offset."""
        block_start, within = split_virtual_offset(voffset)
        if block_start != self._block_start or within > len(self._block_data):
            self._eof = False
            self._load_block(block_start)
        if within > len(self._block_data):
            raise ValueError(
                f"within-block offset {within} exceeds block size "
                f"{len(self._block_data)}"
            )
        self._within = within
        return self.tell()

    def close(self) -> None:
        """Release the underlying handle (if owned) and the buffer."""
        self._buffers.clear()
        if self._owned:
            self._handle.close()

    def __enter__(self) -> "BgzfReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def block_offsets(source: PathOrFile) -> List[int]:
    """Compressed-file offsets of every non-empty block.

    Used by the parallel runtime to hand disjoint block ranges to
    per-worker readers.
    """
    reader = BgzfReader(source)
    offsets: List[int] = []
    try:
        if reader._block_data:
            offsets.append(reader._block_start)
        while reader._advance():
            offsets.append(reader._block_start)
    except EOFError:
        pass
    finally:
        reader.close()
    return offsets
