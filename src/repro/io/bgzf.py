"""BGZF: blocked GNU zip format, the container underneath BAM.

A BGZF file is a concatenation of standalone gzip members ("blocks"),
each at most 64 KiB of uncompressed payload, with the *compressed*
block size recorded in a gzip extra subfield (``BC``).  Because each
block is independently decompressible, a reader can seek to any block
boundary -- this is what makes per-thread BAM readers (the paper's
OpenMP design) possible without coordination.

Virtual offsets follow the htslib convention::

    voffset = compressed_block_start << 16 | offset_within_block

The module implements a reader with ``seek``/``tell`` on virtual
offsets and a writer that emits spec-compliant blocks plus the 28-byte
EOF sentinel block.

Because every block is an independent deflate stream, both directions
parallelise at the block level (the htslib/bgzip design):

* :class:`BgzfReader` accepts ``decompress_threads=N``: a readahead
  pool inflates the next blocks concurrently while the consumer
  drains the current one.  Read/seek/tell semantics, returned bytes
  and raised errors are exactly the serial reader's -- prefetched
  blocks are only ever *consumed* at the position the serial reader
  would have inflated them, and a prefetched error is deferred until
  the consumer actually reaches its block.
* :class:`BgzfWriter` accepts ``compress_threads=N``: blocks deflate
  in a pool but commit strictly in submission order, so the output
  bytes are bit-identical to the serial writer's.
* :class:`SharedBlockCache` is a lock-guarded decompressed-block LRU
  that multiple readers (e.g. one per worker thread scanning adjacent
  chunks of the same BAM) can share, keyed per file, so the same
  block is never inflated twice across the pool.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import BinaryIO, Deque, Dict, List, Optional, Tuple, Union

from repro.cachesim.lru import LruCache

__all__ = [
    "BgzfReader",
    "BgzfWriter",
    "SharedBlockCache",
    "BGZF_EOF",
    "make_virtual_offset",
    "split_virtual_offset",
    "block_offsets",
]

PathOrFile = Union[str, os.PathLike, BinaryIO]

#: Maximum uncompressed payload per block (htslib uses 64 KiB minus
#: worst-case deflate expansion headroom).
MAX_BLOCK_DATA = 65280

#: The canonical 28-byte BGZF EOF marker: an empty block.
BGZF_EOF = bytes.fromhex(
    "1f8b08040000000000ff0600424302001b0003000000000000000000"
)

# Base gzip header (12 bytes: magic, mtime, XFL, OS, XLEN) followed by
# the 6-byte BC extra subfield (SI1, SI2, SLEN=2, BSIZE).
_FULL_HEADER_FMT = "<4BIBBHBBHH"
_HEADER_SIZE = 12


def make_virtual_offset(block_start: int, within: int) -> int:
    """Pack a (compressed offset, intra-block offset) pair.

    Raises:
        ValueError: if ``within`` does not fit in 16 bits or either
            component is negative.
    """
    if not (0 <= within < 1 << 16):
        raise ValueError(f"within-block offset {within} out of range")
    if block_start < 0:
        raise ValueError("negative block offset")
    return (block_start << 16) | within


def split_virtual_offset(voffset: int) -> Tuple[int, int]:
    """Unpack a virtual offset into ``(block_start, within)``."""
    return voffset >> 16, voffset & 0xFFFF


class SharedBlockCache:
    """A lock-guarded decompressed-block LRU shareable across readers.

    Entries are keyed ``(file_key, compressed_offset)``, so readers of
    *different* files can share one memory budget without colliding,
    and thread workers scanning adjacent chunks of the *same* BAM stop
    inflating the same blocks twice: whichever reader inflates a block
    first publishes it for every other reader (and for every reader's
    readahead pool, which skips offsets already resident).

    Memory is bounded by ``capacity`` blocks of at most 64 KiB each,
    *total* across all sharing readers -- unlike per-reader private
    buffers, the budget does not multiply with the worker count.

    All operations take one short internal lock; no I/O or inflation
    ever happens under it, so contention stays negligible next to
    zlib.

    Counter note: global hits/misses count every :meth:`get`,
    including the single lookup each reader issues while *discovering*
    physical EOF -- readers exclude that probe from their own
    ``cache_hits``/``cache_misses`` (and never repeat it), so global
    lookups exceed the sum of per-reader ones by at most one per
    reader.

    Args:
        capacity: maximum resident blocks (positive).

    Raises:
        ValueError: if ``capacity`` is not positive.
    """

    def __init__(self, capacity: int) -> None:
        self._lock = threading.Lock()
        self._lru: LruCache[Tuple[object, int], Tuple[bytes, int]] = LruCache(
            capacity
        )

    @property
    def capacity(self) -> int:
        """Maximum number of resident blocks."""
        return self._lru.capacity

    def get(
        self, file_key: object, offset: int
    ) -> Optional[Tuple[bytes, int]]:
        """Look up a block, counting one global hit or miss."""
        with self._lock:
            return self._lru.get((file_key, offset))

    def peek(
        self, file_key: object, offset: int
    ) -> Optional[Tuple[bytes, int]]:
        """Residency probe with no effect on counters or LRU order.

        Used by the readahead pool to skip inflating blocks some
        reader already published.
        """
        with self._lock:
            return self._lru.peek((file_key, offset))

    def put(
        self, file_key: object, offset: int, block: Tuple[bytes, int]
    ) -> int:
        """Insert a block; returns how many evictions it caused."""
        with self._lock:
            before = self._lru.evictions
            self._lru.put((file_key, offset), block)
            return self._lru.evictions - before

    @property
    def hits(self) -> int:
        """Lookups served from the shared store (all readers)."""
        with self._lock:
            return self._lru.hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing resident (all readers)."""
        with self._lock:
            return self._lru.misses

    @property
    def evictions(self) -> int:
        """Blocks dropped to make room (all readers)."""
        with self._lock:
            return self._lru.evictions

    @property
    def lookups(self) -> int:
        """Total lookups: always ``hits + misses``."""
        with self._lock:
            return self._lru.hits + self._lru.misses

    def __len__(self) -> int:
        """Number of resident blocks."""
        with self._lock:
            return len(self._lru)

    def clear(self) -> None:
        """Drop every resident block (counters preserved)."""
        with self._lock:
            self._lru.clear()

    def stats(self) -> Dict[str, int]:
        """JSON-safe counter snapshot (consistent under the lock)."""
        with self._lock:
            return {
                "capacity": int(self._lru.capacity),
                "entries": len(self._lru),
                "hits": int(self._lru.hits),
                "misses": int(self._lru.misses),
                "evictions": int(self._lru.evictions),
            }


class BgzfWriter:
    """Streaming BGZF compressor, optionally deflating in a pool.

    Data written via :meth:`write` is buffered and flushed as
    independent gzip blocks of at most :data:`MAX_BLOCK_DATA` bytes.
    :meth:`tell` returns the virtual offset of the next byte, so callers
    can record seek points while writing (BAM indexing relies on this).

    With ``compress_threads=N`` the deflate work runs on a pool of N
    threads (zlib releases the GIL), but finished blocks are committed
    to the stream strictly in submission order, so the output bytes
    are **bit-identical** to the serial writer's for the same input
    and level.  ``tell`` drains pending blocks first, since a virtual
    offset needs every prior block's compressed size.

    Args:
        dest: path or writable binary file object.
        compresslevel: zlib level (0-9).
        compress_threads: deflate pool size; ``0`` (default) compresses
            inline on the caller's thread, exactly the historical
            serial writer.
        inflight_blocks: pending compressed-but-uncommitted block
            budget (default ``2 * compress_threads``); the writer
            blocks on the oldest future beyond it, bounding buffered
            memory at ``inflight_blocks * 64 KiB`` plus pool inputs.

    Raises:
        ValueError: if ``compress_threads`` is negative or
            ``inflight_blocks`` is not positive.
    """

    def __init__(
        self,
        dest: PathOrFile,
        compresslevel: int = 6,
        *,
        compress_threads: int = 0,
        inflight_blocks: Optional[int] = None,
    ) -> None:
        if compress_threads < 0:
            raise ValueError(
                f"compress_threads must be >= 0, got {compress_threads}"
            )
        if hasattr(dest, "write"):
            self._handle: BinaryIO = dest  # type: ignore[assignment]
            self._owned = False
        else:
            self._handle = open(dest, "wb")
            self._owned = True
        self._buffer = bytearray()
        self._block_start = 0
        self._compresslevel = compresslevel
        self._closed = False
        #: number of blocks emitted (instrumentation for the tracer)
        self.blocks_written = 0
        #: deflate pool size (0 = serial)
        self.compress_threads = compress_threads
        #: deepest pending-commit queue observed (pool telemetry)
        self.pool_depth_peak = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._futures: Deque["Future[bytes]"] = deque()
        if compress_threads:
            if inflight_blocks is None:
                inflight_blocks = 2 * compress_threads
            if inflight_blocks <= 0:
                raise ValueError(
                    f"inflight_blocks must be positive, got {inflight_blocks}"
                )
            self._inflight = inflight_blocks
            self._pool = ThreadPoolExecutor(
                max_workers=compress_threads,
                thread_name_prefix="bgzf-deflate",
            )

    def write(self, data: bytes) -> int:
        """Buffer ``data``, flushing complete blocks as they fill."""
        if self._closed:
            raise ValueError("write to closed BgzfWriter")
        self._buffer.extend(data)
        while len(self._buffer) >= MAX_BLOCK_DATA:
            self._flush_block(bytes(self._buffer[:MAX_BLOCK_DATA]))
            del self._buffer[:MAX_BLOCK_DATA]
        return len(data)

    def tell(self) -> int:
        """Virtual offset of the next byte to be written.

        Drains any blocks still deflating in the pool first: the
        compressed start of the current block is the sum of every
        committed block's size.
        """
        self._drain()
        return make_virtual_offset(self._block_start, len(self._buffer))

    def flush(self) -> None:
        """Flush buffered data as a (possibly short) block and commit
        every pending pool block to the stream."""
        if self._buffer:
            self._flush_block(bytes(self._buffer))
            self._buffer.clear()
        self._drain()

    @staticmethod
    def _deflate_block(data: bytes, compresslevel: int) -> bytes:
        """Compress one block payload into its complete BGZF member.

        Pure function of ``(data, compresslevel)`` -- safe on any pool
        thread, and deterministic, which is what makes the parallel
        writer bit-identical to the serial one.
        """
        comp = zlib.compressobj(
            compresslevel, zlib.DEFLATED, -15, zlib.DEF_MEM_LEVEL, 0
        )
        payload = comp.compress(data) + comp.flush()
        # Block layout: 12-byte base header, 6-byte BC extra subfield,
        # deflate payload, CRC32, ISIZE.  BSIZE field stores total-1.
        total = _HEADER_SIZE + 6 + len(payload) + 8
        header = struct.pack(
            _FULL_HEADER_FMT,
            0x1F,
            0x8B,
            0x08,
            0x04,  # magic + deflate + FEXTRA
            0,  # mtime
            0,  # XFL
            0xFF,  # OS = unknown
            6,  # XLEN
            ord("B"),
            ord("C"),
            2,  # SLEN
            total - 1,  # BSIZE
        )
        crc = zlib.crc32(data) & 0xFFFFFFFF
        return header + payload + struct.pack("<II", crc, len(data))

    def _commit(self, block: bytes) -> None:
        """Append one finished block to the stream, in order."""
        self._handle.write(block)
        self._block_start += len(block)
        self.blocks_written += 1

    def _drain(self) -> None:
        """Commit every pending pool block, oldest first."""
        while self._futures:
            self._commit(self._futures.popleft().result())

    def _flush_block(self, data: bytes) -> None:
        if self._pool is None:
            self._commit(self._deflate_block(data, self._compresslevel))
            return
        self._futures.append(
            self._pool.submit(self._deflate_block, data, self._compresslevel)
        )
        if len(self._futures) > self.pool_depth_peak:
            self.pool_depth_peak = len(self._futures)
        # Beyond the in-flight budget, block on the oldest future --
        # commits stay strictly ordered and memory stays bounded.
        while len(self._futures) > self._inflight:
            self._commit(self._futures.popleft().result())

    def close(self) -> None:
        """Flush, append the EOF sentinel and close the stream."""
        if self._closed:
            return
        self.flush()
        self._handle.write(BGZF_EOF)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        if self._owned:
            self._handle.close()
        self._closed = True

    def __enter__(self) -> "BgzfWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BgzfReader:
    """Random-access BGZF decompressor with an LRU block buffer and an
    optional readahead inflation pool.

    Supports sequential :meth:`read` and virtual-offset
    :meth:`seek`/:meth:`tell`.  Up to ``cache_blocks`` decompressed
    blocks stay resident in a least-recently-used buffer, so a seek
    back into a recently read block skips zlib entirely -- the
    behaviour bamnostic's ``_buffers`` LruDict gives htslib-style
    readers, and what makes repeated or overlapping region queries
    cache-friendly.  The default of one block reproduces the classic
    single-block-cache reader exactly.  Pass a
    :class:`SharedBlockCache` as ``cache`` to share the buffer (and
    its memory budget) with other readers of the same file.

    With ``decompress_threads=N`` a pool of N threads inflates the
    next ``readahead`` blocks while the consumer drains the current
    one (zlib releases the GIL, so this is real parallelism).  All
    file reads stay on the consumer thread -- workers only ever
    inflate bytes already fetched -- and semantics are exactly
    serial:

    * bytes, ``tell`` values and seek targets are identical;
    * a malformed or corrupt block discovered during readahead raises
      only when (and if) the consumer actually reaches it;
    * blocks prefetched but never consumed (abandoned by a seek or
      ``close``) count as ``prefetch_wasted`` and nothing else -- the
      ``blocks_read`` / cache counters tick exactly as the serial
      reader's would.

    Args:
        source: path or binary file object positioned at a BGZF stream.
        cache_blocks: decompressed blocks kept resident (positive; each
            holds at most 64 KiB, so memory is bounded by
            ``64 KiB * cache_blocks``).  Ignored when ``cache`` is
            given.
        decompress_threads: inflation pool size; ``0`` (default)
            decompresses inline on the consumer thread, exactly the
            historical serial reader.
        readahead: blocks prefetched ahead of the consumer (default
            ``2 * decompress_threads``; only meaningful with a pool).
        cache: a :class:`SharedBlockCache` to use instead of a private
            buffer; the reader contributes to and benefits from every
            sharing reader's blocks.
        cache_key: per-file key for shared-cache entries.  Defaults to
            the source path (so readers of the same path share) or
            ``id(handle)`` for file objects.

    Raises:
        ValueError: if ``cache_blocks``/``readahead`` is not positive,
            ``decompress_threads`` is negative, or the stream does not
            start with a BGZF block.
    """

    def __init__(
        self,
        source: PathOrFile,
        cache_blocks: int = 1,
        *,
        decompress_threads: int = 0,
        readahead: Optional[int] = None,
        cache: Optional[SharedBlockCache] = None,
        cache_key: Optional[object] = None,
    ) -> None:
        if decompress_threads < 0:
            raise ValueError(
                f"decompress_threads must be >= 0, got {decompress_threads}"
            )
        if hasattr(source, "read"):
            self._handle: BinaryIO = source  # type: ignore[assignment]
            self._owned = False
            default_key: object = id(self._handle)
        else:
            self._handle = open(source, "rb")
            self._owned = True
            default_key = os.fspath(source)
        if cache is not None:
            self._buffers = cache
            self._cache_owned = False
        else:
            #: decompressed-block store: (file key, offset) -> (data, size)
            self._buffers = SharedBlockCache(cache_blocks)
            self._cache_owned = True
        self._cache_key = cache_key if cache_key is not None else default_key
        self._block_start = 0  # compressed offset of current block
        self._block_data = b""
        self._within = 0
        self._next_block = 0  # compressed offset of the block after the current
        self._eof = False
        #: compressed offset known to be at/past physical EOF (probes
        #: beyond it short-circuit: no file read, no cache traffic)
        self._known_eof: Optional[int] = None
        #: number of blocks decompressed (instrumentation for the tracer;
        #: cache hits do not re-count)
        self.blocks_read = 0
        #: cumulative seconds spent in zlib inflation (tracer: the
        #: "decompress" category of the Figure 2 reproduction); with a
        #: pool, only *consumed* blocks' inflation time accumulates, on
        #: consumption, so per-pull deltas stay meaningful
        self.time_decompress = 0.0
        #: this reader's block loads served from its buffer
        self.cache_hits = 0
        #: this reader's block loads that inflated (or consumed a
        #: prefetched inflation)
        self.cache_misses = 0
        #: evictions this reader's inserts caused
        self.cache_evictions = 0
        #: block loads served from the readahead pool
        self.prefetch_hits = 0
        #: prefetched blocks never consumed (seek-away, close, or the
        #: block cache beat the pool to it)
        self.prefetch_wasted = 0
        #: deepest in-flight prefetch queue observed (pool telemetry)
        self.pool_depth_peak = 0
        #: inflation pool size (0 = serial)
        self.decompress_threads = decompress_threads
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pending: "OrderedDict[int, Future]" = OrderedDict()
        self._prefetch_next: Optional[int] = None
        self._prefetch_blocked = False
        if decompress_threads:
            if readahead is None:
                readahead = 2 * decompress_threads
            if readahead <= 0:
                raise ValueError(
                    f"readahead must be positive, got {readahead}"
                )
            self._readahead = readahead
            self._pool = ThreadPoolExecutor(
                max_workers=decompress_threads,
                thread_name_prefix="bgzf-inflate",
            )
        self._load_block(0)

    # -- cache instrumentation ---------------------------------------------

    @property
    def cache_blocks(self) -> int:
        """Capacity of the decompressed-block LRU buffer."""
        return self._buffers.capacity

    # -- block machinery ---------------------------------------------------

    def _fetch_raw(
        self, offset: int
    ) -> Optional[Tuple[bytes, bytes, int]]:
        """Read (without inflating) the compressed block at ``offset``.

        Returns ``(deflate payload, crc+isize trailer, total size)``,
        or ``None`` at physical EOF.  Always runs on the consumer
        thread -- pool workers never touch the file handle.

        Raises:
            ValueError: if the bytes at ``offset`` are not a valid BGZF
                block (bad magic, missing BC subfield, truncation).
        """
        self._handle.seek(offset)
        header = self._handle.read(_HEADER_SIZE)
        if len(header) == 0:
            return None
        if len(header) < _HEADER_SIZE:
            raise ValueError("truncated BGZF block header")
        magic = header[:4]
        if magic[:2] != b"\x1f\x8b":
            raise ValueError(f"bad gzip magic {magic[:2]!r} at offset {offset}")
        if magic[2] != 8 or not magic[3] & 0x04:
            raise ValueError("gzip member lacks FEXTRA; not a BGZF file")
        xlen = struct.unpack("<H", header[10:12])[0]
        extra = self._handle.read(xlen)
        if len(extra) < xlen:
            raise ValueError("truncated BGZF extra field")
        bsize = None
        i = 0
        while i + 4 <= len(extra):
            si1, si2, slen = extra[i], extra[i + 1], struct.unpack(
                "<H", extra[i + 2 : i + 4]
            )[0]
            if si1 == ord("B") and si2 == ord("C") and slen == 2:
                bsize = struct.unpack("<H", extra[i + 4 : i + 6])[0] + 1
            i += 4 + slen
        if bsize is None:
            raise ValueError("BGZF BC subfield missing")
        payload_len = bsize - _HEADER_SIZE - xlen - 8
        payload = self._handle.read(payload_len)
        crc_isize = self._handle.read(8)
        if len(payload) < payload_len or len(crc_isize) < 8:
            raise ValueError("truncated BGZF block payload")
        return payload, crc_isize, bsize

    @staticmethod
    def _inflate(
        payload: bytes, crc_isize: bytes, bsize: int
    ) -> Tuple[bytes, int, float]:
        """Inflate and verify one block; safe on any pool thread.

        Returns ``(data, total compressed size, seconds in zlib)``.

        Raises:
            ValueError: on an ISIZE or CRC mismatch.
            zlib.error: on corrupt deflate data.
        """
        t0 = time.perf_counter()
        data = zlib.decompress(payload, -15)
        elapsed = time.perf_counter() - t0
        crc, isize = struct.unpack("<II", crc_isize)
        if len(data) != isize:
            raise ValueError(
                f"BGZF ISIZE mismatch: header says {isize}, got {len(data)}"
            )
        if (zlib.crc32(data) & 0xFFFFFFFF) != crc:
            raise ValueError("BGZF CRC mismatch")
        return data, bsize, elapsed

    def _read_block_at(self, offset: int) -> Tuple[bytes, int]:
        """Decompress the block at compressed ``offset``, inline.

        Returns ``(data, total_compressed_size)``; ``(b"", 0)`` at
        physical EOF -- an EOF probe touches neither the block cache
        nor its hit/miss counters (it is not a block).

        Raises:
            ValueError: if the bytes at ``offset`` are not a valid BGZF
                block (bad magic or missing BC subfield).
        """
        raw = self._fetch_raw(offset)
        if raw is None:
            return b"", 0
        data, size, elapsed = self._inflate(*raw)
        self.time_decompress += elapsed
        self.blocks_read += 1
        return data, size

    # -- readahead pool ----------------------------------------------------

    def _discard_prefetch(self) -> None:
        """Abandon every pending prefetch (each counts as wasted)."""
        for fut in self._pending.values():
            fut.cancel()
            self.prefetch_wasted += 1
        self._pending.clear()
        self._prefetch_blocked = False
        self._prefetch_next = None

    def _top_up_prefetch(self) -> None:
        """Walk the block chain from ``_prefetch_next``, submitting
        inflation jobs until the readahead budget is full, physical
        EOF, or a malformed block (whose error is parked as a pending
        future and raised only if the consumer reaches it)."""
        while (
            len(self._pending) < self._readahead
            and not self._prefetch_blocked
            and self._prefetch_next is not None
            and (self._known_eof is None or self._prefetch_next < self._known_eof)
        ):
            offset = self._prefetch_next
            resident = self._buffers.peek(self._cache_key, offset)
            if resident is not None:
                # Some reader already published this block; skip ahead.
                self._prefetch_next = offset + resident[1]
                continue
            try:
                raw = self._fetch_raw(offset)
            except Exception as exc:  # noqa: BLE001 - deferred to consumption
                failed: Future = Future()
                failed.set_exception(exc)
                self._pending[offset] = failed
                self._prefetch_blocked = True
                break
            if raw is None:
                self._known_eof = offset
                break
            payload, crc_isize, bsize = raw
            self._pending[offset] = self._pool.submit(
                self._inflate, payload, crc_isize, bsize
            )
            self._prefetch_next = offset + bsize
            if len(self._pending) > self.pool_depth_peak:
                self.pool_depth_peak = len(self._pending)

    def _schedule_prefetch(self, next_offset: int) -> None:
        """Keep the readahead pipeline pointed at ``next_offset`` (the
        block following the one just consumed).  A seek that breaks the
        chain discards the now-useless pending blocks and restarts the
        walk from the new position."""
        if self._pool is None:
            return
        if (
            next_offset not in self._pending
            and next_offset != self._prefetch_next
        ):
            self._discard_prefetch()
            self._prefetch_next = next_offset
        self._top_up_prefetch()

    def _fetch_block(self, offset: int) -> Tuple[bytes, int]:
        """Produce the block at ``offset``: from the readahead pool
        when prefetched, inline otherwise.  Either way the counters
        tick exactly as a serial inline read would (plus
        ``prefetch_hits``)."""
        if self._pool is not None:
            fut = self._pending.pop(offset, None)
            if fut is not None:
                data, size, elapsed = fut.result()
                self.prefetch_hits += 1
                self.time_decompress += elapsed
                self.blocks_read += 1
                return data, size
        return self._read_block_at(offset)

    # -- block loading ------------------------------------------------------

    def _cached_block_at(self, offset: int) -> Tuple[bytes, int]:
        """The block at ``offset`` through the LRU buffer.

        A resident block is returned without touching the file or
        zlib; a miss inflates (or consumes a prefetched inflation) and
        inserts.  EOF probes (size 0) are never cached and never count
        as hits or misses -- once physical EOF is discovered, repeat
        probes short-circuit entirely.
        """
        if self._known_eof is not None and offset >= self._known_eof:
            return b"", 0
        cached = self._buffers.get(self._cache_key, offset)
        if cached is not None:
            self.cache_hits += 1
            stale = self._pending.pop(offset, None)
            if stale is not None:
                # The cache beat the pool to this block (e.g. another
                # reader published it): that prefetch was wasted.
                stale.cancel()
                self.prefetch_wasted += 1
            self._schedule_prefetch(offset + cached[1])
            return cached
        data, size = self._fetch_block(offset)
        if size == 0:
            self._known_eof = offset
            return data, size
        self.cache_misses += 1
        self.cache_evictions += self._buffers.put(
            self._cache_key, offset, (data, size)
        )
        self._schedule_prefetch(offset + size)
        return data, size

    def _load_block(self, offset: int) -> None:
        data, size = self._cached_block_at(offset)
        self._block_start = offset
        self._block_data = data
        self._within = 0
        self._next_block = offset + size
        self._eof = size == 0 or (
            len(data) == 0 and size > 0 and self._nothing_after(offset + size)
        )

    def _nothing_after(self, offset: int) -> bool:
        """True when no bytes exist at compressed ``offset`` (used to
        classify an empty block as the trailing EOF sentinel vs a
        mid-file flush artefact)."""
        if self._known_eof is not None and offset >= self._known_eof:
            return True
        self._handle.seek(offset)
        if self._handle.read(1) == b"":
            self._known_eof = offset
            return True
        return False

    def _advance(self) -> bool:
        """Load the next non-empty block; False at physical EOF."""
        while True:
            data, size = self._cached_block_at(self._next_block)
            if size == 0:
                self._eof = True
                return False
            self._block_start = self._next_block
            self._next_block += size
            self._block_data = data
            self._within = 0
            if data:
                return True
            # empty block (e.g. EOF sentinel mid-file after flush) - skip

    # -- public API ---------------------------------------------------------

    def read(self, n: int = -1) -> bytes:
        """Read up to ``n`` decompressed bytes (all remaining if < 0)."""
        chunks: List[bytes] = []
        remaining = n
        while remaining != 0:
            avail = len(self._block_data) - self._within
            if avail == 0:
                if self._eof or not self._advance():
                    break
                continue
            take = avail if remaining < 0 else min(avail, remaining)
            chunks.append(self._block_data[self._within : self._within + take])
            self._within += take
            if remaining > 0:
                remaining -= take
        return b"".join(chunks)

    def readexact(self, n: int) -> bytes:
        """Read exactly ``n`` bytes.

        Raises:
            EOFError: if fewer than ``n`` bytes remain.
        """
        data = self.read(n)
        if len(data) != n:
            raise EOFError(f"wanted {n} bytes, got {len(data)}")
        return data

    def tell(self) -> int:
        """Virtual offset of the next byte to be read."""
        if self._within == len(self._block_data) and not self._eof:
            # Normalise to the start of the next block so offsets are unique.
            return make_virtual_offset(self._next_block, 0)
        return make_virtual_offset(self._block_start, self._within)

    def seek(self, voffset: int) -> int:
        """Seek to a virtual offset; returns the (normalised) offset."""
        block_start, within = split_virtual_offset(voffset)
        if block_start != self._block_start or within > len(self._block_data):
            self._eof = False
            self._load_block(block_start)
        if within > len(self._block_data):
            raise ValueError(
                f"within-block offset {within} exceeds block size "
                f"{len(self._block_data)}"
            )
        self._within = within
        return self.tell()

    def close(self) -> None:
        """Abandon the readahead pipeline, release the pool, the
        buffer (if private) and the underlying handle (if owned)."""
        self._discard_prefetch()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        if self._cache_owned:
            self._buffers.clear()
        if self._owned:
            self._handle.close()

    def __enter__(self) -> "BgzfReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def block_offsets(source: PathOrFile) -> List[int]:
    """Compressed-file offsets of every non-empty block.

    Used by the parallel runtime to hand disjoint block ranges to
    per-worker readers.
    """
    reader = BgzfReader(source)
    offsets: List[int] = []
    try:
        if reader._block_data:
            offsets.append(reader._block_start)
        while reader._advance():
            offsets.append(reader._block_start)
    except EOFError:
        pass
    finally:
        reader.close()
    return offsets
