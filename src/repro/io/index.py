"""The unified random-access API: one ``chunks_for`` for every index.

Before this module, each index spoke its own dialect: the homegrown
:class:`~repro.io.linear_index.LinearIndex` answered ``query(pos) ->
virtual offset``, callers hard-coded the "scan until past the region"
convention, and the real BAI binning scheme had nowhere to plug in.
The :class:`RandomAccessIndex` protocol replaces all of that with a
single question -- *which file ranges can hold records overlapping*
``[start, end)`` *of this contig?* -- answered as a list of
:class:`Chunk` virtual-offset ranges:

* :class:`~repro.io.linear_index.LinearIndex` answers with one
  open-ended chunk starting at its checkpoint scan offset;
* :class:`MultiContigIndex` (the per-contig linear multi-index, now a
  first-class type instead of a bare dict) routes to the right
  contig's linear index;
* :class:`~repro.io.bai.BaiIndex` answers with the real binned seek
  plan -- several tight ranges instead of one suffix scan.

:class:`~repro.pipeline.sources.BamSource` consumes any of them
uniformly; equivalence tests pin the three to byte-identical calls.

Builders and the sidecar loader live here too:
:func:`build_linear_index` (the implementation behind the deprecated
``repro.io.linear_index.build_multi_index``), :func:`build_bai_index`
and the magic-sniffing :func:`load_index`.
"""

from __future__ import annotations

import struct
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.io.linear_index import LinearIndex, _scan_linear

__all__ = [
    "Chunk",
    "MAX_VOFFSET",
    "MultiContigIndex",
    "RandomAccessIndex",
    "build_bai_index",
    "build_linear_index",
    "load_index",
]

#: Open-ended chunk sentinel: no virtual offset compares above it, so
#: a ``Chunk(v, MAX_VOFFSET)`` means "scan from ``v`` until the region
#: (or file) ends" -- the linear indexes' answer shape.
MAX_VOFFSET = (1 << 63) - 1

_MULTI_MAGIC = b"RMI1"


class Chunk(NamedTuple):
    """One file range of a seek plan: ``[vbegin, vend)`` in virtual
    offsets (see :func:`repro.io.bgzf.make_virtual_offset`)."""

    vbegin: int
    vend: int


@runtime_checkable
class RandomAccessIndex(Protocol):
    """Anything that can plan region seeks into a coordinate-sorted BAM.

    Implementations: :class:`~repro.io.linear_index.LinearIndex`
    (single contig), :class:`MultiContigIndex` (one linear index per
    contig) and :class:`~repro.io.bai.BaiIndex` (the standard binning
    scheme).
    """

    def contigs(self) -> Sequence[str]:
        """Contig names the index can answer queries for."""
        ...

    def chunks_for(self, contig: str, start: int, end: int) -> List[Chunk]:
        """Ascending, non-overlapping virtual-offset ranges that
        together cover every record overlapping ``[start, end)`` of
        ``contig``; empty when the contig has no (indexed) records.

        A scan of the plan visits records in coordinate order (the
        ranges are ascending over a coordinate-sorted file), so
        consumers may stream the chunks back to back.  Ranges may
        include records *outside* the query (bins are coarse; linear
        indexes are suffixes): consumers still filter by position,
        they just no longer scan from the start of the contig.
        """
        ...


class MultiContigIndex(Mapping):
    """One :class:`~repro.io.linear_index.LinearIndex` per contig.

    The pipeline's historical "multi-index" was a bare ``dict``; this
    wraps it as a :class:`RandomAccessIndex` while staying a read-only
    :class:`~collections.abc.Mapping` (``index["chr1"]``,
    ``index.get``, iteration) for existing callers.

    Args:
        per_contig: ``{contig name: LinearIndex}``; contigs without
            records are simply absent.
    """

    def __init__(self, per_contig: Mapping[str, LinearIndex]) -> None:
        self._per_contig: Dict[str, LinearIndex] = dict(per_contig)

    def __getitem__(self, contig: str) -> LinearIndex:
        """The named contig's linear index."""
        return self._per_contig[contig]

    def __iter__(self) -> Iterator[str]:
        """Iterate contig names (insertion = header order)."""
        return iter(self._per_contig)

    def __len__(self) -> int:
        """Number of indexed contigs."""
        return len(self._per_contig)

    def contigs(self) -> List[str]:
        """Contig names with at least one indexed record."""
        return list(self._per_contig)

    def chunks_for(self, contig: str, start: int, end: int) -> List[Chunk]:
        """Route the query to the contig's linear index (empty plan
        for unknown contigs -- they have no records)."""
        index = self._per_contig.get(contig)
        if index is None:
            return []
        return index.chunks_for(contig, start, end)

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Write a multi-contig sidecar (magic ``RMI1``): per contig a
        length-prefixed name plus the linear-index table."""
        with open(path, "wb") as fh:
            fh.write(_MULTI_MAGIC)
            fh.write(struct.pack("<i", len(self._per_contig)))
            for name, index in self._per_contig.items():
                raw = name.encode("utf-8")
                fh.write(struct.pack("<H", len(raw)))
                fh.write(raw)
                fh.write(
                    struct.pack(
                        "<qqq",
                        index.max_read_span,
                        index.data_start,
                        len(index.checkpoints),
                    )
                )
                for pos, voffset in index.checkpoints:
                    fh.write(struct.pack("<qq", pos, voffset))

    @classmethod
    def load(cls, path) -> "MultiContigIndex":
        """Load a sidecar written by :meth:`save`.

        Raises:
            ValueError: if the file is not a multi-contig index.
        """
        with open(path, "rb") as fh:
            magic = fh.read(4)
            if magic != _MULTI_MAGIC:
                raise ValueError(
                    f"not a multi-contig linear index (magic {magic!r})"
                )
            (n,) = struct.unpack("<i", fh.read(4))
            per_contig: Dict[str, LinearIndex] = {}
            for _ in range(n):
                (name_len,) = struct.unpack("<H", fh.read(2))
                name = fh.read(name_len).decode("utf-8")
                max_span, data_start, n_cp = struct.unpack("<qqq", fh.read(24))
                cps = [
                    struct.unpack("<qq", fh.read(16)) for _ in range(n_cp)
                ]
                per_contig[name] = LinearIndex(
                    checkpoints=cps,
                    max_read_span=max_span,
                    data_start=data_start,
                )
        return cls(per_contig)


def build_linear_index(
    bam_path, granularity: int = 256, *, decompress_threads: int = 0
) -> MultiContigIndex:
    """Scan a BAM once and build the per-contig linear multi-index.

    The historical default index: every ``granularity``-th record per
    contig contributes a ``(position, virtual offset)`` checkpoint,
    queries answer with one open-ended suffix chunk.  For the real
    O(log) binned plan, build :func:`build_bai_index` instead.

    Args:
        bam_path: coordinate-sorted BAM to scan.
        granularity: records per checkpoint (positive).
        decompress_threads: BGZF readahead pool size for the scan
            (``0`` = serial; the index is identical either way).

    Raises:
        ValueError: if ``granularity`` is not positive or the BAM is
            not coordinate-sorted.
    """
    return MultiContigIndex(
        _scan_linear(bam_path, granularity, decompress_threads)
    )


def build_bai_index(bam_path, *, decompress_threads: int = 0):
    """Scan a BAM once and build its standard BAI binning index
    (:class:`~repro.io.bai.BaiIndex`, names attached, query-ready).

    Args:
        bam_path: coordinate-sorted BAM to scan.
        decompress_threads: BGZF readahead pool size for the scan
            (``0`` = serial; the index is identical either way).

    Raises:
        ValueError: if the BAM is not coordinate-sorted.
    """
    from repro.io.bai import build_bai

    return build_bai(bam_path, decompress_threads=decompress_threads)


def load_index(path, names: Optional[Sequence[str]] = None):
    """Load any sidecar index, sniffing the format from its magic.

    Accepts the standard ``.bai`` (ours or an external tool's), the
    multi-contig linear sidecar (``RMI1``) and the legacy
    single-contig linear sidecar (``RLI1``).

    Args:
        path: sidecar file.
        names: the BAM header's reference names.  Required to make a
            ``.bai`` queryable by contig name (the format stores ids
            only) and to bind a legacy single-contig sidecar to its
            contig; ignored for ``RMI1`` (which stores names).

    Returns:
        A :class:`RandomAccessIndex`.

    Raises:
        ValueError: on an unrecognised magic, or a ``.bai``/legacy
            sidecar without ``names`` to bind to.
    """
    from repro.io.bai import BAI_MAGIC, BaiIndex

    with open(path, "rb") as fh:
        magic = fh.read(4)
    if magic == BAI_MAGIC:
        index = BaiIndex.load(path)
        if names is not None:
            index.attach_names(names)
        return index
    if magic == _MULTI_MAGIC:
        return MultiContigIndex.load(path)
    if magic == b"RLI1":
        if not names:
            raise ValueError(
                "single-contig linear index needs the BAM's reference "
                "names to bind to a contig; pass names=[...]"
            )
        return MultiContigIndex({names[0]: LinearIndex.load(path)})
    raise ValueError(f"unrecognised index magic {magic!r} in {path}")
