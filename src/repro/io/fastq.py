"""FASTQ reading and writing.

Qualities are converted between the Phred+33 ASCII encoding used on
disk and the ``numpy.uint8`` Phred arrays used everywhere in memory.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Iterable, Iterator, TextIO, Union

import numpy as np

__all__ = [
    "FastqRecord",
    "read_fastq",
    "write_fastq",
    "phred_to_ascii",
    "ascii_to_phred",
]

PathOrFile = Union[str, os.PathLike, TextIO]

PHRED_OFFSET = 33
#: SAM caps stored qualities at 93 so they stay printable ASCII.
MAX_PHRED = 93


def phred_to_ascii(qual: np.ndarray) -> str:
    """Encode a Phred array as a Phred+33 ASCII string.

    Raises:
        ValueError: if any quality exceeds :data:`MAX_PHRED`.
    """
    q = np.asarray(qual, dtype=np.int64)
    if q.size and (q.min() < 0 or q.max() > MAX_PHRED):
        raise ValueError(f"Phred scores must be in [0, {MAX_PHRED}]")
    return (q + PHRED_OFFSET).astype(np.uint8).tobytes().decode("ascii")


def ascii_to_phred(text: str) -> np.ndarray:
    """Decode a Phred+33 ASCII string into a ``uint8`` Phred array.

    Raises:
        ValueError: on characters outside the printable Phred+33 range.
    """
    raw = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    if raw.size and (raw.min() < PHRED_OFFSET or raw.max() > PHRED_OFFSET + MAX_PHRED):
        raise ValueError("quality string contains non-Phred+33 characters")
    return (raw - PHRED_OFFSET).astype(np.uint8)


@dataclasses.dataclass
class FastqRecord:
    """One FASTQ entry: name, sequence and Phred quality array."""

    name: str
    sequence: str
    quality: np.ndarray

    def __post_init__(self) -> None:
        self.quality = np.asarray(self.quality, dtype=np.uint8)
        if len(self.sequence) != len(self.quality):
            raise ValueError(
                f"sequence length {len(self.sequence)} != "
                f"quality length {len(self.quality)}"
            )

    def __len__(self) -> int:
        return len(self.sequence)

    @property
    def error_probabilities(self) -> np.ndarray:
        """Per-base error probabilities ``10**(-Q/10)`` as float64."""
        return np.power(10.0, -self.quality.astype(np.float64) / 10.0)


def _open_text(source: PathOrFile, mode: str) -> tuple[TextIO, bool]:
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False  # type: ignore[return-value]
    return open(source, mode), True


def read_fastq(source: PathOrFile) -> Iterator[FastqRecord]:
    """Iterate FASTQ records from a path or text handle.

    Raises:
        ValueError: on structural errors (truncated record, missing
            ``@``/``+`` markers, seq/qual length mismatch).
    """
    handle, owned = _open_text(source, "r")
    try:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.rstrip("\n")
            if not header:
                continue
            if not header.startswith("@"):
                raise ValueError(f"expected '@' defline, got {header!r}")
            seq = handle.readline().rstrip("\n")
            plus = handle.readline().rstrip("\n")
            qual = handle.readline().rstrip("\n")
            if not qual and len(seq) > 0:
                raise ValueError(f"truncated FASTQ record {header!r}")
            if not plus.startswith("+"):
                raise ValueError(f"expected '+' separator in {header!r}")
            name = header[1:].split()[0] if len(header) > 1 else ""
            yield FastqRecord(name, seq.upper(), ascii_to_phred(qual))
    finally:
        if owned:
            handle.close()


def write_fastq(dest: PathOrFile, records: Iterable[FastqRecord]) -> None:
    """Write FASTQ records to a path or text handle."""
    handle, owned = _open_text(dest, "w")
    try:
        for rec in records:
            handle.write(
                f"@{rec.name}\n{rec.sequence}\n+\n{phred_to_ascii(rec.quality)}\n"
            )
    finally:
        if owned:
            handle.close()
