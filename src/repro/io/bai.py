"""BAI: the standard BAM binning index (reader *and* writer).

Implements the ``.bai`` format from the SAM specification (section
5.2, "The BAI index format"), byte-compatible with htslib/samtools in
both directions: indexes produced by ``samtools index`` load here, and
indexes written by :func:`build_bai` load there.  Implementing the
*standard* wire format -- not a private sidecar -- is the point: like
the CLNP/ES-IS kernel modules that interoperate because they speak the
published protocol, region queries against externally produced BAMs
need externally produced indexes to just work.

The scheme is UCSC's R-tree flattened into bins:

* the reference axis is tiled at six granularities (one 512 Mbp bin,
  8 x 64 Mbp, 64 x 8 Mbp, 512 x 1 Mbp, 4096 x 128 kbp, 32768 x
  16 kbp); every record lands in the *smallest* bin that contains its
  whole alignment span (:func:`repro.io.bam.reg2bin`);
* each bin holds *chunks* -- ``(virtual offset begin, virtual offset
  end)`` file ranges covering that bin's records;
* a query ``[beg, end)`` touches at most ``O(log)``-deep bin lists
  (:func:`reg2bins`: <= 6 levels regardless of reference length),
  whose chunks are pruned by a 16 kbp *linear index* of minimum
  offsets and coalesced into a short seek plan.

On-disk layout (all integers little-endian)::

    magic "BAI\\x01", n_ref:int32
    per reference:
        n_bin:int32
        per bin: bin:uint32, n_chunk:int32, (beg:uint64, end:uint64)*
        n_intv:int32, ioffset:uint64 *
    n_no_coor:uint64            # optional trailer

Bin 37450 is the spec's pseudo-bin carrying per-reference metadata
(start/stop virtual offsets and mapped/unmapped counts); it is written
for interoperability and parsed (not treated as a real bin) on read.

:class:`BaiIndex` satisfies the
:class:`repro.io.index.RandomAccessIndex` protocol, so
:class:`~repro.pipeline.sources.BamSource` consumes it exactly like
the homegrown linear index.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple

from repro.io.bam import BamReader, reg2bin
from repro.io.index import Chunk

__all__ = [
    "BAI_MAGIC",
    "BaiIndex",
    "BaiReference",
    "MAX_BIN",
    "PSEUDO_BIN",
    "WINDOW_SHIFT",
    "bin_interval",
    "build_bai",
    "reg2bins",
]

BAI_MAGIC = b"BAI\x01"

#: The metadata pseudo-bin id (``37450 = 4681 + 32768 + 1``).
PSEUDO_BIN = 37450

#: Width of a linear-index window (16 kbp).
WINDOW_SHIFT = 14

#: ``(offset, shift)`` of each binning level, coarsest first; level
#: ``i`` tiles the reference with ``8**i`` bins of ``1 << shift`` bp.
_LEVELS: Tuple[Tuple[int, int], ...] = (
    (0, 29),
    (1, 26),
    (9, 23),
    (73, 20),
    (585, 17),
    (4681, WINDOW_SHIFT),
)

#: Largest real bin id + 1 (bins 0..37448 inclusive are addressable).
MAX_BIN = 4681 + (1 << 15)


def reg2bins(beg: int, end: int) -> List[int]:
    """Every bin that may hold a record overlapping ``[beg, end)``.

    The query-side complement of :func:`repro.io.bam.reg2bin`: a
    record whose span overlaps the region necessarily lives in one of
    the returned bins, whichever level it was filed at.  At most
    ``1 + 8 + 64 + ...`` candidates bounded by the region width -- the
    O(log) seek math that replaces a linear checkpoint scan.

    Args:
        beg: 0-based inclusive region start (clamped at 0).
        end: 0-based exclusive region end (clamped at the scheme's
            512 Mbp ceiling).

    Returns:
        Ascending bin ids (empty when the region is empty).
    """
    beg = max(beg, 0)
    end = min(end, 1 << 29)  # the binning scheme addresses < 512 Mbp
    if end <= beg:
        return []
    end -= 1
    bins: List[int] = []
    for offset, shift in _LEVELS:
        bins.extend(range(offset + (beg >> shift), offset + (end >> shift) + 1))
    return bins


def bin_interval(bin_id: int) -> Tuple[int, int]:
    """The half-open reference interval ``[beg, end)`` a bin tiles.

    Raises:
        ValueError: if ``bin_id`` is not a real bin (the pseudo-bin
            included).
    """
    for level, (offset, shift) in enumerate(_LEVELS):
        if offset <= bin_id < offset + 8**level:
            idx = bin_id - offset
            return idx << shift, (idx + 1) << shift
    raise ValueError(f"not a real BAI bin id: {bin_id}")


@dataclasses.dataclass
class BaiReference:
    """One reference's slice of a BAI index.

    Attributes:
        bins: real bins only -- ``{bin id: chunk list}`` (the
            pseudo-bin is unpacked into the metadata fields below).
        intervals: the 16 kbp linear index: ``intervals[w]`` is the
            virtual offset before which no record overlapping window
            ``w`` can start (0 = no information).
        ref_beg / ref_end: virtual offsets of the first/last record
            (pseudo-bin metadata; 0 when the reference has no records).
        mapped / unmapped: placed record counts (pseudo-bin metadata).
    """

    bins: Dict[int, List[Chunk]] = dataclasses.field(default_factory=dict)
    intervals: List[int] = dataclasses.field(default_factory=list)
    ref_beg: int = 0
    ref_end: int = 0
    mapped: int = 0
    unmapped: int = 0

    def min_offset(self, beg: int) -> int:
        """Linear-index lower bound for a query starting at ``beg``."""
        if not self.intervals:
            return 0
        w = min(max(beg, 0) >> WINDOW_SHIFT, len(self.intervals) - 1)
        return self.intervals[w]


class BaiIndex:
    """A parsed (or freshly built) BAI index.

    The index itself is keyed by reference *id* (the ``.bai`` format
    stores no names); attach the BAM header's reference names with
    :meth:`attach_names` -- :class:`~repro.pipeline.sources.BamSource`
    and the CLI do this automatically -- to query by contig through
    the :class:`repro.io.index.RandomAccessIndex` interface.

    Args:
        references: one :class:`BaiReference` per BAM header reference.
        n_no_coor: count of coordinate-less records, or ``None`` when
            the producer omitted the optional trailer.
        names: reference names aligned with ``references`` (optional).
    """

    def __init__(
        self,
        references: Sequence[BaiReference],
        n_no_coor: Optional[int] = None,
        names: Optional[Sequence[str]] = None,
    ) -> None:
        self.references: List[BaiReference] = list(references)
        self.n_no_coor = n_no_coor
        self._name_to_id: Dict[str, int] = {}
        self.names: Optional[List[str]] = None
        if names is not None:
            self.attach_names(names)

    def attach_names(self, names: Sequence[str]) -> "BaiIndex":
        """Bind reference names (from a BAM header) to the index.

        Returns ``self`` so the call chains off :meth:`load`.

        Raises:
            ValueError: if the name count disagrees with the index's
                reference count.
        """
        if len(names) != len(self.references):
            raise ValueError(
                f"BAI has {len(self.references)} references, header "
                f"names {len(names)}"
            )
        self.names = list(names)
        self._name_to_id = {name: i for i, name in enumerate(self.names)}
        return self

    def contigs(self) -> List[str]:
        """Names this index can answer queries for.

        Raises:
            ValueError: if no names were attached.
        """
        if self.names is None:
            raise ValueError(
                "no reference names attached; call attach_names() with "
                "the BAM header's reference names"
            )
        return list(self.names)

    # -- queries -------------------------------------------------------------

    def chunks_for_id(self, ref_id: int, beg: int, end: int) -> List[Chunk]:
        """The coalesced seek plan for ``[beg, end)`` on reference
        ``ref_id``: every file range that can hold an overlapping
        record, ascending and non-overlapping.

        This is the binned query proper: candidate bins from
        :func:`reg2bins`, their chunks pruned against the linear
        index's minimum offset, then sorted and merged (ranges that
        overlap, touch, or share a compressed BGZF block coalesce into
        one seek).
        """
        if not (0 <= ref_id < len(self.references)):
            return []
        ref = self.references[ref_id]
        if not ref.bins:
            return []
        min_off = ref.min_offset(beg)
        raw: List[Chunk] = []
        for bin_id in reg2bins(beg, end):
            for chunk in ref.bins.get(bin_id, ()):
                if chunk.vend <= min_off:
                    continue  # wholly before any overlapping record
                raw.append(
                    Chunk(max(chunk.vbegin, min_off), chunk.vend)
                )
        if not raw:
            return []
        raw.sort()
        merged = [raw[0]]
        for chunk in raw[1:]:
            last = merged[-1]
            # Merge overlapping/adjacent ranges (correctness: a record
            # must never be scanned twice) and ranges whose gap sits
            # inside one compressed block (economy: the block is
            # inflated once either way).
            if chunk.vbegin <= last.vend or (
                chunk.vbegin >> 16 == last.vend >> 16
            ):
                if chunk.vend > last.vend:
                    merged[-1] = Chunk(last.vbegin, chunk.vend)
            else:
                merged.append(chunk)
        return merged

    def chunks_for(self, contig: str, start: int, end: int) -> List[Chunk]:
        """:class:`~repro.io.index.RandomAccessIndex` interface: the
        seek plan for a named contig (empty when the contig is unknown
        or has no records).

        Raises:
            ValueError: if no names were attached (the raw index is
                id-keyed; see :meth:`attach_names`).
        """
        if self.names is None:
            raise ValueError(
                "no reference names attached; call attach_names() with "
                "the BAM header's reference names"
            )
        ref_id = self._name_to_id.get(contig)
        if ref_id is None:
            return []
        return self.chunks_for_id(ref_id, start, end)

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Write the index in the standard ``.bai`` layout.

        Deterministic layout choices (all spec-conforming, matching
        samtools): bins ascending, the pseudo-bin last, trailing
        zero linear-index windows kept, the optional ``n_no_coor``
        trailer always written.
        """
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    def to_bytes(self) -> bytes:
        """The serialised index (see :meth:`save`)."""
        out = bytearray()
        out += BAI_MAGIC
        out += struct.pack("<i", len(self.references))
        for ref in self.references:
            has_records = bool(ref.bins) or ref.mapped or ref.unmapped
            n_bin = len(ref.bins) + (1 if has_records else 0)
            out += struct.pack("<i", n_bin)
            for bin_id in sorted(ref.bins):
                chunks = ref.bins[bin_id]
                out += struct.pack("<Ii", bin_id, len(chunks))
                for chunk in chunks:
                    out += struct.pack("<QQ", chunk.vbegin, chunk.vend)
            if has_records:
                # The metadata pseudo-bin: two pseudo-chunks holding
                # (ref_beg, ref_end) and (mapped, unmapped).
                out += struct.pack("<Ii", PSEUDO_BIN, 2)
                out += struct.pack("<QQ", ref.ref_beg, ref.ref_end)
                out += struct.pack("<QQ", ref.mapped, ref.unmapped)
            out += struct.pack("<i", len(ref.intervals))
            for ioffset in ref.intervals:
                out += struct.pack("<Q", ioffset)
        out += struct.pack("<Q", self.n_no_coor or 0)
        return bytes(out)

    @classmethod
    def load(cls, path) -> "BaiIndex":
        """Parse a ``.bai`` file (ours or an external tool's).

        Raises:
            ValueError: if the file is not a BAI index or is truncated.
        """
        with open(path, "rb") as fh:
            return cls.from_handle(fh)

    @classmethod
    def from_handle(cls, fh: BinaryIO) -> "BaiIndex":
        """Parse a BAI index from an open binary handle.

        Raises:
            ValueError: on bad magic or truncation.
        """

        def need(n: int) -> bytes:
            """Read exactly ``n`` bytes or fail loudly."""
            data = fh.read(n)
            if len(data) != n:
                raise ValueError("truncated BAI index")
            return data

        magic = fh.read(4)
        if magic != BAI_MAGIC:
            raise ValueError(f"not a BAI index (magic {magic!r})")
        (n_ref,) = struct.unpack("<i", need(4))
        if n_ref < 0:
            raise ValueError(f"negative reference count {n_ref}")
        references: List[BaiReference] = []
        for _ in range(n_ref):
            ref = BaiReference()
            (n_bin,) = struct.unpack("<i", need(4))
            for _ in range(n_bin):
                bin_id, n_chunk = struct.unpack("<Ii", need(8))
                chunks = [
                    Chunk(*struct.unpack("<QQ", need(16)))
                    for _ in range(n_chunk)
                ]
                if bin_id == PSEUDO_BIN:
                    # Metadata, not a real bin: (ref_beg, ref_end),
                    # (mapped, unmapped).  Tolerate producers that
                    # write fewer pseudo-chunks.
                    if len(chunks) >= 1:
                        ref.ref_beg = chunks[0].vbegin
                        ref.ref_end = chunks[0].vend
                    if len(chunks) >= 2:
                        ref.mapped = chunks[1].vbegin
                        ref.unmapped = chunks[1].vend
                elif bin_id >= MAX_BIN:
                    raise ValueError(f"bin id {bin_id} out of range")
                else:
                    ref.bins[bin_id] = chunks
            (n_intv,) = struct.unpack("<i", need(4))
            ref.intervals = [
                struct.unpack("<Q", need(8))[0] for _ in range(n_intv)
            ]
            references.append(ref)
        trailer = fh.read(8)
        n_no_coor = (
            struct.unpack("<Q", trailer)[0] if len(trailer) == 8 else None
        )
        return cls(references, n_no_coor=n_no_coor)


class _RefAccumulator:
    """Per-reference builder state for the single-scan index pass."""

    __slots__ = (
        "bins", "intervals", "ref_beg", "ref_end", "mapped", "unmapped"
    )

    def __init__(self) -> None:
        self.bins: Dict[int, List[Chunk]] = {}
        self.intervals: List[int] = []
        self.ref_beg = 0
        self.ref_end = 0
        self.mapped = 0
        self.unmapped = 0

    def add(self, bin_id: int, vbegin: int, vend: int, beg: int, end: int,
            mapped: bool) -> None:
        """Fold one record (bin, file range, reference span) in."""
        chunks = self.bins.setdefault(bin_id, [])
        if chunks and vbegin <= chunks[-1].vend:
            # Contiguous records in the same bin extend one chunk --
            # the coalescing that keeps real-world BAI files small.
            if vend > chunks[-1].vend:
                chunks[-1] = Chunk(chunks[-1].vbegin, vend)
        else:
            chunks.append(Chunk(vbegin, vend))
        if not self.ref_beg:
            self.ref_beg = vbegin
        self.ref_end = max(self.ref_end, vend)
        if mapped:
            self.mapped += 1
        else:
            self.unmapped += 1
        first_w = max(beg, 0) >> WINDOW_SHIFT
        last_w = max(end - 1, beg, 0) >> WINDOW_SHIFT
        if last_w >= len(self.intervals):
            self.intervals.extend([0] * (last_w + 1 - len(self.intervals)))
        for w in range(first_w, last_w + 1):
            if self.intervals[w] == 0 or vbegin < self.intervals[w]:
                self.intervals[w] = vbegin

    def finish(self) -> BaiReference:
        """Seal the accumulator into a :class:`BaiReference`.

        Empty linear-index windows inherit the previous window's
        offset (samtools' gap fill), so ``min_offset`` stays a valid
        lower bound for queries starting in coverage gaps.
        """
        filled: List[int] = []
        last = 0
        for ioffset in self.intervals:
            if ioffset == 0:
                ioffset = last
            filled.append(ioffset)
            last = ioffset
        return BaiReference(
            bins=self.bins,
            intervals=filled,
            ref_beg=self.ref_beg,
            ref_end=self.ref_end,
            mapped=self.mapped,
            unmapped=self.unmapped,
        )


def build_bai(bam_path, *, decompress_threads: int = 0) -> BaiIndex:
    """Scan a coordinate-sorted BAM once and build its BAI index.

    One pass over the BGZF stream: each record contributes a chunk
    ``(voffset before, voffset after)`` to its :func:`reg2bin` bin and
    lowers the linear-index floor of every 16 kbp window its alignment
    touches.  The result interoperates with external tools via
    :meth:`BaiIndex.save` and answers region queries through
    :meth:`BaiIndex.chunks_for` (names are attached from the header
    here, so the returned index is query-ready).

    Args:
        bam_path: coordinate-sorted BAM to scan.
        decompress_threads: BGZF readahead pool size for the
            sequential scan (``0`` = serial; the index bytes are
            identical either way).

    Raises:
        ValueError: if the BAM is not coordinate-sorted or a record
            references a contig missing from the header.
    """
    with BamReader(bam_path, decompress_threads=decompress_threads) as reader:
        names = [name for name, _ in reader.header.references]
        rank = {name: i for i, name in enumerate(names)}
        accumulators = [_RefAccumulator() for _ in names]
        n_no_coor = 0
        last_rank = -1
        last_pos = -1
        while True:
            vbegin = reader.tell()
            record = reader.read_record()
            if record is None:
                break
            vend = reader.tell()
            if record.rname == "*" or record.pos < 0:
                n_no_coor += 1
                continue
            r = rank.get(record.rname)
            if r is None:
                raise ValueError(
                    f"record references {record.rname!r}, not in the header"
                )
            if r < last_rank:
                raise ValueError(
                    "cannot index an unsorted BAM (contig "
                    f"{record.rname!r} appears after a later header contig)"
                )
            if r > last_rank:
                last_rank = r
                last_pos = -1
            if record.pos < last_pos:
                raise ValueError(
                    "cannot index an unsorted BAM "
                    f"({record.qname} at {record.pos} after {last_pos})"
                )
            last_pos = record.pos
            end = record.reference_end if record.cigar else record.pos + 1
            end = max(end, record.pos + 1)
            accumulators[r].add(
                reg2bin(record.pos, end),
                vbegin,
                vend,
                record.pos,
                end,
                mapped=not record.is_unmapped,
            )
    return BaiIndex(
        [acc.finish() for acc in accumulators],
        n_no_coor=n_no_coor,
        names=names,
    )
