"""CIGAR string parsing and algebra.

A CIGAR describes how a read aligns to the reference as a sequence of
``(operation, length)`` pairs.  The nine SAM operations and their
numeric codes (used verbatim by the binary BAM encoding) are::

    M 0  alignment match (can be a sequence match or mismatch)
    I 1  insertion to the reference
    D 2  deletion from the reference
    N 3  skipped region from the reference (introns)
    S 4  soft clipping (clipped sequence present in SEQ)
    H 5  hard clipping (clipped sequence NOT present in SEQ)
    P 6  padding
    = 7  sequence match
    X 8  sequence mismatch

Which operations consume query and/or reference bases drives both the
pileup engine and BAM encoding, so those predicates live here as the
single source of truth.
"""

from __future__ import annotations

import enum
import re
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "CigarOp",
    "CIGAR_OPS",
    "CONSUMES_QUERY",
    "CONSUMES_REFERENCE",
    "parse_cigar",
    "cigar_to_string",
    "query_length",
    "reference_length",
    "aligned_pairs",
    "clip_lengths",
    "validate_cigar",
]


class CigarOp(enum.IntEnum):
    """CIGAR operation codes as used in the BAM binary encoding."""

    M = 0
    I = 1  # noqa: E741 - canonical SAM letter
    D = 2
    N = 3
    S = 4
    H = 5
    P = 6
    EQ = 7
    X = 8

    @property
    def char(self) -> str:
        """The one-letter SAM representation of this operation."""
        return _OP_TO_CHAR[int(self)]

    @classmethod
    def from_char(cls, c: str) -> "CigarOp":
        """Look an operation up from its SAM letter.

        Raises:
            ValueError: if ``c`` is not a valid CIGAR letter.
        """
        try:
            return cls(_CHAR_TO_OP[c])
        except KeyError:
            raise ValueError(f"invalid CIGAR operation {c!r}") from None


CIGAR_OPS = "MIDNSHP=X"
_OP_TO_CHAR = {i: c for i, c in enumerate(CIGAR_OPS)}
_CHAR_TO_OP = {c: i for i, c in enumerate(CIGAR_OPS)}

#: Operations that consume bases of the read (query) sequence.
CONSUMES_QUERY = frozenset(
    {CigarOp.M, CigarOp.I, CigarOp.S, CigarOp.EQ, CigarOp.X}
)
#: Operations that consume positions on the reference.
CONSUMES_REFERENCE = frozenset(
    {CigarOp.M, CigarOp.D, CigarOp.N, CigarOp.EQ, CigarOp.X}
)

Cigar = List[Tuple[CigarOp, int]]

_CIGAR_RE = re.compile(r"(\d+)([MIDNSHP=X])")


def parse_cigar(text: str) -> Cigar:
    """Parse a CIGAR string into ``[(op, length), ...]``.

    ``"*"`` (the SAM placeholder for "no alignment") parses to an empty
    list.

    Raises:
        ValueError: on malformed input, zero-length operations, or
            trailing garbage.
    """
    if text == "*" or text == "":
        return []
    out: Cigar = []
    pos = 0
    for m in _CIGAR_RE.finditer(text):
        if m.start() != pos:
            raise ValueError(f"malformed CIGAR {text!r}")
        length = int(m.group(1))
        if length == 0:
            raise ValueError(f"zero-length CIGAR op in {text!r}")
        out.append((CigarOp.from_char(m.group(2)), length))
        pos = m.end()
    if pos != len(text):
        raise ValueError(f"malformed CIGAR {text!r}")
    return out


def cigar_to_string(cigar: Sequence[Tuple[CigarOp, int]]) -> str:
    """Render ``[(op, length), ...]`` back to a SAM CIGAR string.

    An empty CIGAR renders as ``"*"`` per the SAM specification.
    """
    if not cigar:
        return "*"
    return "".join(f"{length}{CigarOp(op).char}" for op, length in cigar)


def query_length(cigar: Sequence[Tuple[CigarOp, int]]) -> int:
    """Number of read bases covered by the CIGAR (length of SEQ)."""
    return sum(length for op, length in cigar if CigarOp(op) in CONSUMES_QUERY)


def reference_length(cigar: Sequence[Tuple[CigarOp, int]]) -> int:
    """Number of reference positions spanned by the CIGAR."""
    return sum(
        length for op, length in cigar if CigarOp(op) in CONSUMES_REFERENCE
    )


def clip_lengths(cigar: Sequence[Tuple[CigarOp, int]]) -> Tuple[int, int]:
    """Return ``(left, right)`` soft-clip lengths.

    Hard clips carry no sequence so they are excluded; only soft clips
    shift the mapping between SEQ indices and reference positions.
    """
    left = right = 0
    if cigar and CigarOp(cigar[0][0]) == CigarOp.S:
        left = cigar[0][1]
    if len(cigar) > 1 and CigarOp(cigar[-1][0]) == CigarOp.S:
        right = cigar[-1][1]
    return left, right


def aligned_pairs(
    cigar: Sequence[Tuple[CigarOp, int]], pos: int
) -> Iterator[Tuple[int | None, int | None]]:
    """Yield ``(query_index, reference_position)`` pairs.

    For each CIGAR-covered base, one element is ``None`` when the
    operation does not consume that side (e.g. ``(qi, None)`` inside an
    insertion).  ``pos`` is the 0-based leftmost reference coordinate.
    This mirrors pysam's ``get_aligned_pairs`` and is the primitive the
    pileup engine builds on.
    """
    qi = 0
    ri = pos
    for op, length in cigar:
        op = CigarOp(op)
        in_q = op in CONSUMES_QUERY
        in_r = op in CONSUMES_REFERENCE
        if in_q and in_r:
            for _ in range(length):
                yield qi, ri
                qi += 1
                ri += 1
        elif in_q:
            for _ in range(length):
                yield qi, None
                qi += 1
        elif in_r:
            for _ in range(length):
                yield None, ri
                ri += 1
        # H and P consume neither side and yield nothing.


def validate_cigar(
    cigar: Sequence[Tuple[CigarOp, int]], seq_len: int | None = None
) -> None:
    """Validate structural constraints from the SAM specification.

    * all lengths positive;
    * hard clips only at the outermost ends;
    * soft clips only at the ends (possibly inside hard clips);
    * if ``seq_len`` is given, query-consuming length must equal it.

    Raises:
        ValueError: describing the first violated constraint.
    """
    ops = [CigarOp(op) for op, _ in cigar]
    for op, length in cigar:
        if length <= 0:
            raise ValueError("CIGAR operation lengths must be positive")
    for i, op in enumerate(ops):
        if op == CigarOp.H and i not in (0, len(ops) - 1):
            raise ValueError("hard clip must be the first or last operation")
        if op == CigarOp.S:
            left_ok = i == 0 or (i == 1 and ops[0] == CigarOp.H)
            right_ok = i == len(ops) - 1 or (
                i == len(ops) - 2 and ops[-1] == CigarOp.H
            )
            if not (left_ok or right_ok):
                raise ValueError("soft clip must be at an end of the CIGAR")
    if seq_len is not None and cigar:
        qlen = query_length(cigar)
        if qlen != seq_len:
            raise ValueError(
                f"CIGAR consumes {qlen} query bases but SEQ length is {seq_len}"
            )


def collapse(cigar: Iterable[Tuple[CigarOp, int]]) -> Cigar:
    """Merge adjacent operations of the same kind and drop zero lengths.

    Useful when programmatically constructing CIGARs (the simulator
    emits per-base ops and collapses them afterwards).
    """
    out: Cigar = []
    for op, length in cigar:
        if length == 0:
            continue
        op = CigarOp(op)
        if out and out[-1][0] == op:
            out[-1] = (op, out[-1][1] + length)
        else:
            out.append((op, length))
    return out
