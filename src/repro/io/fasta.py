"""FASTA reading and writing.

The reference genome enters the pipeline through this module.  Records
are simple ``(name, description, sequence)`` triples; sequences are
uppercased on read so downstream base comparisons are case-insensitive.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterable, Iterator, List, TextIO, Union

__all__ = ["FastaRecord", "read_fasta", "write_fasta", "load_reference"]

PathOrFile = Union[str, os.PathLike, TextIO]


@dataclasses.dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry.

    Attributes:
        name: the first whitespace-delimited token after ``>``.
        description: the remainder of the defline (may be empty).
        sequence: uppercase sequence with whitespace removed.
    """

    name: str
    description: str
    sequence: str

    def __len__(self) -> int:
        return len(self.sequence)


def _open_text(source: PathOrFile, mode: str) -> tuple[TextIO, bool]:
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False  # type: ignore[return-value]
    return open(source, mode), True


def read_fasta(source: PathOrFile) -> Iterator[FastaRecord]:
    """Iterate :class:`FastaRecord` objects from a path or text handle.

    Raises:
        ValueError: if sequence data precedes the first ``>`` defline.
    """
    handle, owned = _open_text(source, "r")
    try:
        name: str | None = None
        desc = ""
        chunks: List[str] = []
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield FastaRecord(name, desc, "".join(chunks).upper())
                parts = line[1:].split(maxsplit=1)
                name = parts[0] if parts else ""
                desc = parts[1] if len(parts) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise ValueError("FASTA data before first '>' defline")
                chunks.append(line)
        if name is not None:
            yield FastaRecord(name, desc, "".join(chunks).upper())
    finally:
        if owned:
            handle.close()


def write_fasta(
    dest: PathOrFile, records: Iterable[FastaRecord], width: int = 70
) -> None:
    """Write records, wrapping sequence lines at ``width`` columns."""
    handle, owned = _open_text(dest, "w")
    try:
        for rec in records:
            defline = f">{rec.name}"
            if rec.description:
                defline += f" {rec.description}"
            handle.write(defline + "\n")
            seq = rec.sequence
            for i in range(0, len(seq), width):
                handle.write(seq[i : i + width] + "\n")
    finally:
        if owned:
            handle.close()


def load_reference(source: PathOrFile) -> Dict[str, str]:
    """Load a FASTA file into ``{name: sequence}``.

    Raises:
        ValueError: on duplicate sequence names.
    """
    out: Dict[str, str] = {}
    for rec in read_fasta(source):
        if rec.name in out:
            raise ValueError(f"duplicate FASTA record {rec.name!r}")
        out[rec.name] = rec.sequence
    return out
