"""Sequence and alignment file formats, implemented from scratch.

This subpackage provides the substrate LoFreq gets from htslib:

* :mod:`repro.io.fasta` / :mod:`repro.io.fastq` -- reference and read I/O.
* :mod:`repro.io.cigar` -- CIGAR string algebra.
* :mod:`repro.io.records` -- the in-memory alignment record model.
* :mod:`repro.io.sam` -- the SAM text format.
* :mod:`repro.io.bgzf` -- blocked-gzip (BGZF) compression with virtual
  offsets, the container format underneath BAM.
* :mod:`repro.io.bam` -- the binary BAM format (records round-trip
  byte-exactly through :mod:`repro.io.bgzf`).
* :mod:`repro.io.index` -- the unified
  :class:`~repro.io.index.RandomAccessIndex` region-seek API, its
  builders and the sidecar loader.
* :mod:`repro.io.bai` -- the standard BAI binning index (reads and
  writes interoperable ``.bai`` sidecars).
* :mod:`repro.io.linear_index` -- the homegrown per-contig linear
  checkpoint index.
* :mod:`repro.io.vcf` -- variant call output in VCF 4.2.
* :mod:`repro.io.regions` -- genomic interval parsing and arithmetic.

Everything here is pure Python + NumPy; no htslib/pysam dependency.
"""

from repro.io.cigar import (
    CigarOp,
    cigar_to_string,
    parse_cigar,
    query_length,
    reference_length,
)
from repro.io.fasta import FastaRecord, read_fasta, write_fasta
from repro.io.fastq import FastqRecord, read_fastq, write_fastq
from repro.io.records import FLAG_REVERSE, FLAG_UNMAPPED, AlignedRead, SamHeader
from repro.io.regions import Region, parse_region
from repro.io.sam import read_sam, write_sam
from repro.io.bai import BaiIndex, build_bai, reg2bins
from repro.io.bam import read_bam, write_bam
from repro.io.bgzf import BgzfReader, BgzfWriter
from repro.io.index import (
    Chunk,
    MultiContigIndex,
    RandomAccessIndex,
    build_bai_index,
    build_linear_index,
    load_index,
)
from repro.io.linear_index import LinearIndex
from repro.io.vcf import VcfRecord, read_vcf, write_vcf

__all__ = [
    "AlignedRead",
    "BaiIndex",
    "BgzfReader",
    "BgzfWriter",
    "Chunk",
    "CigarOp",
    "FLAG_REVERSE",
    "FLAG_UNMAPPED",
    "FastaRecord",
    "FastqRecord",
    "LinearIndex",
    "MultiContigIndex",
    "RandomAccessIndex",
    "Region",
    "SamHeader",
    "VcfRecord",
    "build_bai",
    "build_bai_index",
    "build_linear_index",
    "cigar_to_string",
    "load_index",
    "parse_cigar",
    "parse_region",
    "query_length",
    "read_bam",
    "reg2bins",
    "read_fasta",
    "read_fastq",
    "read_sam",
    "read_vcf",
    "reference_length",
    "write_bam",
    "write_fasta",
    "write_fastq",
    "write_sam",
    "write_vcf",
]
