"""SAM text format reading and writing.

SAM is the tab-separated text twin of BAM.  The codec here converts
between on-disk 1-based coordinates and the 0-based
:class:`~repro.io.records.AlignedRead` model, and round-trips the
optional-tag subset used by the pipeline (``A c C s S i I f Z`` plus
``B``-arrays).
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Iterator, TextIO, Tuple, Union

import numpy as np

from repro.io.cigar import cigar_to_string, parse_cigar
from repro.io.fastq import ascii_to_phred, phred_to_ascii
from repro.io.records import AlignedRead, SamHeader

__all__ = ["read_sam", "write_sam", "format_record", "parse_record"]

PathOrFile = Union[str, os.PathLike, TextIO]

_TAG_CASTS = {
    "A": str,
    "i": int,
    "f": float,
    "Z": str,
    "H": str,
}

_B_DTYPES = {
    "c": np.int8,
    "C": np.uint8,
    "s": np.int16,
    "S": np.uint16,
    "i": np.int32,
    "I": np.uint32,
    "f": np.float32,
}


def _open_text(source: PathOrFile, mode: str) -> tuple[TextIO, bool]:
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False  # type: ignore[return-value]
    return open(source, mode), True


def parse_record(line: str) -> AlignedRead:
    """Parse one SAM alignment line into an :class:`AlignedRead`.

    Raises:
        ValueError: if the line has fewer than the 11 mandatory fields
            or carries a malformed optional tag.
    """
    fields = line.rstrip("\n").split("\t")
    if len(fields) < 11:
        raise ValueError(f"SAM line has {len(fields)} fields, expected >= 11")
    (
        qname,
        flag_s,
        rname,
        pos_s,
        mapq_s,
        cigar_s,
        rnext,
        pnext_s,
        tlen_s,
        seq,
        qual_s,
    ) = fields[:11]
    seq = "" if seq == "*" else seq.upper()
    if qual_s == "*" and len(seq) != 1:
        qual = np.zeros(len(seq), dtype=np.uint8)
    else:
        # A lone "*" is ambiguous for 1-base reads: Phred 9 encodes to
        # chr(9+33) == "*", the same glyph SAM uses for "quality
        # unavailable".  Resolve in favour of a literal quality so
        # format->parse round-trips exactly (htslib loses it instead).
        qual = ascii_to_phred(qual_s)
    tags: dict[str, Tuple[str, Any]] = {}
    for tag_field in fields[11:]:
        parts = tag_field.split(":", 2)
        if len(parts) != 3:
            raise ValueError(f"malformed SAM tag {tag_field!r}")
        tag, typ, value = parts
        if typ == "B":
            sub = value[0]
            if sub not in _B_DTYPES:
                raise ValueError(f"unsupported B-array subtype {sub!r}")
            items = value[1:].lstrip(",")
            arr = np.array(
                [float(x) if sub == "f" else int(x) for x in items.split(",")]
                if items
                else [],
                dtype=_B_DTYPES[sub],
            )
            tags[tag] = ("B", (sub, arr))
        elif typ in _TAG_CASTS:
            tags[tag] = (typ, _TAG_CASTS[typ](value))
        else:
            raise ValueError(f"unsupported SAM tag type {typ!r}")
    return AlignedRead(
        qname=qname,
        flag=int(flag_s),
        rname=rname,
        pos=int(pos_s) - 1,
        mapq=int(mapq_s),
        cigar=parse_cigar(cigar_s),
        seq=seq,
        qual=qual,
        rnext=rnext,
        pnext=int(pnext_s) - 1,
        tlen=int(tlen_s),
        tags=tags,
    )


def format_record(read: AlignedRead) -> str:
    """Render an :class:`AlignedRead` as one SAM line (no newline)."""
    qual_s = phred_to_ascii(read.qual) if len(read.qual) else "*"
    fields = [
        read.qname,
        str(read.flag),
        read.rname,
        str(read.pos + 1),
        str(read.mapq),
        cigar_to_string(read.cigar),
        read.rnext,
        str(read.pnext + 1),
        str(read.tlen),
        read.seq if read.seq else "*",
        qual_s,
    ]
    for tag, (typ, value) in sorted(read.tags.items()):
        if typ == "B":
            sub, arr = value
            rendered = ",".join(
                repr(float(x)) if sub == "f" else str(int(x)) for x in arr
            )
            fields.append(f"{tag}:B:{sub},{rendered}" if len(arr) else f"{tag}:B:{sub}")
        elif typ == "f":
            fields.append(f"{tag}:f:{float(value):g}")
        elif typ in ("c", "C", "s", "S", "i", "I"):
            fields.append(f"{tag}:i:{int(value)}")
        else:
            fields.append(f"{tag}:{typ}:{value}")
    return "\t".join(fields)


def read_sam(source: PathOrFile) -> Tuple[SamHeader, Iterator[AlignedRead]]:
    """Read a SAM file; returns the header and a lazy record iterator.

    The header is consumed eagerly; records stream.  The returned
    iterator owns the file handle and closes it on exhaustion.
    """
    handle, owned = _open_text(source, "r")
    header_lines = []
    first_record: str | None = None
    for line in handle:
        if line.startswith("@"):
            header_lines.append(line)
        else:
            first_record = line
            break
    header = SamHeader.from_text("".join(header_lines))

    def _iter() -> Iterator[AlignedRead]:
        try:
            if first_record is not None and first_record.strip():
                yield parse_record(first_record)
            for line in handle:
                if line.strip():
                    yield parse_record(line)
        finally:
            if owned:
                handle.close()

    return header, _iter()


def write_sam(
    dest: PathOrFile, header: SamHeader, reads: Iterable[AlignedRead]
) -> int:
    """Write header + records as SAM text.  Returns the record count."""
    handle, owned = _open_text(dest, "w")
    n = 0
    try:
        handle.write(header.to_text())
        for read in reads:
            handle.write(format_record(read) + "\n")
            n += 1
    finally:
        if owned:
            handle.close()
    return n
