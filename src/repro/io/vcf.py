"""VCF 4.2 output for variant calls (LoFreq-style).

LoFreq writes SNVs with ``QUAL = -10 log10(p-value)`` and INFO fields
``DP`` (raw depth), ``AF`` (allele frequency), ``SB`` (strand-bias
Phred score) and ``DP4`` (ref-fwd, ref-rev, alt-fwd, alt-rev counts).
This module reproduces that dialect plus a reader good enough to
round-trip our own output, which the analysis layer (upset plots,
concordance) consumes.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, TextIO, Tuple, Union

__all__ = ["VcfRecord", "VcfWriter", "read_vcf", "write_vcf", "VCF_VERSION"]

PathOrFile = Union[str, os.PathLike, TextIO]

VCF_VERSION = "VCFv4.2"

_INFO_HEADERS = [
    '##INFO=<ID=DP,Number=1,Type=Integer,Description="Raw read depth">',
    '##INFO=<ID=AF,Number=1,Type=Float,Description="Allele frequency">',
    '##INFO=<ID=SB,Number=1,Type=Integer,Description='
    '"Phred-scaled strand bias at this position">',
    '##INFO=<ID=DP4,Number=4,Type=Integer,Description='
    '"Counts for ref-forward, ref-reverse, alt-forward, alt-reverse bases">',
    '##FILTER=<ID=PASS,Description="All filters passed">',
]


@dataclasses.dataclass
class VcfRecord:
    """One VCF data line.

    Attributes:
        chrom: reference name.
        pos: 0-based position (the text format is 1-based).
        ref: reference allele.
        alt: alternate allele.
        qual: Phred-scaled call quality, ``-10 log10(p)``.
        filter: filter field (``PASS`` / semicolon-joined failures / ``.``).
        info: INFO key-value mapping (values already stringified or
            plain Python scalars / tuples).
        id: the ID column (``.`` by default).
    """

    chrom: str
    pos: int
    ref: str
    alt: str
    qual: float
    filter: str = "PASS"
    info: Dict[str, object] = dataclasses.field(default_factory=dict)
    id: str = "."

    @property
    def key(self) -> Tuple[str, int, str, str]:
        """Identity of the variant: (chrom, pos, ref, alt)."""
        return (self.chrom, self.pos, self.ref, self.alt)

    def info_string(self) -> str:
        """The INFO column: ``;``-joined ``KEY=value`` pairs (flags as
        bare keys, floats at 6 significant digits), ``.`` when empty."""
        if not self.info:
            return "."
        parts = []
        for k, v in self.info.items():
            if v is True:
                parts.append(k)
            elif isinstance(v, float):
                parts.append(f"{k}={v:.6g}")
            elif isinstance(v, (tuple, list)):
                parts.append(f"{k}={','.join(str(x) for x in v)}")
            else:
                parts.append(f"{k}={v}")
        return ";".join(parts)

    def to_line(self) -> str:
        """The record as one tab-separated VCF data line (1-based
        POS; NaN QUAL rendered as ``.``), without the newline."""
        qual_s = "." if math.isnan(self.qual) else f"{self.qual:.6g}"
        return "\t".join(
            [
                self.chrom,
                str(self.pos + 1),
                self.id,
                self.ref,
                self.alt,
                qual_s,
                self.filter,
                self.info_string(),
            ]
        )

    @classmethod
    def from_line(cls, line: str) -> "VcfRecord":
        """Parse one data line.

        Raises:
            ValueError: if the line has fewer than 8 columns.
        """
        fields = line.rstrip("\n").split("\t")
        if len(fields) < 8:
            raise ValueError(f"VCF line has {len(fields)} columns, expected >= 8")
        chrom, pos_s, id_, ref, alt, qual_s, filt, info_s = fields[:8]
        info: Dict[str, object] = {}
        if info_s != ".":
            for item in info_s.split(";"):
                if "=" in item:
                    k, v = item.split("=", 1)
                    if "," in v:
                        info[k] = tuple(_parse_scalar(x) for x in v.split(","))
                    else:
                        info[k] = _parse_scalar(v)
                else:
                    info[item] = True
        return cls(
            chrom=chrom,
            pos=int(pos_s) - 1,
            id=id_,
            ref=ref,
            alt=alt,
            qual=float("nan") if qual_s == "." else float(qual_s),
            filter=filt,
            info=info,
        )


def _parse_scalar(text: str) -> object:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _open_text(source: PathOrFile, mode: str) -> tuple[TextIO, bool]:
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False  # type: ignore[return-value]
    return open(source, mode), True


class VcfWriter:
    """Incremental VCF writer (the same dialect as :func:`write_vcf`).

    Headers are emitted on construction; records stream one at a time
    through :meth:`write`, so callers (the pipeline's ``VcfSink``) never
    have to materialise a whole record list.  Usable as a context
    manager; passing an open text handle leaves closing to the caller.
    """

    def __init__(
        self,
        dest: PathOrFile,
        *,
        reference: Optional[Sequence[Tuple[str, int]]] = None,
        source: str = "repro-lofreq",
        extra_headers: Optional[Sequence[str]] = None,
    ) -> None:
        self._handle, self._owned = _open_text(dest, "w")
        self.records_written = 0
        handle = self._handle
        handle.write(f"##fileformat={VCF_VERSION}\n")
        handle.write(f"##source={source}\n")
        if reference:
            for name, length in reference:
                handle.write(f"##contig=<ID={name},length={length}>\n")
        for line in _INFO_HEADERS:
            handle.write(line + "\n")
        for line in extra_headers or ():
            handle.write(line + "\n")
        handle.write("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n")

    def write(self, record: VcfRecord) -> None:
        """Append one record as a data line."""
        self._handle.write(record.to_line() + "\n")
        self.records_written += 1

    def close(self) -> None:
        """Close the underlying handle (only if this writer opened
        it; caller-provided handles stay open)."""
        if self._owned:
            self._handle.close()

    def __enter__(self) -> "VcfWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_vcf(
    dest: PathOrFile,
    records: Iterable[VcfRecord],
    *,
    reference: Optional[Sequence[Tuple[str, int]]] = None,
    source: str = "repro-lofreq",
    extra_headers: Optional[Sequence[str]] = None,
) -> int:
    """Write a VCF file; returns the number of records written."""
    writer = VcfWriter(
        dest, reference=reference, source=source, extra_headers=extra_headers
    )
    try:
        for rec in records:
            writer.write(rec)
    finally:
        writer.close()
    return writer.records_written


def read_vcf(source: PathOrFile) -> Tuple[List[str], List[VcfRecord]]:
    """Read a VCF file; returns ``(header_lines, records)``."""
    handle, owned = _open_text(source, "r")
    headers: List[str] = []
    records: List[VcfRecord] = []
    try:
        for line in handle:
            if line.startswith("#"):
                headers.append(line.rstrip("\n"))
            elif line.strip():
                records.append(VcfRecord.from_line(line))
    finally:
        if owned:
            handle.close()
    return headers, records


def iter_vcf(source: PathOrFile) -> Iterator[VcfRecord]:
    """Stream records from a VCF file, skipping headers."""
    handle, owned = _open_text(source, "r")
    try:
        for line in handle:
            if not line.startswith("#") and line.strip():
                yield VcfRecord.from_line(line)
    finally:
        if owned:
            handle.close()
