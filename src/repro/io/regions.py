"""Genomic interval parsing and arithmetic.

Regions are half-open 0-based ``[start, end)`` internally; the textual
``chrom:start-end`` form is 1-based inclusive as in samtools.  The
parallel runtime partitions the genome into :class:`Region` chunks.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Sequence

__all__ = ["Region", "parse_region", "split_region", "merge_regions"]

_REGION_RE = re.compile(r"^([^:]+)(?::([\d,]+)(?:-([\d,]+))?)?$")


@dataclasses.dataclass(frozen=True, order=True)
class Region:
    """A half-open, 0-based genomic interval ``[start, end)``."""

    chrom: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"negative region start {self.start}")
        if self.end < self.start:
            raise ValueError(f"region end {self.end} before start {self.start}")

    def __len__(self) -> int:
        return self.end - self.start

    def __contains__(self, pos: int) -> bool:
        return self.start <= pos < self.end

    def overlaps(self, other: "Region") -> bool:
        """Whether two regions share at least one position."""
        return (
            self.chrom == other.chrom
            and self.start < other.end
            and other.start < self.end
        )

    def intersect(self, other: "Region") -> "Region | None":
        """The overlapping sub-interval, or ``None`` if disjoint."""
        if not self.overlaps(other):
            return None
        return Region(
            self.chrom, max(self.start, other.start), min(self.end, other.end)
        )

    def to_samtools(self) -> str:
        """Render as 1-based inclusive ``chrom:start-end`` text."""
        return f"{self.chrom}:{self.start + 1}-{self.end}"


def parse_region(text: str, reference_length: int | None = None) -> Region:
    """Parse samtools-style region text (1-based inclusive).

    Accepts ``chrom``, ``chrom:start`` and ``chrom:start-end`` with
    optional thousands separators.  A bare ``chrom`` spans the whole
    reference, which requires ``reference_length``.

    Raises:
        ValueError: on malformed text or a bare chromosome without a
            known length.
    """
    m = _REGION_RE.match(text.strip())
    if not m:
        raise ValueError(f"malformed region {text!r}")
    chrom, start_s, end_s = m.groups()
    if start_s is None:
        if reference_length is None:
            raise ValueError(
                f"region {text!r} has no coordinates and no reference "
                "length was supplied"
            )
        return Region(chrom, 0, reference_length)
    start = int(start_s.replace(",", "")) - 1
    if end_s is None:
        if reference_length is None:
            raise ValueError(
                f"open-ended region {text!r} requires a reference length"
            )
        end = reference_length
    else:
        end = int(end_s.replace(",", ""))
    if start < 0:
        raise ValueError(f"region {text!r} starts before position 1")
    return Region(chrom, start, end)


def split_region(region: Region, n_chunks: int) -> List[Region]:
    """Split a region into ``n_chunks`` near-equal contiguous pieces.

    The first ``len(region) % n_chunks`` pieces are one base longer, so
    the pieces tile the region exactly.  Empty pieces are never
    produced; if the region is shorter than ``n_chunks`` the result has
    ``len(region)`` single-base pieces.
    """
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    total = len(region)
    n_chunks = min(n_chunks, total) if total > 0 else 1
    base = total // n_chunks
    extra = total % n_chunks
    out: List[Region] = []
    pos = region.start
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        out.append(Region(region.chrom, pos, pos + size))
        pos += size
    return out


def merge_regions(regions: Sequence[Region]) -> List[Region]:
    """Merge overlapping/adjacent regions into a minimal sorted cover."""
    by_chrom: dict[str, List[Region]] = {}
    for r in regions:
        by_chrom.setdefault(r.chrom, []).append(r)
    out: List[Region] = []
    for chrom in sorted(by_chrom):
        rs = sorted(by_chrom[chrom], key=lambda r: (r.start, r.end))
        cur = rs[0]
        for r in rs[1:]:
            if r.start <= cur.end:
                cur = Region(chrom, cur.start, max(cur.end, r.end))
            else:
                out.append(cur)
                cur = r
        out.append(cur)
    return out
