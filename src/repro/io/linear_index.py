"""A linear BAM index: position -> virtual offset.

htslib's BAI index lets readers jump to a genomic region without
scanning; the parallel runtime needs the same capability so each
worker thread can seek its own :class:`~repro.io.bam.BamReader`
straight to its chunk ("an independent .bam file reader for each
thread", paper Section II-B).  This module keeps the *linear*
flavour: every ``granularity``-th record contributes a
``(position, virtual offset)`` checkpoint, and a query answers with
one open-ended suffix scan.  The standard O(log) binning scheme lives
in :mod:`repro.io.bai`; both answer the unified
:class:`repro.io.index.RandomAccessIndex` protocol via
:meth:`LinearIndex.chunks_for`.

The sidecar file format is a small binary table (magic, granularity,
max read span, then packed int64 triples).

.. deprecated::
    The module-level builders :func:`build_index` and
    :func:`build_multi_index` are deprecation shims; use
    :func:`repro.io.index.build_linear_index` (or
    :func:`repro.io.index.build_bai_index` for the standard format).
"""

from __future__ import annotations

import dataclasses
import struct
import warnings
from typing import Dict, List, Tuple

from repro.io.bam import BamReader

__all__ = ["LinearIndex", "build_index", "build_multi_index"]

_MAGIC = b"RLI1"


@dataclasses.dataclass
class LinearIndex:
    """Checkpoints into a coordinate-sorted BAM.

    Attributes:
        checkpoints: ``(pos, voffset)`` pairs, non-decreasing in both.
        max_read_span: the longest reference span of any record; a
            query for position ``p`` must start no later than the
            first read at ``p - max_read_span + 1`` to catch every
            overlapping read.
    """

    checkpoints: List[Tuple[int, int]]
    max_read_span: int
    data_start: int

    def query(self, pos: int) -> int:
        """Virtual offset from which a scan is guaranteed to see every
        read overlapping position ``pos``.  Falls back to the first
        alignment record (never the raw file start, which would land a
        reader on the BAM header)."""
        target = pos - self.max_read_span + 1
        best = self.data_start
        for cp_pos, voffset in self.checkpoints:
            if cp_pos <= target:
                best = voffset
            else:
                break
        return best

    def chunks_for(self, contig: str, start: int, end: int):
        """The :class:`repro.io.index.RandomAccessIndex` answer shape:
        one open-ended chunk starting at :meth:`query`\\ ``(start)``.

        A single-contig index stores no contig name, so ``contig`` is
        not validated here -- wrap in a
        :class:`repro.io.index.MultiContigIndex` to route by name.
        ``end`` does not tighten the plan either (checkpoints only
        bound starts); consumers stop at the region end themselves.
        """
        from repro.io.index import MAX_VOFFSET, Chunk

        if end <= start:
            return []
        return [Chunk(self.query(start), MAX_VOFFSET)]

    def contigs(self) -> List[str]:
        """Protocol stub: a bare single-contig index is nameless."""
        return []

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Write the single-contig sidecar table (magic ``RLI1``)."""
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(
                struct.pack(
                    "<qqq",
                    self.max_read_span,
                    self.data_start,
                    len(self.checkpoints),
                )
            )
            for pos, voffset in self.checkpoints:
                fh.write(struct.pack("<qq", pos, voffset))

    @classmethod
    def load(cls, path) -> "LinearIndex":
        """Load a sidecar index.

        Raises:
            ValueError: if the file is not a linear index.
        """
        with open(path, "rb") as fh:
            magic = fh.read(4)
            if magic != _MAGIC:
                raise ValueError(f"not a linear index (magic {magic!r})")
            max_span, data_start, n = struct.unpack("<qqq", fh.read(24))
            cps = []
            for _ in range(n):
                cps.append(struct.unpack("<qq", fh.read(16)))
        return cls(
            checkpoints=cps, max_read_span=max_span, data_start=data_start
        )


def build_index(bam_path, granularity: int = 256) -> LinearIndex:
    """Scan a BAM once and build its flat (single-contig) linear index.

    .. deprecated::
        Shim kept for compatibility; use
        :func:`repro.io.index.build_linear_index` (multi-contig, the
        unified :class:`~repro.io.index.RandomAccessIndex` API) or
        :func:`repro.io.index.build_bai_index`.  Output is identical
        to the historical implementation.

    Args:
        bam_path: coordinate-sorted BAM file whose records all sit on
            one contig.
        granularity: records between checkpoints (smaller = bigger
            index, finer seeks).

    Raises:
        ValueError: if the BAM is not coordinate-sorted, or its records
            span more than one contig (use
            :func:`repro.io.index.build_linear_index`).
    """
    warnings.warn(
        "build_index is deprecated; use repro.io.index.build_linear_index "
        "(or build_bai_index for the standard binning scheme)",
        DeprecationWarning,
        stacklevel=2,
    )
    indexes = _scan_linear(bam_path, granularity)
    if len(indexes) > 1:
        raise ValueError(
            f"BAM has records on {len(indexes)} contigs "
            f"({sorted(indexes)}); use build_multi_index"
        )
    if indexes:
        (index,) = indexes.values()
        return index
    with BamReader(bam_path) as reader:
        return LinearIndex(
            checkpoints=[], max_read_span=1, data_start=reader.tell()
        )


class _ContigIndexBuilder:
    __slots__ = ("checkpoints", "max_span", "n_records", "data_start")

    def __init__(self, data_start: int) -> None:
        self.checkpoints: List[Tuple[int, int]] = []
        self.max_span = 1
        self.n_records = 0
        self.data_start = data_start


def build_multi_index(
    bam_path, granularity: int = 256
) -> Dict[str, LinearIndex]:
    """Scan a BAM once and build one linear index per contig.

    .. deprecated::
        Shim kept for compatibility (returns the historical plain
        ``dict``); use :func:`repro.io.index.build_linear_index`,
        which returns the same tables wrapped as a
        :class:`~repro.io.index.MultiContigIndex` speaking the
        unified ``chunks_for`` protocol.

    Args:
        bam_path: coordinate-sorted BAM file.
        granularity: records between checkpoints, per contig.

    Raises:
        ValueError: if the BAM is not coordinate-sorted (positions
            decreasing within a contig, or contigs out of header
            order), or a record references a name not in the header.
    """
    warnings.warn(
        "build_multi_index is deprecated; use "
        "repro.io.index.build_linear_index (or build_bai_index for the "
        "standard binning scheme)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _scan_linear(bam_path, granularity)


def _scan_linear(
    bam_path, granularity: int = 256, decompress_threads: int = 0
) -> Dict[str, LinearIndex]:
    """The single-scan implementation behind every linear-index
    builder: one :class:`LinearIndex` per contig with records.

    A coordinate-sorted multi-contig BAM restarts positions at every
    contig, so a single flat checkpoint table cannot cover it; instead
    each contig gets its own :class:`LinearIndex` whose ``data_start``
    is the virtual offset of that contig's first record.  Contigs with
    no records are simply absent from the result.

    Raises:
        ValueError: see :func:`build_multi_index`.
    """
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    builders: Dict[str, _ContigIndexBuilder] = {}
    with BamReader(bam_path, decompress_threads=decompress_threads) as reader:
        rank = {
            name: i for i, (name, _) in enumerate(reader.header.references)
        }
        last_rank = -1
        last_pos = -1
        while True:
            voffset = reader.tell()
            record = reader.read_record()
            if record is None:
                break
            if record.is_unmapped or record.rname == "*":
                continue
            r = rank.get(record.rname)
            if r is None:
                raise ValueError(
                    f"record references {record.rname!r}, not in the header"
                )
            if r < last_rank:
                raise ValueError(
                    "cannot index an unsorted BAM (contig "
                    f"{record.rname!r} appears after a later header contig)"
                )
            if r > last_rank:
                last_rank = r
                last_pos = -1
                builders[record.rname] = _ContigIndexBuilder(voffset)
            if record.pos < last_pos:
                raise ValueError(
                    "cannot index an unsorted BAM "
                    f"({record.qname} at {record.pos} after {last_pos})"
                )
            last_pos = record.pos
            builder = builders[record.rname]
            span = record.reference_end - record.pos
            if span > builder.max_span:
                builder.max_span = span
            if builder.n_records % granularity == 0:
                builder.checkpoints.append((record.pos, voffset))
            builder.n_records += 1
    return {
        name: LinearIndex(
            checkpoints=b.checkpoints,
            max_read_span=b.max_span,
            data_start=b.data_start,
        )
        for name, b in builders.items()
    }
