"""A linear BAM index: position -> virtual offset.

htslib's BAI index lets readers jump to a genomic region without
scanning; the parallel runtime needs the same capability so each
worker thread can seek its own :class:`~repro.io.bam.BamReader`
straight to its chunk ("an independent .bam file reader for each
thread", paper Section II-B).  The full binning scheme is unnecessary
for the single short contig this pipeline targets, so the index is
linear: every ``granularity``-th record contributes a
``(position, virtual offset, read end)`` checkpoint.

The sidecar file format is a small binary table (magic, granularity,
max read span, then packed int64 triples).
"""

from __future__ import annotations

import dataclasses
import struct
from typing import List, Tuple

from repro.io.bam import BamReader

__all__ = ["LinearIndex", "build_index"]

_MAGIC = b"RLI1"


@dataclasses.dataclass
class LinearIndex:
    """Checkpoints into a coordinate-sorted BAM.

    Attributes:
        checkpoints: ``(pos, voffset)`` pairs, non-decreasing in both.
        max_read_span: the longest reference span of any record; a
            query for position ``p`` must start no later than the
            first read at ``p - max_read_span + 1`` to catch every
            overlapping read.
    """

    checkpoints: List[Tuple[int, int]]
    max_read_span: int
    data_start: int

    def query(self, pos: int) -> int:
        """Virtual offset from which a scan is guaranteed to see every
        read overlapping position ``pos``.  Falls back to the first
        alignment record (never the raw file start, which would land a
        reader on the BAM header)."""
        target = pos - self.max_read_span + 1
        best = self.data_start
        for cp_pos, voffset in self.checkpoints:
            if cp_pos <= target:
                best = voffset
            else:
                break
        return best

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(
                struct.pack(
                    "<qqq",
                    self.max_read_span,
                    self.data_start,
                    len(self.checkpoints),
                )
            )
            for pos, voffset in self.checkpoints:
                fh.write(struct.pack("<qq", pos, voffset))

    @classmethod
    def load(cls, path) -> "LinearIndex":
        """Load a sidecar index.

        Raises:
            ValueError: if the file is not a linear index.
        """
        with open(path, "rb") as fh:
            magic = fh.read(4)
            if magic != _MAGIC:
                raise ValueError(f"not a linear index (magic {magic!r})")
            max_span, data_start, n = struct.unpack("<qqq", fh.read(24))
            cps = []
            for _ in range(n):
                cps.append(struct.unpack("<qq", fh.read(16)))
        return cls(
            checkpoints=cps, max_read_span=max_span, data_start=data_start
        )


def build_index(bam_path, granularity: int = 256) -> LinearIndex:
    """Scan a BAM once and build its linear index.

    Args:
        bam_path: coordinate-sorted BAM file.
        granularity: records between checkpoints (smaller = bigger
            index, finer seeks).

    Raises:
        ValueError: if the BAM is not coordinate-sorted.
    """
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    checkpoints: List[Tuple[int, int]] = []
    max_span = 1
    last_pos = -1
    with BamReader(bam_path) as reader:
        data_start = reader.tell()
        i = 0
        while True:
            voffset = reader.tell()
            record = reader.read_record()
            if record is None:
                break
            if record.pos < last_pos:
                raise ValueError(
                    "cannot index an unsorted BAM "
                    f"({record.qname} at {record.pos} after {last_pos})"
                )
            last_pos = record.pos
            span = record.reference_end - record.pos
            if span > max_span:
                max_span = span
            if i % granularity == 0:
                checkpoints.append((record.pos, voffset))
            i += 1
    return LinearIndex(
        checkpoints=checkpoints, max_read_span=max_span, data_start=data_start
    )
