"""In-memory alignment record and header models.

:class:`AlignedRead` is the single record type flowing through the whole
pipeline: the simulator produces them, SAM/BAM codecs (de)serialise
them, and the pileup engine consumes them.  Base qualities are stored as
a ``numpy.uint8`` array of Phred scores (*not* ASCII), which is the
representation the statistics layer wants.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.io.cigar import (
    CigarOp,
    cigar_to_string,
    parse_cigar,
    query_length,
    reference_length,
    validate_cigar,
)

__all__ = [
    "AlignedRead",
    "SamHeader",
    "FLAG_PAIRED",
    "FLAG_PROPER_PAIR",
    "FLAG_UNMAPPED",
    "FLAG_MATE_UNMAPPED",
    "FLAG_REVERSE",
    "FLAG_MATE_REVERSE",
    "FLAG_READ1",
    "FLAG_READ2",
    "FLAG_SECONDARY",
    "FLAG_QCFAIL",
    "FLAG_DUPLICATE",
    "FLAG_SUPPLEMENTARY",
]

FLAG_PAIRED = 0x1
FLAG_PROPER_PAIR = 0x2
FLAG_UNMAPPED = 0x4
FLAG_MATE_UNMAPPED = 0x8
FLAG_REVERSE = 0x10
FLAG_MATE_REVERSE = 0x20
FLAG_READ1 = 0x40
FLAG_READ2 = 0x80
FLAG_SECONDARY = 0x100
FLAG_QCFAIL = 0x200
FLAG_DUPLICATE = 0x400
FLAG_SUPPLEMENTARY = 0x800


@dataclasses.dataclass
class SamHeader:
    """A minimal SAM/BAM header.

    Attributes:
        references: ordered ``(name, length)`` pairs (the ``@SQ`` lines).
        read_groups: read-group dictionaries (the ``@RG`` lines).
        programs: program dictionaries (the ``@PG`` lines).
        sort_order: value of ``@HD SO:`` -- the pileup engine requires
            ``"coordinate"``.
        comments: free-text ``@CO`` lines.
    """

    references: List[Tuple[str, int]] = dataclasses.field(default_factory=list)
    read_groups: List[Dict[str, str]] = dataclasses.field(default_factory=list)
    programs: List[Dict[str, str]] = dataclasses.field(default_factory=list)
    sort_order: str = "unknown"
    comments: List[str] = dataclasses.field(default_factory=list)

    def reference_id(self, name: str) -> int:
        """Index of ``name`` in the reference list (-1 if absent)."""
        for i, (rname, _len) in enumerate(self.references):
            if rname == name:
                return i
        return -1

    def reference_length(self, name: str) -> int:
        """Length of the named reference.

        Raises:
            KeyError: if the reference is not declared in the header.
        """
        rid = self.reference_id(name)
        if rid < 0:
            raise KeyError(f"reference {name!r} not in header")
        return self.references[rid][1]

    def to_text(self) -> str:
        """Render the header as SAM ``@`` lines (with trailing newline)."""
        lines = [f"@HD\tVN:1.6\tSO:{self.sort_order}"]
        for name, length in self.references:
            lines.append(f"@SQ\tSN:{name}\tLN:{length}")
        for rg in self.read_groups:
            lines.append("@RG\t" + "\t".join(f"{k}:{v}" for k, v in rg.items()))
        for pg in self.programs:
            lines.append("@PG\t" + "\t".join(f"{k}:{v}" for k, v in pg.items()))
        for co in self.comments:
            lines.append(f"@CO\t{co}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "SamHeader":
        """Parse SAM ``@`` header lines into a :class:`SamHeader`."""
        hdr = cls()
        for line in text.splitlines():
            if not line.startswith("@"):
                continue
            fields = line.rstrip("\n").split("\t")
            tag = fields[0]
            if tag == "@HD":
                for f in fields[1:]:
                    if f.startswith("SO:"):
                        hdr.sort_order = f[3:]
            elif tag == "@SQ":
                name = ""
                length = 0
                for f in fields[1:]:
                    if f.startswith("SN:"):
                        name = f[3:]
                    elif f.startswith("LN:"):
                        length = int(f[3:])
                hdr.references.append((name, length))
            elif tag == "@RG":
                hdr.read_groups.append(
                    {f[:2]: f[3:] for f in fields[1:] if len(f) >= 3}
                )
            elif tag == "@PG":
                hdr.programs.append(
                    {f[:2]: f[3:] for f in fields[1:] if len(f) >= 3}
                )
            elif tag == "@CO":
                hdr.comments.append("\t".join(fields[1:]))
        return hdr


@dataclasses.dataclass
class AlignedRead:
    """One aligned (or unmapped) sequencing read.

    Attributes:
        qname: read name.
        flag: SAM bitwise flag.
        rname: reference sequence name (``"*"`` when unmapped).
        pos: 0-based leftmost reference coordinate (-1 when unmapped).
            Note SAM text is 1-based; conversion happens in the codec.
        mapq: mapping quality (255 = unavailable).
        cigar: list of ``(CigarOp, length)``.
        seq: read bases, uppercase ACGTN.
        qual: Phred base qualities as ``numpy.uint8`` (same length as
            ``seq``).
        rnext/pnext/tlen: mate fields.
        tags: optional SAM tags ``{tag: (type_char, value)}``.
    """

    qname: str
    flag: int
    rname: str
    pos: int
    mapq: int
    cigar: List[Tuple[CigarOp, int]]
    seq: str
    qual: np.ndarray
    rnext: str = "*"
    pnext: int = -1
    tlen: int = 0
    tags: Dict[str, Tuple[str, Any]] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.qual = np.asarray(self.qual, dtype=np.uint8)
        if len(self.seq) != len(self.qual) and len(self.qual) != 0:
            raise ValueError(
                f"SEQ length {len(self.seq)} != QUAL length {len(self.qual)}"
            )
        if self.cigar:
            validate_cigar(self.cigar, seq_len=len(self.seq) or None)

    # -- flag predicates -------------------------------------------------

    @property
    def is_unmapped(self) -> bool:
        """True if the read did not align (FLAG 0x4)."""
        return bool(self.flag & FLAG_UNMAPPED)

    @property
    def is_reverse(self) -> bool:
        """True if the read aligned to the reverse strand."""
        return bool(self.flag & FLAG_REVERSE)

    @property
    def is_secondary(self) -> bool:
        """True for a secondary alignment (FLAG 0x100)."""
        return bool(self.flag & FLAG_SECONDARY)

    @property
    def is_duplicate(self) -> bool:
        """True for a PCR/optical duplicate (FLAG 0x400)."""
        return bool(self.flag & FLAG_DUPLICATE)

    @property
    def is_qcfail(self) -> bool:
        """True if the read failed platform QC (FLAG 0x200)."""
        return bool(self.flag & FLAG_QCFAIL)

    @property
    def is_supplementary(self) -> bool:
        """True for a supplementary alignment (FLAG 0x800)."""
        return bool(self.flag & FLAG_SUPPLEMENTARY)

    @property
    def is_primary(self) -> bool:
        """Primary, mapped alignment usable for variant calling."""
        return not (
            self.is_unmapped or self.is_secondary or self.is_supplementary
        )

    # -- coordinates ------------------------------------------------------

    @property
    def reference_end(self) -> int:
        """0-based exclusive end coordinate on the reference."""
        return self.pos + reference_length(self.cigar)

    @property
    def query_length(self) -> int:
        """Length of SEQ implied by the CIGAR (== ``len(seq)``)."""
        return query_length(self.cigar) if self.cigar else len(self.seq)

    @property
    def cigar_string(self) -> str:
        """The CIGAR rendered as text (``*`` when absent)."""
        return cigar_to_string(self.cigar)

    def overlaps(self, start: int, end: int) -> bool:
        """Whether the aligned span intersects ``[start, end)``."""
        return not self.is_unmapped and self.pos < end and self.reference_end > start

    # -- construction helpers ---------------------------------------------

    @classmethod
    def simple(
        cls,
        qname: str,
        rname: str,
        pos: int,
        seq: str,
        qual: Sequence[int] | np.ndarray,
        *,
        reverse: bool = False,
        mapq: int = 60,
        cigar: Optional[str] = None,
    ) -> "AlignedRead":
        """Build an ungapped (all-``M``) alignment; the common case for
        simulated short reads."""
        flag = FLAG_REVERSE if reverse else 0
        parsed = parse_cigar(cigar) if cigar else [(CigarOp.M, len(seq))]
        return cls(
            qname=qname,
            flag=flag,
            rname=rname,
            pos=pos,
            mapq=mapq,
            cigar=parsed,
            seq=seq,
            qual=np.asarray(qual, dtype=np.uint8),
        )

    def sort_key(self, header: SamHeader) -> Tuple[int, int]:
        """Coordinate sort key (reference index, position)."""
        rid = header.reference_id(self.rname) if self.rname != "*" else 1 << 30
        return (rid if rid >= 0 else 1 << 30, self.pos)
