"""BAM: the binary alignment format (BGZF-compressed).

Implements the BAM v1 encoding from the SAM specification:

* magic ``BAM\\x01``, SAM header text, reference dictionary;
* one binary record per alignment -- fixed 32-byte core, then read
  name, packed CIGAR (``len << 4 | op``), 4-bit packed sequence
  (two bases per byte via the ``=ACMGRSVTWYHKDBN`` nibble code),
  raw Phred qualities, and optional tags;
* the whole stream wrapped in :class:`repro.io.bgzf.BgzfWriter`.

Records round-trip exactly: ``decode(encode(r)) == r`` for every field
the model carries, which the test suite checks property-style.
"""

from __future__ import annotations

import os
import struct
from typing import (
    Any,
    BinaryIO,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.io.bgzf import BgzfReader, BgzfWriter, SharedBlockCache
from repro.io.cigar import CONSUMES_QUERY, CONSUMES_REFERENCE, CigarOp
from repro.io.records import AlignedRead, SamHeader

__all__ = [
    "write_bam",
    "read_bam",
    "BamWriter",
    "BamReader",
    "aligned_base_arrays",
    "encode_record",
    "decode_record",
    "reg2bin",
]

PathOrFile = Union[str, os.PathLike, BinaryIO]

BAM_MAGIC = b"BAM\x01"

#: BAM 4-bit base codes ("=ACMGRSVTWYHKDBN").
SEQ_NIBBLES = "=ACMGRSVTWYHKDBN"
_BASE_TO_NIBBLE = {b: i for i, b in enumerate(SEQ_NIBBLES)}
_NIBBLE_TO_BASE = {i: b for i, b in enumerate(SEQ_NIBBLES)}

_TAG_PACK = {
    "c": ("<b", int),
    "C": ("<B", int),
    "s": ("<h", int),
    "S": ("<H", int),
    "i": ("<i", int),
    "I": ("<I", int),
    "f": ("<f", float),
}


def reg2bin(beg: int, end: int) -> int:
    """UCSC binning index bin for the 0-based half-open ``[beg, end)``.

    Used to fill the ``bin`` field of BAM records (required by the
    spec even when no index is written).
    """
    end -= 1
    if beg >> 14 == end >> 14:
        return ((1 << 15) - 1) // 7 + (beg >> 14)
    if beg >> 17 == end >> 17:
        return ((1 << 12) - 1) // 7 + (beg >> 17)
    if beg >> 20 == end >> 20:
        return ((1 << 9) - 1) // 7 + (beg >> 20)
    if beg >> 23 == end >> 23:
        return ((1 << 6) - 1) // 7 + (beg >> 23)
    if beg >> 26 == end >> 26:
        return ((1 << 3) - 1) // 7 + (beg >> 26)
    return 0


def _pack_seq(seq: str) -> bytes:
    """Pack bases two-per-byte using the BAM nibble code.

    Unknown characters map to ``N`` (nibble 15), matching htslib.
    """
    n = len(seq)
    out = bytearray((n + 1) // 2)
    for i, base in enumerate(seq):
        nib = _BASE_TO_NIBBLE.get(base, 15)
        if i % 2 == 0:
            out[i // 2] = nib << 4
        else:
            out[i // 2] |= nib
    return bytes(out)


def _unpack_seq(data: bytes, n: int) -> str:
    out = []
    for i in range(n):
        byte = data[i // 2]
        nib = (byte >> 4) if i % 2 == 0 else (byte & 0xF)
        out.append(_NIBBLE_TO_BASE[nib])
    return "".join(out)


def _encode_tags(tags: Dict[str, Tuple[str, Any]]) -> bytes:
    out = bytearray()
    for tag, (typ, value) in sorted(tags.items()):
        if len(tag) != 2:
            raise ValueError(f"SAM tag {tag!r} must be two characters")
        out.extend(tag.encode("ascii"))
        if typ == "A":
            out.append(ord("A"))
            out.append(ord(value))
        elif typ in _TAG_PACK:
            fmt, cast = _TAG_PACK[typ]
            out.append(ord(typ))
            out.extend(struct.pack(fmt, cast(value)))
        elif typ == "i":  # pragma: no cover - folded into _TAG_PACK
            out.append(ord("i"))
            out.extend(struct.pack("<i", int(value)))
        elif typ == "Z":
            out.append(ord("Z"))
            out.extend(str(value).encode("ascii") + b"\x00")
        elif typ == "B":
            sub, arr = value
            if sub not in _TAG_PACK:
                raise ValueError(f"unsupported B-array subtype {sub!r}")
            out.append(ord("B"))
            out.append(ord(sub))
            arr = np.asarray(arr)
            out.extend(struct.pack("<i", len(arr)))
            fmt, cast = _TAG_PACK[sub]
            for x in arr:
                out.extend(struct.pack(fmt, cast(x)))
        else:
            raise ValueError(f"unsupported tag type {typ!r}")
    return bytes(out)


def _decode_tags(data: bytes) -> Dict[str, Tuple[str, Any]]:
    tags: Dict[str, Tuple[str, Any]] = {}
    i = 0
    while i < len(data):
        tag = data[i : i + 2].decode("ascii")
        typ = chr(data[i + 2])
        i += 3
        if typ == "A":
            tags[tag] = ("A", chr(data[i]))
            i += 1
        elif typ in _TAG_PACK:
            fmt, _ = _TAG_PACK[typ]
            size = struct.calcsize(fmt)
            (val,) = struct.unpack(fmt, data[i : i + size])
            tags[tag] = (typ, val)
            i += size
        elif typ == "Z":
            end = data.index(b"\x00", i)
            tags[tag] = ("Z", data[i:end].decode("ascii"))
            i = end + 1
        elif typ == "B":
            sub = chr(data[i])
            (count,) = struct.unpack("<i", data[i + 1 : i + 5])
            i += 5
            fmt, _ = _TAG_PACK[sub]
            size = struct.calcsize(fmt)
            vals = [
                struct.unpack(fmt, data[i + j * size : i + (j + 1) * size])[0]
                for j in range(count)
            ]
            dtype = {
                "c": np.int8,
                "C": np.uint8,
                "s": np.int16,
                "S": np.uint16,
                "i": np.int32,
                "I": np.uint32,
                "f": np.float32,
            }[sub]
            tags[tag] = ("B", (sub, np.array(vals, dtype=dtype)))
            i += count * size
        else:
            raise ValueError(f"unsupported BAM tag type {typ!r}")
    return tags


def aligned_base_arrays(
    read: AlignedRead,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The columnar deposit path: one record's aligned bases as flat
    arrays ``(reference positions int64, base codes uint8, quals
    uint8)``.

    CIGAR-expanded in O(#operations) array slices -- no per-base
    Python tuples -- with semantics matching the streaming pileup's
    deposit loop exactly: only operations consuming both query and
    reference contribute; base codes follow
    ``BASE_TO_CODE.get(char, N_CODE)`` (no case folding); a missing
    quality string reads as all-zero qualities (which the default
    ``min_baseq`` then drops, as in the streaming engine).

    This is the decode half of the streaming columnar spine: each
    record's arrays feed
    :meth:`repro.pileup.vectorized.ColumnBatchBuilder.add_read` as
    one zero-copy segment (the ungapped common case returns direct
    views into the record), and the builder flushes bounded
    :class:`~repro.pileup.column.ColumnBatch` work units as the
    coordinate-sorted scan advances -- BAM bytes to screened batches
    without a whole-chunk array anywhere.
    """
    from repro.pileup.column import encode_read_bases

    seq_codes = encode_read_bases(read.seq)
    if read.qual.size:
        qual = np.asarray(read.qual, dtype=np.uint8)
    else:
        qual = np.zeros(len(read.seq), dtype=np.uint8)
    pos_parts: List[np.ndarray] = []
    code_parts: List[np.ndarray] = []
    qual_parts: List[np.ndarray] = []
    qi = 0
    ri = read.pos
    for op, length in read.cigar:
        op = CigarOp(op)
        in_q = op in CONSUMES_QUERY
        in_r = op in CONSUMES_REFERENCE
        if in_q and in_r:
            pos_parts.append(np.arange(ri, ri + length, dtype=np.int64))
            code_parts.append(seq_codes[qi : qi + length])
            qual_parts.append(qual[qi : qi + length])
            qi += length
            ri += length
        elif in_q:
            qi += length
        elif in_r:
            ri += length
    if not pos_parts:
        empty = np.zeros(0, dtype=np.uint8)
        return np.zeros(0, dtype=np.int64), empty, empty.copy()
    if len(pos_parts) == 1:
        # The ungapped common case: zero-copy views into the record.
        return pos_parts[0], code_parts[0], qual_parts[0]
    return (
        np.concatenate(pos_parts),
        np.concatenate(code_parts),
        np.concatenate(qual_parts),
    )


def encode_record(read: AlignedRead, header: SamHeader) -> bytes:
    """Serialise one record as its BAM binary body (without the leading
    ``block_size`` word, which the writer prepends).

    Raises:
        ValueError: if the read references a sequence missing from the
            header or a name/CIGAR exceeds format limits.
    """
    ref_id = header.reference_id(read.rname) if read.rname != "*" else -1
    next_ref_id = (
        ref_id
        if read.rnext == "="
        else (header.reference_id(read.rnext) if read.rnext != "*" else -1)
    )
    if read.rname != "*" and ref_id < 0:
        raise ValueError(f"reference {read.rname!r} not in header")
    name = read.qname.encode("ascii") + b"\x00"
    if len(name) > 255:
        raise ValueError("read name longer than 254 characters")
    n_cigar = len(read.cigar)
    if n_cigar >= 1 << 16:
        raise ValueError("more than 65535 CIGAR operations")
    end = read.reference_end if read.cigar else read.pos + 1
    core = struct.pack(
        "<iiBBHHHiiii",
        ref_id,
        read.pos,
        len(name),
        read.mapq,
        reg2bin(read.pos, max(end, read.pos + 1)) if read.pos >= 0 else 4680,
        n_cigar,
        read.flag,
        len(read.seq),
        next_ref_id,
        read.pnext,
        read.tlen,
    )
    cigar_words = b"".join(
        struct.pack("<I", (length << 4) | int(op)) for op, length in read.cigar
    )
    qual = read.qual.astype(np.uint8).tobytes()
    if len(read.seq) and not len(qual):
        qual = b"\xff" * len(read.seq)  # 0xff = quality unavailable
    return (
        core
        + name
        + cigar_words
        + _pack_seq(read.seq)
        + qual
        + _encode_tags(read.tags)
    )


def decode_record(body: bytes, header: SamHeader) -> AlignedRead:
    """Inverse of :func:`encode_record`."""
    (
        ref_id,
        pos,
        l_read_name,
        mapq,
        _bin,
        n_cigar,
        flag,
        l_seq,
        next_ref_id,
        pnext,
        tlen,
    ) = struct.unpack("<iiBBHHHiiii", body[:32])
    off = 32
    qname = body[off : off + l_read_name - 1].decode("ascii")
    off += l_read_name
    cigar: List[Tuple[CigarOp, int]] = []
    for _ in range(n_cigar):
        (word,) = struct.unpack("<I", body[off : off + 4])
        cigar.append((CigarOp(word & 0xF), word >> 4))
        off += 4
    seq = _unpack_seq(body[off : off + (l_seq + 1) // 2], l_seq)
    off += (l_seq + 1) // 2
    qual_raw = body[off : off + l_seq]
    off += l_seq
    if qual_raw == b"\xff" * l_seq and l_seq:
        qual = np.zeros(l_seq, dtype=np.uint8)
    else:
        qual = np.frombuffer(qual_raw, dtype=np.uint8).copy()
    tags = _decode_tags(body[off:])
    rname = header.references[ref_id][0] if ref_id >= 0 else "*"
    rnext = header.references[next_ref_id][0] if next_ref_id >= 0 else "*"
    return AlignedRead(
        qname=qname,
        flag=flag,
        rname=rname,
        pos=pos,
        mapq=mapq,
        cigar=cigar,
        seq=seq,
        qual=qual,
        rnext=rnext,
        pnext=pnext,
        tlen=tlen,
        tags=tags,
    )


class BamWriter:
    """Streaming BAM writer over a BGZF stream.

    Args:
        dest: path or writable binary file object.
        header: SAM header written up front.
        compress_threads: BGZF deflate pool size (see
            :class:`repro.io.bgzf.BgzfWriter`); output bytes are
            identical to the serial writer's.
    """

    def __init__(
        self,
        dest: PathOrFile,
        header: SamHeader,
        *,
        compress_threads: int = 0,
    ) -> None:
        self._bgzf = BgzfWriter(dest, compress_threads=compress_threads)
        self.header = header
        text = header.to_text().encode("ascii")
        self._bgzf.write(BAM_MAGIC)
        self._bgzf.write(struct.pack("<i", len(text)) + text)
        self._bgzf.write(struct.pack("<i", len(header.references)))
        for name, length in header.references:
            nm = name.encode("ascii") + b"\x00"
            self._bgzf.write(struct.pack("<i", len(nm)) + nm)
            self._bgzf.write(struct.pack("<i", length))
        self.records_written = 0

    def write(self, read: AlignedRead) -> int:
        """Append one record; returns its starting virtual offset."""
        voffset = self._bgzf.tell()
        body = encode_record(read, self.header)
        self._bgzf.write(struct.pack("<i", len(body)) + body)
        self.records_written += 1
        return voffset

    def close(self) -> None:
        """Flush the BGZF stream (EOF sentinel included) and close."""
        self._bgzf.close()

    def __enter__(self) -> "BamWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BamReader:
    """Random-access BAM reader.

    Iterating yields :class:`AlignedRead`; :meth:`seek` accepts a
    virtual offset previously returned by :meth:`tell` or by
    :meth:`BamWriter.write`, enabling the per-worker partitioned
    readers used by :mod:`repro.parallel`.

    Args:
        source: path or binary file object holding a BAM stream.
        cache_blocks: decompressed BGZF blocks kept resident in the
            reader's LRU buffer (see :class:`repro.io.bgzf.BgzfReader`);
            more blocks make repeated/overlapping region seeks skip
            re-inflation at ~64 KiB of memory per block.
        decompress_threads: BGZF readahead inflation pool size
            (``0`` = serial; bytes and errors are identical either
            way).
        cache: a :class:`repro.io.bgzf.SharedBlockCache` to share the
            decompressed-block buffer with other readers of the same
            file (overrides ``cache_blocks``).
        cache_key: per-file key for shared-cache entries (defaults to
            the source path).
    """

    def __init__(
        self,
        source: PathOrFile,
        cache_blocks: int = 1,
        *,
        decompress_threads: int = 0,
        cache: Optional["SharedBlockCache"] = None,
        cache_key: Optional[object] = None,
    ) -> None:
        self._bgzf = BgzfReader(
            source,
            cache_blocks=cache_blocks,
            decompress_threads=decompress_threads,
            cache=cache,
            cache_key=cache_key,
        )
        magic = self._bgzf.readexact(4)
        if magic != BAM_MAGIC:
            raise ValueError(f"not a BAM file (magic {magic!r})")
        (l_text,) = struct.unpack("<i", self._bgzf.readexact(4))
        text = self._bgzf.readexact(l_text).decode("ascii")
        (n_ref,) = struct.unpack("<i", self._bgzf.readexact(4))
        refs: List[Tuple[str, int]] = []
        for _ in range(n_ref):
            (l_name,) = struct.unpack("<i", self._bgzf.readexact(4))
            name = self._bgzf.readexact(l_name)[:-1].decode("ascii")
            (l_ref,) = struct.unpack("<i", self._bgzf.readexact(4))
            refs.append((name, l_ref))
        self.header = SamHeader.from_text(text)
        if not self.header.references:
            self.header.references = refs
        self._data_start = self._bgzf.tell()

    @property
    def blocks_read(self) -> int:
        """Decompressed-block counter (tracer instrumentation)."""
        return self._bgzf.blocks_read

    @property
    def data_start(self) -> int:
        """Virtual offset of the first alignment record."""
        return self._data_start

    def tell(self) -> int:
        """Virtual offset of the next record to be read."""
        return self._bgzf.tell()

    def seek(self, voffset: int) -> None:
        """Position the reader at a virtual offset from :meth:`tell`."""
        self._bgzf.seek(voffset)

    def rewind(self) -> None:
        """Seek back to the first alignment record."""
        self._bgzf.seek(self._data_start)

    def read_record(self) -> AlignedRead | None:
        """Read the next record, or ``None`` at EOF."""
        size_raw = self._bgzf.read(4)
        if len(size_raw) == 0:
            return None
        if len(size_raw) < 4:
            raise EOFError("truncated BAM record length")
        (block_size,) = struct.unpack("<i", size_raw)
        body = self._bgzf.readexact(block_size)
        return decode_record(body, self.header)

    def __iter__(self) -> Iterator[AlignedRead]:
        while True:
            rec = self.read_record()
            if rec is None:
                return
            yield rec

    def close(self) -> None:
        """Release the underlying BGZF reader."""
        self._bgzf.close()

    def __enter__(self) -> "BamReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_bam(
    dest: PathOrFile, header: SamHeader, reads: Iterable[AlignedRead]
) -> int:
    """Write all ``reads`` to a BAM file; returns the record count."""
    with BamWriter(dest, header) as writer:
        for read in reads:
            writer.write(read)
        return writer.records_written


def read_bam(source: PathOrFile) -> Tuple[SamHeader, List[AlignedRead]]:
    """Read an entire BAM file into memory."""
    with BamReader(source) as reader:
        return reader.header, list(reader)
