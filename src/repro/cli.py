"""Command-line interface: ``repro-lofreq``.

Subcommands mirror the original tool-chain:

* ``simulate`` -- generate a synthetic sample (BAM + reference FASTA
  + ground-truth VCF); ``--mapq-profile aligner_like`` stamps a
  realistic mapping-quality mixture so ``call --min-mapq`` /
  ``--merge-mapq`` have something to bite on.
* ``index`` -- write a region-seek sidecar for a BAM: the standard
  ``.bai`` binning index (readable by any samtools-compatible tool)
  or the homegrown linear multi-index.
* ``call`` -- call variants on a BAM (original or improved algorithm,
  serial, OpenMP-style parallel, or the legacy buggy parallel mode
  for demonstration); ``--all-contigs`` covers every reference of a
  multi-contig BAM, ``--index`` consumes a pre-built sidecar,
  ``--cache-blocks`` sizes the per-reader decompressed-block LRU,
  ``--output-format {vcf,jsonl}`` picks the output dialect and
  ``--stats-json`` emits machine-readable run stats.  The subcommand
  is a thin adapter over :mod:`repro.pipeline`.
* ``serve`` -- run the long-running calling service
  (:mod:`repro.serve`): a TCP front end whose requests name
  ``(bam, region, config)``, with request coalescing, warm-reader
  shard workers, a result cache keyed by file fingerprint, and
  graceful drain on SIGINT/SIGTERM.
* ``compare`` -- concordance report between two VCFs.
* ``upset`` -- ASCII upset plot across any number of VCFs (Figure 3).

Run ``repro-lofreq <subcommand> --help`` for options, or invoke as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lofreq",
        description="LoFreq-style low-frequency variant calling "
        "(reproduction of Kille et al. 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="generate a synthetic dataset")
    p_sim.add_argument("--genome-length", type=int, default=2000)
    p_sim.add_argument("--depth", type=float, default=500.0)
    p_sim.add_argument("--variants", type=int, default=10)
    p_sim.add_argument("--min-freq", type=float, default=0.01)
    p_sim.add_argument("--max-freq", type=float, default=0.10)
    p_sim.add_argument("--read-length", type=int, default=100)
    p_sim.add_argument(
        "--quality-profile",
        choices=["hiseq", "miseq", "long_read"],
        default="hiseq",
    )
    p_sim.add_argument(
        "--mapq-profile",
        choices=["constant", "aligner_like"],
        default=None,
        help="per-read mapping qualities: constant 60s, or an "
        "aligner-like mixture with an ambiguous low-mapq tail "
        "(exercises call --min-mapq / --merge-mapq); default keeps "
        "the historical constant-60 stamp",
    )
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--out-bam", required=True)
    p_sim.add_argument("--out-reference")
    p_sim.add_argument("--out-truth")

    p_index = sub.add_parser(
        "index", help="write a region-seek sidecar index for a BAM"
    )
    p_index.add_argument("bam", help="coordinate-sorted BAM to index")
    p_index.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="sidecar path (default: <bam>.bai, or <bam>.rmi for "
        "--format linear)",
    )
    p_index.add_argument(
        "--format",
        choices=["bai", "linear"],
        default="bai",
        help="bai = the standard binning index (interoperable); "
        "linear = the homegrown per-contig checkpoint table",
    )
    p_index.add_argument(
        "--granularity",
        type=int,
        default=256,
        metavar="N",
        help="records between checkpoints (--format linear only)",
    )
    p_index.add_argument(
        "--decompress-threads",
        type=int,
        default=0,
        metavar="N",
        help="BGZF readahead inflation threads for the index scan "
        "(0 = serial; the index is identical either way)",
    )

    p_call = sub.add_parser("call", help="call variants on a BAM")
    p_call.add_argument("bam")
    p_call.add_argument("--reference", required=True, help="FASTA reference")
    p_call.add_argument("--out", required=True, help="output file")
    p_call.add_argument(
        "--output-format",
        choices=["vcf", "jsonl"],
        default="vcf",
        help="format of --out: VCF 4.2 or one JSON object per call",
    )
    p_call.add_argument(
        "--all-contigs",
        action="store_true",
        help="call every reference in the BAM header (default: only "
        "the first, unless --region names another)",
    )
    p_call.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="also write machine-readable run stats as JSON",
    )
    p_call.add_argument(
        "--algorithm",
        choices=["improved", "original"],
        default="improved",
        help="improved = paper's Poisson-approximation shortcut",
    )
    p_call.add_argument(
        "--engine",
        choices=["streaming", "batched"],
        default="streaming",
        help="column evaluation: per-allele streaming loop or the "
        "vectorised chunk-level batched engine (identical output)",
    )
    p_call.add_argument("--alpha", type=float, default=0.05)
    p_call.add_argument("--margin", type=float, default=0.01)
    p_call.add_argument("--min-approx-depth", type=int, default=100)
    p_call.add_argument("--bonferroni", type=int, default=None)
    p_call.add_argument(
        "--min-mapq",
        type=int,
        default=0,
        help="drop reads mapped below this quality (default 0, "
        "LoFreq's parity setting)",
    )
    p_call.add_argument(
        "--min-baseq",
        type=int,
        default=6,
        help="drop individual bases below this quality (default 6, "
        "the LoFreq default)",
    )
    p_call.add_argument(
        "--merge-mapq",
        action="store_true",
        help="fold each read's mapping quality into its error "
        "probability as an independent error source (LoFreq's -m "
        "joint-quality merge); per-read, on both engines",
    )
    p_call.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help="per-column depth cap; extra reads are counted but their "
        "bases dropped (default: LoFreq's 1,000,000)",
    )
    p_call.add_argument(
        "--index",
        default=None,
        metavar="PATH",
        help="pre-built sidecar index for region seeks (a .bai from "
        "'repro-lofreq index' or any samtools-compatible tool, or a "
        "linear sidecar); default builds a linear index in memory "
        "when needed",
    )
    p_call.add_argument(
        "--cache-blocks",
        type=int,
        default=None,
        metavar="N",
        help="decompressed BGZF blocks cached per worker reader "
        "(~64 KiB each; default 32)",
    )
    p_call.add_argument(
        "--decompress-threads",
        type=int,
        default=0,
        metavar="N",
        help="BGZF readahead inflation threads per worker reader "
        "(0 = serial; calls are byte-identical either way)",
    )
    p_call.add_argument(
        "--shared-cache",
        action="store_true",
        help="share one decompressed-block cache (--cache-blocks "
        "total) across all worker readers instead of one per reader",
    )
    p_call.add_argument("--workers", type=int, default=1)
    p_call.add_argument(
        "--schedule", choices=["static", "dynamic", "guided"], default="dynamic"
    )
    p_call.add_argument(
        "--backend", choices=["thread", "process", "serial"], default="thread"
    )
    p_call.add_argument("--region", default=None, help="chrom:start-end")
    p_call.add_argument("--stats", action="store_true", help="print run stats")
    p_call.add_argument(
        "--legacy-parallel",
        action="store_true",
        help="use the legacy partition-per-process pipeline (double "
        "dynamic filtering; reproduces the upstream inconsistency bug "
        "-- for demonstration only)",
    )

    p_serve = sub.add_parser(
        "serve", help="run the long-running calling service (TCP)"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    p_serve.add_argument(
        "--port", type=int, default=7341, help="bind port (0 picks a free one)"
    )
    p_serve.add_argument(
        "--reference",
        default=None,
        metavar="FASTA",
        help="default reference for requests that name none",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="shard workers, each holding warm readers and indexes",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=32,
        metavar="N",
        help="bound on concurrently pending distinct computations "
        "(backpressure)",
    )
    p_serve.add_argument(
        "--on-full",
        choices=["reject", "wait"],
        default="reject",
        help="beyond --max-pending: reject new requests (default) or "
        "queue the submitter until a slot frees",
    )
    p_serve.add_argument(
        "--result-cache",
        type=int,
        default=256,
        metavar="N",
        help="finished request bodies kept resident (LRU)",
    )
    p_serve.add_argument(
        "--warm-sources",
        type=int,
        default=4,
        metavar="N",
        help="warm BAM sources kept per worker (LRU)",
    )
    p_serve.add_argument(
        "--cache-blocks",
        type=int,
        default=None,
        metavar="N",
        help="decompressed BGZF blocks cached per warm reader "
        "(~64 KiB each; default 32)",
    )
    p_serve.add_argument(
        "--decompress-threads",
        type=int,
        default=None,
        metavar="N",
        help="BGZF readahead inflation threads per warm reader "
        "(default serial; response bodies are identical either way)",
    )

    p_cmp = sub.add_parser("compare", help="concordance between two VCFs")
    p_cmp.add_argument("vcf_a")
    p_cmp.add_argument("vcf_b")

    p_upset = sub.add_parser("upset", help="ASCII upset plot over VCFs")
    p_upset.add_argument("vcfs", nargs="+")
    p_upset.add_argument(
        "--labels", nargs="+", default=None, help="one label per VCF"
    )
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io.fasta import write_fasta
    from repro.io.vcf import VcfRecord, write_vcf
    from repro.sim import QualityModel, ReadSimulator, random_panel, sars_cov_2_like

    genome = sars_cov_2_like(length=args.genome_length, seed=args.seed)
    panel = random_panel(
        genome.sequence,
        args.variants,
        freq_range=(args.min_freq, args.max_freq),
        seed=args.seed,
    )
    qm = getattr(QualityModel, args.quality_profile)()
    mapq_profile = None
    if args.mapq_profile is not None:
        from repro.sim.quality import MapqProfile

        mapq_profile = getattr(MapqProfile, args.mapq_profile)()
    simulator = ReadSimulator(
        genome,
        panel,
        quality_model=qm,
        read_length=args.read_length,
        mapq_profile=mapq_profile,
    )
    sample = simulator.simulate(args.depth, seed=args.seed)
    n = sample.write_bam(args.out_bam)
    print(f"wrote {n} reads ({sample.mean_depth:.0f}x) to {args.out_bam}")
    if args.out_reference:
        write_fasta(args.out_reference, [genome])
        print(f"wrote reference to {args.out_reference}")
    if args.out_truth:
        records = [
            VcfRecord(
                chrom=genome.name,
                pos=v.pos,
                ref=v.ref,
                alt=v.alt,
                qual=float("nan"),
                info={"AF": round(v.frequency, 6), "TRUTH": True},
            )
            for v in panel
        ]
        write_vcf(
            args.out_truth,
            records,
            reference=[(genome.name, len(genome))],
            source="repro-sim-truth",
        )
        print(f"wrote {len(records)} truth variants to {args.out_truth}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.io.index import build_bai_index, build_linear_index

    try:
        if args.format == "bai":
            out = args.out or f"{args.bam}.bai"
            index = build_bai_index(
                args.bam, decompress_threads=args.decompress_threads
            )
            index.save(out)
            n_bins = sum(len(ref.bins) for ref in index.references)
            print(
                f"wrote BAI index ({len(index.references)} references, "
                f"{n_bins} bins) to {out}"
            )
        else:
            out = args.out or f"{args.bam}.rmi"
            index = build_linear_index(
                args.bam,
                granularity=args.granularity,
                decompress_threads=args.decompress_threads,
            )
            index.save(out)
            n_cp = sum(len(ix.checkpoints) for ix in index.values())
            print(
                f"wrote linear index ({len(index)} contigs, "
                f"{n_cp} checkpoints) to {out}"
            )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _resolve_call_regions(args, references, header_refs):
    """Work out which regions to call and which contigs label the
    output header.  Returns ``(regions, contigs)`` or an error string.
    """
    from repro.io.regions import Region, parse_region

    lengths = dict(header_refs)
    if args.region and args.all_contigs:
        return "--all-contigs and --region are mutually exclusive"
    if args.region:
        # Resolve the contig from the requested region, not from the
        # header's first reference -- a FASTA covering only the named
        # contig is enough.
        chrom = args.region.strip().split(":", 1)[0]
        if chrom not in lengths:
            return f"region contig {chrom!r} not in the BAM header"
        if chrom not in references:
            return f"region contig {chrom!r} not in {args.reference}"
        try:
            region = parse_region(args.region, reference_length=lengths[chrom])
        except ValueError as exc:
            return str(exc)
        return [region], [(chrom, lengths[chrom])]
    if args.all_contigs:
        missing = [n for n, _ in header_refs if n not in references]
        if missing:
            return (
                f"BAM references {missing!r} not in {args.reference}"
            )
        regions = [Region(n, 0, length) for n, length in header_refs]
        return regions, list(header_refs)
    name, length = header_refs[0]
    if name not in references:
        return f"BAM reference {name!r} not in {args.reference}"
    return [Region(name, 0, length)], [(name, length)]


def _cmd_call(args: argparse.Namespace) -> int:
    from repro.core import CallerConfig
    from repro.io.bam import BamReader
    from repro.io.fasta import load_reference
    from repro.pileup.engine import DEFAULT_MAX_DEPTH, PileupConfig
    from repro.pipeline import (
        BamSource,
        ExecutionPolicy,
        JsonlSink,
        Pipeline,
        StatsSink,
        VcfSink,
    )

    references = load_reference(args.reference)
    with BamReader(args.bam) as reader:
        header_refs = list(reader.header.references)
    resolved = _resolve_call_regions(args, references, header_refs)
    if isinstance(resolved, str):
        print(f"error: {resolved}", file=sys.stderr)
        return 2
    regions, contigs = resolved
    kwargs = dict(
        alpha=args.alpha,
        approx_margin=args.margin,
        approx_min_depth=args.min_approx_depth,
        bonferroni=args.bonferroni,
        engine=args.engine,
        merge_mapq=args.merge_mapq,
    )
    config = (
        CallerConfig.improved(**kwargs)
        if args.algorithm == "improved"
        else CallerConfig.original(**kwargs)
    )
    if args.legacy_parallel:
        print(
            "warning: --legacy-parallel reproduces the double-filtering "
            "bug on purpose; output depends on --workers",
            file=sys.stderr,
        )
        policy = ExecutionPolicy(mode="legacy", n_workers=max(1, args.workers))
    elif args.workers <= 1:
        policy = ExecutionPolicy(mode="serial")
    else:
        serial = args.backend == "serial"
        policy = ExecutionPolicy(
            mode="serial" if serial else args.backend,
            n_workers=1 if serial else args.workers,
            chunk_columns=256,
            schedule=args.schedule,
        )
    if args.output_format == "jsonl":
        sinks = [JsonlSink(args.out)]
    else:
        sinks = [VcfSink(args.out, contigs=contigs)]
    if args.stats_json:
        sinks.append(StatsSink(args.stats_json))
    try:
        pileup_config = PileupConfig(
            min_mapq=args.min_mapq,
            min_baseq=args.min_baseq,
            max_depth=(
                DEFAULT_MAX_DEPTH if args.max_depth is None else args.max_depth
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        source = BamSource(
            args.bam,
            references,
            regions=regions,
            pileup_config=pileup_config,
            index=args.index,
            cache_blocks=args.cache_blocks,
            decompress_threads=args.decompress_threads,
            shared_cache=args.shared_cache,
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    result = Pipeline(source, config=config, policy=policy, sinks=sinks).run()
    elapsed = time.perf_counter() - t0
    print(
        f"{len(result.passed)} PASS calls ({len(result.calls)} total) "
        f"in {elapsed:.2f}s -> {args.out}"
    )
    if args.stats:
        s = result.stats
        print(f"columns seen      : {s.columns_seen}")
        print(f"allele tests      : {s.tests_run}")
        print(f"approx first-pass : {s.approx_invocations}")
        print(f"exact DP skipped  : {s.exact_skipped} ({s.skip_fraction():.1%})")
        print(f"DP steps          : {s.dp_steps}")
        print(
            f"block cache       : {s.cache_hits} hits / "
            f"{s.cache_misses} misses ({s.cache_hit_rate():.1%}), "
            f"{s.cache_evictions} evictions"
        )
        if s.prefetch_hits or s.prefetch_wasted:
            print(
                f"readahead pool    : {s.prefetch_hits} prefetch hits, "
                f"{s.prefetch_wasted} wasted"
            )
        for k, v in sorted(s.decisions.items()):
            print(f"  decision {k:<22}: {v}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import CallService, run_server

    if args.reference is not None:
        import os

        if not os.path.exists(args.reference):
            print(
                f"error: reference {args.reference!r} does not exist",
                file=sys.stderr,
            )
            return 2
    try:
        service = CallService(
            default_reference=args.reference,
            n_workers=args.workers,
            max_pending=args.max_pending,
            result_cache_entries=args.result_cache,
            warm_sources=args.warm_sources,
            cache_blocks=args.cache_blocks,
            decompress_threads=args.decompress_threads,
            on_full=args.on_full,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return run_server(service, args.host, args.port)


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import compare_call_sets
    from repro.io.vcf import read_vcf

    def keys(path: str):
        _, records = read_vcf(path)
        return {
            (r.chrom, r.pos, r.ref, r.alt)
            for r in records
            if r.filter in ("PASS", ".")
        }

    report = compare_call_sets(keys(args.vcf_a), keys(args.vcf_b))
    print(report.summary(args.vcf_a, args.vcf_b))
    return 0 if report.identical else 1


def _cmd_upset(args: argparse.Namespace) -> int:
    from repro.analysis import compute_upset, render_upset
    from repro.io.vcf import read_vcf

    labels = args.labels or args.vcfs
    if len(labels) != len(args.vcfs):
        print("error: --labels count must match VCF count", file=sys.stderr)
        return 2
    sets = {}
    for label, path in zip(labels, args.vcfs):
        _, records = read_vcf(path)
        sets[label] = {
            (r.chrom, r.pos, r.ref, r.alt)
            for r in records
            if r.filter in ("PASS", ".")
        }
    print(render_upset(compute_upset(sets)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "index": _cmd_index,
        "call": _cmd_call,
        "serve": _cmd_serve,
        "compare": _cmd_compare,
        "upset": _cmd_upset,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
