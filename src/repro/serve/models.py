"""Request/response models and cache keying for :mod:`repro.serve`.

A serving request names ``(bam, region, config)``; everything the
service caches or coalesces on is derived here:

* :class:`FileFingerprint` -- a file's identity as
  ``(path, size, mtime_ns)``.  Rewriting a file in place changes its
  fingerprint, so stale cache entries *cannot* be served: the new
  fingerprint simply never matches the old key (invalidation by
  construction, no TTLs, no explicit purge).
* :func:`config_hash` -- a stable SHA-256 digest over every knob that
  can change the rendered body: the caller configuration, the pileup
  configuration, the output format and the reference file's
  fingerprint.
* :class:`ResultKey` -- ``(bam fingerprint, region, config hash)``,
  the result-cache and request-coalescing key.

:class:`CallRequest` / :class:`CallResponse` are the service's wire
objects; both convert to and from plain JSON-safe dicts so the TCP
front end and the in-process client share one vocabulary.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Optional

from repro.core.config import CallerConfig
from repro.pileup.engine import PileupConfig

__all__ = [
    "CallRequest",
    "CallResponse",
    "FileFingerprint",
    "RequestError",
    "ResultKey",
    "ServerClosedError",
    "ServerOverloadedError",
    "ValidationError",
    "config_hash",
]

#: Region component of a :class:`ResultKey` for "every header contig".
ALL_REGIONS = "*"

_FORMATS = ("vcf", "jsonl")


class RequestError(Exception):
    """Base class for request-level serving failures.

    Everything raised by :meth:`CallService.submit` that describes a
    problem with *one request* (rather than a server bug) derives from
    this, so front ends can map the family to an error response
    without taking the server down.
    """


class ValidationError(RequestError):
    """The request itself is malformed (bad path, region, or config)."""


class ServerOverloadedError(RequestError):
    """Backpressure: the pending-work bound is full and the service
    was configured to reject rather than queue."""


class ServerClosedError(RequestError):
    """The service is shutting down and no longer accepts requests."""


@dataclasses.dataclass(frozen=True)
class FileFingerprint:
    """A file's identity: absolute path plus size and mtime.

    Two fingerprints compare equal only if they describe the same
    path *and* the same version of its contents (size and
    nanosecond mtime).  Used as the file component of
    :class:`ResultKey` and of the workers' warm-source keys, so a BAM
    rewritten in place gets a fresh reader and a cache miss instead
    of stale bytes.
    """

    path: str
    size: int
    mtime_ns: int

    @classmethod
    def of(cls, path) -> "FileFingerprint":
        """Fingerprint ``path`` as it exists right now.

        Raises:
            ValidationError: if the file does not exist (or is not
                stat-able).
        """
        resolved = os.path.abspath(os.fspath(path))
        try:
            st = os.stat(resolved)
        except OSError as exc:
            raise ValidationError(f"cannot stat {resolved!r}: {exc}") from exc
        return cls(path=resolved, size=st.st_size, mtime_ns=st.st_mtime_ns)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (used in response metadata)."""
        return {
            "path": self.path,
            "size": int(self.size),
            "mtime_ns": int(self.mtime_ns),
        }


def config_hash(
    config: CallerConfig,
    pileup: PileupConfig,
    output_format: str,
    reference: Optional[FileFingerprint],
) -> str:
    """Digest every output-affecting knob into a stable hex string.

    The digest covers the full caller and pileup configurations (as
    sorted field dicts), the output format, and the reference file's
    fingerprint -- so editing the reference FASTA in place invalidates
    exactly like editing the BAM does.  Knobs that cannot change the
    rendered body (worker counts, cache sizes) are deliberately
    excluded: requests differing only in those coalesce and share
    cache entries.
    """
    payload = {
        "config": dataclasses.asdict(config),
        "pileup": dataclasses.asdict(pileup),
        "output_format": output_format,
        "reference": reference.to_dict() if reference is not None else None,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class ResultKey:
    """The result-cache / coalescing key: file identity x region x config.

    Attributes:
        bam: fingerprint of the BAM at request time.
        region: normalised region text, or :data:`ALL_REGIONS` for a
            whole-file request.
        config: :func:`config_hash` digest.
    """

    bam: FileFingerprint
    region: str
    config: str

    @property
    def contig(self) -> str:
        """The region's contig name ('' for a whole-file request) --
        the shard map's routing component."""
        if self.region == ALL_REGIONS:
            return ""
        return self.region.split(":", 1)[0]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (used in response metadata)."""
        return {
            "bam": self.bam.to_dict(),
            "region": self.region,
            "config": self.config,
        }


@dataclasses.dataclass(frozen=True)
class CallRequest:
    """One serving request: call ``region`` of ``bam`` under a config.

    Attributes:
        bam: path to a coordinate-sorted BAM file.
        region: samtools-style region text (``chrom``,
            ``chrom:start-end``); ``None`` calls every header contig.
        reference: FASTA path; ``None`` falls back to the service's
            default reference.
        output_format: ``"vcf"`` or ``"jsonl"`` body dialect.
        config: caller configuration (default: the improved preset).
        pileup: pileup filtering parameters.
    """

    bam: str
    region: Optional[str] = None
    reference: Optional[str] = None
    output_format: str = "vcf"
    config: CallerConfig = dataclasses.field(
        default_factory=CallerConfig.improved
    )
    pileup: PileupConfig = dataclasses.field(default_factory=PileupConfig)

    def region_key(self) -> str:
        """The normalised region component of this request's key."""
        if self.region is None:
            return ALL_REGIONS
        return self.region.strip()

    @classmethod
    def from_dict(
        cls, payload: Dict[str, object], *, default_reference: Optional[str] = None
    ) -> "CallRequest":
        """Build a request from a plain JSON dict (the TCP protocol).

        ``config`` / ``pileup`` sub-dicts hold keyword overrides for
        :class:`~repro.core.config.CallerConfig` /
        :class:`~repro.pileup.engine.PileupConfig`; unknown keys (and
        unknown top-level keys) raise :class:`ValidationError` rather
        than being silently dropped.
        """
        if not isinstance(payload, dict):
            raise ValidationError("request payload must be a JSON object")
        known = {"bam", "region", "reference", "output_format", "config", "pileup"}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(f"unknown request fields: {sorted(unknown)}")
        bam = payload.get("bam")
        if not isinstance(bam, str) or not bam:
            raise ValidationError("request needs a 'bam' path")
        try:
            config = CallerConfig(**payload.get("config", {}))
            pileup = PileupConfig(**payload.get("pileup", {}))
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"bad request config: {exc}") from exc
        return cls(
            bam=bam,
            region=payload.get("region"),
            reference=payload.get("reference") or default_reference,
            output_format=payload.get("output_format", "vcf"),
            config=config,
            pileup=pileup,
        )

    def validated(self) -> "CallRequest":
        """Front-end validation: cheap checks that need no BAM open.

        Returns self (requests are immutable).

        Raises:
            ValidationError: on an unknown output format, malformed
                region text, or a missing reference.
        """
        from repro.io.regions import parse_region

        if self.output_format not in _FORMATS:
            raise ValidationError(
                f"output_format must be one of {_FORMATS}, "
                f"got {self.output_format!r}"
            )
        if self.region is not None:
            text = self.region.strip()
            if not text:
                raise ValidationError("region must not be empty")
            try:
                # Syntax-only parse; contig membership and bounds are
                # checked in the worker, which has the BAM header.
                parse_region(text, reference_length=1 << 40)
            except ValueError as exc:
                raise ValidationError(str(exc)) from exc
        if self.reference is None:
            raise ValidationError(
                "request names no reference and the service has no default"
            )
        if not os.path.exists(self.reference):
            raise ValidationError(
                f"reference {self.reference!r} does not exist"
            )
        return self


@dataclasses.dataclass
class CallResponse:
    """One serving response: the rendered body plus its provenance.

    Attributes:
        body: the complete VCF or JSONL text.
        output_format: which dialect ``body`` is.
        cached: served straight from the result cache.
        coalesced: attached to another request's in-flight computation
            (computed once, delivered to every waiter).
        key: the :class:`ResultKey` this response was stored under
            (``None`` for responses deserialised from the TCP
            protocol, which does not echo the key).
        stats: the run's :meth:`~repro.core.results.RunStats.to_dict`
            snapshot plus a ``"serve"`` sub-dict of service counters.
    """

    body: str
    output_format: str
    cached: bool
    coalesced: bool
    key: Optional[ResultKey]
    stats: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (the TCP response payload)."""
        return {
            "status": "ok",
            "body": self.body,
            "output_format": self.output_format,
            "cached": bool(self.cached),
            "coalesced": bool(self.coalesced),
            "key": self.key.to_dict() if self.key is not None else None,
            "stats": self.stats,
        }
