"""Clients for the calling service.

* :class:`ServeClient` -- the in-process client: wraps a
  :class:`~repro.serve.server.CallService` (its own, or one passed
  in) and exposes a synchronous :meth:`~ServeClient.call` plus the
  async :meth:`~ServeClient.submit`.  This is what the test suite and
  ``benchmarks/bench_serve.py`` drive.
* :class:`TcpServeClient` -- a tiny blocking socket client for the
  ``repro-lofreq serve`` TCP front end (one JSON object per line each
  way); used by the CI serve smoke step.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Dict, Optional

from repro.core.config import CallerConfig
from repro.pileup.engine import PileupConfig
from repro.serve.models import (
    CallRequest,
    CallResponse,
    RequestError,
    ValidationError,
)
from repro.serve.server import CallService

__all__ = ["ServeClient", "TcpServeClient"]


def _build_request(
    bam: str,
    *,
    region: Optional[str] = None,
    reference: Optional[str] = None,
    output_format: str = "vcf",
    config: Optional[CallerConfig] = None,
    pileup: Optional[PileupConfig] = None,
) -> CallRequest:
    """Assemble a :class:`CallRequest` from keyword conveniences."""
    return CallRequest(
        bam=bam,
        region=region,
        reference=reference,
        output_format=output_format,
        config=config or CallerConfig.improved(),
        pileup=pileup or PileupConfig(),
    )


class ServeClient:
    """In-process client over a :class:`CallService`.

    Args:
        service: an existing service to talk to; ``None`` creates a
            private one from ``**service_kwargs`` (closed again by
            :meth:`close` / the context manager).
        **service_kwargs: forwarded to :class:`CallService` when the
            client owns its service (e.g. ``default_reference=...``,
            ``n_workers=...``).

    Example::

        with ServeClient(default_reference="ref.fa") as client:
            cold = client.call("sample.bam", region="chr1:1-500")
            warm = client.call("sample.bam", region="chr1:1-500")
            assert warm.cached and warm.body == cold.body
    """

    def __init__(
        self, service: Optional[CallService] = None, **service_kwargs
    ) -> None:
        if service is not None and service_kwargs:
            raise ValueError(
                "pass either an existing service or kwargs for a new "
                "one, not both"
            )
        self._owned = service is None
        self.service = service or CallService(**service_kwargs)

    async def submit(self, request: CallRequest) -> CallResponse:
        """Async passthrough to :meth:`CallService.submit`."""
        return await self.service.submit(request)

    def call(
        self,
        bam: str,
        *,
        region: Optional[str] = None,
        reference: Optional[str] = None,
        output_format: str = "vcf",
        config: Optional[CallerConfig] = None,
        pileup: Optional[PileupConfig] = None,
    ) -> CallResponse:
        """Serve one request synchronously and return its response.

        Must not be called from inside a running event loop (use
        :meth:`submit` there).
        """
        request = _build_request(
            bam,
            region=region,
            reference=reference or self.service.default_reference,
            output_format=output_format,
            config=config,
            pileup=pileup,
        )
        return asyncio.run(self.service.submit(request))

    def stats(self) -> Dict[str, object]:
        """The service's counter snapshot."""
        return self.service.stats()

    def close(self) -> None:
        """Shut the service down if this client owns it."""
        if self._owned:
            self.service.close()

    def __enter__(self) -> "ServeClient":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close an owned service."""
        self.close()


class TcpServeClient:
    """Blocking line-JSON client for the TCP front end.

    Args:
        host: server host.
        port: server port.
        timeout: per-response socket timeout in seconds.

    Example::

        client = TcpServeClient("127.0.0.1", 7341)
        response = client.call("sample.bam", region="chr1")
        client.close()
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7341, *, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def _roundtrip(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one JSON line, read one JSON line back."""
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def call(
        self,
        bam: str,
        *,
        region: Optional[str] = None,
        reference: Optional[str] = None,
        output_format: str = "vcf",
        config: Optional[Dict[str, object]] = None,
        pileup: Optional[Dict[str, object]] = None,
    ) -> CallResponse:
        """Serve one request over the socket.

        ``config`` / ``pileup`` are plain keyword dicts (the JSON
        protocol's representation).  Error responses re-raise as the
        :class:`~repro.serve.models.RequestError` family.
        """
        payload: Dict[str, object] = {"bam": bam, "output_format": output_format}
        if region is not None:
            payload["region"] = region
        if reference is not None:
            payload["reference"] = reference
        if config:
            payload["config"] = config
        if pileup:
            payload["pileup"] = pileup
        response = self._roundtrip(payload)
        if response.get("status") != "ok":
            kind = response.get("kind", "RequestError")
            from repro.serve import models

            exc_type = getattr(models, str(kind), RequestError)
            if not (
                isinstance(exc_type, type) and issubclass(exc_type, RequestError)
            ):
                exc_type = RequestError
            raise exc_type(str(response.get("error", "request failed")))
        return CallResponse(
            body=response["body"],
            output_format=response["output_format"],
            cached=bool(response["cached"]),
            coalesced=bool(response["coalesced"]),
            key=None,
            stats=response.get("stats", {}),
        )

    def stats(self) -> Dict[str, object]:
        """The server's counter snapshot (the ``stats`` op)."""
        response = self._roundtrip({"op": "stats"})
        if response.get("status") != "ok":
            raise ValidationError(str(response.get("error", "stats failed")))
        return response["stats"]

    def close(self) -> None:
        """Close the socket."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TcpServeClient":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the socket."""
        self.close()
