"""Calling-as-a-service: the long-running serving layer.

``repro.serve`` wraps :class:`~repro.pipeline.engine.Pipeline` in a
service whose requests name ``(bam, region, config)``:

* an **asyncio front end** (:class:`~repro.serve.server.CallService`)
  validates requests, *coalesces* identical in-flight ones (compute
  once, answer everyone) and applies bounded-queue backpressure;
* a **shard map** (:class:`~repro.serve.shards.ShardMap`) routes each
  file/contig to a fixed :class:`~repro.serve.shards.ShardWorker`
  holding warm readers, resolved indexes and block LRUs across
  requests;
* a **result cache** (:class:`~repro.serve.cache.ResultCache`) keyed
  by ``(file fingerprint, region, config hash)`` serves repeat
  requests byte-identically without re-running the pipeline;
* bodies stream through the existing VCF/JSONL sinks and every
  response carries :meth:`~repro.core.results.RunStats.to_dict` plus
  serving counters.

The CLI front end is ``repro-lofreq serve``; in-process callers use
:class:`~repro.serve.client.ServeClient`.
"""

from repro.serve.cache import CachedResult, ResultCache
from repro.serve.client import ServeClient, TcpServeClient
from repro.serve.models import (
    CallRequest,
    CallResponse,
    FileFingerprint,
    RequestError,
    ResultKey,
    ServerClosedError,
    ServerOverloadedError,
    ValidationError,
    config_hash,
)
from repro.serve.server import CallService, run_server, serve_tcp
from repro.serve.shards import RegionView, ShardMap, ShardWorker

__all__ = [
    "CachedResult",
    "CallRequest",
    "CallResponse",
    "CallService",
    "FileFingerprint",
    "RegionView",
    "RequestError",
    "ResultCache",
    "ResultKey",
    "ServeClient",
    "ServerClosedError",
    "ServerOverloadedError",
    "ShardMap",
    "ShardWorker",
    "TcpServeClient",
    "ValidationError",
    "config_hash",
    "run_server",
    "serve_tcp",
]
