"""Shard routing and warm-reader workers for :mod:`repro.serve`.

The service's parallelism is a fixed pool of :class:`ShardWorker`
threads.  A :class:`ShardMap` routes every request to one worker by
hashing ``(bam path, contig)`` -- deterministically, so repeat and
overlapping traffic for the same file region always lands on the same
worker.  That worker keeps the expensive per-process state *warm*
across requests:

* a small LRU of :class:`~repro.pipeline.sources.BamSource` instances
  keyed by ``(bam fingerprint, reference fingerprint, pileup config,
  cache blocks)`` -- each holds its resolved
  :class:`~repro.io.index.RandomAccessIndex`, its thread-local
  :class:`~repro.io.bam.BamReader` and that reader's decompressed-
  block LRU, so a warm request pays neither index build nor reader
  open nor block re-inflation;
* a small LRU of loaded reference FASTAs keyed by fingerprint.

Because warm-source keys embed file *fingerprints* (path+size+mtime),
a BAM or FASTA rewritten in place gets a fresh source; the stale one
ages out of the LRU.  :class:`RegionView` adapts a warm source to one
request's regions and reports per-request I/O counter *deltas*, so
every response's stats describe that request alone even though the
readers live for the whole process.
"""

from __future__ import annotations

import hashlib
import io
import queue
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cachesim.lru import LruCache
from repro.core.results import CallResult
from repro.io.regions import Region, parse_region
from repro.serve.cache import CachedResult
from repro.serve.models import (
    ALL_REGIONS,
    CallRequest,
    FileFingerprint,
    ResultKey,
    ValidationError,
)

__all__ = ["RegionView", "ShardMap", "ShardWorker", "WorkItem"]


class ShardMap:
    """Deterministic ``(bam, contig) -> shard`` routing.

    The hash is content-addressed (SHA-1 over the path and contig
    text), not Python's randomised ``hash()``, so the same request
    routes to the same shard across processes and restarts -- warm
    state stays useful after a rolling restart of identical topology.

    Args:
        n_shards: worker count (positive).

    Raises:
        ValueError: if ``n_shards`` is not positive.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = n_shards

    def shard_for(self, key: ResultKey) -> int:
        """The shard index serving ``key``.

        Routing uses the BAM *path* (not the full fingerprint) plus
        the region's contig: rewriting a file keeps its traffic on the
        same worker, and every region of one contig shares that
        worker's reader and block cache.
        """
        blob = f"{key.bam.path}\x00{key.contig}".encode("utf-8")
        digest = hashlib.sha1(blob).digest()
        return int.from_bytes(digest[:8], "big") % self.n_shards


class WorkItem:
    """One queued computation: a request, its key, and a completion
    callback ``complete(key, result, exc)`` run on the worker thread.
    """

    __slots__ = ("request", "key", "complete")

    def __init__(
        self,
        request: CallRequest,
        key: ResultKey,
        complete: Callable[[ResultKey, Optional[CachedResult], Optional[BaseException]], None],
    ) -> None:
        self.request = request
        self.key = key
        self.complete = complete


class RegionView:
    """A warm :class:`~repro.pipeline.sources.BamSource`, scoped to one
    request.

    Delegates column/batch production to the shared warm source but:

    * reports the *request's* regions (so the Bonferroni scope and the
      pipeline's work units follow the request, not the whole file);
    * reports I/O counters as deltas against a baseline captured at
      construction (so per-request stats are not cumulative over the
      warm reader's lifetime).
    """

    def __init__(self, source, regions: Sequence[Region]) -> None:
        self._source = source
        self._regions = list(regions)
        self._baseline = source.io_stats()

    def regions(self) -> Sequence[Region]:
        """The request's regions."""
        return list(self._regions)

    def prepare(self) -> None:
        """Delegate index warm-up to the underlying source."""
        self._source.prepare()

    def columns_for(self, chunk, tracer=None, worker: int = 0):
        """Delegate the per-column stream to the warm source."""
        return self._source.columns_for(chunk, tracer, worker)

    def batches_for(self, chunk, tracer=None, worker: int = 0):
        """Delegate the batch stream to the warm source."""
        return self._source.batches_for(chunk, tracer, worker)

    def io_stats(self) -> Dict[str, float]:
        """This request's I/O counters: current minus baseline."""
        now = self._source.io_stats()
        return {k: now[k] - self._baseline.get(k, 0) for k in now}


class ShardWorker(threading.Thread):
    """One warm worker: a queue-draining thread owning shard-local
    warm sources.

    Args:
        shard_id: this worker's index in the shard map.
        warm_sources: BamSource instances kept warm (LRU beyond it).
        cache_blocks: per-reader decompressed-block LRU size handed to
            every warm source (``None`` uses the source default).
        decompress_threads: BGZF readahead pool size handed to every
            warm source's readers (``None`` uses the source default,
            i.e. serial; results are byte-identical either way).

    The thread drains :attr:`queue` until it sees the ``None``
    sentinel; every :class:`WorkItem` is answered through its
    ``complete`` callback (with either a
    :class:`~repro.serve.cache.CachedResult` or the exception), so a
    failing request never kills the worker.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        warm_sources: int = 4,
        cache_blocks: Optional[int] = None,
        decompress_threads: Optional[int] = None,
    ) -> None:
        super().__init__(name=f"serve-shard-{shard_id}", daemon=True)
        if warm_sources <= 0:
            raise ValueError(
                f"warm_sources must be positive, got {warm_sources}"
            )
        self.shard_id = shard_id
        self.queue: "queue.Queue[Optional[WorkItem]]" = queue.Queue()
        self.cache_blocks = cache_blocks
        self.decompress_threads = decompress_threads
        self._sources: LruCache[tuple, object] = LruCache(warm_sources)
        self._references: LruCache[FileFingerprint, dict] = LruCache(
            max(2, warm_sources)
        )
        #: requests this worker computed (successes and failures)
        self.executed = 0
        #: requests answered with an error
        self.errors = 0
        #: True when the most recent request reused a warm source
        self.last_warm_source = False

    # -- warm state ----------------------------------------------------------

    def _reference_for(self, fingerprint: FileFingerprint) -> dict:
        """The loaded ``{contig: FastaRecord}`` mapping, warm per
        reference-file fingerprint."""
        refs = self._references.get(fingerprint)
        if refs is None:
            from repro.io.fasta import load_reference

            refs = load_reference(fingerprint.path)
            self._references.put(fingerprint, refs)
        return refs

    def _source_for(self, request: CallRequest, bam: FileFingerprint):
        """The warm :class:`BamSource` for this request's (bam,
        reference, pileup config), creating and caching it on miss."""
        ref_fp = FileFingerprint.of(request.reference)
        key = (
            bam,
            ref_fp,
            request.pileup,
            self.cache_blocks,
            self.decompress_threads,
        )
        source = self._sources.get(key)
        self.last_warm_source = source is not None
        if source is None:
            from repro.pipeline.sources import BamSource

            kwargs = {}
            if self.cache_blocks is not None:
                kwargs["cache_blocks"] = self.cache_blocks
            if self.decompress_threads is not None:
                kwargs["decompress_threads"] = self.decompress_threads
            source = BamSource(
                bam.path,
                self._reference_for(ref_fp),
                pileup_config=request.pileup,
                **kwargs,
            )
            self._sources.put(key, source)
        return source

    def warm_stats(self) -> Dict[str, object]:
        """JSON-safe warm-state counters for the server's stats view."""
        return {
            "shard": self.shard_id,
            "executed": int(self.executed),
            "errors": int(self.errors),
            "warm_sources": len(self._sources),
            "warm_source_hits": int(self._sources.hits),
            "warm_source_misses": int(self._sources.misses),
        }

    # -- execution -----------------------------------------------------------

    def _resolve_regions(
        self, request: CallRequest, source
    ) -> Tuple[List[Region], List[Tuple[str, int]]]:
        """The request's regions and the VCF-header contig list.

        Mirrors the CLI's resolution: a named region yields that one
        span (and its contig labels the header); a whole-file request
        covers every header contig.

        Raises:
            ValidationError: if the region names a contig absent from
                the BAM header or the reference mapping.
        """
        lengths = dict(source.contigs)
        if request.region is None:
            return list(source.regions()), list(source.contigs)
        text = request.region.strip()
        chrom = text.split(":", 1)[0]
        if chrom not in lengths:
            raise ValidationError(
                f"region contig {chrom!r} not in the BAM header"
            )
        try:
            region = parse_region(text, reference_length=lengths[chrom])
        except ValueError as exc:
            raise ValidationError(str(exc)) from exc
        if region.end > lengths[chrom]:
            region = Region(chrom, region.start, lengths[chrom])
        return [region], [(chrom, lengths[chrom])]

    def _render(self, request: CallRequest, key: ResultKey) -> CachedResult:
        """Execute one request on this worker's warm state.

        Runs the pipeline serially (the service's parallelism is the
        shard pool itself) and renders the body through the standard
        streaming sinks into memory.
        """
        from repro.pipeline.engine import ExecutionPolicy, Pipeline
        from repro.pipeline.sinks import JsonlSink, VcfSink

        source = self._source_for(request, key.bam)
        regions, contigs = self._resolve_regions(request, source)
        view = RegionView(source, regions)
        buf = io.StringIO()
        if request.output_format == "jsonl":
            sink = JsonlSink(buf)
        else:
            sink = VcfSink(buf, contigs=contigs)
        result: CallResult = Pipeline(
            view,
            config=request.config,
            policy=ExecutionPolicy(mode="serial"),
            sinks=[sink],
        ).run()
        return CachedResult(
            body=buf.getvalue(),
            output_format=request.output_format,
            stats=result.stats.to_dict(),
            n_calls=len(result.calls),
            n_pass=len(result.passed),
        )

    def run(self) -> None:
        """Drain the queue until the shutdown sentinel arrives."""
        while True:
            item = self.queue.get()
            if item is None:
                break
            self.executed += 1
            try:
                result = self._render(item.request, item.key)
            except BaseException as exc:  # noqa: BLE001 - delivered to waiter
                self.errors += 1
                item.complete(item.key, None, exc)
            else:
                item.complete(item.key, result, None)
