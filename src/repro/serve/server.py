"""The calling service: asyncio front end over warm shard workers.

:class:`CallService` is the in-process core.  One request flows:

1. **validate** -- cheap, header-free checks
   (:meth:`~repro.serve.models.CallRequest.validated`), then the BAM
   is fingerprinted and the request reduced to its
   :class:`~repro.serve.models.ResultKey`;
2. **result cache** -- a key already computed returns its stored body
   immediately (byte-identical to the cold response);
3. **coalesce** -- a key already *in flight* attaches to the running
   computation instead of queuing a duplicate: N concurrent identical
   requests compute once and all N receive the result;
4. **backpressure** -- distinct keys occupy bounded pending slots;
   beyond ``max_pending`` the service rejects
   (:class:`~repro.serve.models.ServerOverloadedError`) or, with
   ``on_full="wait"``, queues the submitter until a slot frees;
5. **shard** -- the :class:`~repro.serve.shards.ShardMap` routes the
   key to the worker holding that file/contig's warm readers, which
   renders the body and stores it in the cache *before* waking the
   waiters (so a burst's stragglers hit the cache, not a race).

:func:`serve_tcp` exposes the service over a newline-delimited-JSON
TCP protocol (one request object per line in, one response object per
line out); :func:`run_server` is the blocking CLI entry point with
signal-driven graceful shutdown -- stop accepting, drain in-flight
work, then exit.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from typing import Dict, List, Optional

from repro.serve.cache import CachedResult, ResultCache
from repro.serve.models import (
    CallRequest,
    CallResponse,
    FileFingerprint,
    RequestError,
    ResultKey,
    ServerClosedError,
    ServerOverloadedError,
    config_hash,
)
from repro.serve.shards import ShardMap, ShardWorker, WorkItem

__all__ = ["CallService", "run_server", "serve_tcp"]


class _InFlight:
    """One running computation: its future plus a waiter count."""

    __slots__ = ("future", "waiters")

    def __init__(self) -> None:
        self.future: "concurrent.futures.Future[CachedResult]" = (
            concurrent.futures.Future()
        )
        self.waiters = 1


class CallService:
    """A long-running calling service over warm shard workers.

    Args:
        default_reference: FASTA used by requests that name none.
        n_workers: shard worker threads (each holds its own warm
            readers and indexes).
        max_pending: bound on concurrently pending *distinct*
            computations (backpressure; coalesced duplicates and cache
            hits do not occupy slots).
        result_cache_entries: finished bodies kept resident.
        warm_sources: warm ``BamSource`` instances per worker.
        cache_blocks: per-reader decompressed-block LRU size for the
            warm readers (``None`` uses the BamSource default).
        decompress_threads: BGZF readahead pool size for the warm
            readers (``None`` uses the BamSource default, i.e.
            serial; response bodies are byte-identical either way).
        on_full: ``"reject"`` raises
            :class:`~repro.serve.models.ServerOverloadedError` when
            ``max_pending`` is reached; ``"wait"`` queues the
            submitter until a slot frees.

    Raises:
        ValueError: on a non-positive bound or unknown ``on_full``.
    """

    def __init__(
        self,
        *,
        default_reference: Optional[str] = None,
        n_workers: int = 2,
        max_pending: int = 32,
        result_cache_entries: int = 256,
        warm_sources: int = 4,
        cache_blocks: Optional[int] = None,
        decompress_threads: Optional[int] = None,
        on_full: str = "reject",
    ) -> None:
        if max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        if on_full not in ("reject", "wait"):
            raise ValueError(f"on_full must be 'reject' or 'wait', got {on_full!r}")
        if cache_blocks is not None and cache_blocks <= 0:
            raise ValueError(
                f"cache_blocks must be positive, got {cache_blocks}"
            )
        if decompress_threads is not None and decompress_threads < 0:
            raise ValueError(
                f"decompress_threads must be >= 0, got {decompress_threads}"
            )
        self.default_reference = default_reference
        self.max_pending = max_pending
        self.on_full = on_full
        self._cache = ResultCache(result_cache_entries)
        self._shards = ShardMap(n_workers)
        self._workers: List[ShardWorker] = [
            ShardWorker(
                i,
                warm_sources=warm_sources,
                cache_blocks=cache_blocks,
                decompress_threads=decompress_threads,
            )
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()
        self._lock = threading.Lock()
        self._slots = threading.Semaphore(max_pending)
        self._inflight: Dict[ResultKey, _InFlight] = {}
        self._closed = False
        # request-level counters (under self._lock)
        self._requests_total = 0
        self._cache_hits = 0
        self._coalesced = 0
        self._rejected = 0
        self._computed = 0
        self._errors = 0

    # -- keying ---------------------------------------------------------------

    def _key_for(self, request: CallRequest) -> ResultKey:
        """Reduce a validated request to its cache/coalescing key."""
        bam = FileFingerprint.of(request.bam)
        reference = FileFingerprint.of(request.reference)
        return ResultKey(
            bam=bam,
            region=request.region_key(),
            config=config_hash(
                request.config,
                request.pileup,
                request.output_format,
                reference,
            ),
        )

    # -- responses ------------------------------------------------------------

    def _serve_stats(self, *, cached: bool, coalesced: bool) -> Dict[str, object]:
        """The ``"serve"`` sub-dict attached to every response."""
        with self._lock:
            counters = {
                "requests_total": self._requests_total,
                "result_cache_hits": self._cache_hits,
                "coalesced": self._coalesced,
                "rejected": self._rejected,
                "computed": self._computed,
                "errors": self._errors,
                "in_flight": len(self._inflight),
            }
        return {
            "result_cache_hit": bool(cached),
            "request_coalesced": bool(coalesced),
            "result_cache": self._cache.to_dict(),
            **counters,
        }

    def _response(
        self, key: ResultKey, result: CachedResult, *, cached: bool, coalesced: bool
    ) -> CallResponse:
        """Assemble a response around a (fresh or cached) result."""
        stats = dict(result.stats)
        stats["serve"] = self._serve_stats(cached=cached, coalesced=coalesced)
        return CallResponse(
            body=result.body,
            output_format=result.output_format,
            cached=cached,
            coalesced=coalesced,
            key=key,
            stats=stats,
        )

    # -- completion (worker thread) -------------------------------------------

    def _complete(
        self,
        key: ResultKey,
        result: Optional[CachedResult],
        exc: Optional[BaseException],
    ) -> None:
        """Worker callback: cache the result, free the slot, wake the
        waiters.  The cache store happens *before* the future resolves
        so a waiter observing completion can already hit the cache."""
        if result is not None:
            self._cache.put(key, result)
        with self._lock:
            entry = self._inflight.pop(key, None)
            if exc is None:
                self._computed += 1
            else:
                self._errors += 1
        self._slots.release()
        if entry is not None:
            if exc is not None:
                entry.future.set_exception(exc)
            else:
                entry.future.set_result(result)

    # -- submission -----------------------------------------------------------

    async def submit(self, request: CallRequest) -> CallResponse:
        """Serve one request (validate, coalesce, compute or hit).

        Raises:
            ValidationError: malformed request.
            ServerOverloadedError: backpressure bound hit (reject mode).
            ServerClosedError: the service is shutting down.
            RequestError: the computation itself failed (e.g. a region
                contig missing from the BAM header).
        """
        loop = asyncio.get_running_loop()
        request = request.validated()
        key = self._key_for(request)
        with self._lock:
            if self._closed:
                raise ServerClosedError("service is shutting down")
            self._requests_total += 1
        coalesced = False
        entry: Optional[_InFlight] = None
        cached: Optional[CachedResult] = None
        while entry is None:
            with self._lock:
                if self._closed:
                    raise ServerClosedError("service is shutting down")
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache_hits += 1
                    break
                running = self._inflight.get(key)
                if running is not None:
                    running.waiters += 1
                    self._coalesced += 1
                    coalesced = True
                    entry = running
                    break
                if self._slots.acquire(blocking=False):
                    entry = _InFlight()
                    self._inflight[key] = entry
                    shard = self._shards.shard_for(key)
                    self._workers[shard].queue.put(
                        WorkItem(request, key, self._complete)
                    )
                    break
            # Bound hit with no running twin to join.
            if self.on_full == "reject":
                with self._lock:
                    self._rejected += 1
                raise ServerOverloadedError(
                    f"{self.max_pending} computations already pending"
                )
            # Wait mode: block (off-loop) for a slot, release it, and
            # re-run the whole check -- the key may have completed (hit
            # the cache) or started (coalesce) while we waited.
            await loop.run_in_executor(None, self._slots.acquire)
            self._slots.release()
        if cached is not None:
            return self._response(key, cached, cached=True, coalesced=False)
        result = await asyncio.wrap_future(entry.future)
        return self._response(key, result, cached=False, coalesced=coalesced)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Synchronous graceful shutdown: stop accepting, drain the
        queued work (waiters get their results), join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            worker.queue.put(None)  # FIFO: after everything pending
        for worker in self._workers:
            worker.join()

    async def shutdown(self) -> None:
        """Graceful shutdown without blocking the event loop."""
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    @property
    def closed(self) -> bool:
        """True once shutdown has begun."""
        with self._lock:
            return self._closed

    def stats(self) -> Dict[str, object]:
        """JSON-safe service-wide counters (the ``stats`` endpoint)."""
        with self._lock:
            counters = {
                "requests_total": self._requests_total,
                "result_cache_hits": self._cache_hits,
                "coalesced": self._coalesced,
                "rejected": self._rejected,
                "computed": self._computed,
                "errors": self._errors,
                "in_flight": len(self._inflight),
                "closed": self._closed,
            }
        return {
            **counters,
            "max_pending": self.max_pending,
            "n_workers": len(self._workers),
            "result_cache": self._cache.to_dict(),
            "workers": [w.warm_stats() for w in self._workers],
        }

    def __enter__(self) -> "CallService":
        """Context-manager entry (workers already run)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: synchronous graceful shutdown."""
        self.close()


# -- TCP front end -------------------------------------------------------------


async def _handle_connection(
    service: CallService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: JSON request per line, JSON response per
    line.  ``{"op": "stats"}`` returns the service counters;
    request-level failures produce ``{"status": "error", ...}`` and
    keep the connection open."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                response = {
                    "status": "error",
                    "kind": "ValidationError",
                    "error": f"bad JSON: {exc}",
                }
            else:
                if isinstance(payload, dict) and payload.get("op") == "stats":
                    response = {"status": "ok", "stats": service.stats()}
                else:
                    try:
                        request = CallRequest.from_dict(
                            payload,
                            default_reference=service.default_reference,
                        )
                        result = await service.submit(request)
                        response = result.to_dict()
                    except RequestError as exc:
                        response = {
                            "status": "error",
                            "kind": type(exc).__name__,
                            "error": str(exc),
                        }
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()


async def serve_tcp(
    service: CallService,
    host: str = "127.0.0.1",
    port: int = 7341,
    *,
    ready: Optional[asyncio.Event] = None,
) -> "asyncio.base_events.Server":
    """Start the newline-delimited-JSON TCP front end.

    Returns the listening :class:`asyncio.Server`; set ``ready`` to be
    notified once the socket is bound (used by tests and the CLI's
    readiness line).
    """
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )
    if ready is not None:
        ready.set()
    return server


def run_server(
    service: CallService,
    host: str = "127.0.0.1",
    port: int = 7341,
) -> int:
    """Blocking server loop with signal-driven graceful shutdown.

    Binds, prints a readiness line (``serving on HOST:PORT``), then
    runs until SIGINT/SIGTERM; on shutdown it stops accepting
    connections, drains in-flight requests, and returns 0.
    """
    import signal

    async def _main() -> None:
        """Bind, announce readiness, and park until a signal arrives."""
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        server = await serve_tcp(service, host, port)
        addr = server.sockets[0].getsockname()
        print(f"serving on {addr[0]}:{addr[1]}", flush=True)
        try:
            await stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        service.close()
    return 0
