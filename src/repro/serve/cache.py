"""The serving result cache: finished bodies keyed by
:class:`~repro.serve.models.ResultKey`.

The replacement policy is the graduated
:class:`~repro.cachesim.lru.LruCache` (the same structure behind the
BGZF decompressed-block buffer), wrapped with a lock so the asyncio
front end and the shard workers can touch it concurrently.  Keys embed
the BAM's :class:`~repro.serve.models.FileFingerprint`, so
invalidation is structural: a file rewritten in place produces a new
fingerprint and therefore a guaranteed miss -- stale entries age out
of the LRU instead of ever being served.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Optional

from repro.cachesim.lru import LruCache
from repro.serve.models import ResultKey

__all__ = ["CachedResult", "ResultCache"]


@dataclasses.dataclass(frozen=True)
class CachedResult:
    """One finished computation: the rendered body and its run stats.

    Attributes:
        body: complete VCF or JSONL text, exactly as first rendered
            (warm responses are byte-identical to the cold one).
        output_format: which dialect ``body`` is.
        stats: the computing run's
            :meth:`~repro.core.results.RunStats.to_dict` snapshot.
        n_calls: total calls in the body (PASS and filtered).
        n_pass: PASS calls in the body.
    """

    body: str
    output_format: str
    stats: Dict[str, object]
    n_calls: int
    n_pass: int


class ResultCache:
    """A bounded, thread-safe ``ResultKey -> CachedResult`` mapping.

    Args:
        capacity: maximum resident results (LRU eviction beyond it).

    Raises:
        ValueError: if ``capacity`` is not positive.
    """

    def __init__(self, capacity: int) -> None:
        self._lru: LruCache[ResultKey, CachedResult] = LruCache(capacity)
        self._lock = threading.Lock()

    def get(self, key: ResultKey) -> Optional[CachedResult]:
        """Look up ``key`` (counts a hit or miss, promotes on hit)."""
        with self._lock:
            return self._lru.get(key)

    def put(self, key: ResultKey, value: CachedResult) -> None:
        """Store a finished result, evicting the LRU entry if full."""
        with self._lock:
            self._lru.put(key, value)

    def __len__(self) -> int:
        """Number of resident results."""
        with self._lock:
            return len(self._lru)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe counter snapshot for response/server stats."""
        with self._lock:
            return {
                "entries": len(self._lru),
                "capacity": int(self._lru.capacity),
                "hits": int(self._lru.hits),
                "misses": int(self._lru.misses),
                "evictions": int(self._lru.evictions),
                "hit_rate": float(self._lru.hit_rate),
            }
