"""The OpenMP-style shared-memory parallel driver (paper Section II-B).

Faithful to the paper's experimental branch:

* the genome is tiled into chunks of columns;
* a scheduler (default **dynamic**) hands chunks to workers;
* each worker owns an *independent* reader over the input -- a
  :class:`~repro.io.bam.BamReader` of its own for BAM sources, or a
  read-only view of the shared sample matrices for in-memory sources;
* workers produce raw (unfiltered) calls so the dynamic post-filter
  runs exactly **once** on the merged result -- the fix for the
  legacy wrapper's double-filtering inconsistency;
* each chunk is evaluated by the engine ``config.engine`` selects --
  the per-allele streaming loop or the vectorised batched engine
  (:mod:`repro.core.batched`); the dispatch happens inside
  :meth:`~repro.core.caller.VariantCaller.call_columns` per chunk, so
  batched screening amortises over exactly one scheduling chunk at a
  time and composes with every scheduler/backend combination;
* every worker records trace events (decompress / bam-iter / prob /
  barrier) so the run can be rendered as the paper's Figure 2.

Backends: ``"thread"`` (shared memory, the OpenMP analogue -- NumPy
kernels release the GIL so the probability stage does overlap),
``"process"`` (fork-based, for real CPU scaling) and ``"serial"``
(worker 0 does everything; deterministic baseline).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.core.filters import DynamicFilterPolicy, filter_once
from repro.core.results import CallResult, RunStats
from repro.io.regions import Region
from repro.parallel.partition import chunk_region
from repro.parallel.scheduler import make_scheduler
from repro.parallel.trace import Category, Tracer
from repro.pileup.engine import PileupConfig

__all__ = ["ParallelCallOptions", "parallel_call"]


@dataclasses.dataclass(frozen=True)
class ParallelCallOptions:
    """Knobs of the parallel-for driver.

    Attributes:
        n_workers: worker count (threads or processes).
        chunk_columns: columns per scheduling chunk.
        schedule: ``"static"`` / ``"dynamic"`` / ``"guided"``.
        backend: ``"thread"`` / ``"process"`` / ``"serial"``.
    """

    n_workers: int = 4
    chunk_columns: int = 256
    schedule: str = "dynamic"
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        if self.chunk_columns <= 0:
            raise ValueError("chunk_columns must be positive")
        if self.schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.backend not in ("thread", "process", "serial"):
            raise ValueError(f"unknown backend {self.backend!r}")


def _flatten(item) -> List[Region]:
    """Schedulers may hand back one Region or a span of them."""
    if isinstance(item, Region):
        return [item]
    return list(item)


class _SampleSource:
    """Per-worker access to an in-memory SimulatedSample."""

    def __init__(self, sample, pileup_config: PileupConfig) -> None:
        self.sample = sample
        self.pileup_config = pileup_config

    def columns_for(self, chunk: Region, tracer: Tracer, worker: int):
        from repro.pileup.vectorized import pileup_sample

        with tracer.span(worker, Category.BAM_ITER):
            return list(pileup_sample(self.sample, chunk, self.pileup_config))


class _BamSource:
    """Per-worker BAM readers with linear-index seeks."""

    def __init__(
        self, path, reference: str, pileup_config: PileupConfig
    ) -> None:
        from repro.io.linear_index import build_index

        self.path = os.fspath(path)
        self.reference = reference
        self.pileup_config = pileup_config
        self.index = build_index(self.path)
        self._local = threading.local()

    def _reader(self):
        from repro.io.bam import BamReader

        # One reader per (process, thread): forked children must not
        # share the parent's file descriptor offset.
        key = os.getpid()
        reader = getattr(self._local, "reader", None)
        if reader is None or getattr(self._local, "pid", None) != key:
            reader = BamReader(self.path)  # independent reader per worker
            self._local.reader = reader
            self._local.pid = key
        return reader

    def columns_for(self, chunk: Region, tracer: Tracer, worker: int):
        from repro.pileup.engine import pileup

        reader = self._reader()
        t_dec0 = reader._bgzf.time_decompress
        t0 = time.perf_counter()
        reader.seek(self.index.query(chunk.start))

        def reads():
            while True:
                rec = reader.read_record()
                if rec is None:
                    return
                if rec.pos >= chunk.end:
                    return
                yield rec

        columns = list(
            pileup(reads(), self.reference, chunk, self.pileup_config)
        )
        t1 = time.perf_counter()
        dec = reader._bgzf.time_decompress - t_dec0
        # Attribute inflation time to DECOMPRESS and the remainder of
        # the read+pileup phase to BAM_ITER, as HPC-Toolkit would.
        tracer.record(worker, Category.DECOMPRESS, t0, t0 + dec)
        tracer.record(worker, Category.BAM_ITER, t0 + dec, t1)
        return columns


def _worker_loop(
    worker: int,
    scheduler,
    source,
    caller: VariantCaller,
    region_length: int,
    tracer: Tracer,
) -> CallResult:
    """One worker: pull chunks until the scheduler runs dry."""
    merged = CallResult(calls=[], stats=RunStats())
    while True:
        with tracer.span(worker, Category.SCHED):
            item = scheduler.next(worker)
        if item is None:
            break
        for chunk in _flatten(item):
            columns = source.columns_for(chunk, tracer, worker)
            with tracer.span(worker, Category.PROB):
                result = caller.call_columns(
                    columns, region_length, apply_filters=False
                )
            merged.merge(result)
    return merged


def parallel_call(
    source: Union["os.PathLike", str, object],
    reference: str,
    region: Optional[Region] = None,
    *,
    config: Optional[CallerConfig] = None,
    pileup_config: Optional[PileupConfig] = None,
    filter_policy: Optional[DynamicFilterPolicy] = DynamicFilterPolicy(),
    options: Optional[ParallelCallOptions] = None,
    tracer: Optional[Tracer] = None,
) -> CallResult:
    """Call variants in parallel over column chunks.

    Args:
        source: a :class:`~repro.sim.reads.SimulatedSample` or a BAM
            file path.
        reference: reference sequence for the region's chromosome.
        region: scope; defaults to the whole reference/sample genome.
        config: caller configuration (default: improved preset).
        pileup_config: pileup filters.
        filter_policy: dynamic post-filter, applied exactly once on
            the merged calls (pass ``None`` to skip).
        options: parallel options.
        tracer: optional tracer to collect Figure 2 events into.

    Returns:
        The merged, single-pass-filtered :class:`CallResult`.  The
        PASS call set is identical to a single-process run with the
        same configuration (tested), unlike the legacy wrapper.
    """
    opts = options or ParallelCallOptions()
    caller = VariantCaller(
        config or CallerConfig.improved(),
        pileup_config=pileup_config,
        filter_policy=None,  # workers never filter; the driver does.
    )
    trc = tracer or Tracer()

    # Resolve the source and default region.
    if hasattr(source, "starts") and hasattr(source, "genome"):
        if region is None:
            region = Region(source.genome.name, 0, len(source.genome))
        src = _SampleSource(source, caller.pileup_config)
    else:
        if region is None:
            from repro.io.bam import BamReader

            with BamReader(source) as reader:
                name, length = reader.header.references[0]
            region = Region(name, 0, length)
        src = _BamSource(source, reference, caller.pileup_config)

    chunks = chunk_region(region, opts.chunk_columns)
    region_length = len(region)

    if opts.backend == "serial":
        scheduler = make_scheduler(opts.schedule, chunks, 1)
        merged = _worker_loop(0, scheduler, src, caller, region_length, trc)
    elif opts.backend == "thread":
        scheduler = make_scheduler(opts.schedule, chunks, opts.n_workers)
        results: List[Optional[CallResult]] = [None] * opts.n_workers

        def run(w: int) -> None:
            results[w] = _worker_loop(
                w, scheduler, src, caller, region_length, trc
            )

        threads = [
            threading.Thread(target=run, args=(w,), name=f"omp-{w}")
            for w in range(opts.n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = CallResult(calls=[], stats=RunStats())
        for r in results:
            if r is not None:
                merged.merge(r)
    else:  # process backend
        merged = _process_backend(
            src, chunks, caller, region_length, opts, trc
        )

    _record_barrier(trc, opts.n_workers if opts.backend != "serial" else 1)

    if filter_policy is not None:
        merged.calls = filter_once(merged.calls, filter_policy)
    return merged


def _record_barrier(tracer: Tracer, n_workers: int) -> None:
    """Synthesise end-barrier events: each worker waits from its last
    activity until the slowest worker finishes (the dark-green tail in
    Figure 2)."""
    events = tracer.events
    if not events:
        return
    t_end = max(e.end for e in events)
    for w in range(n_workers):
        w_events = [e for e in events if e.worker == w]
        if not w_events:
            continue
        last = max(e.end for e in w_events)
        if t_end - last > 1e-9:
            tracer.record(w, Category.BARRIER, last, t_end)


# -- process backend ----------------------------------------------------------

_FORK_STATE: dict = {}


def _process_worker(args: Tuple[int, List[Region]]):
    worker, chunk_list = args
    src = _FORK_STATE["src"]
    caller = _FORK_STATE["caller"]
    region_length = _FORK_STATE["region_length"]
    tracer = Tracer()
    merged = CallResult(calls=[], stats=RunStats())
    for chunk in chunk_list:
        columns = src.columns_for(chunk, tracer, worker)
        with tracer.span(worker, Category.PROB):
            result = caller.call_columns(
                columns, region_length, apply_filters=False
            )
        merged.merge(result)
    return merged.calls, merged.stats, tracer.events


def _process_backend(
    src,
    chunks: Sequence[Region],
    caller: VariantCaller,
    region_length: int,
    opts: ParallelCallOptions,
    tracer: Tracer,
) -> CallResult:
    """Fork-based backend: chunks pre-partitioned round-robin (static)
    across processes; shared state inherited copy-on-write."""
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    assignments = [
        (w, [chunks[i] for i in range(w, len(chunks), opts.n_workers)])
        for w in range(opts.n_workers)
    ]
    _FORK_STATE["src"] = src
    _FORK_STATE["caller"] = caller
    _FORK_STATE["region_length"] = region_length
    try:
        with ctx.Pool(opts.n_workers) as pool:
            outputs = pool.map(_process_worker, assignments)
    finally:
        _FORK_STATE.clear()
    merged = CallResult(calls=[], stats=RunStats())
    for calls, stats, events in outputs:
        merged.merge(CallResult(calls=calls, stats=stats))
        for e in events:
            tracer.record(e.worker, e.category, e.start, e.end)
    return merged
