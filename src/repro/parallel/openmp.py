"""The OpenMP-style shared-memory parallel driver (paper Section II-B).

The worker loops, per-worker BAM readers and trace bookkeeping that
used to live here are now the pipeline execution layer
(:mod:`repro.pipeline.engine` and :mod:`repro.pipeline.sources`);
:func:`parallel_call` remains as a thin, equivalence-tested adapter
that maps its historical options onto a
:class:`~repro.pipeline.Pipeline`:

* the genome is tiled into chunks of columns;
* a scheduler (default **dynamic**) hands chunks to workers;
* each worker owns an *independent* reader over the input;
* workers produce raw (unfiltered) calls so the dynamic post-filter
  runs exactly **once** on the merged result -- the fix for the
  legacy wrapper's double-filtering inconsistency;
* every worker records trace events (decompress / bam-iter / prob /
  barrier) so the run can be rendered as the paper's Figure 2.

Backends: ``"thread"`` (shared memory, the OpenMP analogue -- NumPy
kernels release the GIL so the probability stage does overlap),
``"process"`` (fork-based, for real CPU scaling) and ``"serial"``
(worker 0 does everything; deterministic baseline).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Union

from repro.core.config import CallerConfig
from repro.core.filters import DynamicFilterPolicy
from repro.core.results import CallResult
from repro.io.regions import Region
from repro.parallel.trace import Tracer
from repro.pileup.engine import PileupConfig

__all__ = ["ParallelCallOptions", "parallel_call"]


@dataclasses.dataclass(frozen=True)
class ParallelCallOptions:
    """Knobs of the parallel-for driver.

    Attributes:
        n_workers: worker count (threads or processes).
        chunk_columns: columns per scheduling chunk.
        schedule: ``"static"`` / ``"dynamic"`` / ``"guided"``.
        backend: ``"thread"`` / ``"process"`` / ``"serial"``.
    """

    n_workers: int = 4
    chunk_columns: int = 256
    schedule: str = "dynamic"
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        if self.chunk_columns <= 0:
            raise ValueError("chunk_columns must be positive")
        if self.schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.backend not in ("thread", "process", "serial"):
            raise ValueError(f"unknown backend {self.backend!r}")


def parallel_call(
    source: Union["os.PathLike", str, object],
    reference: str,
    region: Optional[Region] = None,
    *,
    config: Optional[CallerConfig] = None,
    pileup_config: Optional[PileupConfig] = None,
    filter_policy: Optional[DynamicFilterPolicy] = DynamicFilterPolicy(),
    options: Optional[ParallelCallOptions] = None,
    tracer: Optional[Tracer] = None,
) -> CallResult:
    """Call variants in parallel over column chunks.

    Args:
        source: a :class:`~repro.sim.reads.SimulatedSample` or a BAM
            file path.
        reference: reference sequence for the region's chromosome (a
            ``{name: sequence}`` mapping also works for BAM sources).
        region: scope; defaults to the whole sample genome, or every
            contig of a BAM source.
        config: caller configuration (default: improved preset).
        pileup_config: pileup filters.
        filter_policy: dynamic post-filter, applied exactly once on
            the merged calls (pass ``None`` to skip).
        options: parallel options.
        tracer: optional tracer to collect Figure 2 events into.

    Returns:
        The merged, single-pass-filtered :class:`CallResult`.  The
        PASS call set is identical to a single-process run with the
        same configuration (tested), unlike the legacy wrapper.

    .. deprecated:: prefer building a
       :class:`~repro.pipeline.Pipeline` with an
       :class:`~repro.pipeline.ExecutionPolicy` directly; this adapter
       remains equivalent.
    """
    from repro.pipeline import (
        BamSource,
        ExecutionPolicy,
        Pipeline,
        SampleSource,
    )

    opts = options or ParallelCallOptions()
    if hasattr(source, "starts") and hasattr(source, "genome"):
        src = SampleSource(source, region=region, pileup_config=pileup_config)
    else:
        src = BamSource(
            source,
            reference,
            regions=[region] if region is not None else None,
            pileup_config=pileup_config,
        )
    serial = opts.backend == "serial"
    policy = ExecutionPolicy(
        mode="serial" if serial else opts.backend,
        n_workers=1 if serial else opts.n_workers,
        chunk_columns=opts.chunk_columns,
        schedule=opts.schedule,
    )
    return Pipeline(
        src,
        config=config,
        filter_policy=filter_policy,
        policy=policy,
        tracer=tracer,
    ).run()
