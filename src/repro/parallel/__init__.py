"""Parallel execution of the caller (the paper's Section II-B).

The original LoFreq parallelised through an external wrapper script
(``lofreq2_call_pparallel.py``) that split the input, spawned an
independent process per partition and merged the outputs -- running
the dynamic filter stage once per partition *and again* on the merge,
the inconsistency bug the paper fixes.  The paper's experimental
branch replaces this with an OpenMP parallel-for over column chunks
with dynamic scheduling and one BAM reader per thread.

* :mod:`repro.parallel.partition` -- genome chunking.
* :mod:`repro.parallel.scheduler` -- static / dynamic / guided chunk
  schedulers (OpenMP's three classic ``schedule()`` kinds).
* :mod:`repro.parallel.openmp` -- the shared-memory parallel-for
  driver with per-worker readers and single-stage final filtering.
* :mod:`repro.parallel.legacy` -- a faithful model of the wrapper
  script, double filtering included.
* :mod:`repro.parallel.trace` -- per-worker event tracing and the
  ASCII timeline renderer behind the Figure 2 reproduction.
"""

from repro.parallel.legacy import legacy_call_bam, legacy_parallel_call
from repro.parallel.openmp import ParallelCallOptions, parallel_call
from repro.parallel.partition import chunk_region, partition_region
from repro.parallel.scheduler import (
    DynamicScheduler,
    GuidedScheduler,
    StaticScheduler,
    make_scheduler,
)
from repro.parallel.trace import Category, TraceEvent, Tracer

__all__ = [
    "Category",
    "DynamicScheduler",
    "GuidedScheduler",
    "ParallelCallOptions",
    "StaticScheduler",
    "TraceEvent",
    "Tracer",
    "chunk_region",
    "legacy_call_bam",
    "legacy_parallel_call",
    "make_scheduler",
    "parallel_call",
    "partition_region",
]
