"""The legacy wrapper-script parallel mode (and its filtering bug).

Original LoFreq parallelism (``lofreq2_call_pparallel.py``): partition
the columns equally, spawn an independent LoFreq *process* per
partition, concatenate the per-partition VCFs, filter the result.
Because each LoFreq process also runs its own dynamic filter stage on
its partition, calls pass through **two** rounds of filtering with
thresholds fitted to *different* call sets -- so the final output
depends on how the genome was partitioned.  Sandmann et al. (2017)
flagged the inconsistency; the paper's OpenMP reorganisation fixes it
by moving all calling into one process with a single final filter.

:func:`legacy_parallel_call` reproduces the buggy pipeline faithfully
over an in-memory sample (including, optionally, running partitions
in real processes); :func:`legacy_call_bam` is the same pipeline over
a BAM file (relocated here from ``cli.py``, now a thin adapter over
``Pipeline`` in ``"legacy"`` mode).  The test suite and
``benchmarks/bench_filterbug.py`` demonstrate both the inconsistency
and that :func:`repro.parallel.openmp.parallel_call` does not share
it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.core.filters import DynamicFilterPolicy, apply_filters
from repro.core.results import CallResult, RunStats, VariantCall
from repro.io.regions import Region
from repro.parallel.partition import partition_region
from repro.pileup.engine import PileupConfig

__all__ = ["legacy_call_bam", "legacy_parallel_call"]


def _call_partition(
    sample,
    reference: str,
    partition: Region,
    config: CallerConfig,
    pileup_config: Optional[PileupConfig],
    policy: DynamicFilterPolicy,
) -> CallResult:
    """One 'process' of the legacy pipeline: call the partition and run
    the dynamic filter *on the partition's own calls* (stage one of the
    double filtering)."""
    caller = VariantCaller(
        config, pileup_config=pileup_config, filter_policy=None
    )
    # NOTE: the partition caller Bonferroni-corrects over *its own*
    # length -- LoFreq run on a slice has no idea how big the whole
    # genome is.  This is part of the "filter values are dynamically
    # set during a LoFreq run" problem the paper describes.
    result = caller.call_sample(
        sample, region=partition, apply_filters=False
    )
    # Stage-one filter: thresholds fitted to this partition only.
    thresholds = policy.fit(result.calls)
    result.calls = apply_filters(result.calls, thresholds)
    return result


def legacy_parallel_call(
    sample,
    reference: str,
    region: Optional[Region] = None,
    *,
    n_partitions: int = 4,
    config: Optional[CallerConfig] = None,
    pileup_config: Optional[PileupConfig] = None,
    filter_policy: Optional[DynamicFilterPolicy] = None,
    use_processes: bool = False,
) -> CallResult:
    """Run the legacy partition-and-merge pipeline, bug included.

    Args:
        sample: a :class:`~repro.sim.reads.SimulatedSample`.
        reference: reference sequence.
        region: scope (defaults to the whole genome).
        n_partitions: number of equal partitions / worker processes.
        config: caller configuration.
        pileup_config: pileup filters.
        filter_policy: the dynamic filter policy (fitted twice!).
        use_processes: actually fork one process per partition, as the
            wrapper script did; the default runs them sequentially,
            which produces byte-identical output faster.

    Returns:
        The merged result after the second filtering stage.  Note the
        PASS set generally differs from a single-process run -- that
        is the bug, reproduced on purpose.
    """
    cfg = config or CallerConfig.improved()
    policy = filter_policy or DynamicFilterPolicy()
    if region is None:
        region = Region(sample.genome.name, 0, len(sample.genome))
    partitions = partition_region(region, n_partitions)

    if use_processes:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        with ctx.Pool(min(n_partitions, len(partitions))) as pool:
            results = pool.starmap(
                _call_partition,
                [
                    (sample, reference, part, cfg, pileup_config, policy)
                    for part in partitions
                ],
            )
    else:
        results = [
            _call_partition(
                sample, reference, part, cfg, pileup_config, policy
            )
            for part in partitions
        ]

    # Merge: the wrapper concatenates the per-partition VCFs, keeping
    # only their PASS records...
    merged_stats = RunStats()
    survivors: List[VariantCall] = []
    for r in results:
        merged_stats.merge(r.stats)
        survivors.extend(c for c in r.calls if c.filter == "PASS")
    survivors.sort(key=lambda c: (c.chrom, c.pos, c.alt))

    # ... and then filters the combined file again, with thresholds
    # re-fitted to the merged call set (stage two).
    thresholds = policy.fit(survivors)
    final = apply_filters(survivors, thresholds)
    return CallResult(calls=final, stats=merged_stats)


def legacy_call_bam(
    bam_path,
    reference,
    region: Optional[Region] = None,
    *,
    config: Optional[CallerConfig] = None,
    n_partitions: int = 4,
    pileup_config: Optional[PileupConfig] = None,
    filter_policy: Optional[DynamicFilterPolicy] = None,
) -> CallResult:
    """Run the legacy partition-per-process pipeline over a BAM file.

    The CLI's ``--legacy-parallel`` demonstration path, relocated from
    ``cli.py``: each partition is called independently (Bonferroni
    scope = the partition's own length), filtered with thresholds
    fitted to its own calls, and the merged PASS survivors are
    filtered *again* -- the double-filtering inconsistency, reproduced
    on purpose.

    Args:
        bam_path: coordinate-sorted BAM file.
        reference: reference sequence (or ``{name: sequence}`` map).
        region: scope; defaults to the BAM's **first** reference (the
            legacy wrapper never understood multi-contig inputs).
        config: caller configuration.
        n_partitions: equal partitions / simulated worker processes.
        pileup_config: pileup filters.
        filter_policy: the dynamic filter policy (fitted twice!).
    """
    from repro.pipeline import BamSource, ExecutionPolicy, Pipeline

    if region is None:
        from repro.io.bam import BamReader

        with BamReader(bam_path) as reader:
            name, length = reader.header.references[0]
        region = Region(name, 0, length)
    source = BamSource(
        bam_path, reference, regions=[region], pileup_config=pileup_config
    )
    return Pipeline(
        source,
        config=config or CallerConfig.improved(),
        filter_policy=filter_policy or DynamicFilterPolicy(),
        policy=ExecutionPolicy(mode="legacy", n_workers=max(1, n_partitions)),
    ).run()
