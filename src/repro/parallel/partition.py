"""Genome partitioning for parallel work distribution.

Two granularities are used:

* :func:`partition_region` -- one contiguous partition per worker, the
  legacy wrapper's static split;
* :func:`chunk_region` -- many small fixed-size chunks, the work items
  OpenMP-style dynamic scheduling pulls from.  Smaller chunks trade
  scheduling overhead for balance; the paper's Discussion notes the
  OpenMP version "has the potential to avoid load imbalances ... by
  using smaller partitions towards the end of the run", which the
  guided scheduler implements.
"""

from __future__ import annotations

from typing import List

from repro.io.regions import Region, split_region

__all__ = ["partition_region", "chunk_region"]


def partition_region(region: Region, n_workers: int) -> List[Region]:
    """Split a region into ``n_workers`` near-equal contiguous pieces
    (the legacy script's strategy: "partition the columns equally")."""
    return split_region(region, n_workers)


def chunk_region(region: Region, chunk_size: int) -> List[Region]:
    """Tile a region with fixed-size chunks (last one may be short).

    Raises:
        ValueError: for non-positive chunk size.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    out: List[Region] = []
    pos = region.start
    while pos < region.end:
        end = min(pos + chunk_size, region.end)
        out.append(Region(region.chrom, pos, end))
        pos = end
    return out
