"""Chunk schedulers modelling OpenMP's ``schedule()`` kinds.

A scheduler hands out work items (genome chunks) to workers.  All three
classic OpenMP policies are implemented so the ablation benchmark can
compare them on a variant-hotspot workload:

* **static** -- chunks pre-assigned round-robin; zero coordination but
  no rebalancing (a worker stuck with the expensive partition drags
  the whole run -- the imbalance visible in the paper's Figure 2);
* **dynamic** -- workers pull the next chunk from a shared queue when
  free (what the paper's branch uses via ``#pragma omp for
  schedule(dynamic)``);
* **guided** -- like dynamic but hands out exponentially shrinking
  spans, "smaller partitions towards the end of the run" per the
  Discussion.

Thread safety: a single lock around the cursor; contention is
negligible at realistic chunk counts.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, TypeVar

__all__ = [
    "StaticScheduler",
    "DynamicScheduler",
    "GuidedScheduler",
    "make_scheduler",
]

T = TypeVar("T")


class StaticScheduler:
    """Round-robin pre-assignment: worker ``w`` gets items
    ``w, w + n_workers, w + 2 n_workers, ...``."""

    name = "static"

    def __init__(self, items: Sequence[T], n_workers: int) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self._items = list(items)
        self._n_workers = n_workers
        self._cursors = list(range(n_workers))

    def next(self, worker: int) -> Optional[T]:
        """The worker's next pre-assigned item, or ``None`` when done."""
        if not (0 <= worker < self._n_workers):
            raise ValueError(f"worker {worker} out of range")
        cursor = self._cursors[worker]
        if cursor >= len(self._items):
            return None
        self._cursors[worker] = cursor + self._n_workers
        return self._items[cursor]


class DynamicScheduler:
    """Shared-queue pull scheduling: first free worker takes the next
    item.  This is ``schedule(dynamic, 1)`` over pre-built chunks."""

    name = "dynamic"

    def __init__(self, items: Sequence[T], n_workers: int) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self._items = list(items)
        self._cursor = 0
        self._lock = threading.Lock()

    def next(self, worker: int) -> Optional[T]:
        with self._lock:
            if self._cursor >= len(self._items):
                return None
            item = self._items[self._cursor]
            self._cursor += 1
            return item


class GuidedScheduler:
    """Guided self-scheduling over *contiguous spans* of the item list.

    Each grab takes ``max(min_chunk, remaining / (factor * n_workers))``
    consecutive items, so early grabs are large (low overhead) and the
    tail is fine-grained (good balance).  Returned items are lists of
    the underlying items; the driver flattens them.
    """

    name = "guided"

    def __init__(
        self,
        items: Sequence[T],
        n_workers: int,
        *,
        min_chunk: int = 1,
        factor: float = 2.0,
    ) -> None:
        if min_chunk <= 0:
            raise ValueError(f"min_chunk must be positive, got {min_chunk}")
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self._items = list(items)
        self._cursor = 0
        self._n_workers = max(1, n_workers)
        self._min_chunk = min_chunk
        self._factor = factor
        self._lock = threading.Lock()

    def next(self, worker: int) -> Optional[List[T]]:
        with self._lock:
            remaining = len(self._items) - self._cursor
            if remaining <= 0:
                return None
            size = max(
                self._min_chunk,
                int(remaining / (self._factor * self._n_workers)),
            )
            size = min(size, remaining)
            span = self._items[self._cursor : self._cursor + size]
            self._cursor += size
            return span


def make_scheduler(kind: str, items: Sequence[T], n_workers: int):
    """Factory: ``"static"`` / ``"dynamic"`` / ``"guided"``.

    Raises:
        ValueError: on an unknown kind.
    """
    if kind == "static":
        return StaticScheduler(items, n_workers)
    if kind == "dynamic":
        return DynamicScheduler(items, n_workers)
    if kind == "guided":
        return GuidedScheduler(items, n_workers)
    raise ValueError(f"unknown scheduler kind {kind!r}")
