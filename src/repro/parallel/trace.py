"""Per-worker execution tracing and the ASCII timeline (Figure 2).

The paper profiles its OpenMP build with HPC-Toolkit and reads off a
trace: per-thread timelines coloured by activity (pink = probability
computation, teal = BAM iteration, light blue = decompression, dark
green = barrier), with one straggler thread visibly dragging the
barrier.  :class:`Tracer` collects the same event structure from our
workers; :func:`render_timeline` draws it as text; and
:func:`imbalance_metrics` quantifies what the picture shows (max/mean
busy time, barrier waits, per-category shares).
"""

from __future__ import annotations

import dataclasses
import enum
import threading
import time
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Category",
    "TraceEvent",
    "Tracer",
    "render_timeline",
    "imbalance_metrics",
]


class Category(enum.Enum):
    """Activity categories matching the paper's Figure 2 legend."""

    DECOMPRESS = "decompress"  # light blue: BGZF block inflation
    BAM_ITER = "bam_iter"  # teal: record decoding / pileup build
    PROB = "prob"  # pink: Poisson-binomial / Poisson computation
    BARRIER = "barrier"  # dark green: waiting at the end barrier
    SCHED = "sched"  # scheduler interaction (tiny, by design)


#: One display character per category for the text timeline.
_CATEGORY_CHAR: Dict[Category, str] = {
    Category.DECOMPRESS: "d",
    Category.BAM_ITER: "b",
    Category.PROB: "P",
    Category.BARRIER: "=",
    Category.SCHED: "s",
}


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """A half-open time interval of one worker doing one activity."""

    worker: int
    category: Category
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Thread-safe event collector.

    Use either :meth:`record` with explicit timestamps or the
    :meth:`span` context manager::

        with tracer.span(worker_id, Category.PROB):
            ... compute ...
    """

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()
        self.t0 = time.perf_counter()

    def record(
        self, worker: int, category: Category, start: float, end: float
    ) -> None:
        """Record an interval (perf_counter timestamps)."""
        with self._lock:
            self._events.append(TraceEvent(worker, category, start, end))

    def span(self, worker: int, category: Category) -> "_Span":
        return _Span(self, worker, category)

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's events in (process-backend workers
        return their tracers by value)."""
        with self._lock:
            self._events.extend(other.events)


class _Span:
    """Context manager recording one interval on exit."""

    def __init__(self, tracer: Tracer, worker: int, category: Category) -> None:
        self._tracer = tracer
        self._worker = worker
        self._category = category
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.record(
            self._worker, self._category, self._start, time.perf_counter()
        )


def render_timeline(
    events: Sequence[TraceEvent],
    *,
    width: int = 100,
    n_workers: Optional[int] = None,
) -> str:
    """Render events as an ASCII trace: one row per worker, one
    character per time bucket showing the bucket's dominant category.

    Legend: ``d`` decompress, ``b`` bam-iter, ``P`` probability,
    ``=`` barrier, ``s`` scheduler, ``.`` idle.
    """
    if not events:
        return "(no events)"
    t_min = min(e.start for e in events)
    t_max = max(e.end for e in events)
    span = max(t_max - t_min, 1e-12)
    workers = n_workers or (max(e.worker for e in events) + 1)
    # accumulate per (worker, bucket, category) time
    acc: Dict[tuple, float] = {}
    for e in events:
        b0 = int((e.start - t_min) / span * width)
        b1 = int((e.end - t_min) / span * width)
        b1 = min(b1, width - 1)
        for b in range(b0, b1 + 1):
            bucket_start = t_min + b * span / width
            bucket_end = bucket_start + span / width
            overlap = min(e.end, bucket_end) - max(e.start, bucket_start)
            if overlap > 0:
                key = (e.worker, b, e.category)
                acc[key] = acc.get(key, 0.0) + overlap
    rows = []
    for w in range(workers):
        chars = []
        for b in range(width):
            best: Optional[Category] = None
            best_t = 0.0
            for cat in Category:
                t = acc.get((w, b, cat), 0.0)
                if t > best_t:
                    best, best_t = cat, t
            chars.append(_CATEGORY_CHAR[best] if best else ".")
        rows.append(f"T{w:02d} |{''.join(chars)}|")
    header = (
        f"trace: {span * 1e3:.1f} ms total, {workers} workers  "
        "[d=decompress b=bam P=prob ==barrier s=sched .=idle]"
    )
    return "\n".join([header] + rows)


def imbalance_metrics(events: Sequence[TraceEvent]) -> Dict[str, float]:
    """Quantify the trace.

    Returns a dict with:
        * ``busy_max`` / ``busy_mean`` / ``imbalance`` -- per-worker
          non-barrier busy time and the OpenMP imbalance ratio
          ``busy_max / busy_mean`` (1.0 = perfect balance);
        * ``barrier_total`` -- total time spent in barriers;
        * ``share_<category>`` -- fraction of all busy time per
          category (the paper: prob + bam dominate, sched minimal).
    """
    if not events:
        return {}
    busy: Dict[int, float] = {}
    by_cat: Dict[Category, float] = {c: 0.0 for c in Category}
    for e in events:
        by_cat[e.category] += e.duration
        if e.category is not Category.BARRIER:
            busy[e.worker] = busy.get(e.worker, 0.0) + e.duration
    busy_values = list(busy.values()) or [0.0]
    busy_mean = sum(busy_values) / len(busy_values)
    busy_max = max(busy_values)
    total_busy = sum(
        t for c, t in by_cat.items() if c is not Category.BARRIER
    )
    out: Dict[str, float] = {
        "busy_max": busy_max,
        "busy_mean": busy_mean,
        "imbalance": busy_max / busy_mean if busy_mean > 0 else 1.0,
        "barrier_total": by_cat[Category.BARRIER],
    }
    for cat in Category:
        if cat is Category.BARRIER:
            continue
        out[f"share_{cat.value}"] = (
            by_cat[cat] / total_busy if total_busy > 0 else 0.0
        )
    return out
