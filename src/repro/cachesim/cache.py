"""A set-associative LRU cache simulator.

Classic textbook model: the cache is ``n_sets`` sets of
``associativity`` lines of ``line_size`` bytes; an access maps to set
``(addr // line_size) % n_sets`` and either hits (tag present; line
promoted to most-recently-used) or misses (LRU line evicted).  Accesses
spanning a line boundary count once per touched line.

The model is exercised by property tests (e.g. a working set smaller
than the cache must converge to a 100% hit rate; a cyclic sweep one
line larger than a fully-associative LRU cache must miss forever) and
by ``benchmarks/bench_cache.py`` for the paper's Discussion claims.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List

__all__ = ["CacheStats", "SetAssociativeCache"]


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per line-granular access (0 when untouched)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class SetAssociativeCache:
    """An LRU set-associative cache.

    Args:
        size_bytes: total capacity.
        line_size: bytes per cache line (power of two).
        associativity: lines per set; ``size_bytes`` must be divisible
            by ``line_size * associativity``.

    Raises:
        ValueError: on inconsistent geometry.
    """

    def __init__(
        self,
        size_bytes: int = 1 << 20,
        line_size: int = 64,
        associativity: int = 16,
    ) -> None:
        if line_size <= 0 or (line_size & (line_size - 1)) != 0:
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        if size_bytes % (line_size * associativity) != 0:
            raise ValueError(
                f"size {size_bytes} not divisible by line*ways "
                f"({line_size} * {associativity})"
            )
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.associativity = associativity
        self.n_sets = size_bytes // (line_size * associativity)
        # Per-set ordered tag list; index -1 = most recently used.
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def access(self, addr: int, size: int = 8) -> int:
        """Touch ``size`` bytes at ``addr``; returns the number of
        misses incurred (one per distinct line touched and absent)."""
        if size <= 0:
            raise ValueError("access size must be positive")
        first = addr // self.line_size
        last = (addr + size - 1) // self.line_size
        misses = 0
        for line in range(first, last + 1):
            if not self._touch_line(line):
                misses += 1
        return misses

    def _touch_line(self, line: int) -> bool:
        """Access one line; True on hit."""
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[set_idx]
        try:
            ways.remove(tag)
            ways.append(tag)  # promote to MRU
            self.stats.hits += 1
            return True
        except ValueError:
            if len(ways) >= self.associativity:
                ways.pop(0)  # evict LRU
            ways.append(tag)
            self.stats.misses += 1
            return False

    def contains(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is resident (no side
        effects on LRU state or stats)."""
        line = addr // self.line_size
        return (line // self.n_sets) in self._sets[line % self.n_sets]

    def flush(self) -> None:
        """Empty the cache (stats preserved)."""
        self._sets = [[] for _ in range(self.n_sets)]

    def run(self, addresses: Iterable[int], size: int = 8) -> CacheStats:
        """Replay an address stream; returns a snapshot of the stats
        delta for this stream."""
        before_h, before_m = self.stats.hits, self.stats.misses
        for addr in addresses:
            self.access(addr, size)
        return CacheStats(
            hits=self.stats.hits - before_h,
            misses=self.stats.misses - before_m,
        )
