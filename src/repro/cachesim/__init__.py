"""Cache behaviour modelling (the Discussion's cache-miss claims).

The paper attributes much of the improved version's speedup to cache
behaviour: the exact DP repeatedly sweeps an O(d) array that stops
fitting in cache around d > 1e5 ("cache miss rate below 15% compared
to over 70% originally").  Lacking hardware counters, this subpackage
replays the two algorithms' memory access patterns through a
set-associative LRU cache model:

* :mod:`repro.cachesim.cache` -- the cache simulator.
* :mod:`repro.cachesim.traces` -- access-trace generators for the DP
  sweep, the Poisson approximation's single pass, and multi-threaded
  interleavings sharing one cache.
* :mod:`repro.cachesim.lru` -- the LRU policy graduated from
  simulation into a real bounded cache, used by
  :class:`repro.io.bgzf.BgzfReader` for decompressed BGZF blocks.
"""

from repro.cachesim.cache import CacheStats, SetAssociativeCache
from repro.cachesim.lru import LruCache
from repro.cachesim.traces import (
    approx_column_trace,
    dp_column_trace,
    interleave_traces,
    replay,
)

__all__ = [
    "CacheStats",
    "LruCache",
    "SetAssociativeCache",
    "approx_column_trace",
    "dp_column_trace",
    "interleave_traces",
    "replay",
]
