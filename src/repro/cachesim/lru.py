"""A real (non-simulated) LRU cache with hit/miss/eviction counters.

The :mod:`repro.cachesim` package started as a *model*: replaying
memory-access traces through :class:`~repro.cachesim.cache.
SetAssociativeCache` to reproduce the paper's cache-miss claims.  This
module graduates the same LRU replacement policy into a production
structure: a bounded mapping used by
:class:`repro.io.bgzf.BgzfReader` to keep recently decompressed BGZF
blocks resident, so repeated and overlapping region queries stop
re-inflating the same 64 KiB blocks.

The counters mirror :class:`~repro.cachesim.cache.CacheStats` (plus an
eviction count) and surface through
:meth:`repro.core.results.RunStats.to_dict` when the pipeline runs
over a :class:`~repro.pipeline.sources.BamSource`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, TypeVar

__all__ = ["LruCache"]

K = TypeVar("K")
V = TypeVar("V")

#: Sentinel distinguishing "absent" from a cached ``None``.
_MISSING = object()


class LruCache(Generic[K, V]):
    """A bounded mapping with least-recently-used eviction.

    The policy is exactly the one the trace simulator models
    (:mod:`repro.cachesim.cache`): a lookup promotes its key to
    most-recently-used; an insert beyond ``capacity`` evicts the
    least-recently-used entry.  All three event classes are counted.

    Example::

        >>> cache = LruCache(capacity=2)
        >>> cache.put("a", 1); cache.put("b", 2)
        >>> cache.get("a")        # promotes "a" over "b"
        1
        >>> cache.put("c", 3)     # evicts "b", the LRU entry
        >>> "b" in cache
        False
        >>> (cache.hits, cache.misses, cache.evictions)
        (1, 0, 1)

    Args:
        capacity: maximum number of resident entries (positive).

    Raises:
        ValueError: if ``capacity`` is not positive.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        #: lookups that found their key resident
        self.hits = 0
        #: lookups that did not
        self.misses = 0
        #: entries dropped to make room
        self.evictions = 0

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Look up ``key``, promoting it to most-recently-used.

        Counts one hit or one miss; returns ``default`` on a miss.
        """
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) ``key`` as the most-recently-used entry,
        evicting the least-recently-used entry if over capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def peek(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Look up ``key`` with no side effects on LRU order or stats.

        Used by concurrent probers (e.g. the BGZF readahead pool) that
        must not skew the hit/miss accounting of real lookups.
        """
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            return default
        return value  # type: ignore[return-value]

    def __contains__(self, key: K) -> bool:
        """Residency probe with no side effects on LRU order or stats."""
        return key in self._entries

    def __len__(self) -> int:
        """Number of resident entries."""
        return len(self._entries)

    def __iter__(self) -> Iterator[K]:
        """Resident keys, least- to most-recently-used."""
        return iter(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters preserved; not counted as
        evictions, matching :meth:`SetAssociativeCache.flush`)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
