"""Memory-access traces for the two probability computations.

The traces model the data layout of the C original:

* **exact DP** (original LoFreq): the probability vector is a full
  ``(d + 1)``-double array; processing read ``n`` sweeps entries
  ``0..n`` reading and writing each (plus one read of the quality /
  probability entry for read ``n``).  Total ~``d^2`` element accesses
  with a sweep-to-sweep reuse distance of O(d) -- the access pattern
  that falls off a cliff once ``8 * d`` exceeds the per-thread cache
  share (the Discussion's d > 1e5 observation).
* **Poisson approximation** (improved, skipped column): one streaming
  pass over the ``d`` quality bytes to accumulate lambda -- O(d)
  accesses, O(1) working set beyond the stream.

Addresses are synthetic but layout-accurate: the probability vector,
the quality array and per-thread copies are placed at disjoint base
addresses.  ``interleave_traces`` merges per-thread streams
round-robin to model threads sharing a last-level cache, which is how
the "running in parallel spills the shared cache" claim is tested.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence

from repro.cachesim.cache import CacheStats, SetAssociativeCache

__all__ = [
    "dp_column_trace",
    "approx_column_trace",
    "interleave_traces",
    "replay",
]

_DOUBLE = 8
_QUAL_BYTE = 1
#: Gap between logical allocations so they never share cache lines.
_REGION_STRIDE = 1 << 24


def _bases(thread: int) -> Dict[str, int]:
    """Base addresses of one thread's allocations."""
    base = thread * _REGION_STRIDE
    return {
        "probvec": base,
        "quals": base + (_REGION_STRIDE // 2),
    }


def dp_column_trace(
    d: int, *, thread: int = 0, stride_reads: int = 1
) -> Iterator[int]:
    """Address stream of the exact DP on a depth-``d`` column.

    Args:
        d: column depth.
        thread: which thread's allocations to use.
        stride_reads: subsample the outer loop (emit every n-th read's
            sweep) to bound trace length at very large d while keeping
            the reuse-distance structure; rates are unaffected because
            every emitted sweep still covers the whole live prefix.
    """
    if d < 0:
        raise ValueError("depth must be non-negative")
    a = _bases(thread)
    for n in range(0, d, stride_reads):
        yield a["quals"] + n * _QUAL_BYTE  # p_n lookup
        # Sweep the live prefix of the probability vector: read + write
        # modelled as two touches of each element.
        for k in range(n + 1):
            addr = a["probvec"] + k * _DOUBLE
            yield addr
            yield addr


def approx_column_trace(d: int, *, thread: int = 0) -> Iterator[int]:
    """Address stream of the Poisson approximation on a depth-``d``
    column: one pass over the quality bytes (lambda accumulates in a
    register)."""
    if d < 0:
        raise ValueError("depth must be non-negative")
    a = _bases(thread)
    for n in range(d):
        yield a["quals"] + n * _QUAL_BYTE


def interleave_traces(traces: Sequence[Iterable[int]]) -> Iterator[int]:
    """Round-robin merge of per-thread address streams (threads
    time-sharing one cache).  Streams may have different lengths."""
    iters = [iter(t) for t in traces]
    while iters:
        alive = []
        for it in iters:
            try:
                yield next(it)
                alive.append(it)
            except StopIteration:
                pass
        iters = alive


def replay(
    trace: Iterable[int],
    cache: SetAssociativeCache | None = None,
    *,
    access_size: int = 8,
) -> CacheStats:
    """Run a trace through a cache; returns the stats delta."""
    c = cache or SetAssociativeCache()
    return c.run(trace, size=access_size)
