"""Call records and run statistics.

:class:`VariantCall` is the caller's output unit (one SNV), converting
losslessly to the VCF dialect in :mod:`repro.io.vcf`.
:class:`RunStats` captures the operational counters behind every
claim in the paper: how many columns took which decision path
(Figure 1b census), how many DP steps ran (the work Table I's speedups
come from), and coarse stage timings (Figure 2's categories).
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict, List, Tuple

from repro.io.vcf import VcfRecord

__all__ = ["VariantCall", "RunStats", "ColumnDecision", "CallResult"]


class ColumnDecision(enum.Enum):
    """Terminal state of one allele test in the Figure 1b workflow."""

    LOW_COVERAGE = "low_coverage"
    NO_CANDIDATE = "no_candidate"
    SKIPPED_APPROX = "skipped_approx"
    EXACT_PRUNED = "exact_pruned"
    EXACT_NOT_SIGNIFICANT = "exact_not_significant"
    CALLED = "called"
    REJECTED_FILTER = "rejected_filter"


@dataclasses.dataclass
class VariantCall:
    """One called single-nucleotide variant.

    Attributes:
        chrom/pos/ref/alt: variant identity (pos is 0-based).
        pvalue: raw Poisson-binomial tail p-value.
        corrected_pvalue: Bonferroni-corrected p-value (capped at 1).
        depth: column depth after pileup filters.
        alt_count: reads supporting the alternate allele.
        af: alternate allele frequency ``alt_count / depth``.
        dp4: (ref-fwd, ref-rev, alt-fwd, alt-rev) strand counts.
        strand_bias: Phred-scaled Fisher strand-bias score.
        filter: filter status; ``PASS`` or semicolon-joined failures.
        used_exact: True when the exact DP produced ``pvalue`` (always
            true for calls -- the approximation can only skip).
    """

    chrom: str
    pos: int
    ref: str
    alt: str
    pvalue: float
    corrected_pvalue: float
    depth: int
    alt_count: int
    af: float
    dp4: Tuple[int, int, int, int]
    strand_bias: float
    filter: str = "PASS"
    used_exact: bool = True

    @property
    def key(self) -> Tuple[str, int, str, str]:
        """Variant identity for set algebra."""
        return (self.chrom, self.pos, self.ref, self.alt)

    @property
    def quality(self) -> float:
        """VCF QUAL: ``-10 log10`` of the raw p-value (capped)."""
        if self.pvalue <= 0.0:
            return 3000.0
        return min(3000.0, -10.0 * math.log10(self.pvalue))

    def to_vcf_record(self) -> VcfRecord:
        """Render this call as a :class:`VcfRecord` (DP/AF/SB/DP4 INFO)."""
        return VcfRecord(
            chrom=self.chrom,
            pos=self.pos,
            ref=self.ref,
            alt=self.alt,
            qual=self.quality,
            filter=self.filter,
            info={
                "DP": self.depth,
                "AF": round(self.af, 6),
                "SB": int(round(self.strand_bias)),
                "DP4": self.dp4,
            },
        )


@dataclasses.dataclass
class RunStats:
    """Operational counters for one calling run.

    All counters are additive so partial results from parallel workers
    merge with :meth:`merge`.
    """

    columns_seen: int = 0
    tests_run: int = 0
    decisions: Dict[str, int] = dataclasses.field(default_factory=dict)
    dp_steps: int = 0
    dp_invocations: int = 0
    approx_invocations: int = 0
    exact_skipped: int = 0
    time_pileup: float = 0.0
    time_stats: float = 0.0
    time_total: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    prefetch_hits: int = 0
    prefetch_wasted: int = 0

    def record_decision(self, decision: ColumnDecision) -> None:
        """Count one per-column decision in the census."""
        self.decisions[decision.value] = self.decisions.get(decision.value, 0) + 1

    def record_decisions(self, decision: ColumnDecision, count: int) -> None:
        """Bulk form of :meth:`record_decision` for the columnar
        engine; a zero count leaves the census untouched (no key is
        created), exactly like zero scalar calls would."""
        if count:
            self.decisions[decision.value] = (
                self.decisions.get(decision.value, 0) + int(count)
            )

    def merge(self, other: "RunStats") -> "RunStats":
        """Accumulate another worker's counters into this one."""
        self.columns_seen += other.columns_seen
        self.tests_run += other.tests_run
        self.dp_steps += other.dp_steps
        self.dp_invocations += other.dp_invocations
        self.approx_invocations += other.approx_invocations
        self.exact_skipped += other.exact_skipped
        self.time_pileup += other.time_pileup
        self.time_stats += other.time_stats
        self.time_total += other.time_total
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.prefetch_hits += other.prefetch_hits
        self.prefetch_wasted += other.prefetch_wasted
        for k, v in other.decisions.items():
            self.decisions[k] = self.decisions.get(k, 0) + v
        return self

    def skip_fraction(self) -> float:
        """Fraction of run tests resolved by the approximation alone."""
        if self.tests_run == 0:
            return 0.0
        return self.exact_skipped / self.tests_run

    def cache_hit_rate(self) -> float:
        """Fraction of BGZF block fetches served from the reader-side
        decompressed-block LRU (0.0 when no fetches were counted)."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable snapshot of every counter.

        Values are coerced to plain ``int``/``float`` so the result is
        directly ``json.dump``-able (counters may arrive as numpy
        scalars from the batched engine).  Consumed by the pipeline's
        ``StatsSink``, the CLI's ``--stats-json`` and the benchmark
        report files.
        """
        return {
            "columns_seen": int(self.columns_seen),
            "tests_run": int(self.tests_run),
            "decisions": {k: int(v) for k, v in sorted(self.decisions.items())},
            "dp_steps": int(self.dp_steps),
            "dp_invocations": int(self.dp_invocations),
            "approx_invocations": int(self.approx_invocations),
            "exact_skipped": int(self.exact_skipped),
            "skip_fraction": float(self.skip_fraction()),
            "time_pileup": float(self.time_pileup),
            "time_stats": float(self.time_stats),
            "time_total": float(self.time_total),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "cache_evictions": int(self.cache_evictions),
            "cache_hit_rate": float(self.cache_hit_rate()),
            "prefetch_hits": int(self.prefetch_hits),
            "prefetch_wasted": int(self.prefetch_wasted),
        }


@dataclasses.dataclass
class CallResult:
    """Output of a calling run: the calls plus operational stats."""

    calls: List[VariantCall]
    stats: RunStats

    @property
    def passed(self) -> List[VariantCall]:
        """Calls whose filter field is PASS."""
        return [c for c in self.calls if c.filter == "PASS"]

    def keys(self) -> set:
        """PASS variant identity set (for concordance / upset work)."""
        return {c.key for c in self.passed}

    def merge(self, other: "CallResult") -> "CallResult":
        """Concatenate calls (re-sorted by position) and merge stats."""
        merged = sorted(self.calls + other.calls, key=lambda c: (c.chrom, c.pos))
        self.calls = merged
        self.stats.merge(other.stats)
        return self
