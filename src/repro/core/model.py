"""The quality-aware error model.

LoFreq's null hypothesis at a column: every read independently miscalls
with the probability its base quality implies.  For a *specific*
alternate allele the miscall must also hit that base, which under the
uniform-miscall assumption divides the probability by three.  So for
alt allele ``a``::

    p_i(a) = 10**(-Q_i / 10) / 3

and the count of reads showing ``a`` is Poisson-binomial with those
probabilities.  This per-allele formulation is LoFreq's (each position
gets up to three tests, hence the 3x Bonferroni factor); the paper's
Section II-A describes the same computation with all mismatches pooled,
which coincides with this when a single alternate allele dominates --
the regime low-frequency SNVs live in.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.pileup.column import PileupColumn

__all__ = [
    "allele_error_probabilities",
    "allele_error_probabilities_batch",
    "candidate_alleles",
]

#: A miscall lands on one specific wrong base 1/3 of the time.
MISCALL_FRACTION = 1.0 / 3.0


def allele_error_probabilities(
    column: PileupColumn, *, merge_mapq: bool = False
) -> np.ndarray:
    """Per-read probabilities of erroneously showing one given alt base.

    Returns the full-depth vector ``p_i / 3``; the same vector serves
    every alternate allele at the column (the quality string does not
    depend on which wrong base a read would produce).
    """
    return column.error_probabilities(merge_mapq=merge_mapq) * MISCALL_FRACTION


def allele_error_probabilities_batch(
    quals: np.ndarray, mapqs: Optional[np.ndarray] = None
) -> np.ndarray:
    """Array-native twin of :func:`allele_error_probabilities`.

    Computes ``p_i / 3`` straight from quality arrays -- any shape, so
    the batched engine can evaluate a whole span's flat quality plane
    (or a 256 x 256 grid of all possible quality pairs) in one call.
    The elementwise expression is the scalar model's verbatim
    (``10**(-Q/10)``, the independent-error mapq merge, the miscall
    factor), so for matching inputs the outputs are **bitwise**
    identical to the column-based path -- which is what lets
    table-derived vectors feed the exact DP without perturbing a
    single output bit.

    Args:
        quals: uint8 Phred base qualities (any shape).
        mapqs: optional parallel mapping qualities; when given, the
            mapping error is folded in as an independent error source
            (``p = 1 - (1-p_base)(1-p_map)``), LoFreq's ``-m`` merge.
    """
    p = np.power(10.0, -np.asarray(quals).astype(np.float64) / 10.0)
    if mapqs is not None:
        pm = np.power(10.0, -np.asarray(mapqs).astype(np.float64) / 10.0)
        p = 1.0 - (1.0 - p) * (1.0 - pm)
    return p * MISCALL_FRACTION


def candidate_alleles(column: PileupColumn) -> List[Tuple[int, int]]:
    """Alternate alleles worth testing at a column.

    Returns ``(code, count)`` for every non-reference, non-N base
    present in the column, ordered by descending count (the dominant
    alternate first, so early-exit consumers handle the common
    single-alt case cheaply).
    """
    counts = column.base_counts()
    ref = column.ref_code
    out = [
        (code, int(counts[code]))
        for code in range(4)  # A, C, G, T -- N (4) never tested
        if code != ref and counts[code] > 0
    ]
    out.sort(key=lambda t: -t[1])
    return out
