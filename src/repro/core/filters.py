"""Post-call filtering, including LoFreq's *dynamic* filters.

LoFreq applies a filtering stage after calling: static thresholds
(minimum coverage, allele frequency) plus *dynamically determined*
ones -- most importantly the strand-bias filter, whose cutoff is a
Holm-Bonferroni correction computed **from the set of calls being
filtered**.  That data dependence is exactly what made the original
parallelisation wrapper buggy (Sandmann et al. 2017; paper Discussion):
each worker process filtered its own partition's calls (fitting
thresholds to the partition), and the merge script then filtered the
survivors *again* with thresholds fitted to the combined set.  Two
fits over different call sets => different cutoffs => results that
depend on the partitioning.

This module makes the bug reproducible and the fix testable:

* :class:`DynamicFilterPolicy.fit` derives thresholds from a call set;
* :func:`apply_filters` marks calls against given thresholds;
* the legacy parallel mode (:mod:`repro.parallel.legacy`) calls
  fit+apply per partition and then again on the merged set, while the
  OpenMP-style mode calls it exactly once on the full set.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from repro.core.results import VariantCall

__all__ = [
    "FilterThresholds",
    "DynamicFilterPolicy",
    "apply_filters",
    "filter_once",
    "filter_twice",
]


@dataclasses.dataclass(frozen=True)
class FilterThresholds:
    """Concrete cutoffs produced by fitting a policy to a call set.

    Attributes:
        sb_phred_cutoff: maximum allowed strand-bias Phred score; the
            Holm-corrected significance translated to the Phred scale.
        min_depth: minimum depth (static pass-through).
        min_af: minimum allele frequency (static pass-through).
        fitted_on: size of the call set the thresholds were fitted on
            (recorded so tests can assert the bug's mechanism).
    """

    sb_phred_cutoff: float
    min_depth: int
    min_af: float
    fitted_on: int


@dataclasses.dataclass(frozen=True)
class DynamicFilterPolicy:
    """LoFreq-style filter policy with a data-dependent strand-bias cutoff.

    Attributes:
        sb_alpha: family-wise error rate for the strand-bias test.
        min_depth: static minimum depth.
        min_af: static minimum allele frequency.
        holm: use Holm-Bonferroni (cutoff depends on the *number of
            calls*); plain Bonferroni when False.
    """

    sb_alpha: float = 0.001
    min_depth: int = 10
    min_af: float = 0.0
    holm: bool = True

    def fit(self, calls: Sequence[VariantCall]) -> FilterThresholds:
        """Derive thresholds from a call set.

        The strand-bias cutoff is ``-10 log10(sb_alpha / n)`` with
        ``n = len(calls)`` -- more calls means a stricter per-call
        level, hence a *higher* allowed Phred score.  This is the
        data dependence at the heart of the double-filtering bug: fit
        on a partition and you get a different cutoff than fitting on
        the full set.
        """
        n = max(1, len(calls))
        per_call_alpha = self.sb_alpha / n if self.holm else self.sb_alpha
        cutoff = -10.0 * math.log10(per_call_alpha)
        return FilterThresholds(
            sb_phred_cutoff=cutoff,
            min_depth=self.min_depth,
            min_af=self.min_af,
            fitted_on=len(calls),
        )


def apply_filters(
    calls: Sequence[VariantCall], thresholds: FilterThresholds
) -> List[VariantCall]:
    """Return re-labelled copies of ``calls`` judged against
    ``thresholds``; failures get a semicolon-joined FILTER string."""
    out: List[VariantCall] = []
    for call in calls:
        failures = []
        if call.strand_bias > thresholds.sb_phred_cutoff:
            failures.append("sb")
        if call.depth < thresholds.min_depth:
            failures.append("min_dp")
        if call.af < thresholds.min_af:
            failures.append("min_af")
        out.append(
            dataclasses.replace(
                call, filter=";".join(failures) if failures else "PASS"
            )
        )
    return out


def filter_once(
    calls: Sequence[VariantCall], policy: Optional[DynamicFilterPolicy] = None
) -> List[VariantCall]:
    """The correct, single-stage pipeline: fit on the complete call set,
    apply once.  This is what the OpenMP reorganisation guarantees."""
    pol = policy or DynamicFilterPolicy()
    return apply_filters(calls, pol.fit(calls))


def filter_twice(
    partitions: Sequence[Sequence[VariantCall]],
    policy: Optional[DynamicFilterPolicy] = None,
) -> List[VariantCall]:
    """The legacy wrapper's behaviour: filter each partition with
    thresholds fitted *to that partition*, merge only the survivors,
    then filter the merged set again with re-fitted thresholds.

    The output depends on how calls were partitioned -- the
    inconsistency reported in the variant-caller review the paper
    cites.  Kept as an explicit function so tests and the
    ``bench_filterbug`` harness can quantify the divergence.
    """
    pol = policy or DynamicFilterPolicy()
    survivors: List[VariantCall] = []
    for part in partitions:
        filtered = apply_filters(part, pol.fit(part))
        survivors.extend(c for c in filtered if c.filter == "PASS")
    survivors.sort(key=lambda c: (c.chrom, c.pos, c.alt))
    return apply_filters(survivors, pol.fit(survivors))
