"""The paper's core contribution: the accelerated LoFreq-style caller.

* :mod:`repro.core.config` -- :class:`CallerConfig` with the
  ``original()`` / ``improved()`` presets the paper compares.
* :mod:`repro.core.model` -- the quality-implied error model.
* :mod:`repro.core.workflow` -- the Figure 1b decision workflow
  (Poisson first-pass filter -> exact Poisson-binomial DP).
* :mod:`repro.core.batched` -- the chunk-level engine: one vectorised
  screening pass over every (column, allele) pair, exact DP only for
  the survivors (identical output, ``engine="batched"``).
* :mod:`repro.core.caller` -- :class:`VariantCaller`, the column loop
  over any pileup substrate.
* :mod:`repro.core.filters` -- post-call filtering, including the
  dynamic strand-bias filter whose data dependence caused the legacy
  parallel double-filtering bug.
* :mod:`repro.core.results` -- :class:`VariantCall`, :class:`RunStats`
  and :class:`CallResult`.
"""

from repro.core.batched import (
    evaluate_batch,
    evaluate_columns_batched,
    exact_batch,
    screen_batch,
)
from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.core.filters import (
    DynamicFilterPolicy,
    FilterThresholds,
    apply_filters,
    filter_once,
    filter_twice,
)
from repro.core.results import CallResult, ColumnDecision, RunStats, VariantCall
from repro.core.workflow import (
    AlleleOutcome,
    decide_allele,
    evaluate_column,
    exact_allele_decision,
)

__all__ = [
    "AlleleOutcome",
    "CallResult",
    "CallerConfig",
    "ColumnDecision",
    "DynamicFilterPolicy",
    "FilterThresholds",
    "RunStats",
    "VariantCall",
    "VariantCaller",
    "apply_filters",
    "decide_allele",
    "evaluate_batch",
    "evaluate_column",
    "evaluate_columns_batched",
    "exact_allele_decision",
    "exact_batch",
    "screen_batch",
    "filter_once",
    "filter_twice",
]
