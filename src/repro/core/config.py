"""Caller configuration.

:class:`CallerConfig` gathers every knob of the workflow in Figure 1b.
The two presets mirror the paper's comparison:

* :meth:`CallerConfig.original` -- LoFreq as released: exact
  Poisson-binomial test with early-stop pruning, no approximation.
* :meth:`CallerConfig.improved` -- the paper's version: an O(d)
  Poisson first-pass filter skips the exact test when the approximate
  p-value clears the significance level by ``approx_margin`` (0.01)
  and the column is at least ``approx_min_depth`` (100) deep.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["CallerConfig"]


@dataclasses.dataclass(frozen=True)
class CallerConfig:
    """All parameters of the variant-calling workflow.

    Attributes:
        alpha: significance level on the Bonferroni-corrected scale
            (paper/LoFreq default 0.05).
        bonferroni: number of tests to correct for; ``None`` means
            dynamic -- 3 x (region length), LoFreq's default.
        use_approximation: enable the paper's Poisson first-pass filter.
        approx_margin: the conservative safety margin: skip the exact
            test only when ``p_hat_corrected >= alpha + approx_margin``
            (paper: 0.01).
        approx_min_depth: minimum column depth for the approximation
            (paper: 100 -- below that the DP array is cache-resident
            and LoFreq's early stopping already wins).
        adaptive_margin: optional depth-aware margin (the Discussion's
            future-work idea): when set, the margin shrinks as
            ``approx_margin * sqrt(adaptive_margin / depth)`` for
            depths above ``adaptive_margin``, reflecting the Poisson
            approximation's vanishing error at high depth.
        min_coverage: minimum column depth to test at all (LoFreq
            default 10).
        min_alt_count: minimum supporting reads for an emitted call.
        min_af: minimum allele frequency for an emitted call.
        merge_mapq: fold mapping quality into the per-read error
            probability.
        early_stop: enable LoFreq's DP pruning (running tail already
            above threshold => abandon).
        engine: column-evaluation strategy.  ``"streaming"`` runs the
            Figure 1b workflow one allele at a time;  ``"batched"``
            screens every (column, allele) pair of a chunk in one
            vectorised Poisson-tail pass and only loops over the
            screening survivors (identical calls and decision counts,
            see :mod:`repro.core.batched`).
    """

    alpha: float = 0.05
    bonferroni: Optional[int] = None
    use_approximation: bool = True
    approx_margin: float = 0.01
    approx_min_depth: int = 100
    adaptive_margin: Optional[int] = None
    min_coverage: int = 10
    min_alt_count: int = 2
    min_af: float = 0.0
    merge_mapq: bool = False
    early_stop: bool = True
    engine: str = "streaming"

    def __post_init__(self) -> None:
        if self.engine not in ("streaming", "batched"):
            raise ValueError(
                f"engine must be 'streaming' or 'batched', got {self.engine!r}"
            )
        if not (0.0 < self.alpha < 1.0):
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.approx_margin < 0.0:
            raise ValueError(
                f"approx_margin must be >= 0, got {self.approx_margin}"
            )
        if self.approx_min_depth < 0:
            raise ValueError("approx_min_depth must be >= 0")
        if self.bonferroni is not None and self.bonferroni <= 0:
            raise ValueError("bonferroni must be positive when set")
        if self.min_coverage < 0 or self.min_alt_count < 0:
            raise ValueError("count thresholds must be non-negative")
        if not (0.0 <= self.min_af <= 1.0):
            raise ValueError(f"min_af must be in [0, 1], got {self.min_af}")

    # -- presets -----------------------------------------------------------

    @classmethod
    def original(cls, **overrides) -> "CallerConfig":
        """LoFreq as released (no approximation shortcut)."""
        return cls(use_approximation=False, **overrides)

    @classmethod
    def improved(cls, **overrides) -> "CallerConfig":
        """The paper's improved LoFreq (approximation enabled)."""
        return cls(use_approximation=True, **overrides)

    # -- derived quantities --------------------------------------------------

    def n_tests(self, region_length: int) -> int:
        """Bonferroni denominator for a region of the given length."""
        if self.bonferroni is not None:
            return self.bonferroni
        from repro.stats.correction import default_test_count

        return default_test_count(region_length)

    def corrected_alpha(self, region_length: int) -> float:
        """Per-test raw-p-value threshold ``alpha / n_tests``."""
        from repro.stats.correction import bonferroni_alpha

        return bonferroni_alpha(self.alpha, self.n_tests(region_length))

    def margin_for_depth(self, depth: int) -> float:
        """The skip margin at a given depth (constant unless
        ``adaptive_margin`` is enabled)."""
        if self.adaptive_margin is None or depth <= self.adaptive_margin:
            return self.approx_margin
        import math

        return self.approx_margin * math.sqrt(self.adaptive_margin / depth)
