"""Batched column evaluation: the chunk-level caller engine.

The streaming workflow (:mod:`repro.core.workflow`) is faithful to the
paper's per-allele control flow, but in Python the O(d) Poisson-tail
screen costs one interpreter round-trip per allele -- at realistic
depths the screening *overhead* dominates, inverting the paper's
Figure 2 profile where the exact DP is the expensive stage.

This engine restores the intended profile by batching the screen
across a whole chunk of columns:

1. one pass over the columns gathers every (column, candidate-allele)
   pair into flat arrays -- tail point ``k``, per-column
   ``lambda = sum p_i`` (computed once per column and shared by its
   alleles; for pure base-quality models it comes straight from a
   uint8 quality histogram dotted with a 256-entry Phred lookup
   table, so screened-out columns never materialise a float64
   probability vector at all), and column depth;
2. :func:`~repro.stats.approximation.poisson_tail_approx_batch`
   evaluates ``p-hat`` for *every* pair in a handful of masked array
   sweeps, and the depth-dependent margin is applied vectorially;
3. only the screening survivors materialise their error-probability
   vector (via the lookup table -- bitwise identical to the scalar
   expression, since uint8 qualities admit only 256 inputs) and fall
   back to the per-allele exact DP loop -- the *same*
   :func:`~repro.core.workflow.exact_allele_decision` the streaming
   engine runs, so every emitted call is byte-identical.

Equivalence guarantee
---------------------
The paper's "only false negatives with respect to the original"
property rests on the skip decision, so the decision itself must not
drift between engines.  The batch kernel replays the scalar gamma
series / continued fraction elementwise and agrees with the scalar
path bit-for-bit on ~98% of inputs and to ~1e-15 otherwise; any pair
whose corrected ``p-hat`` lands within :data:`GUARD_BAND` of the skip
threshold is re-decided with the scalar
:func:`~repro.stats.approximation.poisson_tail_approx` -- the
authoritative tie-breaker.  Decisions (and therefore calls and
:class:`~repro.core.results.RunStats` censuses) are thus identical to
the streaming engine on every input, not just statistically close.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core.config import CallerConfig
from repro.core.model import (
    MISCALL_FRACTION,
    allele_error_probabilities,
    candidate_alleles,
)
from repro.core.results import ColumnDecision, RunStats, VariantCall
from repro.core.workflow import exact_allele_decision
from repro.pileup.column import ColumnBatch, PileupColumn
from repro.stats.approximation import (
    poisson_tail_approx,
    poisson_tail_approx_batch,
)

__all__ = [
    "GUARD_BAND",
    "evaluate_batch",
    "evaluate_columns_batched",
    "batch_margins",
    "qual_prob_table",
    "screen_batch",
]

#: Corrected p-hat values within this distance of the skip threshold
#: are re-decided with the scalar code path.  The batch and scalar
#: kernels differ by < 1e-14 in practice; 1e-6 leaves ~8 orders of
#: magnitude of safety while re-running a negligible number of pairs.
GUARD_BAND = 1e-6

#: Columns gathered per vectorised pass when the caller consumes an
#: unbounded column stream.  Large enough to amortise the batch
#: kernels, small enough that peak memory stays a constant number of
#: columns rather than the whole region.
BATCH_COLUMNS = 1024


_QUAL_PROBS: Optional[np.ndarray] = None


def qual_prob_table() -> np.ndarray:
    """Specific-allele error probability for every possible uint8 Phred
    score: ``10**(-q/10) * (1/3)``.

    Built with the exact expression
    :meth:`~repro.pileup.column.PileupColumn.error_probabilities` plus
    the miscall factor apply elementwise, so ``table[column.quals]`` is
    bitwise identical to
    :func:`~repro.core.model.allele_error_probabilities` -- which is
    what lets the exact DP run on table-derived vectors without
    perturbing a single output bit.  (Read-only; one shared instance.)
    """
    global _QUAL_PROBS
    if _QUAL_PROBS is None:
        q = np.arange(256).astype(np.float64)
        table = np.power(10.0, -q / 10.0) * MISCALL_FRACTION
        table.setflags(write=False)
        _QUAL_PROBS = table
    return _QUAL_PROBS


def batch_margins(depths: np.ndarray, config: CallerConfig) -> np.ndarray:
    """Vectorised :meth:`CallerConfig.margin_for_depth` over a depth
    array (constant unless ``adaptive_margin`` is enabled)."""
    margins = np.full(depths.shape, config.approx_margin, dtype=np.float64)
    if config.adaptive_margin is not None:
        deep = depths > config.adaptive_margin
        margins[deep] = config.approx_margin * np.sqrt(
            config.adaptive_margin / depths[deep]
        )
    return margins


class _ColumnJob:
    """One column's shared screening state.

    The error-probability vector is materialised lazily: a column whose
    every allele is screened out never builds it (its lambda comes from
    the quality histogram instead), which is where a large part of the
    engine's win over the streaming path comes from.
    """

    __slots__ = ("column", "_probs")

    def __init__(
        self, column: PileupColumn, probs: Optional[np.ndarray] = None
    ) -> None:
        self.column = column
        self._probs = probs

    @property
    def probs(self) -> np.ndarray:
        if self._probs is None:
            self._probs = qual_prob_table()[self.column.quals]
        return self._probs


class _Pair:
    """One gathered (column, candidate-allele) pair."""

    __slots__ = ("job", "alt_code", "alt_count", "lam")

    def __init__(
        self,
        job: _ColumnJob,
        alt_code: int,
        alt_count: int,
        lam: Optional[float],
    ) -> None:
        self.job = job
        self.alt_code = alt_code
        self.alt_count = alt_count
        self.lam = lam

    @property
    def column(self) -> PileupColumn:
        return self.job.column

    @property
    def probs(self) -> np.ndarray:
        return self.job.probs


def _gather(
    columns: Iterable[PileupColumn],
    config: CallerConfig,
    stats: RunStats,
) -> tuple:
    """Column pass: coverage / candidate gating, error-model vectors,
    per-column lambda.  Returns (screened pairs, direct-to-exact pairs).
    """
    screened: List[_Pair] = []
    direct: List[_Pair] = []
    table = None if config.merge_mapq else qual_prob_table()
    for column in columns:
        stats.columns_seen += 1
        if column.depth < config.min_coverage:
            stats.record_decision(ColumnDecision.LOW_COVERAGE)
            continue
        candidates = candidate_alleles(column)
        if not candidates:
            stats.record_decision(ColumnDecision.NO_CANDIDATE)
            continue
        screen = (
            config.use_approximation
            and column.depth >= config.approx_min_depth
        )
        if table is None:
            # Mapping-quality merging is a per-read combination of two
            # qualities, not a pure function of the base quality --
            # materialise through the scalar path up front.
            probs = allele_error_probabilities(column, merge_mapq=True)
            job = _ColumnJob(column, probs)
            lam = float(probs.sum()) if screen else None
        else:
            job = _ColumnJob(column)
            # lambda from the quality histogram: O(depth) uint8
            # bincount + a 256-element dot, no float64 vector built.
            # Agrees with the streaming sum to the last few ulps;
            # the guard band re-decides anything that close to the
            # threshold, so skip decisions still match exactly.
            lam = (
                float(np.bincount(column.quals, minlength=256) @ table)
                if screen
                else None
            )
        for alt_code, alt_count in candidates:
            stats.tests_run += 1
            pair = _Pair(job, alt_code, alt_count, lam)
            if screen:
                stats.approx_invocations += 1
                screened.append(pair)
            else:
                direct.append(pair)
    return screened, direct


def _screen(
    pairs: List[_Pair],
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> np.ndarray:
    """The vectorised first pass: skip mask over ``pairs``.

    Pairs within :data:`GUARD_BAND` of the threshold are re-decided
    with the scalar path so the mask matches the streaming engine's
    decisions exactly.
    """
    ks = np.array([p.alt_count for p in pairs], dtype=np.float64)
    lams = np.array([p.lam for p in pairs], dtype=np.float64)
    depths = np.array([p.column.depth for p in pairs], dtype=np.float64)
    p_hat = poisson_tail_approx_batch(ks, lams)
    p_hat_corrected = np.minimum(
        1.0, p_hat / corrected_alpha * config.alpha
    )
    thresholds = config.alpha + batch_margins(depths, config)
    skip = p_hat_corrected >= thresholds
    near = np.abs(p_hat_corrected - thresholds) < GUARD_BAND
    for i in np.nonzero(near)[0]:
        pair = pairs[i]
        exact_p_hat = poisson_tail_approx(pair.alt_count, pair.probs)
        corrected = min(1.0, exact_p_hat / corrected_alpha * config.alpha)
        margin = config.margin_for_depth(pair.column.depth)
        skip[i] = corrected >= config.alpha + margin
    return skip


def screen_batch(
    batch: ColumnBatch,
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> List[tuple]:
    """The columnar gather + screen: coverage / candidate gating and
    the vectorised Poisson-tail skip over a whole
    :class:`~repro.pileup.column.ColumnBatch`, as pure array slicing.

    No per-column Python object is built here -- per-column base
    counts, quality histograms and candidate gating all come from
    bincounts over the batch's flat arrays, so a column whose every
    allele is screened out costs no object construction at all.  Only
    the guard-band re-decisions touch a single column's quality slice.

    Args:
        batch: the columns under test, in stored order.
        corrected_alpha: per-test raw-p-value threshold.
        config: workflow parameters; ``config.merge_mapq`` callers
            must use the per-column path instead (mapping-quality
            merging is not a pure function of the base quality).
        stats: counters, mutated in place with the same censuses the
            per-column gather would record.

    Returns:
        Surviving ``(column index, alt_code, alt_count)`` triples --
        the pairs that must still run the exact DP.
    """
    n = batch.n_columns
    stats.columns_seen += n
    if n == 0:
        return []
    depths = batch.depths
    low = depths < config.min_coverage
    stats.record_decisions(ColumnDecision.LOW_COVERAGE, int(low.sum()))

    # One fused bincount yields both per-column histograms the screen
    # needs: (column, code, phred) keys, reduced to base counts and
    # quality histograms.  32-bit keys keep the pass memory-bound on
    # half the bytes; they fit for every batch below ~1.6M columns
    # (far above evaluate_batch's BATCH_COLUMNS slices), and 64-bit
    # keys keep direct callers with huge batches correct.
    key_dtype = np.int32 if n * 1280 <= np.iinfo(np.int32).max else np.int64
    col_of = np.repeat(np.arange(n, dtype=key_dtype), depths)
    screen_possible = config.use_approximation and bool(
        (depths >= config.approx_min_depth).any()
    )
    if screen_possible:
        key = col_of * key_dtype(1280)
        key += batch.base_codes.astype(key_dtype) * key_dtype(256)
        key += batch.quals
        hist = np.bincount(key, minlength=n * 1280).reshape(n, 5, 256)
        counts = hist.sum(axis=2)
        qhist = hist.sum(axis=1)
    else:
        key = col_of * key_dtype(5)
        key += batch.base_codes
        counts = np.bincount(key, minlength=n * 5).reshape(n, 5)
        qhist = None
    cand = counts[:, :4] > 0
    ref_codes = batch.ref_codes.astype(np.int64)
    acgt_ref = ref_codes < 4
    cand[np.nonzero(acgt_ref)[0], ref_codes[acgt_ref]] = False
    cand[low] = False
    n_cand = cand.sum(axis=1)
    stats.record_decisions(
        ColumnDecision.NO_CANDIDATE, int(((~low) & (n_cand == 0)).sum())
    )
    stats.tests_run += int(n_cand.sum())

    pair_col, pair_code = np.nonzero(cand)
    if pair_col.size == 0:
        return []
    pair_count = counts[pair_col, pair_code]
    if config.use_approximation:
        screen_col = (~low) & (depths >= config.approx_min_depth)
        is_screen = screen_col[pair_col]
    else:
        is_screen = np.zeros(pair_col.size, dtype=bool)
    stats.approx_invocations += int(is_screen.sum())

    keep = ~is_screen
    if is_screen.any():
        table = qual_prob_table()
        # Per-column lambda from the quality histogram: counts per
        # (column, phred) dotted with the 256-entry probability table.
        # Same histogram lambda as the per-column gather; the guard
        # band below re-decides anything within numerical shouting
        # distance of the threshold.
        lam_col = qhist @ table
        s_idx = np.nonzero(is_screen)[0]
        s_col = pair_col[s_idx]
        ks = pair_count[s_idx].astype(np.float64)
        p_hat = poisson_tail_approx_batch(ks, lam_col[s_col])
        corrected = np.minimum(1.0, p_hat / corrected_alpha * config.alpha)
        thresholds = config.alpha + batch_margins(
            depths[s_col].astype(np.float64), config
        )
        skip = corrected >= thresholds
        near = np.abs(corrected - thresholds) < GUARD_BAND
        offsets = batch.offsets
        for i in np.nonzero(near)[0]:
            ci = int(s_col[i])
            probs = table[batch.quals[offsets[ci] : offsets[ci + 1]]]
            exact_p_hat = poisson_tail_approx(int(ks[i]), probs)
            exact_corrected = min(
                1.0, exact_p_hat / corrected_alpha * config.alpha
            )
            margin = config.margin_for_depth(int(depths[ci]))
            skip[i] = exact_corrected >= config.alpha + margin
        n_skip = int(skip.sum())
        stats.exact_skipped += n_skip
        stats.record_decisions(ColumnDecision.SKIPPED_APPROX, n_skip)
        keep[s_idx[~skip]] = True
    sel = np.nonzero(keep)[0]
    return list(
        zip(
            pair_col[sel].tolist(),
            pair_code[sel].tolist(),
            pair_count[sel].tolist(),
        )
    )


def evaluate_batch(
    batch: ColumnBatch,
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> List[VariantCall]:
    """Evaluate one :class:`~repro.pileup.column.ColumnBatch` natively.

    The columnar twin of :func:`evaluate_columns_batched`: the gather
    pass is array slicing over the batch (:func:`screen_batch`), so
    screened-out columns never materialise any per-column Python
    object; only exact-DP survivors are lifted to
    :class:`PileupColumn` (one shared lift per surviving column) and
    run through the identical
    :func:`~repro.core.workflow.exact_allele_decision`.  Calls,
    decisions and censuses match the per-column path -- and therefore
    the streaming engine -- exactly.

    ``merge_mapq`` configurations fall back to the per-column gather
    (mapping-quality merging needs every read's two qualities up
    front, which defeats the columnar screen).
    """
    if config.merge_mapq:
        return evaluate_columns_batched(
            batch.columns(), corrected_alpha, config, stats
        )
    if batch.n_columns > BATCH_COLUMNS:
        # Bound the screen's per-column histograms (256 bins each) to
        # a constant number of columns, exactly like the loose-column
        # buffering path.
        calls: List[VariantCall] = []
        for lo in range(0, batch.n_columns, BATCH_COLUMNS):
            calls.extend(
                evaluate_batch(
                    batch.slice_columns(
                        lo, min(lo + BATCH_COLUMNS, batch.n_columns)
                    ),
                    corrected_alpha,
                    config,
                    stats,
                )
            )
        return calls
    survivors = screen_batch(batch, corrected_alpha, config, stats)
    calls: List[VariantCall] = []
    jobs: dict = {}
    for col_idx, alt_code, alt_count in survivors:
        job = jobs.get(col_idx)
        if job is None:
            jobs[col_idx] = job = _ColumnJob(batch.column(col_idx))
        outcome = exact_allele_decision(
            job.column,
            alt_code,
            alt_count,
            job.probs,
            corrected_alpha,
            config,
            stats,
        )
        if outcome.call is not None:
            calls.append(outcome.call)
    return calls


def evaluate_columns_batched(
    columns: Iterable[PileupColumn],
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> List[VariantCall]:
    """Chunk-level equivalent of looping
    :func:`~repro.core.workflow.evaluate_column` over ``columns``.

    Args:
        columns: the chunk's pileup columns, any order.
        corrected_alpha: per-test raw-p-value threshold.
        config: workflow parameters (``config.engine`` is not consulted
            here -- dispatch happens in the caller).
        stats: counters, mutated in place; ends up with the same counts
            the streaming engine would produce.

    Returns:
        The emitted calls (unsorted; the caller sorts).
    """
    screened, direct = _gather(columns, config, stats)
    survivors: List[_Pair] = list(direct)
    if screened:
        skip = _screen(screened, corrected_alpha, config, stats)
        for pair, skipped in zip(screened, skip):
            if skipped:
                stats.exact_skipped += 1
                stats.record_decision(ColumnDecision.SKIPPED_APPROX)
            else:
                survivors.append(pair)
    calls: List[VariantCall] = []
    for pair in survivors:
        outcome = exact_allele_decision(
            pair.column,
            pair.alt_code,
            pair.alt_count,
            pair.probs,
            corrected_alpha,
            config,
            stats,
        )
        if outcome.call is not None:
            calls.append(outcome.call)
    return calls
