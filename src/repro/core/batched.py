"""Batched column evaluation: the chunk-level caller engine.

The streaming workflow (:mod:`repro.core.workflow`) is faithful to the
paper's per-allele control flow, but in Python the O(d) Poisson-tail
screen costs one interpreter round-trip per allele -- at realistic
depths the screening *overhead* dominates, inverting the paper's
Figure 2 profile where the exact DP is the expensive stage.

This engine restores the intended profile by keeping the whole call
path in array sweeps over a structure-of-arrays
:class:`~repro.pileup.column.ColumnBatch`:

1. :func:`screen_batch` derives per-column base counts, candidate
   gating and the screening ``lambda`` from fused bincounts over the
   batch's flat arrays (for pure base-quality models a
   (column, code, phred) histogram dotted with a 256-entry Phred
   lookup table; with ``merge_mapq`` a per-base gather through the
   fused 256 x 256 (base quality x mapping quality) table,
   sum-reduced per column), then skips every clearly-insignificant
   (column, candidate-allele) pair in a handful of masked array
   sweeps via
   :func:`~repro.stats.approximation.poisson_tail_approx_batch`;
2. :func:`exact_batch` runs the screening survivors through the
   *batched* exact Poisson-binomial DP
   (:func:`~repro.stats.poisson_binomial.poibin_sf_dp_batch`) --
   survivors' probability rows are gathered straight from the batch's
   flat quality planes, and the emitted
   :class:`~repro.core.results.VariantCall` records (p-values, DP4,
   strand bias) are assembled from array slices.

No :class:`~repro.pileup.column.PileupColumn` object is constructed
anywhere on this path -- not for screened-out columns, not for
exact-stage survivors, not under ``merge_mapq`` (regression-tested by
a constructor census in ``tests/test_engine_equivalence.py``).

Equivalence guarantee
---------------------
The paper's "only false negatives with respect to the original"
property rests on the skip decision, so the decision itself must not
drift between engines.  Two mechanisms keep the engines byte-identical
on every input, not just statistically close:

* the screening kernel replays the scalar gamma series / continued
  fraction elementwise and agrees with the scalar path bit-for-bit on
  ~98% of inputs and to ~1e-15 otherwise; any pair whose corrected
  ``p-hat`` lands within :data:`GUARD_BAND` of the skip threshold is
  re-decided with the scalar
  :func:`~repro.stats.approximation.poisson_tail_approx` -- the
  authoritative tie-breaker (this also covers the histogram/gather
  ``lambda``, whose summation order differs from the streaming
  ``probs.sum()`` by a few ulps);
* the exact stage needs no guard band at all:
  :func:`~repro.stats.poisson_binomial.poibin_sf_dp_batch` is
  bit-for-bit the scalar DP per lane (see its docstring), and its
  probability rows come from lookup tables built with the verbatim
  scalar error-model expression
  (:func:`~repro.core.model.allele_error_probabilities_batch`), so
  p-values, early-stop step counts and decision censuses match the
  streaming engine exactly.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import CallerConfig
from repro.core.model import allele_error_probabilities_batch
from repro.core.results import ColumnDecision, RunStats, VariantCall
from repro.pileup.column import CODE_TO_BASE, ColumnBatch, PileupColumn
from repro.stats.approximation import (
    poisson_tail_approx,
    poisson_tail_approx_batch,
)
from repro.stats.fisher import strand_bias_phred_batch
from repro.stats.poisson_binomial import poibin_sf_dp_batch

__all__ = [
    "GUARD_BAND",
    "dp4_batch",
    "evaluate_batch",
    "evaluate_columns_batched",
    "exact_batch",
    "batch_margins",
    "merged_qual_prob_table",
    "qual_prob_table",
    "screen_batch",
]

#: Corrected p-hat values within this distance of the skip threshold
#: are re-decided with the scalar code path.  The batch and scalar
#: kernels differ by < 1e-14 in practice; 1e-6 leaves ~8 orders of
#: magnitude of safety while re-running a negligible number of pairs.
GUARD_BAND = 1e-6

#: Columns gathered per vectorised pass when the caller consumes an
#: unbounded column stream.  Large enough to amortise the batch
#: kernels, small enough that peak memory stays a constant number of
#: columns rather than the whole region.
BATCH_COLUMNS = 1024

#: Ceiling on the survivor-plane size (lanes x reads, float64) handed
#: to one :func:`poibin_sf_dp_batch` call: 2^23 elements = 64 MiB.
#: Keeps the exact stage's memory a constant regardless of how deep
#: or numerous the survivors are.
PLANE_ELEMENTS = 1 << 23

#: Ceiling on a chunk's DP head state (lanes x chunk k_max): every
#: sweep step costs one fused pass over this many elements, so the
#: bound keeps steps cheap *and* forces high-k lanes (strong variants,
#: k in the hundreds) into their own narrow chunks instead of widening
#: every error-candidate lane's k=2 head.
HEAD_ELEMENTS = 1 << 15


_QUAL_PROBS: Optional[np.ndarray] = None
_MERGED_PROBS: Optional[np.ndarray] = None


def qual_prob_table() -> np.ndarray:
    """Specific-allele error probability for every possible uint8 Phred
    score: ``10**(-q/10) * (1/3)``.

    Built with the exact elementwise expression of the scalar error
    model (:func:`~repro.core.model.allele_error_probabilities_batch`),
    so ``table[quals]`` is bitwise identical to
    :func:`~repro.core.model.allele_error_probabilities` -- which is
    what lets the exact DP run on table-derived vectors without
    perturbing a single output bit.  (Read-only; one shared instance.)
    """
    global _QUAL_PROBS
    if _QUAL_PROBS is None:
        table = allele_error_probabilities_batch(
            np.arange(256, dtype=np.uint8)
        )
        table.setflags(write=False)
        _QUAL_PROBS = table
    return _QUAL_PROBS


def merged_qual_prob_table() -> np.ndarray:
    """The ``merge_mapq`` twin of :func:`qual_prob_table`: a 256 x 256
    table over (base quality, mapping quality) pairs, holding
    ``(1 - (1-p_base)(1-p_map)) / 3``.

    uint8 qualities admit only 65536 input pairs, so
    ``table[quals, mapqs]`` reproduces
    ``allele_error_probabilities(column, merge_mapq=True)`` bitwise --
    mapping-quality merging is a pure function of the two qualities,
    which is what keeps the merged model columnar end to end (the
    pre-PR-4 engine fell back to per-column gathering here).
    """
    global _MERGED_PROBS
    if _MERGED_PROBS is None:
        grid = np.arange(256, dtype=np.uint8)
        table = allele_error_probabilities_batch(
            grid[:, None], grid[None, :]
        )
        table.setflags(write=False)
        _MERGED_PROBS = table
    return _MERGED_PROBS


def batch_margins(depths: np.ndarray, config: CallerConfig) -> np.ndarray:
    """Vectorised :meth:`CallerConfig.margin_for_depth` over a depth
    array (constant unless ``adaptive_margin`` is enabled)."""
    margins = np.full(depths.shape, config.approx_margin, dtype=np.float64)
    if config.adaptive_margin is not None:
        deep = depths > config.adaptive_margin
        margins[deep] = config.approx_margin * np.sqrt(
            config.adaptive_margin / depths[deep]
        )
    return margins


def _column_probs(
    batch: ColumnBatch, col: int, merge_mapq: bool
) -> np.ndarray:
    """One column's per-read error-probability vector, gathered from
    the quality planes (bitwise identical to the streaming model)."""
    lo, hi = int(batch.offsets[col]), int(batch.offsets[col + 1])
    if merge_mapq:
        return merged_qual_prob_table()[
            batch.quals[lo:hi], batch.mapqs[lo:hi]
        ]
    return qual_prob_table()[batch.quals[lo:hi]]


def screen_batch(
    batch: ColumnBatch,
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> List[tuple]:
    """The columnar gather + screen: coverage / candidate gating and
    the vectorised Poisson-tail skip over a whole
    :class:`~repro.pileup.column.ColumnBatch`, as pure array slicing.

    No per-column Python object is built here -- per-column base
    counts, quality histograms and candidate gating all come from
    bincounts over the batch's flat arrays, so a column whose every
    allele is screened out costs no object construction at all.  Only
    the guard-band re-decisions touch a single column's quality slice.

    ``merge_mapq`` models are screened columnar too: the per-column
    ``lambda`` becomes a sum-reduction of the fused
    (base quality x mapping quality) table gathered over the flat
    planes, instead of the (column, code, phred) histogram dot.

    Args:
        batch: the columns under test, in stored order.
        corrected_alpha: per-test raw-p-value threshold.
        config: workflow parameters.
        stats: counters, mutated in place with the same censuses the
            streaming engine would record.

    Returns:
        Surviving ``(column index, alt_code, alt_count)`` triples --
        the pairs that must still run the exact DP.
    """
    n = batch.n_columns
    stats.columns_seen += n
    if n == 0:
        return []
    depths = batch.depths
    low = depths < config.min_coverage
    stats.record_decisions(ColumnDecision.LOW_COVERAGE, int(low.sum()))

    merge = config.merge_mapq
    screen_possible = config.use_approximation and bool(
        (depths >= config.approx_min_depth).any()
    )
    # One fused bincount yields both per-column histograms the
    # base-quality screen needs: (column, code, phred) keys, reduced
    # to base counts and quality histograms.  32-bit keys keep the
    # pass memory-bound on half the bytes; they fit for every batch
    # below ~1.6M columns (far above evaluate_batch's BATCH_COLUMNS
    # slices), and 64-bit keys keep direct callers with huge batches
    # correct.  The merged model takes its lambda from the 2-D table
    # instead, so it only needs the plain (column, code) counts.
    key_dtype = np.int32 if n * 1280 <= np.iinfo(np.int32).max else np.int64
    col_of = np.repeat(np.arange(n, dtype=key_dtype), depths)
    if screen_possible and not merge:
        key = col_of * key_dtype(1280)
        key += batch.base_codes.astype(key_dtype) * key_dtype(256)
        key += batch.quals
        hist = np.bincount(key, minlength=n * 1280).reshape(n, 5, 256)
        counts = hist.sum(axis=2)
        qhist = hist.sum(axis=1)
    else:
        key = col_of * key_dtype(5)
        key += batch.base_codes
        counts = np.bincount(key, minlength=n * 5).reshape(n, 5)
        qhist = None
    cand = counts[:, :4] > 0
    ref_codes = batch.ref_codes.astype(np.int64)
    acgt_ref = ref_codes < 4
    cand[np.nonzero(acgt_ref)[0], ref_codes[acgt_ref]] = False
    cand[low] = False
    n_cand = cand.sum(axis=1)
    stats.record_decisions(
        ColumnDecision.NO_CANDIDATE, int(((~low) & (n_cand == 0)).sum())
    )
    stats.tests_run += int(n_cand.sum())

    pair_col, pair_code = np.nonzero(cand)
    if pair_col.size == 0:
        return []
    pair_count = counts[pair_col, pair_code]
    if config.use_approximation:
        screen_col = (~low) & (depths >= config.approx_min_depth)
        is_screen = screen_col[pair_col]
    else:
        is_screen = np.zeros(pair_col.size, dtype=bool)
    stats.approx_invocations += int(is_screen.sum())

    keep = ~is_screen
    if is_screen.any():
        # Per-column lambda: for the base-quality model, counts per
        # (column, phred) dotted with the 256-entry probability
        # table; for the merged model, the fused 2-D table gathered
        # per base and sum-reduced per column.  Either agrees with
        # the streaming ``probs.sum()`` to the last few ulps; the
        # guard band below re-decides anything within numerical
        # shouting distance of the threshold.
        if merge:
            lam_col = np.bincount(
                col_of,
                weights=merged_qual_prob_table()[batch.quals, batch.mapqs],
                minlength=n,
            )
        else:
            lam_col = qhist @ qual_prob_table()
        s_idx = np.nonzero(is_screen)[0]
        s_col = pair_col[s_idx]
        ks = pair_count[s_idx].astype(np.float64)
        p_hat = poisson_tail_approx_batch(ks, lam_col[s_col])
        corrected = np.minimum(1.0, p_hat / corrected_alpha * config.alpha)
        thresholds = config.alpha + batch_margins(
            depths[s_col].astype(np.float64), config
        )
        skip = corrected >= thresholds
        near = np.abs(corrected - thresholds) < GUARD_BAND
        for i in np.nonzero(near)[0]:
            ci = int(s_col[i])
            probs = _column_probs(batch, ci, merge)
            exact_p_hat = poisson_tail_approx(int(ks[i]), probs)
            exact_corrected = min(
                1.0, exact_p_hat / corrected_alpha * config.alpha
            )
            margin = config.margin_for_depth(int(depths[ci]))
            skip[i] = exact_corrected >= config.alpha + margin
        n_skip = int(skip.sum())
        stats.exact_skipped += n_skip
        stats.record_decisions(ColumnDecision.SKIPPED_APPROX, n_skip)
        keep[s_idx[~skip]] = True
    sel = np.nonzero(keep)[0]
    return list(
        zip(
            pair_col[sel].tolist(),
            pair_code[sel].tolist(),
            pair_count[sel].tolist(),
        )
    )


def dp4_batch(
    batch: ColumnBatch,
    cols: np.ndarray,
    ref_codes: np.ndarray,
    alt_codes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """LoFreq's DP4 (ref-fwd, ref-rev, alt-fwd, alt-rev) for many
    (column, alt allele) pairs of one batch at once.

    One fused (column, base code, strand) bincount over the named
    columns' flat bases replaces the per-call masking loop: the
    distinct columns' base/strand slices are gathered with a ragged
    arange, keyed, counted, and the four DP4 entries read off the
    ``(columns, 5, 2)`` count cube per pair.  Counts are integers, so
    this is exactly the per-column computation, just batched.

    Args:
        batch: the columns the indices refer to.
        cols: int column indices, one per pair (duplicates fine --
            two alt alleles called at one column share its counts).
        ref_codes: int reference base code per pair.
        alt_codes: int alternate base code per pair.

    Returns:
        Four parallel int64 arrays ``(ref_fwd, ref_rev, alt_fwd,
        alt_rev)``.
    """
    ucols, inverse = np.unique(cols, return_inverse=True)
    starts = batch.offsets[ucols]
    lens = batch.depths[ucols]
    total = int(lens.sum())
    # Ragged arange: for each distinct column, the flat indices of its
    # bases (starts[i] .. starts[i] + lens[i]).
    ends = np.cumsum(lens)
    flat = np.arange(total, dtype=np.int64) + np.repeat(
        starts - (ends - lens), lens
    )
    codes = batch.base_codes[flat].astype(np.int64)
    rev = batch.reverse[flat].astype(np.int64)
    col_of = np.repeat(np.arange(ucols.size, dtype=np.int64), lens)
    key = (col_of * 5 + codes) * 2 + rev
    counts = np.bincount(key, minlength=ucols.size * 10).reshape(
        ucols.size, 5, 2
    )
    return (
        counts[inverse, ref_codes, 0],
        counts[inverse, ref_codes, 1],
        counts[inverse, alt_codes, 0],
        counts[inverse, alt_codes, 1],
    )


def exact_batch(
    batch: ColumnBatch,
    survivors: List[tuple],
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> List[VariantCall]:
    """The batch-native exact stage: run every screening survivor
    through the batched Poisson-binomial DP and build the calls from
    arrays.

    Survivor probability rows are gathered straight from the batch's
    flat quality planes (Phred LUT, or the fused (base x mapping)
    quality table under ``merge_mapq``) into a zero-padded plane;
    :func:`~repro.stats.poisson_binomial.poibin_sf_dp_batch` then
    replays the scalar pruned DP bit-for-bit across all lanes at
    once, so p-values, early-stop step counts and the decision census
    are exactly the streaming engine's.  Survivors are processed in
    depth-sorted chunks capped at :data:`PLANE_ELEMENTS` plane cells,
    bounding memory independently of survivor depth.

    The emitted calls' annotations are vectorised too: DP4 comes from
    one fused bincount over the called columns (:func:`dp4_batch`)
    and strand bias from the batched Fisher kernel
    (:func:`~repro.stats.fisher.strand_bias_phred_batch`), so no
    scalar per-call loop remains on the call path.  Only pairs that
    reach an emitted call touch the strand plane -- and no
    :class:`~repro.pileup.column.PileupColumn` is built for any of it.

    Args:
        batch: the columns the ``survivors`` indices refer to.
        survivors: ``(column index, alt_code, alt_count)`` triples,
            as returned by :func:`screen_batch`.
        corrected_alpha: per-test raw-p-value threshold.
        config: workflow parameters.
        stats: counters, mutated in place.

    Returns:
        The emitted calls (unsorted; the caller sorts).
    """
    calls: List[VariantCall] = []
    if not survivors:
        return calls
    pair_col = np.array([s[0] for s in survivors], dtype=np.int64)
    pair_code = np.array([s[1] for s in survivors], dtype=np.int64)
    pair_count = np.array([s[2] for s in survivors], dtype=np.int64)
    d_pair = batch.depths[pair_col]
    offsets = batch.offsets
    merge = config.merge_mapq
    prune = corrected_alpha if config.early_stop else None
    called_rows: List[np.ndarray] = []
    called_pvalues: List[np.ndarray] = []

    # When survivors cover a sizeable fraction of the batch (the
    # no-approximation regime), one whole-plane table gather beats a
    # per-column gather apiece; otherwise stay sparse.
    survivor_bases = int(
        np.diff(offsets)[np.unique(pair_col)].sum()
    )
    probs_flat: Optional[np.ndarray] = None
    if survivor_bases * 4 >= int(offsets[-1]):
        if merge:
            probs_flat = merged_qual_prob_table()[batch.quals, batch.mapqs]
        else:
            probs_flat = qual_prob_table()[batch.quals]

    # Survivors are chunked sorted by (k, depth): each step of the
    # batch DP costs (lanes x chunk k_max), so chunks grow greedily
    # under the head-state budget -- a lone high-k lane (a strong
    # variant among k=2 error candidates) lands in its own narrow
    # chunk instead of widening every other lane's head -- and under
    # the plane-cell budget, which bounds memory for deep survivors.
    order = np.lexsort((d_pair, pair_count))
    lo = 0
    while lo < order.size:
        k_max = int(pair_count[order[lo]])
        d_max = int(d_pair[order[lo]])
        hi = lo + 1
        while hi < order.size:
            k_next = max(k_max, int(pair_count[order[hi]]))
            d_next = max(d_max, int(d_pair[order[hi]]))
            rows_next = hi + 1 - lo
            if (
                rows_next * k_next > HEAD_ELEMENTS
                or rows_next * d_next > PLANE_ELEMENTS
            ):
                break
            k_max = k_next
            d_max = d_next
            hi += 1
        rows = order[lo:hi]
        lo = hi
        cols = pair_col[rows]
        ks = pair_count[rows]
        lens = d_pair[rows]
        plane = np.zeros((rows.size, int(lens.max())), dtype=np.float64)
        row_cache: dict = {}
        for r, ci in enumerate(cols.tolist()):
            probs = row_cache.get(ci)
            if probs is None:
                if probs_flat is not None:
                    probs = probs_flat[
                        int(offsets[ci]) : int(offsets[ci + 1])
                    ]
                else:
                    probs = _column_probs(batch, ci, merge)
                row_cache[ci] = probs
            plane[r, : probs.size] = probs
        res = poibin_sf_dp_batch(ks, plane, lens, prune_above=prune)
        stats.dp_invocations += rows.size
        stats.dp_steps += int(res.steps.sum())

        complete = res.complete
        pvalues = res.pvalues
        stats.record_decisions(
            ColumnDecision.EXACT_PRUNED, int((~complete).sum())
        )
        significant = complete & (pvalues < corrected_alpha)
        stats.record_decisions(
            ColumnDecision.EXACT_NOT_SIGNIFICANT,
            int((complete & ~significant).sum()),
        )
        af = ks / lens
        rejected = significant & (
            (ks < config.min_alt_count) | (af < config.min_af)
        )
        stats.record_decisions(
            ColumnDecision.REJECTED_FILTER, int(rejected.sum())
        )
        called = significant & ~rejected
        stats.record_decisions(ColumnDecision.CALLED, int(called.sum()))
        idx = np.nonzero(called)[0]
        if idx.size:
            called_rows.append(rows[idx])
            called_pvalues.append(pvalues[idx])
    if not called_rows:
        return calls

    # Assemble every emitted call's annotations in vectorised passes:
    # DP4 from one bincount over the called columns, strand bias from
    # the batched Fisher kernel.  This is the last stage that was a
    # scalar per-call loop; calls are rare, but variant-dense panels
    # concentrate them in few batches.
    sel = np.concatenate(called_rows)
    pvs = np.concatenate(called_pvalues)
    cols_all = pair_col[sel]
    alts_all = pair_code[sel]
    ks_all = pair_count[sel]
    lens_all = d_pair[sel]
    ref_codes = batch.ref_codes.astype(np.int64)
    rf, rr, af_fwd, ar = dp4_batch(
        batch, cols_all, ref_codes[cols_all], alts_all
    )
    sb = strand_bias_phred_batch(rf, rr, af_fwd, ar)
    corrected = np.minimum(1.0, pvs / corrected_alpha * config.alpha)
    afs = ks_all / lens_all
    for j in range(sel.size):
        ci = int(cols_all[j])
        calls.append(
            VariantCall(
                chrom=batch.chrom,
                pos=int(batch.positions[ci]),
                ref=batch.ref_bases[ci],
                alt=CODE_TO_BASE[int(alts_all[j])],
                pvalue=float(pvs[j]),
                corrected_pvalue=float(corrected[j]),
                depth=int(lens_all[j]),
                alt_count=int(ks_all[j]),
                af=float(afs[j]),
                dp4=(int(rf[j]), int(rr[j]), int(af_fwd[j]), int(ar[j])),
                strand_bias=float(sb[j]),
                used_exact=True,
            )
        )
    return calls


def evaluate_batch(
    batch: ColumnBatch,
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> List[VariantCall]:
    """Evaluate one :class:`~repro.pileup.column.ColumnBatch` natively.

    The whole Figure 1b workflow as array passes: the gather/screen
    stage is :func:`screen_batch`, the exact stage is
    :func:`exact_batch` -- so neither screened-out columns nor
    exact-DP survivors materialise any per-column Python object, under
    every configuration including ``merge_mapq``.  Calls, decisions
    and censuses match the streaming engine exactly (see the module
    docstring for why).
    """
    if batch.n_columns > BATCH_COLUMNS:
        # Bound the screen's per-column histograms (256 bins each) to
        # a constant number of columns, exactly like the loose-column
        # buffering path.
        calls: List[VariantCall] = []
        for lo in range(0, batch.n_columns, BATCH_COLUMNS):
            calls.extend(
                evaluate_batch(
                    batch.slice_columns(
                        lo, min(lo + BATCH_COLUMNS, batch.n_columns)
                    ),
                    corrected_alpha,
                    config,
                    stats,
                )
            )
        return calls
    survivors = screen_batch(batch, corrected_alpha, config, stats)
    return exact_batch(batch, survivors, corrected_alpha, config, stats)


class _PackBuffer:
    """Reusable flat planes for packing loose columns into a batch.

    ``evaluate_columns_batched`` flushes a pack every
    :data:`BATCH_COLUMNS` columns; allocating four fresh flat arrays
    per flush (the old ``ColumnBatch.from_columns`` path) churns the
    allocator under the thread backend.  One buffer per thread is kept
    and grown geometrically instead; the packed batch holds *views*
    into it, valid until the next :meth:`pack` on the same thread --
    exactly the lifetime of one ``evaluate_batch`` call, which fully
    consumes the batch before the next flush starts.
    """

    __slots__ = ("codes", "quals", "rev", "mapqs")

    def __init__(self) -> None:
        self.codes = np.empty(0, dtype=np.uint8)
        self.quals = np.empty(0, dtype=np.uint8)
        self.rev = np.empty(0, dtype=bool)
        self.mapqs = np.empty(0, dtype=np.uint8)

    def pack(self, columns: List[PileupColumn]) -> ColumnBatch:
        """Pack per-column objects into one batch backed by the
        reusable buffers (same layout as
        :meth:`ColumnBatch.from_columns`)."""
        depths = np.array([c.depth for c in columns], dtype=np.int64)
        offsets = np.zeros(len(columns) + 1, dtype=np.int64)
        np.cumsum(depths, out=offsets[1:])
        total = int(offsets[-1])
        if self.codes.size < total:
            size = max(total, 2 * self.codes.size)
            self.codes = np.empty(size, dtype=np.uint8)
            self.quals = np.empty(size, dtype=np.uint8)
            self.rev = np.empty(size, dtype=bool)
            self.mapqs = np.empty(size, dtype=np.uint8)
        for i, c in enumerate(columns):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            self.codes[lo:hi] = c.base_codes
            self.quals[lo:hi] = c.quals
            self.rev[lo:hi] = c.reverse
            self.mapqs[lo:hi] = c.mapqs
        return ColumnBatch(
            chrom=columns[0].chrom,
            positions=np.array([c.pos for c in columns], dtype=np.int64),
            ref_bases="".join(c.ref_base for c in columns),
            base_codes=self.codes[:total],
            quals=self.quals[:total],
            reverse=self.rev[:total],
            mapqs=self.mapqs[:total],
            offsets=offsets,
            n_capped=np.array([c.n_capped for c in columns], dtype=np.int64),
        )


_PACK_LOCAL = threading.local()


def _pack_columns(columns: List[PileupColumn]) -> ColumnBatch:
    """Pack a non-empty same-chromosome run through this thread's
    reusable :class:`_PackBuffer`."""
    buffer = getattr(_PACK_LOCAL, "buffer", None)
    if buffer is None:
        buffer = _PACK_LOCAL.buffer = _PackBuffer()
    return buffer.pack(columns)


def evaluate_columns_batched(
    columns: Iterable[PileupColumn],
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> List[VariantCall]:
    """Chunk-level equivalent of looping
    :func:`~repro.core.workflow.evaluate_column` over ``columns``.

    Compatibility shim for loose per-column inputs: consecutive
    same-chromosome runs are packed into a
    :class:`~repro.pileup.column.ColumnBatch` and fed to
    :func:`evaluate_batch`, so loose columns and native batches run
    the identical columnar engine.  Packs go through a reusable
    per-thread buffer (:class:`_PackBuffer`) instead of allocating
    four fresh flat arrays per flush.

    Args:
        columns: the chunk's pileup columns, any order (a chromosome
            change starts a new pack).
        corrected_alpha: per-test raw-p-value threshold.
        config: workflow parameters (``config.engine`` is not consulted
            here -- dispatch happens in the caller).
        stats: counters, mutated in place; ends up with the same counts
            the streaming engine would produce.

    Returns:
        The emitted calls (unsorted; the caller sorts).
    """
    calls: List[VariantCall] = []
    run: List[PileupColumn] = []
    for column in columns:
        if run and column.chrom != run[0].chrom:
            calls.extend(
                evaluate_batch(
                    _pack_columns(run), corrected_alpha, config, stats
                )
            )
            run = []
        run.append(column)
    if run:
        calls.extend(
            evaluate_batch(
                _pack_columns(run), corrected_alpha, config, stats
            )
        )
    return calls
