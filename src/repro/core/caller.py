"""The variant caller: LoFreq's column loop with the paper's shortcut.

:class:`VariantCaller` drives the Figure 1b workflow over a stream of
pileup columns.  :meth:`call_columns` is the core per-unit evaluator
the pipeline engine (:mod:`repro.pipeline`) schedules; the historical
substrate entry points remain as thin adapters over that pipeline:

* :meth:`call_reads` -- coordinate-sorted reads (now
  ``Pipeline(ReadsSource(...))``);
* :meth:`call_sample` -- a simulated sample through the vectorised
  pileup (now ``Pipeline(SampleSource(...))``);
* :meth:`call_bam` -- a BAM file on disk (now
  ``Pipeline(BamSource(...))``; with no explicit region it calls
  **every** contig in the header, not just the first).

The caller itself is deliberately single-threaded; parallel operation
is the job of the pipeline's :class:`~repro.pipeline.ExecutionPolicy`,
mirroring the paper's separation of the algorithm from its OpenMP
driver.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Union

from repro.core.batched import (
    BATCH_COLUMNS,
    evaluate_batch,
    evaluate_columns_batched,
)
from repro.core.config import CallerConfig
from repro.core.filters import DynamicFilterPolicy, filter_once
from repro.core.results import CallResult, RunStats, VariantCall
from repro.core.workflow import evaluate_column
from repro.io.records import AlignedRead
from repro.io.regions import Region
from repro.pileup.column import ColumnBatch, PileupColumn
from repro.pileup.engine import PileupConfig

__all__ = ["VariantCaller"]


class VariantCaller:
    """Quality-aware low-frequency SNV caller.

    Args:
        config: workflow parameters; defaults to the improved preset
            (the paper's version).  Use ``CallerConfig.original()``
            for the pre-paper behaviour.
        pileup_config: pileup filtering parameters.
        filter_policy: post-call filter policy applied by
            :meth:`finalise`; ``None`` disables post-filtering (raw
            significance calls only).
    """

    def __init__(
        self,
        config: Optional[CallerConfig] = None,
        *,
        pileup_config: Optional[PileupConfig] = None,
        filter_policy: Optional[DynamicFilterPolicy] = DynamicFilterPolicy(),
    ) -> None:
        self.config = config or CallerConfig.improved()
        self.pileup_config = pileup_config or PileupConfig()
        self.filter_policy = filter_policy

    # -- core loop -----------------------------------------------------------

    def call_columns(
        self,
        columns: Union[Iterable[PileupColumn], Iterable[ColumnBatch], ColumnBatch],
        region_length: int,
        *,
        apply_filters: bool = True,
    ) -> CallResult:
        """Run the workflow over pre-built pileup columns.

        Args:
            columns: the work unit -- per-column
                :class:`PileupColumn` objects, structure-of-arrays
                :class:`~repro.pileup.column.ColumnBatch` spans, a
                single batch, or any mix, in any order (calls are
                re-sorted).
            region_length: Bonferroni scope -- the number of reference
                positions this run is responsible for.
            apply_filters: run the post-call filter stage (disable when
                the pipeline driver will filter the merged set once,
                the paper's OpenMP fix).

        The engine is picked by ``config.engine``: ``"streaming"``
        walks the columns one allele at a time (batches are unpacked
        through their per-column view); ``"batched"`` screens whole
        chunks in vectorised passes (:mod:`repro.core.batched`) before
        running the identical exact stage on the survivors --
        :class:`ColumnBatch` inputs feed the screen natively, loose
        columns are gathered into bounded slices first.
        """
        stats = RunStats()
        corrected_alpha = self.config.corrected_alpha(region_length)
        calls: List[VariantCall] = []
        if isinstance(columns, ColumnBatch):
            columns = (columns,)
        t0 = time.perf_counter()
        if self.config.engine == "batched":
            # Loose columns are consumed in bounded slices so memory
            # stays proportional to the batch, not the region (the
            # parallel driver already feeds chunk-sized units).  The
            # buffering stays outside the timer, mirroring the
            # streaming loop where generator advancement is not
            # charged to time_stats.
            iterator = iter(columns)
            buffer: List[PileupColumn] = []

            def flush() -> None:
                """Evaluate and drain the buffered slice of columns."""
                t_batch = time.perf_counter()
                calls.extend(
                    evaluate_columns_batched(
                        buffer, corrected_alpha, self.config, stats
                    )
                )
                stats.time_stats += time.perf_counter() - t_batch
                buffer.clear()

            for item in iterator:
                if isinstance(item, ColumnBatch):
                    if buffer:
                        flush()
                    t_batch = time.perf_counter()
                    calls.extend(
                        evaluate_batch(
                            item, corrected_alpha, self.config, stats
                        )
                    )
                    stats.time_stats += time.perf_counter() - t_batch
                    continue
                buffer.append(item)
                if len(buffer) >= BATCH_COLUMNS:
                    flush()
            if buffer:
                flush()
        else:
            for item in columns:
                unit = item.columns() if isinstance(item, ColumnBatch) else (item,)
                for column in unit:
                    t_col = time.perf_counter()
                    calls.extend(
                        evaluate_column(
                            column, corrected_alpha, self.config, stats
                        )
                    )
                    stats.time_stats += time.perf_counter() - t_col
        stats.time_total = time.perf_counter() - t0
        calls.sort(key=lambda c: (c.chrom, c.pos, c.alt))
        result = CallResult(calls=calls, stats=stats)
        if apply_filters:
            result = self.finalise(result)
        return result

    def finalise(self, result: CallResult) -> CallResult:
        """Apply the (single-stage) post-call filter to a result.

        Returns a **new** :class:`CallResult` with re-labelled call
        copies; ``result`` and its call list are left untouched, so
        callers holding the pre-filter result keep an uncorrupted
        view.  The run statistics object is shared, not copied.
        """
        if self.filter_policy is None:
            return result
        return CallResult(
            calls=filter_once(result.calls, self.filter_policy),
            stats=result.stats,
        )

    # -- substrate adapters (deprecated shims over repro.pipeline) -----------

    def _effective_policy(self, apply_filters: bool):
        """The filter policy to apply, or ``None`` when filtering is off."""
        return self.filter_policy if apply_filters else None

    def call_reads(
        self,
        reads: Iterable[AlignedRead],
        reference: str,
        region: Region,
        *,
        apply_filters: bool = True,
    ) -> CallResult:
        """Call over coordinate-sorted reads via the streaming pileup.

        .. deprecated:: prefer ``Pipeline(ReadsSource(...)).run()``
           (:mod:`repro.pipeline`); this shim remains equivalent.
        """
        from repro.pipeline import Pipeline, ReadsSource

        source = ReadsSource(
            reads, reference, region, pileup_config=self.pileup_config
        )
        return Pipeline(
            source,
            config=self.config,
            filter_policy=self._effective_policy(apply_filters),
        ).run()

    def call_sample(
        self,
        sample,
        region: Optional[Region] = None,
        *,
        apply_filters: bool = True,
    ) -> CallResult:
        """Call a :class:`~repro.sim.reads.SimulatedSample` via the
        vectorised pileup (the benchmark fast path).

        .. deprecated:: prefer ``Pipeline(SampleSource(...)).run()``
           (:mod:`repro.pipeline`); this shim remains equivalent.
        """
        from repro.pipeline import Pipeline, SampleSource

        source = SampleSource(
            sample, region=region, pileup_config=self.pileup_config
        )
        return Pipeline(
            source,
            config=self.config,
            filter_policy=self._effective_policy(apply_filters),
        ).run()

    def call_bam(
        self,
        bam_path,
        reference,
        region: Optional[Region] = None,
        *,
        apply_filters: bool = True,
    ) -> CallResult:
        """Call over a BAM file on disk.

        ``reference`` is one sequence string (single-contig BAMs) or a
        ``{name: sequence}`` mapping.  With ``region=None`` every
        contig in the header is called (single-contig inputs behave
        exactly as before).

        .. deprecated:: prefer ``Pipeline(BamSource(...)).run()``
           (:mod:`repro.pipeline`); this shim remains equivalent.
        """
        from repro.pipeline import BamSource, Pipeline

        source = BamSource(
            bam_path,
            reference,
            regions=[region] if region is not None else None,
            pileup_config=self.pileup_config,
        )
        return Pipeline(
            source,
            config=self.config,
            filter_policy=self._effective_policy(apply_filters),
        ).run()
