"""The Figure 1b decision workflow.

For each candidate allele at a pileup column::

                      +--------------------------------------+
                      |  depth >= approx_min_depth AND       |
     column ------->  |  approximation enabled?              |
                      +-----------+--------------------------+
                           yes    |        no
                                  v
                     p_hat = Poisson tail (O(d))
                                  |
              p_hat_corrected >= alpha + margin ?
                 yes |                      | no
                     v                      v
              SKIP (no variant)     exact Poisson-binomial DP
                                    (O(d*K), with early stop)
                                            |
                              p_corrected < alpha ?  -->  call / no call

The skip branch can only ever *suppress* work on columns whose p-value
is comfortably above the threshold; every emitted call went through the
exact DP, which is why the paper can guarantee "only false negatives
with respect to the original's calls" (Discussion, paragraph 1) -- and
why, with the conservative 0.01 margin, the call sets come out
identical on all benchmark datasets.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.core.config import CallerConfig
from repro.core.model import allele_error_probabilities, candidate_alleles
from repro.core.results import ColumnDecision, RunStats, VariantCall
from repro.pileup.column import CODE_TO_BASE, PileupColumn
from repro.stats.approximation import poisson_tail_approx
from repro.stats.fisher import strand_bias_phred
from repro.stats.poisson_binomial import poibin_sf_dp

__all__ = [
    "AlleleOutcome",
    "evaluate_column",
    "decide_allele",
    "exact_allele_decision",
]


@dataclasses.dataclass
class AlleleOutcome:
    """Result of one allele test (diagnostic view of the workflow)."""

    decision: ColumnDecision
    call: Optional[VariantCall] = None
    p_hat: Optional[float] = None
    pvalue: Optional[float] = None
    dp_steps: int = 0


def decide_allele(
    column: PileupColumn,
    alt_code: int,
    alt_count: int,
    probs: np.ndarray,
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> AlleleOutcome:
    """Run the Figure 1b workflow for one alternate allele.

    Args:
        column: the pileup column.
        alt_code: base code of the allele under test.
        alt_count: its supporting read count (the tail point K).
        probs: per-read specific-miscall probabilities (``p_i / 3``).
        corrected_alpha: per-test raw-p-value threshold.
        config: workflow parameters.
        stats: counters, mutated in place.

    Returns:
        The outcome, including the call when significant.
    """
    depth = column.depth
    stats.tests_run += 1
    p_hat: Optional[float] = None

    if config.use_approximation and depth >= config.approx_min_depth:
        stats.approx_invocations += 1
        p_hat = poisson_tail_approx(alt_count, probs)
        # Compare on the corrected scale, as LoFreq reports p-values:
        # p_hat_corrected = min(1, p_hat * n_tests).
        p_hat_corrected = min(1.0, p_hat / corrected_alpha * config.alpha)
        margin = config.margin_for_depth(depth)
        if p_hat_corrected >= config.alpha + margin:
            stats.exact_skipped += 1
            stats.record_decision(ColumnDecision.SKIPPED_APPROX)
            return AlleleOutcome(ColumnDecision.SKIPPED_APPROX, p_hat=p_hat)

    return exact_allele_decision(
        column, alt_code, alt_count, probs, corrected_alpha, config, stats,
        p_hat=p_hat,
    )


def exact_allele_decision(
    column: PileupColumn,
    alt_code: int,
    alt_count: int,
    probs: np.ndarray,
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
    *,
    p_hat: Optional[float] = None,
) -> AlleleOutcome:
    """The exact half of the workflow: pruned DP, significance test,
    count/frequency filters, call emission.

    Shared verbatim by the streaming path (:func:`decide_allele`) and
    the batched engine (:mod:`repro.core.batched`), which is what makes
    their call sets and decision censuses identical by construction for
    every allele that survives screening.
    """
    depth = column.depth
    prune = corrected_alpha if config.early_stop else None
    dp = poibin_sf_dp(alt_count, probs, prune_above=prune)
    stats.dp_invocations += 1
    stats.dp_steps += dp.steps
    if not dp.complete:
        stats.record_decision(ColumnDecision.EXACT_PRUNED)
        return AlleleOutcome(
            ColumnDecision.EXACT_PRUNED, p_hat=p_hat, pvalue=dp.pvalue,
            dp_steps=dp.steps,
        )
    pvalue = dp.pvalue
    if pvalue >= corrected_alpha:
        stats.record_decision(ColumnDecision.EXACT_NOT_SIGNIFICANT)
        return AlleleOutcome(
            ColumnDecision.EXACT_NOT_SIGNIFICANT,
            p_hat=p_hat,
            pvalue=pvalue,
            dp_steps=dp.steps,
        )

    af = alt_count / depth if depth else 0.0
    if alt_count < config.min_alt_count or af < config.min_af:
        stats.record_decision(ColumnDecision.REJECTED_FILTER)
        return AlleleOutcome(
            ColumnDecision.REJECTED_FILTER,
            p_hat=p_hat,
            pvalue=pvalue,
            dp_steps=dp.steps,
        )

    dp4 = column.dp4(alt_code)
    call = VariantCall(
        chrom=column.chrom,
        pos=column.pos,
        ref=column.ref_base,
        alt=CODE_TO_BASE[alt_code],
        pvalue=pvalue,
        corrected_pvalue=min(1.0, pvalue / corrected_alpha * config.alpha),
        depth=depth,
        alt_count=alt_count,
        af=af,
        dp4=dp4,
        strand_bias=strand_bias_phred(*dp4),
        used_exact=True,
    )
    stats.record_decision(ColumnDecision.CALLED)
    return AlleleOutcome(
        ColumnDecision.CALLED,
        call=call,
        p_hat=p_hat,
        pvalue=pvalue,
        dp_steps=dp.steps,
    )


def evaluate_column(
    column: PileupColumn,
    corrected_alpha: float,
    config: CallerConfig,
    stats: RunStats,
) -> List[VariantCall]:
    """Test every candidate allele at a column; returns emitted calls."""
    stats.columns_seen += 1
    if column.depth < config.min_coverage:
        stats.record_decision(ColumnDecision.LOW_COVERAGE)
        return []
    candidates = candidate_alleles(column)
    if not candidates:
        stats.record_decision(ColumnDecision.NO_CANDIDATE)
        return []
    probs = allele_error_probabilities(column, merge_mapq=config.merge_mapq)
    calls: List[VariantCall] = []
    for alt_code, alt_count in candidates:
        outcome = decide_allele(
            column, alt_code, alt_count, probs, corrected_alpha, config, stats
        )
        if outcome.call is not None:
            calls.append(outcome.call)
    return calls
