"""repro: low-frequency variant calling on ultra-deep sequencing data.

A from-scratch Python reproduction of *"Accelerating SARS-CoV-2 low
frequency variant calling on ultra deep sequencing datasets"*
(Kille et al., 2021, arXiv:2105.03062): a LoFreq-style quality-aware
SNV caller accelerated by a Poisson-approximation first-pass filter,
an OpenMP-style shared-memory parallel runtime that fixes the legacy
double-filtering bug, and every substrate the pipeline needs (BAM /
BGZF / SAM / VCF codecs, a pileup engine, a calibrated read simulator,
Poisson-binomial statistics, a cache simulator and trace profiling).

Quickstart::

    from repro import (CallerConfig, Pipeline, SampleSource,
                       sars_cov_2_like, random_panel, ReadSimulator)

    genome = sars_cov_2_like(length=2000)
    panel = random_panel(genome.sequence, 10, seed=7)
    sample = ReadSimulator(genome, panel).simulate(depth=500, seed=7)
    result = Pipeline(SampleSource(sample),
                      config=CallerConfig.improved()).run()
    for call in result.passed:
        print(call.pos, call.ref, call.alt, f"AF={call.af:.4f}")
"""

from repro.core import (
    CallResult,
    CallerConfig,
    ColumnDecision,
    DynamicFilterPolicy,
    RunStats,
    VariantCall,
    VariantCaller,
)
from repro.io.regions import Region
from repro.pileup import PileupColumn, PileupConfig, pileup
from repro.pipeline import (
    BamSource,
    ColumnsSource,
    ExecutionPolicy,
    JsonlSink,
    Pipeline,
    ReadsSource,
    SampleSource,
    StatsSink,
    TeeSink,
    VcfSink,
)
from repro.sim import (
    MapqProfile,
    QualityModel,
    ReadSimulator,
    SimulatedSample,
    VariantPanel,
    VariantSpec,
    paper_dataset_suite,
    random_genome,
    random_panel,
    sars_cov_2_like,
)

__version__ = "1.0.0"

__all__ = [
    "BamSource",
    "CallResult",
    "CallerConfig",
    "ColumnDecision",
    "ColumnsSource",
    "DynamicFilterPolicy",
    "ExecutionPolicy",
    "JsonlSink",
    "Pipeline",
    "MapqProfile",
    "PileupColumn",
    "PileupConfig",
    "QualityModel",
    "ReadSimulator",
    "ReadsSource",
    "Region",
    "RunStats",
    "SampleSource",
    "SimulatedSample",
    "StatsSink",
    "TeeSink",
    "VariantCall",
    "VariantCaller",
    "VariantPanel",
    "VariantSpec",
    "VcfSink",
    "__version__",
    "paper_dataset_suite",
    "pileup",
    "random_genome",
    "random_panel",
    "sars_cov_2_like",
]
