"""Streaming pileup over coordinate-sorted reads.

The engine sweeps left-to-right: reads arrive sorted by position, each
read deposits its aligned bases into per-position accumulators, and a
column is emitted (and its accumulator freed) as soon as the sweep
passes it -- memory stays proportional to read length x depth, not
genome length.  This is the "iterating over the .bam file" stage that
dominates the teal regions of the paper's Figure 2 trace.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.io.cigar import CONSUMES_QUERY, CONSUMES_REFERENCE, CigarOp
from repro.io.records import AlignedRead
from repro.io.regions import Region
from repro.pileup.column import BASE_TO_CODE, N_CODE, ColumnBatch, PileupColumn

__all__ = ["PileupConfig", "pileup", "pileup_batches"]

#: LoFreq's default depth cap (Table I footnote: "LoFreq by default
#: limits columns to 1 million").
DEFAULT_MAX_DEPTH = 1_000_000


@dataclasses.dataclass(frozen=True)
class PileupConfig:
    """Filtering parameters for pileup construction.

    Attributes:
        min_mapq: drop reads mapped below this quality (LoFreq: 0 by
            default but commonly raised; we default to 0 for parity).
        min_baseq: drop individual bases below this quality
            (LoFreq default 6).
        max_depth: per-column cap; extra reads are counted in
            ``n_capped`` but their bases dropped (first-come order,
            matching samtools).
        include_duplicates: keep flagged duplicates.
        include_secondary: keep secondary/supplementary alignments.
        include_qcfail: keep QC-failed reads.
    """

    min_mapq: int = 0
    min_baseq: int = 6
    max_depth: int = DEFAULT_MAX_DEPTH
    include_duplicates: bool = False
    include_secondary: bool = False
    include_qcfail: bool = False

    def __post_init__(self) -> None:
        if self.max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {self.max_depth}")
        if self.min_baseq < 0 or self.min_mapq < 0:
            raise ValueError("quality thresholds must be non-negative")

    def read_passes(self, read: AlignedRead) -> bool:
        """Read-level filters (flag and mapping quality)."""
        if read.is_unmapped:
            return False
        if read.mapq < self.min_mapq:
            return False
        if not self.include_secondary and (
            read.is_secondary or read.is_supplementary
        ):
            return False
        if not self.include_duplicates and read.is_duplicate:
            return False
        if not self.include_qcfail and read.is_qcfail:
            return False
        return True


class _ColumnAccumulator:
    """Mutable per-position buffers, converted to arrays on emit."""

    __slots__ = ("codes", "quals", "reverse", "mapqs", "capped")

    def __init__(self) -> None:
        self.codes: List[int] = []
        self.quals: List[int] = []
        self.reverse: List[bool] = []
        self.mapqs: List[int] = []
        self.capped = 0

    def add(self, code: int, qual: int, rev: bool, mapq: int, cap: int) -> None:
        """Append one base, counting instead of storing past ``cap``."""
        if len(self.codes) >= cap:
            self.capped += 1
            return
        self.codes.append(code)
        self.quals.append(qual)
        self.reverse.append(rev)
        self.mapqs.append(mapq)

    def to_column(self, chrom: str, pos: int, ref_base: str) -> PileupColumn:
        """Freeze the accumulated bases into a column value."""
        return PileupColumn(
            chrom=chrom,
            pos=pos,
            ref_base=ref_base,
            base_codes=np.array(self.codes, dtype=np.uint8),
            quals=np.array(self.quals, dtype=np.uint8),
            reverse=np.array(self.reverse, dtype=bool),
            mapqs=np.array(self.mapqs, dtype=np.uint8),
            n_capped=self.capped,
        )


def _sweep(
    reads: Iterable[AlignedRead],
    region: Region,
    cfg: PileupConfig,
) -> Iterator[Tuple[int, Optional[_ColumnAccumulator]]]:
    """The left-to-right sweep shared by :func:`pileup` and
    :func:`pileup_batches`: yields ``(position, accumulator)`` for
    every position of ``region`` in order, with ``None`` accumulators
    at uncovered positions.

    Raises:
        ValueError: if the input violates coordinate sorting.
    """
    acc: Dict[int, _ColumnAccumulator] = {}
    emit_from = region.start
    last_read_pos = -1

    def _emit_until(bound: int) -> Iterator[Tuple[int, Optional[_ColumnAccumulator]]]:
        nonlocal emit_from
        while emit_from < bound:
            pos = emit_from
            emit_from += 1
            yield pos, acc.pop(pos, None)

    for read in reads:
        if read.rname != region.chrom:
            continue
        if read.is_unmapped:
            continue
        if read.pos < last_read_pos:
            raise ValueError(
                f"reads are not coordinate-sorted: {read.qname} at "
                f"{read.pos} after {last_read_pos}"
            )
        last_read_pos = read.pos
        if read.pos >= region.end:
            break
        if read.reference_end <= region.start:
            continue
        # Everything strictly left of this read's start is complete.
        yield from _emit_until(min(read.pos, region.end))
        if not cfg.read_passes(read):
            continue
        _deposit(read, region, cfg, acc)

    yield from _emit_until(region.end)


def pileup(
    reads: Iterable[AlignedRead],
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
    *,
    emit_empty: bool = False,
) -> Iterator[PileupColumn]:
    """Yield pileup columns for ``region`` from coordinate-sorted reads.

    Args:
        reads: alignments sorted by position; reads on other
            chromosomes or outside the region are skipped (callers
            normally pre-restrict, but correctness does not rely on it).
        reference: the full reference sequence for ``region.chrom``
            (indexed absolutely by position).
        region: half-open interval to emit columns for.
        config: filtering parameters (defaults to :class:`PileupConfig`).
        emit_empty: also yield zero-depth columns (callers that need a
            column for every position, e.g. coverage reports).

    Yields:
        :class:`PileupColumn` in strictly increasing position order.

    Raises:
        ValueError: if the input violates coordinate sorting.
    """
    cfg = config or PileupConfig()
    for pos, builder in _sweep(reads, region, cfg):
        if builder is None:
            if emit_empty:
                yield _ColumnAccumulator().to_column(
                    region.chrom, pos, reference[pos].upper()
                )
            continue
        yield builder.to_column(region.chrom, pos, reference[pos].upper())


#: Columns per batch emitted by :func:`pileup_batches`; matches the
#: batched caller engine's internal slice size so one batch feeds one
#: vectorised screening pass.
BATCH_SWEEP_COLUMNS = 1024


def pileup_batches(
    reads: Iterable[AlignedRead],
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
    *,
    batch_columns: Optional[int] = BATCH_SWEEP_COLUMNS,
) -> Iterator[ColumnBatch]:
    """Batch-emitting sweep: like :func:`pileup` but yields
    :class:`~repro.pileup.column.ColumnBatch` spans of at most
    ``batch_columns`` columns, never materialising the per-column
    :class:`PileupColumn` objects in between.

    Since PR 5 this delegates to the incremental
    :class:`~repro.pileup.vectorized.ColumnBatchBuilder` (the
    per-base Python list accumulators are gone): reads are deposited
    as flat segment arrays and a completed window is flushed as soon
    as the scan passes it, so memory stays proportional to one flush
    window -- read length x depth plus ``batch_columns`` columns --
    and the columns covered are identical to :func:`pileup`.
    ``batch_columns=None`` emits one batch for the whole region.

    Raises:
        ValueError: if ``batch_columns`` is not positive (raised
            eagerly, at call time) or the input violates coordinate
            sorting (raised during iteration).
    """
    from repro.pileup.vectorized import iter_pileup_batches

    if batch_columns is not None and batch_columns <= 0:
        raise ValueError(
            f"batch_columns must be positive, got {batch_columns}"
        )
    return iter_pileup_batches(
        reads, reference, region, config, batch_columns=batch_columns
    )


def _deposit(
    read: AlignedRead,
    region: Region,
    cfg: PileupConfig,
    acc: Dict[int, _ColumnAccumulator],
) -> None:
    """Walk the CIGAR and add each aligned base to its accumulator."""
    qi = 0
    ri = read.pos
    seq = read.seq
    qual = read.qual
    rev = read.is_reverse
    mapq = read.mapq
    for op, length in read.cigar:
        op = CigarOp(op)
        in_q = op in CONSUMES_QUERY
        in_r = op in CONSUMES_REFERENCE
        if in_q and in_r:
            for j in range(length):
                pos = ri + j
                if pos < region.start or pos >= region.end:
                    continue
                q = int(qual[qi + j]) if qual.size else 0
                if q < cfg.min_baseq:
                    continue
                code = BASE_TO_CODE.get(seq[qi + j], N_CODE)
                builder = acc.get(pos)
                if builder is None:
                    builder = acc[pos] = _ColumnAccumulator()
                builder.add(code, q, rev, mapq, cfg.max_depth)
            qi += length
            ri += length
        elif in_q:
            qi += length
        elif in_r:
            ri += length
