"""Bulk pileup construction from columnar read matrices.

The streaming engine (:mod:`repro.pileup.engine`) deposits one base at
a time, which is faithful to htslib's pileup loop but slow in Python at
the paper's depths.  For the ungapped matrix representation produced by
:class:`repro.sim.reads.ReadSimulator`, the entire pileup can instead
be built with a handful of array operations: flatten all (position,
base, qual, strand) tuples, mask, stable-sort by position, and slice at
column boundaries.  The test suite checks the two paths produce
identical columns; benchmarks use this one so that -- as in the C
original -- the probability computation, not Python pileup overhead,
dominates the measured runtimes.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.io.regions import Region
from repro.pileup.column import PileupColumn
from repro.pileup.engine import PileupConfig

__all__ = ["pileup_from_arrays", "pileup_sample"]


def pileup_from_arrays(
    starts: np.ndarray,
    codes: np.ndarray,
    quals: np.ndarray,
    reverse: np.ndarray,
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
    *,
    mapq: int = 60,
) -> Iterator[PileupColumn]:
    """Yield pileup columns from an ``(n, read_length)`` read matrix.

    Args:
        starts: sorted int read start positions, shape ``(n,)``.
        codes: uint8 base-code matrix, shape ``(n, read_length)``.
        quals: uint8 Phred matrix, same shape.
        reverse: bool strand vector, shape ``(n,)``.
        reference: full reference sequence (indexed absolutely).
        region: half-open interval to emit columns for.
        config: quality filters and depth cap.  Only the *quality*
            semantics of the streaming engine apply here: matrix input
            carries no SAM flags, so the flag-based read filters
            (``include_duplicates`` / ``include_secondary`` /
            ``include_qcfail``) have no effect -- every read in the
            matrix is treated as a primary, non-duplicate, QC-pass
            alignment.
        mapq: mapping quality stamped on all reads (the simulator uses
            a constant; per-read vectors would be a trivial extension).
            The ``min_mapq`` filter compares against this *raw* value;
            values above 255 are only saturated to 255 afterwards, when
            stamped into the column's uint8 ``mapqs`` array (so e.g.
            ``mapq=300`` passes a ``min_mapq=260`` filter but reads
            back as 255, the SAM-format ceiling).

    Yields:
        Non-empty :class:`PileupColumn` in increasing position order.

    Raises:
        ValueError: on inconsistent array shapes or negative ``mapq``
            (which a bare uint8 cast would silently wrap or reject
            depending on the NumPy version).
    """
    cfg = config or PileupConfig()
    n, rl = codes.shape
    if starts.shape != (n,) or quals.shape != (n, rl) or reverse.shape != (n,):
        raise ValueError("read matrix arrays are not mutually consistent")
    if mapq < 0:
        raise ValueError(f"mapq must be non-negative, got {mapq}")
    if mapq < cfg.min_mapq:
        return

    positions = (starts[:, None] + np.arange(rl)[None, :]).ravel()
    flat_codes = codes.ravel()
    flat_quals = quals.ravel()
    flat_rev = np.repeat(reverse, rl)

    mask = (
        (positions >= region.start)
        & (positions < region.end)
        & (flat_quals >= cfg.min_baseq)
    )
    positions = positions[mask]
    flat_codes = flat_codes[mask]
    flat_quals = flat_quals[mask]
    flat_rev = flat_rev[mask]
    if positions.size == 0:
        return

    order = np.argsort(positions, kind="stable")
    positions = positions[order]
    flat_codes = flat_codes[order]
    flat_quals = flat_quals[order]
    flat_rev = flat_rev[order]

    unique_pos, first_idx = np.unique(positions, return_index=True)
    boundaries = np.append(first_idx, positions.size)
    mapq_u8 = np.uint8(min(mapq, 255))

    for i, pos in enumerate(unique_pos):
        lo, hi = int(boundaries[i]), int(boundaries[i + 1])
        depth = hi - lo
        capped = 0
        if depth > cfg.max_depth:
            capped = depth - cfg.max_depth
            hi = lo + cfg.max_depth
        yield PileupColumn(
            chrom=region.chrom,
            pos=int(pos),
            ref_base=reference[int(pos)].upper(),
            base_codes=flat_codes[lo:hi],
            quals=flat_quals[lo:hi],
            reverse=flat_rev[lo:hi],
            mapqs=np.full(hi - lo, mapq_u8, dtype=np.uint8),
            n_capped=capped,
        )


def pileup_sample(
    sample,
    region: Optional[Region] = None,
    config: Optional[PileupConfig] = None,
) -> Iterator[PileupColumn]:
    """Pileup a :class:`~repro.sim.reads.SimulatedSample` directly.

    ``region`` defaults to the whole genome.
    """
    if region is None:
        region = Region(sample.genome.name, 0, len(sample.genome))
    return pileup_from_arrays(
        sample.starts,
        sample.codes,
        sample.quals,
        sample.reverse,
        sample.genome.sequence,
        region,
        config,
        mapq=sample.mapq,
    )
