"""Bulk pileup construction into columnar :class:`ColumnBatch` values.

The streaming engine (:mod:`repro.pileup.engine`) deposits one base at
a time, which is faithful to htslib's pileup loop but slow in Python at
the paper's depths.  Here the entire pileup of a region is instead
built with a handful of array operations: flatten all (position, base,
qual, strand) observations, mask, stable-sort by position, and record
column boundaries as offsets -- a structure-of-arrays
:class:`~repro.pileup.column.ColumnBatch` whose per-column
:class:`~repro.pileup.column.PileupColumn` views slice the flat arrays
without copying.

Three producers share that core:

* :func:`pileup_batch_from_arrays` / :func:`pileup_sample_batch` --
  the ungapped read-matrix representation of
  :class:`repro.sim.reads.ReadSimulator` samples;
* :func:`pileup_batch_from_reads` -- CIGAR-aware alignments (BAM/SAM
  records), whose aligned bases are decoded straight into flat arrays
  by :func:`repro.io.bam.aligned_base_arrays` instead of one
  interpreter round-trip per base.

The test suite checks all paths produce columns identical to the
streaming engine; benchmarks use these so that -- as in the C original
-- the probability computation, not Python pileup overhead, dominates
the measured runtimes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.io.records import AlignedRead
from repro.io.regions import Region
from repro.pileup.column import ColumnBatch, PileupColumn
from repro.pileup.engine import PileupConfig

__all__ = [
    "pileup_batch_from_arrays",
    "pileup_batch_from_reads",
    "pileup_from_arrays",
    "pileup_sample",
    "pileup_sample_batch",
]


def _ref_bases_at(reference: str, positions: np.ndarray) -> str:
    """Uppercase reference characters at sorted ``positions`` (one
    gather).  Only the covered span is encoded, so per-chunk cost is
    bounded by the chunk, not the reference length."""
    if positions.size == 0:
        return ""
    lo = int(positions[0])
    raw = np.frombuffer(
        reference[lo : int(positions[-1]) + 1].encode("ascii"),
        dtype=np.uint8,
    )
    return raw[positions - lo].tobytes().decode("ascii").upper()


def _batch_from_flat(
    chrom: str,
    positions: np.ndarray,
    codes: np.ndarray,
    quals: np.ndarray,
    reverse: Optional[np.ndarray],
    mapqs: Optional[np.ndarray],
    reference: str,
    cfg: PileupConfig,
    *,
    planes: Optional[Callable[[], Tuple[np.ndarray, np.ndarray]]] = None,
) -> ColumnBatch:
    """Assemble a batch from flat per-base arrays.

    ``positions`` must already be stable-sorted so that, within a
    column, bases appear in read-deposit order -- that ordering is what
    makes the depth cap (keep the first ``max_depth``) agree with the
    streaming engine exactly.

    The strand/mapq planes are either eager arrays or a deferred
    ``planes`` thunk (producing the sorted-order pair); a deferred
    thunk is carried into the batch, composed with the depth-cap mask
    when one applies, so the scatters never run unless something
    downstream reads the planes.
    """
    if positions.size == 0:
        return ColumnBatch.empty(chrom)
    # positions is sorted, so column boundaries come from one diff --
    # no np.unique, which would sort a second time.
    first = np.empty(positions.size, dtype=bool)
    first[0] = True
    np.not_equal(positions[1:], positions[:-1], out=first[1:])
    first_idx = np.nonzero(first)[0]
    unique_pos = positions[first_idx]
    boundaries = np.append(first_idx, positions.size)
    depths = np.diff(boundaries)
    if int(depths.max()) > cfg.max_depth:
        # Vectorised first-come cap: index of each base within its
        # column, keep only the first max_depth of them.
        within = np.arange(positions.size) - np.repeat(boundaries[:-1], depths)
        keep = within < cfg.max_depth
        codes = codes[keep]
        quals = quals[keep]
        if planes is None:
            reverse = reverse[keep]
            mapqs = mapqs[keep]
        else:
            uncapped = planes

            def planes(
                _build: Callable[
                    [], Tuple[np.ndarray, np.ndarray]
                ] = uncapped,
                _keep: np.ndarray = keep,
            ) -> Tuple[np.ndarray, np.ndarray]:
                rev, mq = _build()
                return rev[_keep], mq[_keep]

        kept = np.minimum(depths, cfg.max_depth)
        capped = depths - kept
    else:
        kept = depths
        capped = np.zeros(depths.size, dtype=np.int64)
    offsets = np.zeros(unique_pos.size + 1, dtype=np.int64)
    np.cumsum(kept, out=offsets[1:])
    return ColumnBatch(
        chrom=chrom,
        positions=unique_pos.astype(np.int64),
        ref_bases=_ref_bases_at(reference, unique_pos),
        base_codes=codes,
        quals=quals,
        reverse=reverse,
        mapqs=mapqs,
        offsets=offsets,
        n_capped=capped,
        planes=planes,
    )


def pileup_batch_from_arrays(
    starts: np.ndarray,
    codes: np.ndarray,
    quals: np.ndarray,
    reverse: np.ndarray,
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
    *,
    mapq: Union[int, np.ndarray] = 60,
) -> ColumnBatch:
    """Build the pileup of an ``(n, read_length)`` read matrix as one
    :class:`ColumnBatch`.

    Args:
        starts: sorted int read start positions, shape ``(n,)``.
        codes: uint8 base-code matrix, shape ``(n, read_length)``.
        quals: uint8 Phred matrix, same shape.
        reverse: bool strand vector, shape ``(n,)``.
        reference: full reference sequence (indexed absolutely).
        region: half-open interval to build columns for.
        config: quality filters and depth cap.  Only the *quality*
            semantics of the streaming engine apply here: matrix input
            carries no SAM flags, so the flag-based read filters
            (``include_duplicates`` / ``include_secondary`` /
            ``include_qcfail``) have no effect -- every read in the
            matrix is treated as a primary, non-duplicate, QC-pass
            alignment.
        mapq: mapping quality -- one int stamped on all reads (the
            simulator's default), or a per-read int vector of shape
            ``(n,)``.  The ``min_mapq`` filter compares against the
            *raw* values (a scalar below threshold empties the whole
            pileup; a vector drops exactly the failing reads, like the
            streaming engine's per-read ``read_passes``); values above
            255 are only saturated to 255 afterwards, when stamped
            into the batch's uint8 ``mapqs`` array (so e.g.
            ``mapq=300`` passes a ``min_mapq=260`` filter but reads
            back as 255, the SAM-format ceiling).

    Returns:
        The region's non-empty columns as one batch (possibly empty).

    Raises:
        ValueError: on inconsistent array shapes or negative ``mapq``
            (which a bare uint8 cast would silently wrap or reject
            depending on the NumPy version).
    """
    cfg = config or PileupConfig()
    n, rl = codes.shape
    if starts.shape != (n,) or quals.shape != (n, rl) or reverse.shape != (n,):
        raise ValueError("read matrix arrays are not mutually consistent")
    if np.isscalar(mapq) or np.ndim(mapq) == 0:
        mapq = int(mapq)
        if mapq < 0:
            raise ValueError(f"mapq must be non-negative, got {mapq}")
        if mapq < cfg.min_mapq or n == 0:
            return ColumnBatch.empty(region.chrom)
        mapq_reads = None
    else:
        mapq_arr = np.asarray(mapq)
        if mapq_arr.shape != (n,):
            raise ValueError(
                f"per-read mapq must have shape ({n},), got {mapq_arr.shape}"
            )
        if n and int(mapq_arr.min()) < 0:
            raise ValueError("mapq must be non-negative in every read")
        keep_reads = mapq_arr >= cfg.min_mapq
        if not keep_reads.all():
            # Dropping whole reads preserves the sorted-starts
            # counting-deposit structure, so the fast path below still
            # applies to the surviving subset.
            starts = starts[keep_reads]
            codes = codes[keep_reads]
            quals = quals[keep_reads]
            reverse = reverse[keep_reads]
            mapq_arr = mapq_arr[keep_reads]
            n = int(starts.size)
        if n == 0:
            return ColumnBatch.empty(region.chrom)
        mapq_reads = np.minimum(mapq_arr, 255).astype(np.uint8)
    if np.any(starts[1:] < starts[:-1]):
        # Unsorted input loses the counting-deposit structure; fall
        # back to a general stable sort of the flattened matrix.
        return _batch_from_arrays_sorted(
            starts, codes, quals, reverse, reference, region, cfg,
            mapq if mapq_reads is None else 0, mapq_reads,
        )

    # Counting deposit: because every read spans exactly rl contiguous
    # positions and starts are sorted, the reads covering position p
    # are precisely rows lo[p]..hi[p], and the stable sort-by-position
    # permutation can be *computed* instead of searched for: base
    # (i, j) lands at col_start[p] + (i - lo[p]).  This is the same
    # deposit order as the streaming sweep (read order within each
    # column), with no O(m log m) sort anywhere.
    i_lo = int(np.searchsorted(starts, region.start - rl + 1, side="left"))
    i_hi = int(np.searchsorted(starts, region.end, side="left"))
    if i_hi <= i_lo:
        return ColumnBatch.empty(region.chrom)
    starts_r = starts[i_lo:i_hi]
    nr = i_hi - i_lo
    span_lo = int(starts_r[0])
    span_hi = int(starts_r[-1]) + rl
    grid = np.arange(span_lo, span_hi, dtype=np.int64)
    lo = np.searchsorted(starts_r, grid - rl + 1, side="left")
    col_start = np.zeros(grid.size + 1, dtype=np.int64)
    np.cumsum(
        np.searchsorted(starts_r, grid, side="right") - lo,
        out=col_start[1:],
    )
    m = nr * rl
    # dest[i, j] = col_start[p] + i - lo[p] for p = starts[i] + j,
    # factored as (col_start - lo) gathered per position plus an
    # in-place row add.  Each read's positions are contiguous, so the
    # gather is a sliding-window row copy, not an element gather;
    # 32-bit indices halve the memory traffic whenever they fit.
    idx_dtype = np.int64 if m > np.iinfo(np.int32).max else np.int32
    base = (col_start[:-1] - lo).astype(idx_dtype)
    windows = np.lib.stride_tricks.sliding_window_view(base, rl)
    dest = windows[starts_r - span_lo]
    dest += np.arange(nr, dtype=idx_dtype)[:, None]
    dest = dest.reshape(-1)
    # Deposit by direct scatter.  Base code (3 bits) and strand (1
    # bit) share one byte so the whole deposit is two single-byte
    # scatters, which stay cache-resident where a permutation index
    # would not.
    q_sorted = np.empty(m, dtype=np.uint8)
    q_sorted[dest] = quals[i_lo:i_hi].reshape(-1)
    packed = codes[i_lo:i_hi] | (
        reverse[i_lo:i_hi].astype(np.uint8) << np.uint8(3)
    )[:, None]
    p_sorted = np.empty(m, dtype=np.uint8)
    p_sorted[dest] = packed.reshape(-1)
    c_sorted = p_sorted & np.uint8(7)
    r_sorted = p_sorted >= 8
    pos_sorted = np.repeat(grid, np.diff(col_start))
    if mapq_reads is None:
        m_sorted = None
    else:
        # Per-read mapq: one extra single-byte scatter through the
        # same computed permutation.
        m_sorted = np.empty(m, dtype=np.uint8)
        m_sorted[dest] = np.repeat(mapq_reads[i_lo:i_hi], rl)

    # The region clip is a slice of the sorted axis, not a mask.
    a = int(col_start[region.start - span_lo]) if region.start > span_lo else 0
    b = int(col_start[region.end - span_lo]) if region.end < span_hi else m
    pos_sorted = pos_sorted[a:b]
    q_sorted = q_sorted[a:b]
    c_sorted = c_sorted[a:b]
    r_sorted = r_sorted[a:b]
    if m_sorted is not None:
        m_sorted = m_sorted[a:b]
    if pos_sorted.size == 0:
        return ColumnBatch.empty(region.chrom)

    if cfg.min_baseq > 0:
        keep = q_sorted >= cfg.min_baseq
        if not keep.all():
            pos_sorted = pos_sorted[keep]
            q_sorted = q_sorted[keep]
            c_sorted = c_sorted[keep]
            r_sorted = r_sorted[keep]
            if m_sorted is not None:
                m_sorted = m_sorted[keep]
            if pos_sorted.size == 0:
                return ColumnBatch.empty(region.chrom)
    if m_sorted is None:
        m_sorted = np.full(pos_sorted.size, min(mapq, 255), dtype=np.uint8)
    return _batch_from_flat(
        region.chrom,
        pos_sorted,
        c_sorted,
        q_sorted,
        r_sorted,
        m_sorted,
        reference,
        cfg,
    )


def _batch_from_arrays_sorted(
    starts: np.ndarray,
    codes: np.ndarray,
    quals: np.ndarray,
    reverse: np.ndarray,
    reference: str,
    region: Region,
    cfg: PileupConfig,
    mapq: int,
    mapq_reads: Optional[np.ndarray] = None,
) -> ColumnBatch:
    """General fallback for unsorted read matrices: flatten, mask and
    stable-sort by position (the pre-counting-deposit construction).
    ``mapq_reads`` (uint8, one per read, already min_mapq-filtered)
    overrides the constant ``mapq`` when given."""
    n, rl = codes.shape
    positions = (starts[:, None] + np.arange(rl)[None, :]).ravel()
    flat_codes = codes.ravel()
    flat_quals = quals.ravel()
    flat_rev = np.repeat(reverse, rl)
    flat_mapqs = (
        None if mapq_reads is None else np.repeat(mapq_reads, rl)
    )

    mask = (
        (positions >= region.start)
        & (positions < region.end)
        & (flat_quals >= cfg.min_baseq)
    )
    positions = positions[mask]
    flat_codes = flat_codes[mask]
    flat_quals = flat_quals[mask]
    flat_rev = flat_rev[mask]
    if flat_mapqs is not None:
        flat_mapqs = flat_mapqs[mask]
    if positions.size == 0:
        return ColumnBatch.empty(region.chrom)

    order = np.argsort(positions, kind="stable")
    if flat_mapqs is None:
        flat_mapqs = np.full(positions.size, min(mapq, 255), dtype=np.uint8)
    else:
        flat_mapqs = flat_mapqs[order]
    return _batch_from_flat(
        region.chrom,
        positions[order],
        flat_codes[order],
        flat_quals[order],
        flat_rev[order],
        flat_mapqs,
        reference,
        cfg,
    )


def pileup_from_arrays(
    starts: np.ndarray,
    codes: np.ndarray,
    quals: np.ndarray,
    reverse: np.ndarray,
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
    *,
    mapq: Union[int, np.ndarray] = 60,
) -> Iterator[PileupColumn]:
    """Yield pileup columns from an ``(n, read_length)`` read matrix.

    Compatibility view over :func:`pileup_batch_from_arrays` (same
    arguments and semantics): the columns are zero-copy views into the
    underlying batch, yielded in increasing position order.
    """
    batch = pileup_batch_from_arrays(
        starts, codes, quals, reverse, reference, region, config, mapq=mapq
    )
    return batch.columns()


def pileup_batch_from_reads(
    reads: Iterable[AlignedRead],
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
) -> ColumnBatch:
    """Columnar pileup over coordinate-sorted alignments.

    The CIGAR-aware twin of :func:`pileup_batch_from_arrays`: each
    read's aligned bases are decoded into flat arrays in one shot
    (:func:`repro.io.bam.aligned_base_arrays`), concatenated in read
    order, filtered, and stable-sorted by position -- so within a
    column bases keep the streaming engine's deposit order and the
    depth cap drops exactly the same reads.  Read-level semantics
    (chromosome/region skips, flag filters, the coordinate-sort check)
    are identical to :func:`repro.pileup.engine.pileup`.

    The batch's strand/mapq planes are built *lazily*: the screen only
    reads base codes and qualities, so the per-base strand/mapq
    scatters are deferred into the batch and run only if the
    ``merge_mapq`` error model or a surviving column's DP4 actually
    needs them (pure screen-outs skip them entirely).

    Raises:
        ValueError: if the input violates coordinate sorting.
    """
    from repro.io.bam import aligned_base_arrays

    cfg = config or PileupConfig()
    pos_parts: List[np.ndarray] = []
    code_parts: List[np.ndarray] = []
    qual_parts: List[np.ndarray] = []
    rev_flags: List[bool] = []
    mapq_vals: List[int] = []
    lengths: List[int] = []
    last_read_pos = -1
    for read in reads:
        if read.rname != region.chrom:
            continue
        if read.is_unmapped:
            continue
        if read.pos < last_read_pos:
            raise ValueError(
                f"reads are not coordinate-sorted: {read.qname} at "
                f"{read.pos} after {last_read_pos}"
            )
        last_read_pos = read.pos
        if read.pos >= region.end:
            break
        if read.reference_end <= region.start:
            continue
        if not cfg.read_passes(read):
            continue
        positions, codes, quals = aligned_base_arrays(read)
        if positions.size == 0:
            continue
        pos_parts.append(positions)
        code_parts.append(codes)
        qual_parts.append(quals)
        rev_flags.append(read.is_reverse)
        mapq_vals.append(min(read.mapq, 255))
        lengths.append(positions.size)
    if not pos_parts:
        return ColumnBatch.empty(region.chrom)

    positions = np.concatenate(pos_parts)
    flat_codes = np.concatenate(code_parts)
    flat_quals = np.concatenate(qual_parts)
    counts = np.array(lengths, dtype=np.int64)

    mask = (
        (positions >= region.start)
        & (positions < region.end)
        & (flat_quals >= cfg.min_baseq)
    )
    all_in = bool(mask.all())
    positions = positions[mask]
    flat_codes = flat_codes[mask]
    flat_quals = flat_quals[mask]
    if positions.size == 0:
        return ColumnBatch.empty(region.chrom)

    order = np.argsort(positions, kind="stable")

    def planes() -> Tuple[np.ndarray, np.ndarray]:
        rev = np.repeat(np.array(rev_flags, dtype=bool), counts)
        mqs = np.repeat(np.array(mapq_vals, dtype=np.uint8), counts)
        if not all_in:
            rev = rev[mask]
            mqs = mqs[mask]
        return rev[order], mqs[order]

    return _batch_from_flat(
        region.chrom,
        positions[order],
        flat_codes[order],
        flat_quals[order],
        None,
        None,
        reference,
        cfg,
        planes=planes,
    )


def pileup_sample_batch(
    sample,
    region: Optional[Region] = None,
    config: Optional[PileupConfig] = None,
) -> ColumnBatch:
    """Columnar pileup of a :class:`~repro.sim.reads.SimulatedSample`.

    ``region`` defaults to the whole genome.
    """
    if region is None:
        region = Region(sample.genome.name, 0, len(sample.genome))
    return pileup_batch_from_arrays(
        sample.starts,
        sample.codes,
        sample.quals,
        sample.reverse,
        sample.genome.sequence,
        region,
        config,
        mapq=sample.mapq,
    )


def pileup_sample(
    sample,
    region: Optional[Region] = None,
    config: Optional[PileupConfig] = None,
) -> Iterator[PileupColumn]:
    """Pileup a :class:`~repro.sim.reads.SimulatedSample` directly.

    Compatibility view over :func:`pileup_sample_batch`; ``region``
    defaults to the whole genome.
    """
    return pileup_sample_batch(sample, region, config).columns()
