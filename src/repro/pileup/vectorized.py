"""Bulk pileup construction into columnar :class:`ColumnBatch` values.

The streaming engine (:mod:`repro.pileup.engine`) deposits one base at
a time, which is faithful to htslib's pileup loop but slow in Python at
the paper's depths.  Here the entire pileup of a region is instead
built with a handful of array operations: flatten all (position, base,
qual, strand) observations, mask, stable-sort by position, and record
column boundaries as offsets -- a structure-of-arrays
:class:`~repro.pileup.column.ColumnBatch` whose per-column
:class:`~repro.pileup.column.PileupColumn` views slice the flat arrays
without copying.

Three producers share that core:

* :func:`pileup_batch_from_arrays` / :func:`pileup_sample_batch` --
  the ungapped read-matrix representation of
  :class:`repro.sim.reads.ReadSimulator` samples;
* :func:`pileup_batch_from_reads` -- CIGAR-aware alignments (BAM/SAM
  records), whose aligned bases are decoded straight into flat arrays
  by :func:`repro.io.bam.aligned_base_arrays` instead of one
  interpreter round-trip per base.

The test suite checks all paths produce columns identical to the
streaming engine; benchmarks use these so that -- as in the C original
-- the probability computation, not Python pileup overhead, dominates
the measured runtimes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.io.records import AlignedRead
from repro.io.regions import Region
from repro.pileup.column import ColumnBatch, PileupColumn
from repro.pileup.engine import BATCH_SWEEP_COLUMNS, PileupConfig

__all__ = [
    "ColumnBatchBuilder",
    "iter_pileup_batches",
    "pileup_batch_from_arrays",
    "pileup_batch_from_reads",
    "pileup_from_arrays",
    "pileup_sample",
    "pileup_sample_batch",
]

#: Default columns per batch flushed by :class:`ColumnBatchBuilder`
#: (and therefore by :func:`iter_pileup_batches`): the batch-emitting
#: sweep's historical granularity, which matches the batched caller
#: engine's internal slice size so one flushed batch feeds one
#: vectorised screening pass.
BUILDER_BATCH_COLUMNS = BATCH_SWEEP_COLUMNS


def _ref_bases_at(reference: str, positions: np.ndarray) -> str:
    """Uppercase reference characters at sorted ``positions`` (one
    gather).  Only the covered span is encoded, so per-chunk cost is
    bounded by the chunk, not the reference length."""
    if positions.size == 0:
        return ""
    lo = int(positions[0])
    raw = np.frombuffer(
        reference[lo : int(positions[-1]) + 1].encode("ascii"),
        dtype=np.uint8,
    )
    return raw[positions - lo].tobytes().decode("ascii").upper()


def _batch_from_flat(
    chrom: str,
    positions: np.ndarray,
    codes: np.ndarray,
    quals: np.ndarray,
    reverse: Optional[np.ndarray],
    mapqs: Optional[np.ndarray],
    reference: str,
    cfg: PileupConfig,
    *,
    planes: Optional[Callable[[], Tuple[np.ndarray, np.ndarray]]] = None,
) -> ColumnBatch:
    """Assemble a batch from flat per-base arrays.

    ``positions`` must already be stable-sorted so that, within a
    column, bases appear in read-deposit order -- that ordering is what
    makes the depth cap (keep the first ``max_depth``) agree with the
    streaming engine exactly.

    The strand/mapq planes are either eager arrays or a deferred
    ``planes`` thunk (producing the sorted-order pair); a deferred
    thunk is carried into the batch, composed with the depth-cap mask
    when one applies, so the scatters never run unless something
    downstream reads the planes.
    """
    if positions.size == 0:
        return ColumnBatch.empty(chrom)
    # positions is sorted, so column boundaries come from one diff --
    # no np.unique, which would sort a second time.
    first = np.empty(positions.size, dtype=bool)
    first[0] = True
    np.not_equal(positions[1:], positions[:-1], out=first[1:])
    first_idx = np.nonzero(first)[0]
    unique_pos = positions[first_idx]
    boundaries = np.append(first_idx, positions.size)
    depths = np.diff(boundaries)
    if int(depths.max()) > cfg.max_depth:
        # Vectorised first-come cap: index of each base within its
        # column, keep only the first max_depth of them.
        within = np.arange(positions.size) - np.repeat(boundaries[:-1], depths)
        keep = within < cfg.max_depth
        codes = codes[keep]
        quals = quals[keep]
        if planes is None:
            reverse = reverse[keep]
            mapqs = mapqs[keep]
        else:
            uncapped = planes

            def planes(
                _build: Callable[
                    [], Tuple[np.ndarray, np.ndarray]
                ] = uncapped,
                _keep: np.ndarray = keep,
            ) -> Tuple[np.ndarray, np.ndarray]:
                """The deferred planes with the depth-cap mask folded in."""
                rev, mq = _build()
                return rev[_keep], mq[_keep]

        kept = np.minimum(depths, cfg.max_depth)
        capped = depths - kept
    else:
        kept = depths
        capped = np.zeros(depths.size, dtype=np.int64)
    offsets = np.zeros(unique_pos.size + 1, dtype=np.int64)
    np.cumsum(kept, out=offsets[1:])
    return ColumnBatch(
        chrom=chrom,
        positions=unique_pos.astype(np.int64),
        ref_bases=_ref_bases_at(reference, unique_pos),
        base_codes=codes,
        quals=quals,
        reverse=reverse,
        mapqs=mapqs,
        offsets=offsets,
        n_capped=capped,
        planes=planes,
    )


def pileup_batch_from_arrays(
    starts: np.ndarray,
    codes: np.ndarray,
    quals: np.ndarray,
    reverse: np.ndarray,
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
    *,
    mapq: Union[int, np.ndarray] = 60,
) -> ColumnBatch:
    """Build the pileup of an ``(n, read_length)`` read matrix as one
    :class:`ColumnBatch`.

    Args:
        starts: sorted int read start positions, shape ``(n,)``.
        codes: uint8 base-code matrix, shape ``(n, read_length)``.
        quals: uint8 Phred matrix, same shape.
        reverse: bool strand vector, shape ``(n,)``.
        reference: full reference sequence (indexed absolutely).
        region: half-open interval to build columns for.
        config: quality filters and depth cap.  Only the *quality*
            semantics of the streaming engine apply here: matrix input
            carries no SAM flags, so the flag-based read filters
            (``include_duplicates`` / ``include_secondary`` /
            ``include_qcfail``) have no effect -- every read in the
            matrix is treated as a primary, non-duplicate, QC-pass
            alignment.
        mapq: mapping quality -- one int stamped on all reads (the
            simulator's default), or a per-read int vector of shape
            ``(n,)``.  The ``min_mapq`` filter compares against the
            *raw* values (a scalar below threshold empties the whole
            pileup; a vector drops exactly the failing reads, like the
            streaming engine's per-read ``read_passes``); values above
            255 are only saturated to 255 afterwards, when stamped
            into the batch's uint8 ``mapqs`` array (so e.g.
            ``mapq=300`` passes a ``min_mapq=260`` filter but reads
            back as 255, the SAM-format ceiling).

    Returns:
        The region's non-empty columns as one batch (possibly empty).

    Raises:
        ValueError: on inconsistent array shapes or negative ``mapq``
            (which a bare uint8 cast would silently wrap or reject
            depending on the NumPy version).
    """
    cfg = config or PileupConfig()
    n, rl = codes.shape
    if starts.shape != (n,) or quals.shape != (n, rl) or reverse.shape != (n,):
        raise ValueError("read matrix arrays are not mutually consistent")
    if np.isscalar(mapq) or np.ndim(mapq) == 0:
        mapq = int(mapq)
        if mapq < 0:
            raise ValueError(f"mapq must be non-negative, got {mapq}")
        if mapq < cfg.min_mapq or n == 0:
            return ColumnBatch.empty(region.chrom)
        mapq_reads = None
    else:
        mapq_arr = np.asarray(mapq)
        if mapq_arr.shape != (n,):
            raise ValueError(
                f"per-read mapq must have shape ({n},), got {mapq_arr.shape}"
            )
        if n and int(mapq_arr.min()) < 0:
            raise ValueError("mapq must be non-negative in every read")
        keep_reads = mapq_arr >= cfg.min_mapq
        if not keep_reads.all():
            # Dropping whole reads preserves the sorted-starts
            # counting-deposit structure, so the fast path below still
            # applies to the surviving subset.
            starts = starts[keep_reads]
            codes = codes[keep_reads]
            quals = quals[keep_reads]
            reverse = reverse[keep_reads]
            mapq_arr = mapq_arr[keep_reads]
            n = int(starts.size)
        if n == 0:
            return ColumnBatch.empty(region.chrom)
        mapq_reads = np.minimum(mapq_arr, 255).astype(np.uint8)
    if np.any(starts[1:] < starts[:-1]):
        # Unsorted input loses the counting-deposit structure; fall
        # back to a general stable sort of the flattened matrix.
        return _batch_from_arrays_sorted(
            starts, codes, quals, reverse, reference, region, cfg,
            mapq if mapq_reads is None else 0, mapq_reads,
        )

    # Counting deposit: because every read spans exactly rl contiguous
    # positions and starts are sorted, the reads covering position p
    # are precisely rows lo[p]..hi[p], and the stable sort-by-position
    # permutation can be *computed* instead of searched for: base
    # (i, j) lands at col_start[p] + (i - lo[p]).  This is the same
    # deposit order as the streaming sweep (read order within each
    # column), with no O(m log m) sort anywhere.
    i_lo = int(np.searchsorted(starts, region.start - rl + 1, side="left"))
    i_hi = int(np.searchsorted(starts, region.end, side="left"))
    if i_hi <= i_lo:
        return ColumnBatch.empty(region.chrom)
    starts_r = starts[i_lo:i_hi]
    nr = i_hi - i_lo
    span_lo = int(starts_r[0])
    span_hi = int(starts_r[-1]) + rl
    grid = np.arange(span_lo, span_hi, dtype=np.int64)
    lo = np.searchsorted(starts_r, grid - rl + 1, side="left")
    col_start = np.zeros(grid.size + 1, dtype=np.int64)
    np.cumsum(
        np.searchsorted(starts_r, grid, side="right") - lo,
        out=col_start[1:],
    )
    m = nr * rl
    # dest[i, j] = col_start[p] + i - lo[p] for p = starts[i] + j,
    # factored as (col_start - lo) gathered per position plus an
    # in-place row add.  Each read's positions are contiguous, so the
    # gather is a sliding-window row copy, not an element gather;
    # 32-bit indices halve the memory traffic whenever they fit.
    idx_dtype = np.int64 if m > np.iinfo(np.int32).max else np.int32
    base = (col_start[:-1] - lo).astype(idx_dtype)
    windows = np.lib.stride_tricks.sliding_window_view(base, rl)
    dest = windows[starts_r - span_lo]
    dest += np.arange(nr, dtype=idx_dtype)[:, None]
    dest = dest.reshape(-1)
    # Deposit by direct scatter.  Base code (3 bits) and strand (1
    # bit) share one byte so the whole deposit is two single-byte
    # scatters, which stay cache-resident where a permutation index
    # would not.
    q_sorted = np.empty(m, dtype=np.uint8)
    q_sorted[dest] = quals[i_lo:i_hi].reshape(-1)
    packed = codes[i_lo:i_hi] | (
        reverse[i_lo:i_hi].astype(np.uint8) << np.uint8(3)
    )[:, None]
    p_sorted = np.empty(m, dtype=np.uint8)
    p_sorted[dest] = packed.reshape(-1)
    c_sorted = p_sorted & np.uint8(7)
    r_sorted = p_sorted >= 8
    pos_sorted = np.repeat(grid, np.diff(col_start))
    if mapq_reads is None:
        m_sorted = None
    else:
        # Per-read mapq: one extra single-byte scatter through the
        # same computed permutation.
        m_sorted = np.empty(m, dtype=np.uint8)
        m_sorted[dest] = np.repeat(mapq_reads[i_lo:i_hi], rl)

    # The region clip is a slice of the sorted axis, not a mask.
    a = int(col_start[region.start - span_lo]) if region.start > span_lo else 0
    b = int(col_start[region.end - span_lo]) if region.end < span_hi else m
    pos_sorted = pos_sorted[a:b]
    q_sorted = q_sorted[a:b]
    c_sorted = c_sorted[a:b]
    r_sorted = r_sorted[a:b]
    if m_sorted is not None:
        m_sorted = m_sorted[a:b]
    if pos_sorted.size == 0:
        return ColumnBatch.empty(region.chrom)

    if cfg.min_baseq > 0:
        keep = q_sorted >= cfg.min_baseq
        if not keep.all():
            pos_sorted = pos_sorted[keep]
            q_sorted = q_sorted[keep]
            c_sorted = c_sorted[keep]
            r_sorted = r_sorted[keep]
            if m_sorted is not None:
                m_sorted = m_sorted[keep]
            if pos_sorted.size == 0:
                return ColumnBatch.empty(region.chrom)
    if m_sorted is None:
        m_sorted = np.full(pos_sorted.size, min(mapq, 255), dtype=np.uint8)
    return _batch_from_flat(
        region.chrom,
        pos_sorted,
        c_sorted,
        q_sorted,
        r_sorted,
        m_sorted,
        reference,
        cfg,
    )


def _batch_from_arrays_sorted(
    starts: np.ndarray,
    codes: np.ndarray,
    quals: np.ndarray,
    reverse: np.ndarray,
    reference: str,
    region: Region,
    cfg: PileupConfig,
    mapq: int,
    mapq_reads: Optional[np.ndarray] = None,
) -> ColumnBatch:
    """General fallback for unsorted read matrices: flatten, mask and
    stable-sort by position (the pre-counting-deposit construction).
    ``mapq_reads`` (uint8, one per read, already min_mapq-filtered)
    overrides the constant ``mapq`` when given."""
    n, rl = codes.shape
    positions = (starts[:, None] + np.arange(rl)[None, :]).ravel()
    flat_codes = codes.ravel()
    flat_quals = quals.ravel()
    flat_rev = np.repeat(reverse, rl)
    flat_mapqs = (
        None if mapq_reads is None else np.repeat(mapq_reads, rl)
    )

    mask = (
        (positions >= region.start)
        & (positions < region.end)
        & (flat_quals >= cfg.min_baseq)
    )
    positions = positions[mask]
    flat_codes = flat_codes[mask]
    flat_quals = flat_quals[mask]
    flat_rev = flat_rev[mask]
    if flat_mapqs is not None:
        flat_mapqs = flat_mapqs[mask]
    if positions.size == 0:
        return ColumnBatch.empty(region.chrom)

    order = np.argsort(positions, kind="stable")
    if flat_mapqs is None:
        flat_mapqs = np.full(positions.size, min(mapq, 255), dtype=np.uint8)
    else:
        flat_mapqs = flat_mapqs[order]
    return _batch_from_flat(
        region.chrom,
        positions[order],
        flat_codes[order],
        flat_quals[order],
        flat_rev[order],
        flat_mapqs,
        reference,
        cfg,
    )


def pileup_from_arrays(
    starts: np.ndarray,
    codes: np.ndarray,
    quals: np.ndarray,
    reverse: np.ndarray,
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
    *,
    mapq: Union[int, np.ndarray] = 60,
) -> Iterator[PileupColumn]:
    """Yield pileup columns from an ``(n, read_length)`` read matrix.

    Compatibility view over :func:`pileup_batch_from_arrays` (same
    arguments and semantics): the columns are zero-copy views into the
    underlying batch, yielded in increasing position order.
    """
    batch = pileup_batch_from_arrays(
        starts, codes, quals, reverse, reference, region, config, mapq=mapq
    )
    return batch.columns()


class ColumnBatchBuilder:
    """Incremental, bounded-memory columnar pileup construction.

    Reads arrive one at a time in coordinate order (the order a sorted
    BAM yields them); each read's aligned bases are deposited as flat
    per-read *segment arrays* -- no per-base Python lists anywhere --
    and, because every later read starts at or after the current one,
    all columns strictly left of the newest read's start are complete.
    As soon as the scan passes ``batch_columns`` reference positions,
    the completed window is assembled into a
    :class:`~repro.pileup.column.ColumnBatch` and emitted (sliced
    zero-copy into work units of at most ``batch_columns`` columns,
    strand/mapq planes still lazy), and its segments are released.

    Peak construction memory is therefore bounded by the bases of one
    window (roughly ``batch_columns`` x depth, plus one read span) --
    **not** by the chunk being scanned, which is what lets a
    whole-genome region stream through the caller in constant memory.

    Columns, offsets, depth capping, ``min_baseq`` filtering and the
    within-column deposit order are bit-identical to building the whole
    chunk at once with :func:`pileup_batch_from_reads` (which is itself
    a one-window instance of this builder) and to the streaming engine
    (:func:`repro.pileup.engine.pileup`); the property suite in
    ``tests/test_column_batch.py`` asserts it per flush boundary.

    Example -- stream a read list in bounded batches::

        builder = ColumnBatchBuilder(reference, region, batch_columns=1024)
        for read in reads:                  # coordinate-sorted
            for batch in builder.add_read(read):
                consume(batch)              # at most 1024 columns each
            if builder.done:
                break
        for batch in builder.finish():
            consume(batch)

    (:func:`iter_pileup_batches` wraps exactly this loop.)

    Args:
        reference: reference sequence for ``region.chrom`` (indexed
            absolutely by position).
        region: half-open interval to build columns for.
        config: pileup filtering parameters (defaults to
            :class:`~repro.pileup.engine.PileupConfig`).
        batch_columns: flush granularity -- emitted batches hold at
            most this many columns.  ``None`` disables incremental
            flushing: everything is assembled as one batch by
            :meth:`finish` (the whole-chunk compatibility mode).

    Raises:
        ValueError: if ``batch_columns`` is not positive.
    """

    def __init__(
        self,
        reference: str,
        region: Region,
        config: Optional[PileupConfig] = None,
        *,
        batch_columns: Optional[int] = BUILDER_BATCH_COLUMNS,
    ) -> None:
        if batch_columns is not None and batch_columns <= 0:
            raise ValueError(
                f"batch_columns must be positive, got {batch_columns}"
            )
        self.reference = reference
        self.region = region
        self.config = config or PileupConfig()
        self.batch_columns = batch_columns
        # Bound once per builder, not once per record: add_read sits
        # on the hottest per-record path (import at call time avoids
        # the io<->pileup module cycle at import time).
        from repro.io.bam import aligned_base_arrays

        self._aligned_base_arrays = aligned_base_arrays
        #: True once a read at or beyond ``region.end`` has been seen:
        #: no further column can change, so driver loops may stop
        #: feeding reads (mirroring the streaming sweep's early break).
        self.done = False
        self._pos_parts: List[np.ndarray] = []
        self._code_parts: List[np.ndarray] = []
        self._qual_parts: List[np.ndarray] = []
        self._rev_flags: List[bool] = []
        self._mapq_vals: List[int] = []
        self._flush_from = region.start
        self._last_read_pos = -1
        self._finished = False

    def add_read(self, read: AlignedRead) -> List[ColumnBatch]:
        """Deposit one alignment; return any batches it completed.

        Read-level semantics -- chromosome/region skips, flag and
        mapping-quality filters, the coordinate-sort check -- are
        identical to :func:`repro.pileup.engine.pileup`.

        Raises:
            ValueError: if the input violates coordinate sorting, or
                the builder was already finished.
        """
        if self._finished:
            raise ValueError("builder already finished")
        if read.rname != self.region.chrom or read.is_unmapped:
            return []
        if read.pos < self._last_read_pos:
            raise ValueError(
                f"reads are not coordinate-sorted: {read.qname} at "
                f"{read.pos} after {self._last_read_pos}"
            )
        self._last_read_pos = read.pos
        if read.pos >= self.region.end:
            self.done = True
            return []
        out = self._maybe_flush(read.pos)
        if read.reference_end <= self.region.start:
            return out
        if not self.config.read_passes(read):
            return out
        positions, codes, quals = self._aligned_base_arrays(read)
        self._deposit(positions, codes, quals, read.is_reverse, read.mapq)
        return out

    def add(
        self,
        positions: np.ndarray,
        codes: np.ndarray,
        quals: np.ndarray,
        reverse: bool,
        mapq: int,
    ) -> List[ColumnBatch]:
        """Deposit one pre-decoded read (sorted aligned positions plus
        parallel uint8 base codes / Phred qualities, a strand flag and
        a mapping quality); return any batches it completed.

        The caller is responsible for read-level filtering; reads must
        arrive sorted by their first aligned position.

        Raises:
            ValueError: if the input violates coordinate sorting, or
                the builder was already finished.
        """
        if self._finished:
            raise ValueError("builder already finished")
        if positions.size == 0:
            return []
        start = int(positions[0])
        if start < self._last_read_pos:
            raise ValueError(
                f"reads are not coordinate-sorted: read at {start} "
                f"after {self._last_read_pos}"
            )
        self._last_read_pos = start
        if start >= self.region.end:
            self.done = True
            return []
        out = self._maybe_flush(start)
        self._deposit(positions, codes, quals, reverse, mapq)
        return out

    def finish(self) -> List[ColumnBatch]:
        """Flush everything still pending and seal the builder.

        Returns the final batches (possibly empty).  Idempotent; any
        further :meth:`add_read` / :meth:`add` raises.
        """
        if self._finished:
            return []
        self._finished = True
        return self._flush(self.region.end)

    # -- internals ---------------------------------------------------------

    def _deposit(
        self,
        positions: np.ndarray,
        codes: np.ndarray,
        quals: np.ndarray,
        reverse: bool,
        mapq: int,
    ) -> None:
        """Clip one read's segment to the region and keep it pending."""
        lo = int(np.searchsorted(positions, self.region.start, side="left"))
        hi = int(np.searchsorted(positions, self.region.end, side="left"))
        if hi <= lo:
            return
        self._pos_parts.append(positions[lo:hi])
        self._code_parts.append(codes[lo:hi])
        self._qual_parts.append(quals[lo:hi])
        self._rev_flags.append(bool(reverse))
        self._mapq_vals.append(min(int(mapq), 255))

    def _maybe_flush(self, frontier: int) -> List[ColumnBatch]:
        """Flush the complete window once the scan has advanced at
        least ``batch_columns`` positions past the last flush."""
        if self.batch_columns is None:
            return []
        if frontier - self._flush_from < self.batch_columns:
            return []
        return self._flush(frontier)

    def _flush(self, bound: int) -> List[ColumnBatch]:
        """Assemble and emit every column strictly left of ``bound``.

        Segments straddling the boundary are split zero-copy (their
        tails stay pending in arrival order, so a read spanning any
        number of flush boundaries deposits into each window exactly
        the bases that belong there, in the same within-column order
        as a whole-chunk build).
        """
        bound = min(bound, self.region.end)
        if bound <= self._flush_from:
            return []
        win_pos: List[np.ndarray] = []
        win_codes: List[np.ndarray] = []
        win_quals: List[np.ndarray] = []
        win_rev: List[bool] = []
        win_mapq: List[int] = []
        keep_pos: List[np.ndarray] = []
        keep_codes: List[np.ndarray] = []
        keep_quals: List[np.ndarray] = []
        keep_rev: List[bool] = []
        keep_mapq: List[int] = []
        for seg_pos, seg_codes, seg_quals, rev, mq in zip(
            self._pos_parts,
            self._code_parts,
            self._qual_parts,
            self._rev_flags,
            self._mapq_vals,
        ):
            if int(seg_pos[-1]) < bound:
                win_pos.append(seg_pos)
                win_codes.append(seg_codes)
                win_quals.append(seg_quals)
                win_rev.append(rev)
                win_mapq.append(mq)
                continue
            if int(seg_pos[0]) >= bound:
                keep_pos.append(seg_pos)
                keep_codes.append(seg_codes)
                keep_quals.append(seg_quals)
                keep_rev.append(rev)
                keep_mapq.append(mq)
                continue
            cut = int(np.searchsorted(seg_pos, bound, side="left"))
            win_pos.append(seg_pos[:cut])
            win_codes.append(seg_codes[:cut])
            win_quals.append(seg_quals[:cut])
            win_rev.append(rev)
            win_mapq.append(mq)
            keep_pos.append(seg_pos[cut:])
            keep_codes.append(seg_codes[cut:])
            keep_quals.append(seg_quals[cut:])
            keep_rev.append(rev)
            keep_mapq.append(mq)
        self._pos_parts = keep_pos
        self._code_parts = keep_codes
        self._qual_parts = keep_quals
        self._rev_flags = keep_rev
        self._mapq_vals = keep_mapq
        self._flush_from = bound
        if not win_pos:
            return []
        batch = _assemble_window(
            self.region.chrom,
            win_pos,
            win_codes,
            win_quals,
            win_rev,
            win_mapq,
            self.reference,
            self.config,
        )
        cap = self.batch_columns
        n = batch.n_columns
        if n == 0:
            return []
        if cap is None or n <= cap:
            return [batch]
        return [
            batch.slice_columns(lo, min(lo + cap, n))
            for lo in range(0, n, cap)
        ]


def _assemble_window(
    chrom: str,
    pos_parts: List[np.ndarray],
    code_parts: List[np.ndarray],
    qual_parts: List[np.ndarray],
    rev_flags: List[bool],
    mapq_vals: List[int],
    reference: str,
    cfg: PileupConfig,
) -> ColumnBatch:
    """One window's segments -> one batch: concatenate in read-arrival
    order, mask ``min_baseq``, stable-sort by position (preserving the
    streaming deposit order within each column), defer the strand/mapq
    scatters into a lazy planes thunk."""
    positions = np.concatenate(pos_parts)
    flat_codes = np.concatenate(code_parts)
    flat_quals = np.concatenate(qual_parts)
    counts = np.array([p.size for p in pos_parts], dtype=np.int64)

    mask = flat_quals >= cfg.min_baseq
    all_in = bool(mask.all())
    if not all_in:
        positions = positions[mask]
        flat_codes = flat_codes[mask]
        flat_quals = flat_quals[mask]
    if positions.size == 0:
        return ColumnBatch.empty(chrom)

    order = np.argsort(positions, kind="stable")

    def planes() -> Tuple[np.ndarray, np.ndarray]:
        """Deferred strand/mapq scatters for this window."""
        rev = np.repeat(np.array(rev_flags, dtype=bool), counts)
        mqs = np.repeat(np.array(mapq_vals, dtype=np.uint8), counts)
        if not all_in:
            rev = rev[mask]
            mqs = mqs[mask]
        return rev[order], mqs[order]

    return _batch_from_flat(
        chrom,
        positions[order],
        flat_codes[order],
        flat_quals[order],
        None,
        None,
        reference,
        cfg,
        planes=planes,
    )


def iter_pileup_batches(
    reads: Iterable[AlignedRead],
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
    *,
    batch_columns: Optional[int] = BUILDER_BATCH_COLUMNS,
) -> Iterator[ColumnBatch]:
    """Stream coordinate-sorted alignments through a
    :class:`ColumnBatchBuilder`, yielding bounded
    :class:`~repro.pileup.column.ColumnBatch` work units as the scan
    completes them.

    Construction memory stays proportional to one flush window
    (``batch_columns`` columns), never the whole region -- the
    bounded-memory twin of :func:`pileup_batch_from_reads`, with
    identical columns overall (the batched caller engine produces
    byte-identical calls from either).

    Example::

        for batch in iter_pileup_batches(reads, ref, region,
                                         batch_columns=1024):
            survivors = screen_batch(batch, alpha, config, stats)

    Raises:
        ValueError: if the input violates coordinate sorting or
            ``batch_columns`` is not positive.
    """
    builder = ColumnBatchBuilder(
        reference, region, config, batch_columns=batch_columns
    )
    for read in reads:
        yield from builder.add_read(read)
        if builder.done:
            break
    yield from builder.finish()


def pileup_batch_from_reads(
    reads: Iterable[AlignedRead],
    reference: str,
    region: Region,
    config: Optional[PileupConfig] = None,
) -> ColumnBatch:
    """Columnar pileup over coordinate-sorted alignments, as one batch.

    The CIGAR-aware twin of :func:`pileup_batch_from_arrays`: each
    read's aligned bases are decoded into flat arrays in one shot
    (:func:`repro.io.bam.aligned_base_arrays`), concatenated in read
    order, filtered, and stable-sorted by position -- so within a
    column bases keep the streaming engine's deposit order and the
    depth cap drops exactly the same reads.  Read-level semantics
    (chromosome/region skips, flag filters, the coordinate-sort check)
    are identical to :func:`repro.pileup.engine.pileup`.

    Implemented as a one-window :class:`ColumnBatchBuilder` pass
    (``batch_columns=None``), so construction memory is the whole
    chunk; callers that can consume batches incrementally should use
    :func:`iter_pileup_batches` instead, which bounds memory at one
    flush window.

    The batch's strand/mapq planes are built *lazily*: the screen only
    reads base codes and qualities, so the per-base strand/mapq
    scatters are deferred into the batch and run only if the
    ``merge_mapq`` error model or a surviving column's DP4 actually
    needs them (pure screen-outs skip them entirely).

    Raises:
        ValueError: if the input violates coordinate sorting.
    """
    builder = ColumnBatchBuilder(
        reference, region, config, batch_columns=None
    )
    for read in reads:
        builder.add_read(read)
        if builder.done:
            break
    batches = builder.finish()
    return batches[0] if batches else ColumnBatch.empty(region.chrom)


def pileup_sample_batch(
    sample,
    region: Optional[Region] = None,
    config: Optional[PileupConfig] = None,
) -> ColumnBatch:
    """Columnar pileup of a :class:`~repro.sim.reads.SimulatedSample`.

    ``region`` defaults to the whole genome.  A sample carrying a
    per-read ``mapqs`` vector (simulated from a
    :class:`~repro.sim.quality.MapqProfile`) feeds it through as the
    per-read mapping qualities, so ``min_mapq`` filtering and
    ``merge_mapq`` models see the same per-read values the BAM path
    would.
    """
    if region is None:
        region = Region(sample.genome.name, 0, len(sample.genome))
    mapqs = getattr(sample, "mapqs", None)
    return pileup_batch_from_arrays(
        sample.starts,
        sample.codes,
        sample.quals,
        sample.reverse,
        sample.genome.sequence,
        region,
        config,
        mapq=sample.mapq if mapqs is None else mapqs,
    )


def pileup_sample(
    sample,
    region: Optional[Region] = None,
    config: Optional[PileupConfig] = None,
) -> Iterator[PileupColumn]:
    """Pileup a :class:`~repro.sim.reads.SimulatedSample` directly.

    Compatibility view over :func:`pileup_sample_batch`; ``region``
    defaults to the whole genome.
    """
    return pileup_sample_batch(sample, region, config).columns()
