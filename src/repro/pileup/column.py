"""The pileup column value types.

A column stores parallel NumPy arrays (base code, base quality,
strand, mapping quality) for every read base covering one reference
position.  The statistics layer consumes these arrays directly, so the
encodings are chosen for vectorised math: bases as uint8 codes 0..4,
qualities as raw Phred uint8.

:class:`ColumnBatch` is the structure-of-arrays form of a whole *span*
of columns: one set of flat arrays for every read base in the span,
plus per-column offsets.  It is the native interchange type of the
columnar pipeline (BAM decode -> batched screen); per-column
:class:`PileupColumn` objects are only materialised on demand through
:meth:`ColumnBatch.columns` / :meth:`ColumnBatch.column`, whose views
slice the shared flat arrays without copying.

The screen reads only base codes and qualities, so a batch may carry
its strand/mapq planes *lazily*: producers pass a ``planes`` thunk
instead of the arrays, and the scatters run only if something (the
``merge_mapq`` error model, a called pair's DP4, a per-column view)
actually touches :attr:`ColumnBatch.reverse` / :attr:`ColumnBatch.mapqs`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BASES",
    "BASE_TO_CODE",
    "CODE_TO_BASE",
    "ColumnBatch",
    "PileupColumn",
    "encode_read_bases",
]

BASES = "ACGTN"
BASE_TO_CODE: Dict[str, int] = {b: i for i, b in enumerate(BASES)}
CODE_TO_BASE: Dict[int, str] = {i: b for i, b in enumerate(BASES)}
N_CODE = BASE_TO_CODE["N"]

#: ASCII -> base code lookup, the vectorised twin of
#: ``BASE_TO_CODE.get(char, N_CODE)``: uppercase ``ACGT`` map to 0..3,
#: every other byte (including lowercase and ambiguity codes) to N.
SEQ_CODE_LUT = np.full(256, N_CODE, dtype=np.uint8)
for _base, _code in BASE_TO_CODE.items():
    SEQ_CODE_LUT[ord(_base)] = _code


def encode_read_bases(seq: str) -> np.ndarray:
    """Base codes for a read sequence string, one LUT gather.

    Exactly ``[BASE_TO_CODE.get(c, N_CODE) for c in seq]`` -- no
    case-folding, matching the streaming engine's per-base lookup.
    """
    raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    return SEQ_CODE_LUT[raw]


@dataclasses.dataclass
class PileupColumn:
    """All read bases covering one reference position.

    Attributes:
        chrom: reference name.
        pos: 0-based reference position.
        ref_base: uppercase reference base at this position.
        base_codes: uint8 array of base codes (``BASE_TO_CODE``).
        quals: uint8 array of Phred base qualities (parallel).
        reverse: bool array, True where the read maps to the reverse
            strand (parallel).
        mapqs: uint8 array of mapping qualities (parallel).
        n_capped: reads dropped by the depth cap at this column.
    """

    chrom: str
    pos: int
    ref_base: str
    base_codes: np.ndarray
    quals: np.ndarray
    reverse: np.ndarray
    mapqs: np.ndarray
    n_capped: int = 0

    def __post_init__(self) -> None:
        self.base_codes = np.asarray(self.base_codes, dtype=np.uint8)
        self.quals = np.asarray(self.quals, dtype=np.uint8)
        self.reverse = np.asarray(self.reverse, dtype=bool)
        self.mapqs = np.asarray(self.mapqs, dtype=np.uint8)
        n = self.base_codes.size
        if not (self.quals.size == self.reverse.size == self.mapqs.size == n):
            raise ValueError("pileup column arrays must be parallel")

    @property
    def depth(self) -> int:
        """Number of read bases in the column (after capping)."""
        return int(self.base_codes.size)

    @property
    def ref_code(self) -> int:
        """Base code of the reference base (N for ambiguity codes)."""
        return BASE_TO_CODE.get(self.ref_base, N_CODE)

    def base_counts(self) -> np.ndarray:
        """Counts per base code, length 5 (A, C, G, T, N)."""
        return np.bincount(self.base_codes, minlength=5)[:5]

    def mismatch_count(self) -> int:
        """Bases differing from the reference, excluding N calls
        (LoFreq ignores N both in the reference and in reads)."""
        codes = self.base_codes
        return int(np.sum((codes != self.ref_code) & (codes != N_CODE)))

    def allele_depth(self, code: int) -> int:
        """Count of one specific base code."""
        return int(np.sum(self.base_codes == code))

    def strand_counts(self, code: int) -> Tuple[int, int]:
        """(forward, reverse) counts for one base code."""
        mask = self.base_codes == code
        rev = int(np.sum(mask & self.reverse))
        return int(np.sum(mask)) - rev, rev

    def dp4(self, alt_code: int) -> Tuple[int, int, int, int]:
        """LoFreq's DP4: ref-fwd, ref-rev, alt-fwd, alt-rev counts."""
        rf, rr = self.strand_counts(self.ref_code)
        af, ar = self.strand_counts(alt_code)
        return rf, rr, af, ar

    def error_probabilities(self, merge_mapq: bool = False) -> np.ndarray:
        """Per-read error probabilities implied by the quality scores.

        ``10**(-Q/10)`` from base qualities; with ``merge_mapq`` the
        mapping quality is folded in as an independent error source
        (``p = 1 - (1-p_base)(1-p_map)``), mirroring LoFreq's joint
        quality option (``-m`` merging in the original tool).
        """
        p = np.power(10.0, -self.quals.astype(np.float64) / 10.0)
        if merge_mapq:
            pm = np.power(10.0, -self.mapqs.astype(np.float64) / 10.0)
            p = 1.0 - (1.0 - p) * (1.0 - pm)
        return p

    def subset(self, mask: np.ndarray) -> "PileupColumn":
        """A new column restricted to ``mask`` (bool array)."""
        return PileupColumn(
            chrom=self.chrom,
            pos=self.pos,
            ref_base=self.ref_base,
            base_codes=self.base_codes[mask],
            quals=self.quals[mask],
            reverse=self.reverse[mask],
            mapqs=self.mapqs[mask],
            n_capped=self.n_capped,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.base_counts()
        summary = " ".join(
            f"{CODE_TO_BASE[i]}:{counts[i]}" for i in range(5) if counts[i]
        )
        return (
            f"PileupColumn({self.chrom}:{self.pos + 1} ref={self.ref_base} "
            f"depth={self.depth} [{summary}])"
        )


class ColumnBatch:
    """Structure-of-arrays pileup over a span of reference positions.

    All read bases of the span live in four flat parallel arrays;
    column ``i`` owns the half-open slice
    ``offsets[i]:offsets[i + 1]`` of each.  Empty columns are not
    represented (mirroring the streaming engine's default), so
    ``positions`` is the span's covered positions in increasing order.

    Attributes:
        chrom: reference name shared by every column.
        positions: int64 per-column reference positions (0-based).
        ref_bases: uppercase reference base per column (one string,
            ``ref_bases[i]`` belongs to ``positions[i]``); kept as
            characters, not codes, so ambiguity codes survive into the
            :class:`PileupColumn` views byte-for-byte.
        base_codes: uint8 flat base codes over all columns.
        quals: uint8 flat Phred base qualities (parallel).
        reverse: bool flat strand array (parallel).
        mapqs: uint8 flat mapping qualities (parallel).
        offsets: int64 column boundaries, length ``n_columns + 1``
            with ``offsets[0] == 0`` and ``offsets[-1]`` the total
            base count.
        n_capped: int64 per-column count of reads dropped by the
            depth cap.

    The strand/mapq planes may be deferred: pass ``planes`` (a
    zero-argument callable returning the ``(reverse, mapqs)`` pair)
    instead of the two arrays, and they are built on first attribute
    access.  The batched screen never touches them for a fully
    screened-out span, so the scatters are skipped entirely there;
    :attr:`planes_materialised` reports whether they have been built.

    Example -- two columns at positions 5 and 7, depths 2 and 1::

        >>> import numpy as np
        >>> batch = ColumnBatch(
        ...     chrom="chr1", positions=np.array([5, 7]), ref_bases="AC",
        ...     base_codes=np.array([0, 1, 1], dtype=np.uint8),
        ...     quals=np.array([30, 20, 25], dtype=np.uint8),
        ...     reverse=np.array([False, True, False]),
        ...     mapqs=np.array([60, 60, 60], dtype=np.uint8),
        ...     offsets=np.array([0, 2, 3]), n_capped=np.array([0, 0]))
        >>> batch.depths.tolist()
        [2, 1]
        >>> batch.column(1).ref_base        # zero-copy per-column view
        'C'
    """

    __slots__ = (
        "chrom",
        "positions",
        "ref_bases",
        "base_codes",
        "quals",
        "offsets",
        "n_capped",
        "_reverse",
        "_mapqs",
        "_planes",
    )

    def __init__(
        self,
        chrom: str,
        positions: np.ndarray,
        ref_bases: str,
        base_codes: np.ndarray,
        quals: np.ndarray,
        reverse: Optional[np.ndarray] = None,
        mapqs: Optional[np.ndarray] = None,
        offsets: Optional[np.ndarray] = None,
        n_capped: Optional[np.ndarray] = None,
        *,
        planes: Optional[Callable[[], Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> None:
        if offsets is None or n_capped is None:
            raise ValueError("offsets and n_capped are required")
        self.chrom = chrom
        self.positions = np.asarray(positions, dtype=np.int64)
        self.ref_bases = ref_bases
        self.base_codes = np.asarray(base_codes, dtype=np.uint8)
        self.quals = np.asarray(quals, dtype=np.uint8)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.n_capped = np.asarray(n_capped, dtype=np.int64)
        n = self.positions.size
        total = self.base_codes.size
        if len(self.ref_bases) != n:
            raise ValueError("one reference base per column required")
        if self.offsets.shape != (n + 1,):
            raise ValueError("offsets must have n_columns + 1 entries")
        if n and (self.offsets[0] != 0 or self.offsets[-1] != total):
            raise ValueError("offsets must span the flat arrays exactly")
        if not n and total:
            raise ValueError("flat bases present but no columns declared")
        if self.quals.size != total:
            raise ValueError("batch flat arrays must be parallel")
        if planes is not None:
            if reverse is not None or mapqs is not None:
                raise ValueError(
                    "pass either reverse/mapqs arrays or a planes thunk"
                )
            self._reverse = None
            self._mapqs = None
            self._planes = planes
        else:
            if reverse is None or mapqs is None:
                raise ValueError(
                    "reverse and mapqs are required without a planes thunk"
                )
            self._planes = None
            self._set_planes(reverse, mapqs)

    def _set_planes(self, reverse: np.ndarray, mapqs: np.ndarray) -> None:
        self._reverse = np.asarray(reverse, dtype=bool)
        self._mapqs = np.asarray(mapqs, dtype=np.uint8)
        total = self.base_codes.size
        if not (self._reverse.size == self._mapqs.size == total):
            raise ValueError("batch flat arrays must be parallel")

    def _materialise_planes(self) -> None:
        if self._reverse is None:
            planes = self._planes
            self._planes = None
            self._set_planes(*planes())

    @property
    def planes_materialised(self) -> bool:
        """Whether the strand/mapq planes have been built."""
        return self._reverse is not None

    @property
    def reverse(self) -> np.ndarray:
        """bool flat strand array (built on first access when lazy)."""
        self._materialise_planes()
        return self._reverse

    @property
    def mapqs(self) -> np.ndarray:
        """uint8 flat mapping qualities (built on first access when
        lazy)."""
        self._materialise_planes()
        return self._mapqs

    @property
    def n_columns(self) -> int:
        """Number of (non-empty) columns in the batch."""
        return int(self.positions.size)

    def __len__(self) -> int:
        return self.n_columns

    @property
    def depths(self) -> np.ndarray:
        """Per-column depths (after capping), int64."""
        return np.diff(self.offsets)

    @property
    def ref_codes(self) -> np.ndarray:
        """uint8 per-column reference base codes (ambiguity -> N)."""
        if not self.ref_bases:
            return np.zeros(0, dtype=np.uint8)
        return encode_read_bases(self.ref_bases)

    def column(self, i: int) -> PileupColumn:
        """Materialise column ``i`` as a :class:`PileupColumn` whose
        arrays are zero-copy views into the batch."""
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        return PileupColumn(
            chrom=self.chrom,
            pos=int(self.positions[i]),
            ref_base=self.ref_bases[i],
            base_codes=self.base_codes[lo:hi],
            quals=self.quals[lo:hi],
            reverse=self.reverse[lo:hi],
            mapqs=self.mapqs[lo:hi],
            n_capped=int(self.n_capped[i]),
        )

    def columns(self) -> Iterator[PileupColumn]:
        """Backward-compatible per-column view, in stored order."""
        for i in range(self.n_columns):
            yield self.column(i)

    def slice_columns(self, lo: int, hi: int) -> "ColumnBatch":
        """The sub-batch of columns ``lo:hi`` -- flat arrays are
        zero-copy views; only the rebased offsets are allocated.
        Un-materialised strand/mapq planes stay lazy: the sub-batch
        defers to this batch's planes on first access."""
        off = self.offsets[lo : hi + 1]
        flo, fhi = int(off[0]), int(off[-1])
        if self.planes_materialised:
            plane_kwargs = dict(
                reverse=self._reverse[flo:fhi], mapqs=self._mapqs[flo:fhi]
            )
        else:
            plane_kwargs = dict(
                planes=lambda: (
                    self.reverse[flo:fhi],
                    self.mapqs[flo:fhi],
                )
            )
        return ColumnBatch(
            chrom=self.chrom,
            positions=self.positions[lo:hi],
            ref_bases=self.ref_bases[lo:hi],
            base_codes=self.base_codes[flo:fhi],
            quals=self.quals[flo:fhi],
            offsets=off - flo,
            n_capped=self.n_capped[lo:hi],
            **plane_kwargs,
        )

    @classmethod
    def empty(cls, chrom: str) -> "ColumnBatch":
        """A batch with no columns (sources use it for dry regions)."""
        return cls(
            chrom=chrom,
            positions=np.zeros(0, dtype=np.int64),
            ref_bases="",
            base_codes=np.zeros(0, dtype=np.uint8),
            quals=np.zeros(0, dtype=np.uint8),
            reverse=np.zeros(0, dtype=bool),
            mapqs=np.zeros(0, dtype=np.uint8),
            offsets=np.zeros(1, dtype=np.int64),
            n_capped=np.zeros(0, dtype=np.int64),
        )

    @classmethod
    def from_columns(
        cls, columns: Sequence[PileupColumn], chrom: "str | None" = None
    ) -> "ColumnBatch":
        """Pack per-column objects into one batch (compatibility
        bridge for pre-columnar producers).

        Args:
            columns: columns in the order they should be stored; all
                must share one chromosome.
            chrom: the batch chromosome when ``columns`` is empty
                (required then, ignored otherwise).
        """
        cols = list(columns)
        if not cols:
            if chrom is None:
                raise ValueError("chrom required for an empty batch")
            return cls.empty(chrom)
        chroms = {c.chrom for c in cols}
        if len(chroms) > 1:
            raise ValueError(
                f"a batch spans one chromosome, got {sorted(chroms)}"
            )
        depths = np.array([c.depth for c in cols], dtype=np.int64)
        offsets = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum(depths, out=offsets[1:])
        return cls(
            chrom=cols[0].chrom,
            positions=np.array([c.pos for c in cols], dtype=np.int64),
            ref_bases="".join(c.ref_base for c in cols),
            base_codes=np.concatenate([c.base_codes for c in cols]),
            quals=np.concatenate([c.quals for c in cols]),
            reverse=np.concatenate([c.reverse for c in cols]),
            mapqs=np.concatenate([c.mapqs for c in cols]),
            offsets=offsets,
            n_capped=np.array([c.n_capped for c in cols], dtype=np.int64),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.n_columns:
            return f"ColumnBatch({self.chrom}: empty)"
        return (
            f"ColumnBatch({self.chrom}:{int(self.positions[0]) + 1}-"
            f"{int(self.positions[-1]) + 1} n_columns={self.n_columns} "
            f"bases={int(self.offsets[-1])})"
        )
