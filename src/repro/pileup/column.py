"""The pileup column value type.

A column stores parallel NumPy arrays (base code, base quality,
strand, mapping quality) for every read base covering one reference
position.  The statistics layer consumes these arrays directly, so the
encodings are chosen for vectorised math: bases as uint8 codes 0..4,
qualities as raw Phred uint8.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

__all__ = ["BASES", "BASE_TO_CODE", "CODE_TO_BASE", "PileupColumn"]

BASES = "ACGTN"
BASE_TO_CODE: Dict[str, int] = {b: i for i, b in enumerate(BASES)}
CODE_TO_BASE: Dict[int, str] = {i: b for i, b in enumerate(BASES)}
N_CODE = BASE_TO_CODE["N"]


@dataclasses.dataclass
class PileupColumn:
    """All read bases covering one reference position.

    Attributes:
        chrom: reference name.
        pos: 0-based reference position.
        ref_base: uppercase reference base at this position.
        base_codes: uint8 array of base codes (``BASE_TO_CODE``).
        quals: uint8 array of Phred base qualities (parallel).
        reverse: bool array, True where the read maps to the reverse
            strand (parallel).
        mapqs: uint8 array of mapping qualities (parallel).
        n_capped: reads dropped by the depth cap at this column.
    """

    chrom: str
    pos: int
    ref_base: str
    base_codes: np.ndarray
    quals: np.ndarray
    reverse: np.ndarray
    mapqs: np.ndarray
    n_capped: int = 0

    def __post_init__(self) -> None:
        self.base_codes = np.asarray(self.base_codes, dtype=np.uint8)
        self.quals = np.asarray(self.quals, dtype=np.uint8)
        self.reverse = np.asarray(self.reverse, dtype=bool)
        self.mapqs = np.asarray(self.mapqs, dtype=np.uint8)
        n = self.base_codes.size
        if not (self.quals.size == self.reverse.size == self.mapqs.size == n):
            raise ValueError("pileup column arrays must be parallel")

    @property
    def depth(self) -> int:
        """Number of read bases in the column (after capping)."""
        return int(self.base_codes.size)

    @property
    def ref_code(self) -> int:
        """Base code of the reference base (N for ambiguity codes)."""
        return BASE_TO_CODE.get(self.ref_base, N_CODE)

    def base_counts(self) -> np.ndarray:
        """Counts per base code, length 5 (A, C, G, T, N)."""
        return np.bincount(self.base_codes, minlength=5)[:5]

    def mismatch_count(self) -> int:
        """Bases differing from the reference, excluding N calls
        (LoFreq ignores N both in the reference and in reads)."""
        codes = self.base_codes
        return int(np.sum((codes != self.ref_code) & (codes != N_CODE)))

    def allele_depth(self, code: int) -> int:
        """Count of one specific base code."""
        return int(np.sum(self.base_codes == code))

    def strand_counts(self, code: int) -> Tuple[int, int]:
        """(forward, reverse) counts for one base code."""
        mask = self.base_codes == code
        rev = int(np.sum(mask & self.reverse))
        return int(np.sum(mask)) - rev, rev

    def dp4(self, alt_code: int) -> Tuple[int, int, int, int]:
        """LoFreq's DP4: ref-fwd, ref-rev, alt-fwd, alt-rev counts."""
        rf, rr = self.strand_counts(self.ref_code)
        af, ar = self.strand_counts(alt_code)
        return rf, rr, af, ar

    def error_probabilities(self, merge_mapq: bool = False) -> np.ndarray:
        """Per-read error probabilities implied by the quality scores.

        ``10**(-Q/10)`` from base qualities; with ``merge_mapq`` the
        mapping quality is folded in as an independent error source
        (``p = 1 - (1-p_base)(1-p_map)``), mirroring LoFreq's joint
        quality option (``-m`` merging in the original tool).
        """
        p = np.power(10.0, -self.quals.astype(np.float64) / 10.0)
        if merge_mapq:
            pm = np.power(10.0, -self.mapqs.astype(np.float64) / 10.0)
            p = 1.0 - (1.0 - p) * (1.0 - pm)
        return p

    def subset(self, mask: np.ndarray) -> "PileupColumn":
        """A new column restricted to ``mask`` (bool array)."""
        return PileupColumn(
            chrom=self.chrom,
            pos=self.pos,
            ref_base=self.ref_base,
            base_codes=self.base_codes[mask],
            quals=self.quals[mask],
            reverse=self.reverse[mask],
            mapqs=self.mapqs[mask],
            n_capped=self.n_capped,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.base_counts()
        summary = " ".join(
            f"{CODE_TO_BASE[i]}:{counts[i]}" for i in range(5) if counts[i]
        )
        return (
            f"PileupColumn({self.chrom}:{self.pos + 1} ref={self.ref_base} "
            f"depth={self.depth} [{summary}])"
        )
