"""Pileup: turning sorted alignments into per-position base columns.

LoFreq is a column-at-a-time caller; everything it looks at is a
"pileup column" -- the multiset of (base, quality, strand) observed at
one reference position across all overlapping reads.  This subpackage
is the equivalent of ``samtools mpileup``:

* :mod:`repro.pileup.column` -- the :class:`PileupColumn` value type
  with base encoding, counting and quality->probability conversion,
  and the structure-of-arrays :class:`ColumnBatch` span of columns
  (the columnar pipeline's native interchange type).
* :mod:`repro.pileup.engine` -- the streaming sweep over
  coordinate-sorted reads, with flag/quality filtering and the depth
  cap (LoFreq defaults to 1,000,000 -- see Table I's footnote); plus
  the batch-emitting sweep :func:`pileup_batches`.
* :mod:`repro.pileup.vectorized` -- bulk columnar construction from
  read matrices and CIGAR-aware alignments, plus the incremental
  bounded-memory :class:`ColumnBatchBuilder` (the streaming source
  spine: construction memory is one flush window, not one chunk).
"""

from repro.pileup.column import (
    BASES,
    BASE_TO_CODE,
    CODE_TO_BASE,
    ColumnBatch,
    PileupColumn,
)
from repro.pileup.engine import PileupConfig, pileup, pileup_batches
from repro.pileup.vectorized import ColumnBatchBuilder, iter_pileup_batches

__all__ = [
    "BASES",
    "BASE_TO_CODE",
    "CODE_TO_BASE",
    "ColumnBatch",
    "ColumnBatchBuilder",
    "PileupColumn",
    "PileupConfig",
    "iter_pileup_batches",
    "pileup",
    "pileup_batches",
]
