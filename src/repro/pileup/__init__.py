"""Pileup: turning sorted alignments into per-position base columns.

LoFreq is a column-at-a-time caller; everything it looks at is a
"pileup column" -- the multiset of (base, quality, strand) observed at
one reference position across all overlapping reads.  This subpackage
is the equivalent of ``samtools mpileup``:

* :mod:`repro.pileup.column` -- the :class:`PileupColumn` value type
  with base encoding, counting and quality->probability conversion.
* :mod:`repro.pileup.engine` -- the streaming sweep over
  coordinate-sorted reads, with flag/quality filtering and the depth
  cap (LoFreq defaults to 1,000,000 -- see Table I's footnote).
"""

from repro.pileup.column import (
    BASES,
    BASE_TO_CODE,
    CODE_TO_BASE,
    PileupColumn,
)
from repro.pileup.engine import PileupConfig, pileup

__all__ = [
    "BASES",
    "BASE_TO_CODE",
    "CODE_TO_BASE",
    "PileupColumn",
    "PileupConfig",
    "pileup",
]
