"""Fisher's exact test and the LoFreq strand-bias score.

LoFreq annotates every call with ``SB``, the Phred-scaled p-value of a
two-tailed Fisher exact test on the 2x2 table of (ref, alt) x
(forward, reverse) read counts; heavily strand-biased "variants" are
typically artefacts.  The hypergeometric machinery is implemented
directly in log space and validated against ``scipy.stats.fisher_exact``
in the tests.

Two call shapes share one kernel: :func:`fisher_exact_batch` /
:func:`strand_bias_phred_batch` evaluate many tables in vectorised
passes (the batched caller engine's per-emitted-call loop removal),
and the scalar :func:`strand_bias_phred` is a batch of one.  The
batch kernel is *composition-invariant*: every table's value is
computed with per-table operation order (elementwise log-pmf
arithmetic, sequential ``cumsum`` tail accumulation), so a table's
score is bit-identical whether it is evaluated alone or alongside a
thousand others -- which is what keeps the streaming and batched
engines byte-identical on emitted calls.
"""

from __future__ import annotations

import math
import threading
from typing import Tuple

import numpy as np

from repro.stats.special import log_gamma

__all__ = [
    "fisher_exact",
    "fisher_exact_batch",
    "strand_bias_phred",
    "strand_bias_phred_batch",
    "hypergeom_log_pmf",
]


def _log_choose(n: int, k: int) -> float:
    if k < 0 or k > n:
        return -math.inf
    return log_gamma(n + 1.0) - log_gamma(k + 1.0) - log_gamma(n - k + 1.0)


def hypergeom_log_pmf(k: int, M: int, n: int, N: int) -> float:
    """``log P(K = k)`` drawing ``N`` from ``M`` items of which ``n``
    are successes (scipy parameter order)."""
    return _log_choose(n, k) + _log_choose(M - n, N - k) - _log_choose(M, N)


def fisher_exact(
    table: Tuple[Tuple[int, int], Tuple[int, int]],
    alternative: str = "two-sided",
) -> float:
    """P-value of Fisher's exact test on a 2x2 contingency table.

    Args:
        table: ``((a, b), (c, d))`` of non-negative counts.
        alternative: ``"two-sided"``, ``"greater"`` (P(K >= a)) or
            ``"less"`` (P(K <= a)), conditioning on the margins.

    Returns:
        The p-value in [0, 1].

    Raises:
        ValueError: on negative counts or an unknown alternative.
    """
    (a, b), (c, d) = table
    if min(a, b, c, d) < 0:
        raise ValueError("contingency table counts must be non-negative")
    M = a + b + c + d
    if M == 0:
        return 1.0
    n = a + b  # row-1 total = number of "successes" in the urn
    N = a + c  # column-1 total = draw size
    lo = max(0, N - (M - n))
    hi = min(n, N)

    log_pmfs = [hypergeom_log_pmf(k, M, n, N) for k in range(lo, hi + 1)]
    idx = a - lo

    if alternative == "greater":
        acc = _log_sum(log_pmfs[idx:])
    elif alternative == "less":
        acc = _log_sum(log_pmfs[: idx + 1])
    elif alternative == "two-sided":
        # Sum all tables at most as probable as the observed one
        # (with a small relative tolerance, as scipy does).
        cutoff = log_pmfs[idx] + 1e-7
        acc = _log_sum([lp for lp in log_pmfs if lp <= cutoff])
    else:
        raise ValueError(f"unknown alternative {alternative!r}")
    return min(1.0, math.exp(acc))


def _log_sum(logs) -> float:
    if not logs:
        return -math.inf
    hi = max(logs)
    if hi == -math.inf:
        return -math.inf
    return hi + math.log(sum(math.exp(x - hi) for x in logs))


# -- batched tables ------------------------------------------------------------

#: Cache of ``log(i!)`` (= ``log_gamma(i + 1)``) for 0 <= i <= size-1,
#: grown on demand under a lock.  Built with the *scalar*
#: :func:`~repro.stats.special.log_gamma`, so batch log-choose values
#: are the scalar path's bit-for-bit.
_LOG_FACT: np.ndarray = np.zeros(0, dtype=np.float64)
_LOG_FACT_LOCK = threading.Lock()


def _log_factorials(n_max: int) -> np.ndarray:
    """``log(i!)`` for every ``0 <= i <= n_max``, as a read-only
    shared table (one scalar ``log_gamma`` call per new entry,
    amortised over the run)."""
    global _LOG_FACT
    table = _LOG_FACT
    if table.size > n_max:
        return table
    with _LOG_FACT_LOCK:
        table = _LOG_FACT
        if table.size <= n_max:
            size = max(n_max + 1, 2 * table.size, 256)
            grown = np.empty(size, dtype=np.float64)
            grown[: table.size] = table
            for i in range(table.size, size):
                grown[i] = log_gamma(i + 1.0)
            grown.setflags(write=False)
            _LOG_FACT = table = grown
    return table


#: Ceiling on one padded (tables x support-width) plane evaluated at
#: a time by :func:`fisher_exact_batch`: 2^23 float64 cells = 64 MiB
#: (the exact DP stage's ``PLANE_ELEMENTS`` discipline), so a
#: variant-dense set of balanced ultra-deep tables is processed in
#: bounded slices instead of one unbounded plane.  Composition
#: invariance makes the slicing invisible in the outputs.
FISHER_PLANE_ELEMENTS = 1 << 23


def fisher_exact_batch(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray
) -> np.ndarray:
    """Two-tailed Fisher exact p-values for many 2x2 tables at once.

    ``a, b, c, d`` are parallel non-negative integer arrays holding
    the tables ``((a, b), (c, d))``.  The whole hypergeometric support
    of every table is laid out as a padded ``(tables, k)`` plane
    (sliced under :data:`FISHER_PLANE_ELEMENTS` cells, so memory is
    bounded regardless of table depth): log-pmfs come from a shared
    ``log(i!)`` lookup (built with the scalar
    :func:`~repro.stats.special.log_gamma`), the two-sided selection
    replays the scalar :func:`fisher_exact` cutoff elementwise, and
    each table's tail is accumulated with a sequential per-row
    ``cumsum`` -- so a table's p-value never depends on what else is
    in the batch (composition-invariant, regression-tested), and
    agrees with :func:`fisher_exact` to floating-point roundoff.

    Example::

        >>> p = fisher_exact_batch(np.array([100]), np.array([100]),
        ...                        np.array([10]), np.array([0]))
        >>> bool(p[0] < 0.01)
        True

    Returns:
        The p-values in [0, 1], one per table.

    Raises:
        ValueError: on negative counts.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    c = np.asarray(c, dtype=np.int64)
    d = np.asarray(d, dtype=np.int64)
    if a.size == 0:
        return np.zeros(0, dtype=np.float64)
    if min(int(a.min()), int(b.min()), int(c.min()), int(d.min())) < 0:
        raise ValueError("contingency table counts must be non-negative")
    widths = np.minimum(a + b, a + c) - np.maximum(
        0, (a + c) - (c + d)
    ) + 1
    out = np.empty(a.size, dtype=np.float64)
    lo_i = 0
    while lo_i < a.size:
        # Grow the slice while its padded plane stays under budget
        # (always at least one table, however deep).
        w_max = int(widths[lo_i])
        hi_i = lo_i + 1
        while hi_i < a.size:
            w_next = max(w_max, int(widths[hi_i]))
            if (hi_i + 1 - lo_i) * w_next > FISHER_PLANE_ELEMENTS:
                break
            w_max = w_next
            hi_i += 1
        sl = slice(lo_i, hi_i)
        out[sl] = _fisher_exact_plane(a[sl], b[sl], c[sl], d[sl])
        lo_i = hi_i
    return out


def _fisher_exact_plane(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray
) -> np.ndarray:
    """One bounded slice of :func:`fisher_exact_batch`: every table's
    full hypergeometric support as one padded plane."""
    M = a + b + c + d
    n = a + b  # row-1 total = number of "successes" in the urn
    N = a + c  # column-1 total = draw size
    lo = np.maximum(0, N - (M - n))
    hi = np.minimum(n, N)
    width = int((hi - lo).max()) + 1
    k = lo[:, None] + np.arange(width, dtype=np.int64)[None, :]
    valid = k <= hi[:, None]
    kc = np.where(valid, k, 0)  # safe gather index inside the pad
    lf = _log_factorials(int(M.max()))
    # hypergeom_log_pmf replayed elementwise with the scalar's exact
    # operation order: _log_choose(n, k) + _log_choose(M-n, N-k)
    # - _log_choose(M, N), each log-choose (lf[n] - lf[k]) - lf[n-k].
    n2 = n[:, None]
    mn2 = (M - n)[:, None]
    nk2 = N[:, None] - kc
    lc1 = (lf[n2] - lf[kc]) - lf[n2 - kc]
    lc2 = (lf[mn2] - lf[nk2]) - lf[mn2 - nk2]
    lc3 = (lf[M] - lf[N]) - lf[M - N]
    logs = (lc1 + lc2) - lc3[:, None]
    logs = np.where(valid, logs, -np.inf)
    rows = np.arange(a.size)
    observed = logs[rows, a - lo]
    # Two-sided: sum all tables at most as probable as the observed
    # one (with the scalar's small relative tolerance, as scipy does).
    sel = valid & (logs <= (observed + 1e-7)[:, None])
    hi_log = np.max(np.where(sel, logs, -np.inf), axis=1)
    with np.errstate(invalid="ignore"):
        terms = np.where(sel, np.exp(logs - hi_log[:, None]), 0.0)
    # Sequential left-to-right accumulation per row: zeros are exact
    # no-ops under IEEE addition, so padding and the selection mask
    # never perturb a table's partial sums.
    acc = hi_log + np.log(terms.cumsum(axis=1)[:, -1])
    p = np.minimum(1.0, np.exp(acc))
    return np.where(M == 0, 1.0, p)


def strand_bias_phred_batch(
    ref_fwd: np.ndarray,
    ref_rev: np.ndarray,
    alt_fwd: np.ndarray,
    alt_rev: np.ndarray,
    cap: float = 2000.0,
) -> np.ndarray:
    """LoFreq's ``SB`` INFO value for many DP4 tables at once:
    ``-10 log10`` of the two-tailed Fisher p-value per table, capped
    for p = 0 round-off.

    The array twin of :func:`strand_bias_phred` (which is a batch of
    one through this kernel); the batched caller engine scores every
    emitted call of a batch in one invocation.

    Example::

        >>> sb = strand_bias_phred_batch(
        ...     np.array([500, 500]), np.array([500, 500]),
        ...     np.array([10, 20]), np.array([10, 0]))
        >>> bool(sb[0] < 1.0 < sb[1])
        True
    """
    p = fisher_exact_batch(ref_fwd, ref_rev, alt_fwd, alt_rev)
    with np.errstate(divide="ignore"):
        sb = -10.0 * np.log10(p)
    return np.where(p <= 0.0, cap, np.minimum(cap, sb))


def strand_bias_phred(
    ref_fwd: int, ref_rev: int, alt_fwd: int, alt_rev: int, cap: float = 2000.0
) -> float:
    """LoFreq's ``SB`` INFO value: ``-10 log10`` of the two-tailed
    Fisher p-value on the DP4 table, capped for p = 0 round-off.

    A batch of one through :func:`strand_bias_phred_batch`, so the
    streaming engine's per-call score is bit-identical to the batched
    engine's vectorised scoring of the same table.
    """
    sb = strand_bias_phred_batch(
        np.array([ref_fwd]),
        np.array([ref_rev]),
        np.array([alt_fwd]),
        np.array([alt_rev]),
        cap=cap,
    )
    return float(sb[0])
