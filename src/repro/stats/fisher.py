"""Fisher's exact test and the LoFreq strand-bias score.

LoFreq annotates every call with ``SB``, the Phred-scaled p-value of a
two-tailed Fisher exact test on the 2x2 table of (ref, alt) x
(forward, reverse) read counts; heavily strand-biased "variants" are
typically artefacts.  The hypergeometric machinery is implemented
directly in log space and validated against ``scipy.stats.fisher_exact``
in the tests.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.stats.special import log_gamma

__all__ = ["fisher_exact", "strand_bias_phred", "hypergeom_log_pmf"]


def _log_choose(n: int, k: int) -> float:
    if k < 0 or k > n:
        return -math.inf
    return log_gamma(n + 1.0) - log_gamma(k + 1.0) - log_gamma(n - k + 1.0)


def hypergeom_log_pmf(k: int, M: int, n: int, N: int) -> float:
    """``log P(K = k)`` drawing ``N`` from ``M`` items of which ``n``
    are successes (scipy parameter order)."""
    return _log_choose(n, k) + _log_choose(M - n, N - k) - _log_choose(M, N)


def fisher_exact(
    table: Tuple[Tuple[int, int], Tuple[int, int]],
    alternative: str = "two-sided",
) -> float:
    """P-value of Fisher's exact test on a 2x2 contingency table.

    Args:
        table: ``((a, b), (c, d))`` of non-negative counts.
        alternative: ``"two-sided"``, ``"greater"`` (P(K >= a)) or
            ``"less"`` (P(K <= a)), conditioning on the margins.

    Returns:
        The p-value in [0, 1].

    Raises:
        ValueError: on negative counts or an unknown alternative.
    """
    (a, b), (c, d) = table
    if min(a, b, c, d) < 0:
        raise ValueError("contingency table counts must be non-negative")
    M = a + b + c + d
    if M == 0:
        return 1.0
    n = a + b  # row-1 total = number of "successes" in the urn
    N = a + c  # column-1 total = draw size
    lo = max(0, N - (M - n))
    hi = min(n, N)

    log_pmfs = [hypergeom_log_pmf(k, M, n, N) for k in range(lo, hi + 1)]
    idx = a - lo

    if alternative == "greater":
        acc = _log_sum(log_pmfs[idx:])
    elif alternative == "less":
        acc = _log_sum(log_pmfs[: idx + 1])
    elif alternative == "two-sided":
        # Sum all tables at most as probable as the observed one
        # (with a small relative tolerance, as scipy does).
        cutoff = log_pmfs[idx] + 1e-7
        acc = _log_sum([lp for lp in log_pmfs if lp <= cutoff])
    else:
        raise ValueError(f"unknown alternative {alternative!r}")
    return min(1.0, math.exp(acc))


def _log_sum(logs) -> float:
    if not logs:
        return -math.inf
    hi = max(logs)
    if hi == -math.inf:
        return -math.inf
    return hi + math.log(sum(math.exp(x - hi) for x in logs))


def strand_bias_phred(
    ref_fwd: int, ref_rev: int, alt_fwd: int, alt_rev: int, cap: float = 2000.0
) -> float:
    """LoFreq's ``SB`` INFO value: ``-10 log10`` of the two-tailed
    Fisher p-value on the DP4 table, capped for p = 0 round-off."""
    p = fisher_exact(((ref_fwd, ref_rev), (alt_fwd, alt_rev)))
    if p <= 0.0:
        return cap
    return min(cap, -10.0 * math.log10(p))
