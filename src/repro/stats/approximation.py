"""The Poisson approximation first-pass filter (the paper's Section II-A).

Hodges & Le Cam (1960) -- the paper's reference [13] -- bound the total
variation distance between a Poisson-binomial with probabilities
``p_i`` and a Poisson with ``lambda = sum p_i``::

    sup_A | P_PB(A) - P_Poi(A) |  <=  sum p_i^2

so for any tail event the approximate p-value is within
``sum p_i^2`` of the exact one.  Base-call error probabilities are
small (Q30 -> 0.001), so at depth 100,000 the bound is ~1e-1 * mean
error rate -- and the paper additionally keeps a safety margin of 0.01
above the significance threshold before trusting the approximation.

:func:`poisson_tail_approx` is O(d) (one pass to sum lambda) plus an
O(1) incomplete-gamma evaluation, versus O(d*K) for the exact DP.
"""

from __future__ import annotations

import numpy as np

from repro.stats.poisson import poisson_sf, poisson_sf_batch

__all__ = [
    "poisson_lambda",
    "poisson_tail_approx",
    "poisson_tail_approx_batch",
    "le_cam_bound",
    "approximation_is_conclusive",
]


def poisson_lambda(probs: np.ndarray) -> float:
    """``lambda = sum p_i``, the mean error count under the null."""
    p = np.asarray(probs, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"probabilities must be 1-D, got shape {p.shape}")
    return float(p.sum())


def poisson_tail_approx(k: int, probs: np.ndarray) -> float:
    """Approximate ``P(X >= k)`` via the Poisson(sum p) right tail.

    This is the paper's ``p-hat``: the O(d) first-pass statistic.
    """
    return poisson_sf(k, poisson_lambda(probs))


def poisson_tail_approx_batch(
    ks: np.ndarray, lams: np.ndarray
) -> np.ndarray:
    """Vectorised ``p-hat`` for many (column, allele) pairs at once.

    Args:
        ks: tail points (observed alt counts), one per pair.
        lams: per-pair ``lambda = sum p_i`` -- computed once per
            *column* with :func:`poisson_lambda` and broadcast to its
            alleles by the caller, so the summation matches the
            streaming path float-for-float.

    Returns:
        ``P(X >= k)`` under Poisson(lambda), elementwise equivalent to
        :func:`poisson_tail_approx`.
    """
    return poisson_sf_batch(ks, lams)


def le_cam_bound(probs: np.ndarray) -> float:
    """Hodges--Le Cam total-variation bound ``sum p_i^2``.

    Any event probability under the Poisson-binomial differs from the
    Poisson approximation by at most this much; the property-based
    tests verify it empirically against the exact DP.
    """
    p = np.asarray(probs, dtype=np.float64)
    return float((p * p).sum())


def approximation_is_conclusive(
    p_hat: float, alpha: float, margin: float
) -> bool:
    """The paper's skip rule: trust ``p_hat`` when it clears the
    significance level by at least ``margin`` (default 0.01 upstream).

    Only the "clearly not a variant" side is ever shortcut -- when
    ``p_hat`` is small the exact computation always runs, so the
    approximation can never *create* a call (Discussion, paragraph 1).
    """
    return p_hat >= alpha + margin
