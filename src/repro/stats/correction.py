"""Multiple-testing correction.

LoFreq tests every genome position (times three possible alternate
alleles), so raw p-values are Bonferroni-corrected: with significance
level ``alpha`` (paper default 0.05) and ``n`` tests, a column is
significant when ``p < alpha / n``.  Equivalently LoFreq multiplies
p-values by the "bonf factor"; we divide the threshold, which is
numerically safer for tiny p.
"""

from __future__ import annotations

__all__ = ["bonferroni_alpha", "default_test_count", "ALT_ALLELES_PER_SITE"]

#: Each position can mutate to any of the three non-reference bases.
ALT_ALLELES_PER_SITE = 3


def default_test_count(genome_length: int) -> int:
    """LoFreq's default Bonferroni denominator: positions x 3 alleles.

    Raises:
        ValueError: for non-positive genome length.
    """
    if genome_length <= 0:
        raise ValueError(f"genome length must be positive, got {genome_length}")
    return genome_length * ALT_ALLELES_PER_SITE


def bonferroni_alpha(alpha: float, n_tests: int) -> float:
    """Per-test significance threshold ``alpha / n_tests``.

    Raises:
        ValueError: for alpha outside (0, 1] or non-positive n_tests.
    """
    if not (0.0 < alpha <= 1.0):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if n_tests <= 0:
        raise ValueError(f"n_tests must be positive, got {n_tests}")
    return alpha / n_tests
