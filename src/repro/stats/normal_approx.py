"""Refined normal approximation to the Poisson-binomial tail.

Biscarri, Zhao & Brunner (2018, CSDA 122:92-100) -- reference [11] of
the paper -- recommend a skewness-corrected ("refined") normal
approximation when an O(1)-per-query estimate suffices::

    P(X <= k) ~ Phi(x) + gamma * (1 - x^2) * phi(x) / 6
    x = (k + 0.5 - mu) / sigma          (continuity corrected)
    gamma = sum p(1-p)(1-2p) / sigma^3  (skewness)

The paper's shortcut uses the *Poisson* approximation instead (better
for the small-p regime of base-call errors); the RNA lives here so the
ablation benchmark ``bench_poibin_algos`` can compare the two choices,
one of the "possible avenues" the Discussion floats.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["poibin_cdf_refined_normal", "poibin_sf_refined_normal"]

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    """Standard normal density."""
    return math.exp(-0.5 * x * x) / _SQRT2PI


def _Phi(x: float) -> float:
    """Standard normal CDF via erfc (stable in both tails)."""
    return 0.5 * math.erfc(-x / _SQRT2)


def poibin_cdf_refined_normal(k: int, probs: np.ndarray) -> float:
    """Approximate ``P(X <= k)``, clipped to [0, 1].

    Degenerate case: when every ``p_i`` is 0 or 1 the variance
    vanishes and the distribution is a point mass at ``sum p``; the
    exact step function is returned.
    """
    p = np.asarray(probs, dtype=np.float64)
    mu = float(p.sum())
    var = float((p * (1.0 - p)).sum())
    sigma = math.sqrt(var)
    if sigma == 0.0 or sigma**3 == 0.0:
        # Degenerate (or numerically denormal) variance: point mass.
        return 1.0 if k >= round(mu) else 0.0
    gamma = float((p * (1.0 - p) * (1.0 - 2.0 * p)).sum()) / (sigma**3)
    x = (k + 0.5 - mu) / sigma
    val = _Phi(x) + gamma * (1.0 - x * x) * _phi(x) / 6.0
    return min(1.0, max(0.0, val))


def poibin_sf_refined_normal(k: int, probs: np.ndarray) -> float:
    """Approximate ``P(X >= k)`` (inclusive tail)."""
    if k <= 0:
        return 1.0
    return 1.0 - poibin_cdf_refined_normal(k - 1, probs)
