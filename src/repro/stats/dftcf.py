"""Poisson-binomial pmf via the DFT of the characteristic function.

Hong (2013, CSDA 59:41-51) -- reference [12] of the paper -- observed
that the Poisson-binomial pmf is the inverse DFT of its characteristic
function sampled at the roots of unity::

    pmf[k] = (1/(d+1)) * sum_l  CF(2*pi*l/(d+1)) * exp(-2*pi*i*l*k/(d+1))
    CF(t)  = prod_j (1 - p_j + p_j * exp(i*t))

With the CF evaluated at all ``d+1`` sample points, a single forward
FFT recovers the whole pmf in O(d log d) after the O(d^2) CF product
(done blockwise to bound memory).  This gives an exact method that is
structurally independent of the dynamic program, which makes it the
ideal cross-check: the two agree to ~1e-10 and the test suite enforces
that.
"""

from __future__ import annotations

import numpy as np

__all__ = ["poibin_pmf_dftcf", "poibin_sf_dftcf"]

#: Reads per block when accumulating the CF product (memory bound:
#: block * (d+1) complex128 values).
_BLOCK = 256


def poibin_pmf_dftcf(probs: np.ndarray) -> np.ndarray:
    """Full pmf ``P(X = 0..d)`` by the DFT-CF method.

    Returns:
        Length ``d + 1`` float64 array; tiny negative round-off values
        are clipped to zero.
    """
    p = np.asarray(probs, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"probabilities must be 1-D, got shape {p.shape}")
    if p.size and (p.min() < 0.0 or p.max() > 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    d = p.size
    n = d + 1
    # omega^l for l = 0..d on the unit circle.
    ang = 2.0 * np.pi * np.arange(n) / n
    omega = np.cos(ang) + 1j * np.sin(ang)
    cf = np.ones(n, dtype=np.complex128)
    for start in range(0, d, _BLOCK):
        block = p[start : start + _BLOCK]
        # factor[j, l] = 1 - p_j + p_j * omega^l
        factors = 1.0 - block[:, None] * (1.0 - omega[None, :])
        cf *= np.prod(factors, axis=0)
    pmf = np.fft.fft(cf).real / n
    np.clip(pmf, 0.0, 1.0, out=pmf)
    return pmf


def poibin_sf_dftcf(k: int, probs: np.ndarray) -> float:
    """``P(X >= k)`` from the DFT-CF pmf."""
    if k <= 0:
        return 1.0
    pmf = poibin_pmf_dftcf(probs)
    if k >= pmf.size:
        return 0.0
    return float(pmf[k:].sum())
