"""Exact Poisson-binomial tail probabilities.

Given per-read error probabilities ``p_1..p_d`` the error count ``X``
at a pileup column follows a Poisson-binomial distribution.  LoFreq
tests ``P(X >= K)`` for ``K`` observed mismatches with the recurrence
from the paper (Section II-A)::

    P_n(X = k) = P_{n-1}(X = k) (1 - p_n) + P_{n-1}(X = k - 1) p_n

Three implementations live here:

* :func:`poibin_pmf_dp` -- the full O(d^2) dynamic program returning
  the complete pmf (used by Figure 1a and as a reference).
* :func:`poibin_sf_dp` -- the production tail computation.  It keeps
  only ``P_n(X = 0..K-1)`` (O(K) memory), accumulates
  ``P(X >= K)`` incrementally and applies LoFreq's early-stop pruning:
  the running tail is monotonically non-decreasing in ``n`` (adding a
  Bernoulli can only push mass rightwards), so as soon as it exceeds
  the significance threshold the column can be declared
  not-significant without finishing the DP.
* :func:`poibin_sf_brute_force` -- 2^d enumeration, the ground-truth
  oracle for property tests (d <= ~18).

The DP bodies are NumPy-vectorised over ``k`` so each of the ``d``
steps is one fused array operation; this is the "cache-friendly single
array sweep" whose memory behaviour :mod:`repro.cachesim` models.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "poibin_pmf_dp",
    "poibin_sf_dp",
    "poibin_sf",
    "poibin_sf_brute_force",
    "poibin_mean_variance",
    "DpResult",
]


def _validate_probs(probs: np.ndarray) -> np.ndarray:
    p = np.asarray(probs, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"probabilities must be 1-D, got shape {p.shape}")
    if p.size and (np.min(p) < 0.0 or np.max(p) > 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    return p


def poibin_mean_variance(probs: np.ndarray) -> Tuple[float, float]:
    """Mean and variance of the Poisson-binomial: ``(sum p, sum p(1-p))``."""
    p = _validate_probs(probs)
    return float(p.sum()), float((p * (1.0 - p)).sum())


def poibin_pmf_dp(probs: np.ndarray) -> np.ndarray:
    """Full pmf ``P(X = 0..d)`` by the O(d^2) recurrence.

    Returns an array of length ``d + 1`` summing to 1 (up to float
    round-off).
    """
    p = _validate_probs(probs)
    d = p.size
    pmf = np.zeros(d + 1, dtype=np.float64)
    pmf[0] = 1.0
    for n in range(d):
        pn = p[n]
        # P_n(k) = P_{n-1}(k)(1-pn) + P_{n-1}(k-1)pn, done as one
        # vectorised shift-multiply-add over the first n+2 entries.
        upper = n + 2
        prev = pmf[:upper].copy()
        pmf[:upper] = prev * (1.0 - pn)
        pmf[1:upper] += prev[:-1] * pn
    return pmf


class DpResult:
    """Outcome of the pruned tail DP.

    Attributes:
        pvalue: ``P(X >= k)`` if the DP ran to completion, otherwise a
            *lower bound* that already exceeds the pruning threshold.
        complete: whether the DP processed all ``d`` reads.
        steps: number of reads processed (equals ``d`` when complete);
            the work measure Table I's runtime model is built on.
    """

    __slots__ = ("pvalue", "complete", "steps")

    def __init__(self, pvalue: float, complete: bool, steps: int) -> None:
        self.pvalue = pvalue
        self.complete = complete
        self.steps = steps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DpResult(pvalue={self.pvalue:.3g}, complete={self.complete}, "
            f"steps={self.steps})"
        )


def poibin_sf_dp(
    k: int,
    probs: np.ndarray,
    *,
    prune_above: Optional[float] = None,
) -> DpResult:
    """``P(X >= k)`` by the truncated O(d * k) dynamic program.

    Only ``P_n(X = 0..k-1)`` is maintained; the tail mass is
    accumulated as it leaks past ``k - 1``.  If ``prune_above`` is
    given and the running tail exceeds it, the DP stops early: the true
    p-value can only be larger, so the caller (which compares against a
    significance level) already knows the verdict.  This reproduces
    LoFreq's early-stopping behaviour the paper mentions in the
    Discussion ("conditions for early stopping that work especially
    well on shallow columns").

    Args:
        k: observed mismatch count (the tail starts here, inclusive).
        probs: per-read error probabilities.
        prune_above: optional early-stop threshold (e.g. the Bonferroni
            corrected alpha).

    Returns:
        A :class:`DpResult`; ``pvalue`` is exact iff ``complete``.
    """
    p = _validate_probs(probs)
    d = p.size
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0:
        return DpResult(1.0, True, 0)
    if k > d:
        return DpResult(0.0, True, 0)

    # head[j] = P_n(X = j) for j in 0..k-1; tail = P_n(X >= k).
    head = np.zeros(k, dtype=np.float64)
    head[0] = 1.0
    tail = 0.0
    for n in range(d):
        pn = p[n]
        if pn == 0.0:
            continue
        # Mass leaking from head[k-1] past the boundary joins the tail.
        tail += head[k - 1] * pn
        head[1:] = head[1:] * (1.0 - pn) + head[:-1] * pn
        head[0] *= 1.0 - pn
        if prune_above is not None and tail > prune_above:
            return DpResult(tail, False, n + 1)
    return DpResult(tail, True, d)


def poibin_sf(k: int, probs: np.ndarray) -> float:
    """Convenience wrapper: exact ``P(X >= k)`` (no pruning)."""
    return poibin_sf_dp(k, probs).pvalue


def poibin_sf_brute_force(k: int, probs: np.ndarray) -> float:
    """Ground-truth ``P(X >= k)`` by enumerating all 2^d outcomes.

    Only usable for tiny ``d``; exists to anchor the property tests.

    Raises:
        ValueError: for d > 20 (enumeration would be unreasonable).
    """
    p = _validate_probs(probs)
    d = p.size
    if d > 20:
        raise ValueError(f"brute force limited to d <= 20, got {d}")
    if k <= 0:
        return 1.0
    total = 0.0
    for errs in itertools.product((0, 1), repeat=d):
        if sum(errs) >= k:
            prob = 1.0
            for e, pi in zip(errs, p):
                prob *= pi if e else (1.0 - pi)
            total += prob
    return total


def poibin_sf_binomial(k: int, d: int, p: float) -> float:
    """Homogeneous special case ``p_i = p`` (ordinary binomial tail).

    Computed by stable summation in log space; used in tests to check
    the generic DP against an independent formula.
    """
    if k <= 0:
        return 1.0
    if k > d:
        return 0.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    # Sum from the dominant end for accuracy.
    acc = -math.inf
    log_choose = 0.0
    # log C(d, j) built incrementally.
    logs = [0.0] * (d + 1)
    for j in range(1, d + 1):
        log_choose += math.log(d - j + 1) - math.log(j)
        logs[j] = log_choose
    for j in range(k, d + 1):
        term = logs[j] + j * log_p + (d - j) * log_q
        hi, lo = (acc, term) if acc >= term else (term, acc)
        acc = hi + math.log1p(math.exp(lo - hi)) if lo != -math.inf else hi
    return math.exp(acc)
