"""Exact Poisson-binomial tail probabilities.

Given per-read error probabilities ``p_1..p_d`` the error count ``X``
at a pileup column follows a Poisson-binomial distribution.  LoFreq
tests ``P(X >= K)`` for ``K`` observed mismatches with the recurrence
from the paper (Section II-A)::

    P_n(X = k) = P_{n-1}(X = k) (1 - p_n) + P_{n-1}(X = k - 1) p_n

Three implementations live here:

* :func:`poibin_pmf_dp` -- the full O(d^2) dynamic program returning
  the complete pmf (used by Figure 1a and as a reference).
* :func:`poibin_sf_dp` -- the production tail computation.  It keeps
  only ``P_n(X = 0..K-1)`` (O(K) memory), accumulates
  ``P(X >= K)`` incrementally and applies LoFreq's early-stop pruning:
  the running tail is monotonically non-decreasing in ``n`` (adding a
  Bernoulli can only push mass rightwards), so as soon as it exceeds
  the significance threshold the column can be declared
  not-significant without finishing the DP.
* :func:`poibin_sf_dp_batch` -- the 2-D twin of :func:`poibin_sf_dp`:
  one DP over many (k, probability-row) lanes at once, sweeping the
  read axis with whole-matrix operations and masking lanes out as
  their early stop fires.  Bit-for-bit identical to running the
  scalar DP per lane (see its docstring for why), which is what lets
  the batched caller engine run its exact stage without lifting
  survivors into per-column Python objects.
* :func:`poibin_sf_brute_force` -- 2^d enumeration, the ground-truth
  oracle for property tests (d <= ~18).

The DP bodies are NumPy-vectorised over ``k`` so each of the ``d``
steps is one fused array operation; this is the "cache-friendly single
array sweep" whose memory behaviour :mod:`repro.cachesim` models.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "poibin_pmf_dp",
    "poibin_sf_dp",
    "poibin_sf_dp_batch",
    "poibin_sf",
    "poibin_sf_brute_force",
    "poibin_mean_variance",
    "BatchDpResult",
    "DpResult",
]


def _validate_probs(probs: np.ndarray) -> np.ndarray:
    p = np.asarray(probs, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"probabilities must be 1-D, got shape {p.shape}")
    if p.size and (np.min(p) < 0.0 or np.max(p) > 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    return p


def poibin_mean_variance(probs: np.ndarray) -> Tuple[float, float]:
    """Mean and variance of the Poisson-binomial: ``(sum p, sum p(1-p))``."""
    p = _validate_probs(probs)
    return float(p.sum()), float((p * (1.0 - p)).sum())


def poibin_pmf_dp(probs: np.ndarray) -> np.ndarray:
    """Full pmf ``P(X = 0..d)`` by the O(d^2) recurrence.

    Returns an array of length ``d + 1`` summing to 1 (up to float
    round-off).
    """
    p = _validate_probs(probs)
    d = p.size
    pmf = np.zeros(d + 1, dtype=np.float64)
    pmf[0] = 1.0
    for n in range(d):
        pn = p[n]
        # P_n(k) = P_{n-1}(k)(1-pn) + P_{n-1}(k-1)pn, done as one
        # vectorised shift-multiply-add over the first n+2 entries.
        upper = n + 2
        prev = pmf[:upper].copy()
        pmf[:upper] = prev * (1.0 - pn)
        pmf[1:upper] += prev[:-1] * pn
    return pmf


class DpResult:
    """Outcome of the pruned tail DP.

    Attributes:
        pvalue: ``P(X >= k)`` if the DP ran to completion, otherwise a
            *lower bound* that already exceeds the pruning threshold.
        complete: whether the DP processed all ``d`` reads.
        steps: number of reads processed (equals ``d`` when complete);
            the work measure Table I's runtime model is built on.
    """

    __slots__ = ("pvalue", "complete", "steps")

    def __init__(self, pvalue: float, complete: bool, steps: int) -> None:
        self.pvalue = pvalue
        self.complete = complete
        self.steps = steps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DpResult(pvalue={self.pvalue:.3g}, complete={self.complete}, "
            f"steps={self.steps})"
        )


def poibin_sf_dp(
    k: int,
    probs: np.ndarray,
    *,
    prune_above: Optional[float] = None,
) -> DpResult:
    """``P(X >= k)`` by the truncated O(d * k) dynamic program.

    Only ``P_n(X = 0..k-1)`` is maintained; the tail mass is
    accumulated as it leaks past ``k - 1``.  If ``prune_above`` is
    given and the running tail exceeds it, the DP stops early: the true
    p-value can only be larger, so the caller (which compares against a
    significance level) already knows the verdict.  This reproduces
    LoFreq's early-stopping behaviour the paper mentions in the
    Discussion ("conditions for early stopping that work especially
    well on shallow columns").

    Args:
        k: observed mismatch count (the tail starts here, inclusive).
        probs: per-read error probabilities.
        prune_above: optional early-stop threshold (e.g. the Bonferroni
            corrected alpha).

    Returns:
        A :class:`DpResult`; ``pvalue`` is exact iff ``complete``.
    """
    p = _validate_probs(probs)
    d = p.size
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0:
        return DpResult(1.0, True, 0)
    if k > d:
        return DpResult(0.0, True, 0)

    # head[j] = P_n(X = j) for j in 0..k-1; tail = P_n(X >= k).
    head = np.zeros(k, dtype=np.float64)
    head[0] = 1.0
    tail = 0.0
    for n in range(d):
        pn = p[n]
        if pn == 0.0:
            continue
        # Mass leaking from head[k-1] past the boundary joins the tail.
        tail += head[k - 1] * pn
        head[1:] = head[1:] * (1.0 - pn) + head[:-1] * pn
        head[0] *= 1.0 - pn
        if prune_above is not None and tail > prune_above:
            return DpResult(tail, False, n + 1)
    return DpResult(tail, True, d)


class BatchDpResult:
    """Per-lane outcome of the batched tail DP.

    Attributes:
        pvalues: float64 array; lane ``i`` holds ``P(X >= k_i)`` when
            ``complete[i]``, otherwise the lower bound at which the
            lane's early stop fired.
        complete: bool array, True where the lane's DP ran over all of
            its reads.
        steps: int64 array of reads processed per lane (equals the
            lane's length when complete).
    """

    __slots__ = ("pvalues", "complete", "steps")

    def __init__(
        self, pvalues: np.ndarray, complete: np.ndarray, steps: np.ndarray
    ) -> None:
        self.pvalues = pvalues
        self.complete = complete
        self.steps = steps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchDpResult(lanes={self.pvalues.size}, "
            f"complete={int(self.complete.sum())}, "
            f"steps={int(self.steps.sum())})"
        )


#: Rows are compacted out of the batched DP's working set whenever the
#: still-running fraction drops below this; keeps the per-step matrix
#: work proportional to the lanes that are actually alive.
_COMPACT_FRACTION = 0.5

#: Sweep steps per cached probability block.  Reading a plane *column*
#: per step would cost one cache miss per lane; instead the sweep
#: copies (lanes x _SWEEP_BLOCK) slabs -- contiguous row segments, one
#: streaming pass over the plane in total -- and serves the per-step
#: columns out of the cache-resident slab.
_SWEEP_BLOCK = 128


def poibin_sf_dp_batch(
    ks: np.ndarray,
    probs: np.ndarray,
    lengths: Optional[np.ndarray] = None,
    *,
    prune_above: Optional[float] = None,
) -> BatchDpResult:
    """Run :func:`poibin_sf_dp` over many lanes in one 2-D sweep.

    Lane ``i`` is the pair ``(ks[i], probs[i, :lengths[i]])``; the
    plane is zero-padded on the right so ragged depths share one
    matrix.  The result is **bit-for-bit** what the scalar DP returns
    per lane -- pvalues, completion flags and step counts alike:

    * the per-step recurrence is the scalar one evaluated elementwise
      (same multiply/add order, float64 throughout);
    * each lane's ``k``-wide head buffer is right-aligned at a shared
      boundary column, so the uniform shift-multiply-add touches only
      zeros left of a lane's own head -- and for the non-negative DP
      state ``x * 1.0`` and ``x + 0.0`` are bitwise identity, making
      the zero padding (and frozen lanes) exact no-ops;
    * the early stop is checked per lane exactly where the scalar
      loop checks it (after every step with a non-zero probability),
      freezing the lane's pvalue and step count at that point.

    Lanes whose early stop has fired are masked out of further
    updates, and the working set is compacted whenever the live
    fraction halves, so a batch of mostly-prunable lanes does not pay
    for its slowest member.

    Example -- two ragged lanes, one shared zero-padded plane::

        >>> import numpy as np
        >>> plane = np.zeros((2, 4))
        >>> plane[0, :4] = 0.01   # lane 0: 4 reads at p = 0.01
        >>> plane[1, :2] = 0.20   # lane 1: 2 reads at p = 0.20
        >>> res = poibin_sf_dp_batch(
        ...     np.array([2, 1]), plane, np.array([4, 2]))
        >>> bool(res.complete.all())
        True
        >>> np.allclose(res.pvalues[1], 1 - 0.8 * 0.8)
        True

    Args:
        ks: int array of tail points, one per lane.
        probs: 2-D float64 plane, one row of per-read error
            probabilities per lane, zero-padded past ``lengths``.
        lengths: per-lane read counts; defaults to the full row width.
        prune_above: optional early-stop threshold shared by all lanes
            (e.g. the Bonferroni-corrected alpha).

    Returns:
        A :class:`BatchDpResult` with one entry per lane.

    Raises:
        ValueError: on shape mismatches, out-of-range probabilities,
            negative ``ks``, or non-zero padding past ``lengths``.
    """
    p = np.asarray(probs, dtype=np.float64)
    if p.ndim != 2:
        raise ValueError(f"probs must be 2-D (lanes, reads), got {p.shape}")
    m, width = p.shape
    ks_arr = np.asarray(ks, dtype=np.int64)
    if ks_arr.shape != (m,):
        raise ValueError(f"ks must have shape ({m},), got {ks_arr.shape}")
    if m and np.min(ks_arr) < 0:
        raise ValueError("k must be >= 0 in every lane")
    if p.size and (np.min(p) < 0.0 or np.max(p) > 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    if lengths is None:
        lens_all = np.full(m, width, dtype=np.int64)
    else:
        lens_all = np.asarray(lengths, dtype=np.int64)
        if lens_all.shape != (m,):
            raise ValueError(
                f"lengths must have shape ({m},), got {lens_all.shape}"
            )
        if m and (np.min(lens_all) < 0 or np.max(lens_all) > width):
            raise ValueError("lengths must lie in [0, row width]")
    # One pass over the plane classifies it for the sweep: rows whose
    # zero count equals their padding have all-zero padding and no
    # interior zeros (the hot case -- quality-derived probabilities
    # are never exactly 0), which both validates the padding and
    # licenses the pruning fast path below.
    zeros_per_row = (
        np.count_nonzero(p == 0.0, axis=1) if p.size else np.zeros(m)
    )
    zero_free = bool((zeros_per_row == width - lens_all).all())
    if not zero_free:
        if p.size and p[np.arange(width) >= lens_all[:, None]].any():
            raise ValueError("probs must be zero-padded past lengths")

    pvalues = np.zeros(m, dtype=np.float64)
    complete = np.ones(m, dtype=bool)
    steps = np.zeros(m, dtype=np.int64)
    pvalues[ks_arr == 0] = 1.0  # P(X >= 0) = 1, settled in 0 steps
    # ks > length lanes keep pvalue 0.0 / steps 0, like the scalar DP.
    run = (ks_arr > 0) & (ks_arr <= lens_all)
    sel = np.nonzero(run)[0]
    if sel.size == 0:
        return BatchDpResult(pvalues, complete, steps)

    # Right-aligned head state: lane i's P(X = j) lives at column
    # k_max - k_i + j, its boundary (j = k_i - 1) at the shared last
    # column.  Columns left of a lane's head hold zeros forever.
    lane_k = ks_arr[sel]
    lane_len = lens_all[sel]
    k_max = int(lane_k.max())
    n_lanes = sel.size
    head = np.zeros((n_lanes, k_max), dtype=np.float64)
    head[np.arange(n_lanes), k_max - lane_k] = 1.0
    tail = np.zeros(n_lanes, dtype=np.float64)
    alive = np.ones(n_lanes, dtype=bool)
    n_alive = n_lanes
    # Lanes complete exactly at n == their length, so the completion
    # scan only needs to run at those step counts.
    len_events = np.unique(lane_len)
    len_ptr = 0

    def retire(rows: np.ndarray) -> None:
        """Zero out finished lanes so the sweep skips them for free."""
        # Rows of finished lanes are zeroed rather than dropped: the
        # sweep keeps updating them (cheaper than masking every
        # step), but zero state stays zero, so the tail.max() prune
        # gate below never re-fires for them.  Compaction trims them
        # out of the working set wholesale.
        head[rows] = 0.0
        tail[rows] = 0.0
        alive[rows] = False

    n = 0
    block = np.empty((n_lanes, 0), dtype=np.float64)
    block_base = 0
    while n_alive:
        # ``sel`` maps working rows to plane rows; the plane itself is
        # never compacted (it can be the big array) -- working rows
        # are gathered slab by slab: contiguous row segments, one
        # streaming pass over the plane in total, with the per-step
        # columns served out of the cache-resident slab.
        j = n - block_base
        if j >= block.shape[1]:
            block_base = n
            j = 0
            hi = min(n + _SWEEP_BLOCK, width)
            block = p[:, n:hi].copy() if sel.size == m else p[sel, n:hi]
        pn = block[:, j]
        one_minus = 1.0 - pn
        # Mass leaking past each lane's k-1 boundary joins its tail.
        tail += head[:, -1] * pn
        shifted = head[:, :-1] * pn[:, None]
        head[:, 1:] *= one_minus[:, None]
        head[:, 1:] += shifted
        head[:, 0] *= one_minus
        n += 1
        if prune_above is not None and float(tail.max()) > prune_above:
            # The scalar loop only checks after steps with pn > 0; on
            # a zero-free plane that gate is vacuous within a lane's
            # length (and past it the lane's state is already zeroed).
            pruned = tail > prune_above
            if not zero_free:
                pruned &= pn > 0.0
            if pruned.any():
                rows = np.nonzero(pruned)[0]
                lanes = sel[rows]
                pvalues[lanes] = tail[rows]
                complete[lanes] = False
                steps[lanes] = n
                retire(rows)
                n_alive -= rows.size
        if len_ptr < len_events.size and n == int(len_events[len_ptr]):
            len_ptr += 1
            done = alive & (lane_len <= n)
            if done.any():
                rows = np.nonzero(done)[0]
                lanes = sel[rows]
                pvalues[lanes] = tail[rows]
                steps[lanes] = lane_len[rows]
                retire(rows)
                n_alive -= rows.size
        if n_alive and n_alive <= _COMPACT_FRACTION * alive.size:
            rows = np.nonzero(alive)[0]
            lane_k = lane_k[rows]
            lane_len = lane_len[rows]
            sel = sel[rows]
            tail = tail[rows]
            block = block[rows]
            new_k_max = int(lane_k.max())
            head = head[np.ix_(rows, np.arange(k_max - new_k_max, k_max))]
            k_max = new_k_max
            alive = np.ones(rows.size, dtype=bool)
    return BatchDpResult(pvalues, complete, steps)


def poibin_sf(k: int, probs: np.ndarray) -> float:
    """Convenience wrapper: exact ``P(X >= k)`` (no pruning)."""
    return poibin_sf_dp(k, probs).pvalue


def poibin_sf_brute_force(k: int, probs: np.ndarray) -> float:
    """Ground-truth ``P(X >= k)`` by enumerating all 2^d outcomes.

    Only usable for tiny ``d``; exists to anchor the property tests.

    Raises:
        ValueError: for d > 20 (enumeration would be unreasonable).
    """
    p = _validate_probs(probs)
    d = p.size
    if d > 20:
        raise ValueError(f"brute force limited to d <= 20, got {d}")
    if k <= 0:
        return 1.0
    total = 0.0
    for errs in itertools.product((0, 1), repeat=d):
        if sum(errs) >= k:
            prob = 1.0
            for e, pi in zip(errs, p):
                prob *= pi if e else (1.0 - pi)
            total += prob
    return total


def poibin_sf_binomial(k: int, d: int, p: float) -> float:
    """Homogeneous special case ``p_i = p`` (ordinary binomial tail).

    Computed by stable summation in log space; used in tests to check
    the generic DP against an independent formula.
    """
    if k <= 0:
        return 1.0
    if k > d:
        return 0.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    # Sum from the dominant end for accuracy.
    acc = -math.inf
    log_choose = 0.0
    # log C(d, j) built incrementally.
    logs = [0.0] * (d + 1)
    for j in range(1, d + 1):
        log_choose += math.log(d - j + 1) - math.log(j)
        logs[j] = log_choose
    for j in range(k, d + 1):
        term = logs[j] + j * log_p + (d - j) * log_q
        hi, lo = (acc, term) if acc >= term else (term, acc)
        acc = hi + math.log1p(math.exp(lo - hi)) if lo != -math.inf else hi
    return math.exp(acc)
