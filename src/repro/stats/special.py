"""Special functions: log-gamma and the regularized incomplete gamma.

Upstream LoFreq gets the Poisson tail from the GNU Scientific Library;
here the equivalent machinery is implemented directly (Lanczos
log-gamma, series expansion for the lower incomplete gamma, Lentz
continued fraction for the upper) and cross-checked against SciPy in
the test suite.  The functions accept scalars and are heavily exercised
by property tests, so numerical edge cases (``x = 0``, huge ``x``,
``a`` of a few million -- the paper's 1,000,000x depth columns) are
handled explicitly.

The ``*_batch`` variants evaluate the same series / continued fraction
over whole NumPy arrays at once with per-element convergence masks, so
the batched caller engine can screen every (column, allele) pair of a
chunk in a handful of array sweeps instead of one Python call each.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "log_gamma",
    "log_gamma_batch",
    "lower_regularized_gamma",
    "lower_regularized_gamma_batch",
    "upper_regularized_gamma",
    "log_sum_exp",
    "phred_to_prob",
    "prob_to_phred",
]

# Lanczos coefficients (g=7, n=9); standard double-precision set.
_LANCZOS_G = 7.0
_LANCZOS = (
    0.99999999999980993,
    676.5203681218851,
    -1259.1392167224028,
    771.32342877765313,
    -176.61502916214059,
    12.507343278686905,
    -0.13857109526572012,
    9.9843695780195716e-6,
    1.5056327351493116e-7,
)

_MAX_ITER = 10_000
_EPS = 1e-15
_FPMIN = 1e-300


def log_gamma(x: float) -> float:
    """Natural log of the gamma function for ``x > 0``.

    Uses the Lanczos approximation; accurate to ~1e-13 relative error
    over the range exercised here.

    Raises:
        ValueError: for ``x <= 0`` (poles / undefined region).
    """
    if x <= 0:
        raise ValueError(f"log_gamma requires x > 0, got {x}")
    if x < 0.5:
        # Reflection formula keeps the Lanczos series in its sweet spot.
        return math.log(math.pi / math.sin(math.pi * x)) - log_gamma(1.0 - x)
    x -= 1.0
    acc = _LANCZOS[0]
    for i in range(1, len(_LANCZOS)):
        acc += _LANCZOS[i] / (x + i)
    t = x + _LANCZOS_G + 0.5
    return 0.5 * math.log(2.0 * math.pi) + (x + 0.5) * math.log(t) - t + math.log(acc)


def _gamma_series(a: float, x: float) -> float:
    """Lower regularized incomplete gamma P(a, x) by series; x < a+1."""
    if x <= 0.0:
        return 0.0
    ap = a
    summ = 1.0 / a
    delta = summ
    log_prefix = a * math.log(x) - x - log_gamma(a)
    for _ in range(_MAX_ITER):
        ap += 1.0
        delta *= x / ap
        summ += delta
        if abs(delta) < abs(summ) * _EPS:
            return summ * math.exp(log_prefix)
    raise ArithmeticError(
        f"incomplete gamma series failed to converge (a={a}, x={x})"
    )


def _gamma_cont_fraction(a: float, x: float) -> float:
    """Upper regularized incomplete gamma Q(a, x) by Lentz continued
    fraction; x >= a+1."""
    log_prefix = a * math.log(x) - x - log_gamma(a)
    b = x + 1.0 - a
    c = 1.0 / _FPMIN
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITER):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = b + an / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            return math.exp(log_prefix) * h
    raise ArithmeticError(
        f"incomplete gamma continued fraction failed to converge (a={a}, x={x})"
    )


def lower_regularized_gamma(a: float, x: float) -> float:
    """``P(a, x) = gamma(a, x) / Gamma(a)``, in [0, 1].

    Raises:
        ValueError: for ``a <= 0`` or ``x < 0``.
    """
    if a <= 0:
        raise ValueError(f"requires a > 0, got a={a}")
    if x < 0:
        raise ValueError(f"requires x >= 0, got x={x}")
    if x == 0.0:
        return 0.0
    if x < a + 1.0:
        return _gamma_series(a, x)
    return 1.0 - _gamma_cont_fraction(a, x)


def upper_regularized_gamma(a: float, x: float) -> float:
    """``Q(a, x) = 1 - P(a, x)``, computed without cancellation where
    possible (continued fraction directly for ``x >= a + 1``)."""
    if a <= 0:
        raise ValueError(f"requires a > 0, got a={a}")
    if x < 0:
        raise ValueError(f"requires x >= 0, got x={x}")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _gamma_series(a, x)
    return _gamma_cont_fraction(a, x)


def log_gamma_batch(x: np.ndarray) -> np.ndarray:
    """Vectorised Lanczos :func:`log_gamma` for ``x >= 0.5``.

    The reflection branch is deliberately unsupported: the batched
    callers only evaluate integer tail points ``k >= 1``.

    Raises:
        ValueError: if any element is below 0.5.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size and np.min(x) < 0.5:
        raise ValueError("log_gamma_batch requires x >= 0.5")
    z = x - 1.0
    acc = np.full_like(z, _LANCZOS[0])
    for i in range(1, len(_LANCZOS)):
        acc += _LANCZOS[i] / (z + i)
    t = z + _LANCZOS_G + 0.5
    return 0.5 * math.log(2.0 * math.pi) + (z + 0.5) * np.log(t) - t + np.log(acc)


def _gamma_series_batch(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Vectorised lower-gamma series; every element must have
    ``0 < x < a + 1``.  Elements iterate independently: a lane stops
    updating the moment it meets the scalar version's stopping rule."""
    out = np.empty_like(x)
    ap = a.copy()
    summ = 1.0 / a
    delta = summ.copy()
    log_prefix = a * np.log(x) - x - log_gamma_batch(a)
    active = np.ones(x.shape, dtype=bool)
    for _ in range(_MAX_ITER):
        ap[active] += 1.0
        delta[active] *= x[active] / ap[active]
        summ[active] += delta[active]
        active &= ~(np.abs(delta) < np.abs(summ) * _EPS)
        if not active.any():
            np.multiply(summ, np.exp(log_prefix), out=out)
            return out
    raise ArithmeticError(
        "incomplete gamma series (batch) failed to converge"
    )


def _gamma_cont_fraction_batch(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Vectorised Lentz continued fraction for Q(a, x); every element
    must have ``x >= a + 1``."""
    log_prefix = a * np.log(x) - x - log_gamma_batch(a)
    b = x + 1.0 - a
    c = np.full_like(x, 1.0 / _FPMIN)
    d = 1.0 / b
    h = d.copy()
    active = np.ones(x.shape, dtype=bool)
    for i in range(1, _MAX_ITER):
        an = -i * (i - a[active])
        b[active] += 2.0
        d[active] = an * d[active] + b[active]
        np.copyto(d, _FPMIN, where=active & (np.abs(d) < _FPMIN))
        c[active] = b[active] + an / c[active]
        np.copyto(c, _FPMIN, where=active & (np.abs(c) < _FPMIN))
        d[active] = 1.0 / d[active]
        delta = d[active] * c[active]
        h[active] *= delta
        still = np.abs(delta - 1.0) >= _EPS
        active[active] = still
        if not active.any():
            return np.exp(log_prefix) * h
    raise ArithmeticError(
        "incomplete gamma continued fraction (batch) failed to converge"
    )


def lower_regularized_gamma_batch(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Vectorised ``P(a, x)`` over parallel arrays, in [0, 1].

    Elementwise equivalent of :func:`lower_regularized_gamma` (same
    series / continued-fraction split at ``x = a + 1``, same stopping
    rules), restricted to ``a >= 0.5`` -- the batched Poisson-tail
    screen only ever asks for integer ``a = k >= 1``.

    Raises:
        ValueError: for ``a < 0.5`` or ``x < 0`` anywhere.
    """
    a = np.asarray(a, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if a.shape != x.shape:
        raise ValueError(f"shape mismatch: a{a.shape} vs x{x.shape}")
    if a.size == 0:
        return np.empty_like(x)
    if np.min(a) < 0.5:
        raise ValueError("lower_regularized_gamma_batch requires a >= 0.5")
    if np.min(x) < 0:
        raise ValueError("requires x >= 0")
    out = np.zeros_like(x)
    nonzero = x > 0.0
    series = nonzero & (x < a + 1.0)
    if series.any():
        out[series] = _gamma_series_batch(a[series], x[series])
    frac = nonzero & ~series
    if frac.any():
        out[frac] = 1.0 - _gamma_cont_fraction_batch(a[frac], x[frac])
    return out


def log_sum_exp(log_a: float, log_b: float) -> float:
    """``log(exp(log_a) + exp(log_b))`` without overflow."""
    if log_a == -math.inf:
        return log_b
    if log_b == -math.inf:
        return log_a
    hi, lo = (log_a, log_b) if log_a >= log_b else (log_b, log_a)
    return hi + math.log1p(math.exp(lo - hi))


def phred_to_prob(q: float) -> float:
    """Phred score -> error probability ``10**(-q/10)``."""
    return 10.0 ** (-q / 10.0)


def prob_to_phred(p: float, cap: float = 99.0) -> float:
    """Error probability -> Phred score, capped (``p = 0`` maps to the
    cap rather than infinity, matching htslib conventions)."""
    if p <= 0.0:
        return cap
    return min(cap, -10.0 * math.log10(p))
