"""Statistical machinery for quality-aware variant calling.

The paper's computational core is the Poisson-binomial tail test: at a
pileup column with per-read error probabilities ``p_i``, the number of
sequencing errors is Poisson-binomial and a variant is called when
``P(X >= K) < alpha`` for ``K`` observed mismatches.  This subpackage
implements:

* :mod:`repro.stats.special` -- regularized incomplete gamma (the
  building block GSL provides upstream), log-space helpers.
* :mod:`repro.stats.poisson` -- Poisson pmf/cdf/sf built on the above.
* :mod:`repro.stats.poisson_binomial` -- the exact O(d*K) dynamic
  program with LoFreq's early-stop pruning, plus a brute-force oracle.
* :mod:`repro.stats.dftcf` -- Hong (2013) DFT of the characteristic
  function, an alternative exact method (paper refs [11], [12]).
* :mod:`repro.stats.normal_approx` -- Biscarri et al. (2018) refined
  normal approximation (paper ref [11]).
* :mod:`repro.stats.approximation` -- the Hodges--Le Cam Poisson
  approximation and its total-variation error bound: the paper's
  first-pass filter (Section II-A).
* :mod:`repro.stats.fisher` -- Fisher's exact test for the strand-bias
  filter LoFreq applies to calls.
* :mod:`repro.stats.correction` -- Bonferroni multiple-testing control.
"""

from repro.stats.approximation import (
    le_cam_bound,
    poisson_lambda,
    poisson_tail_approx,
    poisson_tail_approx_batch,
)
from repro.stats.correction import bonferroni_alpha, default_test_count
from repro.stats.dftcf import poibin_pmf_dftcf, poibin_sf_dftcf
from repro.stats.fisher import fisher_exact, strand_bias_phred
from repro.stats.normal_approx import poibin_sf_refined_normal
from repro.stats.poisson import (
    poisson_cdf,
    poisson_pmf,
    poisson_sf,
    poisson_sf_batch,
)
from repro.stats.poisson_binomial import (
    poibin_pmf_dp,
    poibin_sf,
    poibin_sf_brute_force,
    poibin_sf_dp,
)
from repro.stats.special import (
    log_gamma,
    log_gamma_batch,
    lower_regularized_gamma,
    lower_regularized_gamma_batch,
    upper_regularized_gamma,
)

__all__ = [
    "bonferroni_alpha",
    "default_test_count",
    "fisher_exact",
    "le_cam_bound",
    "log_gamma",
    "log_gamma_batch",
    "lower_regularized_gamma",
    "lower_regularized_gamma_batch",
    "poibin_pmf_dftcf",
    "poibin_pmf_dp",
    "poibin_sf",
    "poibin_sf_brute_force",
    "poibin_sf_dftcf",
    "poibin_sf_dp",
    "poibin_sf_refined_normal",
    "poisson_cdf",
    "poisson_lambda",
    "poisson_pmf",
    "poisson_sf",
    "poisson_sf_batch",
    "poisson_tail_approx",
    "poisson_tail_approx_batch",
    "strand_bias_phred",
    "upper_regularized_gamma",
]
