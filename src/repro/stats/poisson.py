"""Poisson distribution tails via the regularized incomplete gamma.

The identities used (for integer ``k >= 0``, rate ``lam > 0``)::

    P(X <= k) = Q(k + 1, lam)      (upper regularized gamma)
    P(X >= k) = P(k, lam)          (lower regularized gamma, k >= 1)

These are exactly what GSL's ``gsl_cdf_poisson_{P,Q}`` compute, which is
what the paper calls through for its approximation (Section II-A).
"""

from __future__ import annotations

import math

import numpy as np

from repro.stats.special import (
    log_gamma,
    lower_regularized_gamma,
    lower_regularized_gamma_batch,
    upper_regularized_gamma,
)

__all__ = [
    "poisson_pmf",
    "poisson_cdf",
    "poisson_sf",
    "poisson_sf_batch",
    "poisson_log_pmf",
]


def _validate(k: int, lam: float) -> None:
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if lam < 0 or math.isnan(lam):
        raise ValueError(f"lambda must be >= 0, got {lam}")


def poisson_log_pmf(k: int, lam: float) -> float:
    """``log P(X = k)`` for a Poisson(lam) variable."""
    _validate(k, lam)
    if lam == 0.0:
        return 0.0 if k == 0 else -math.inf
    return k * math.log(lam) - lam - log_gamma(k + 1.0)


def poisson_pmf(k: int, lam: float) -> float:
    """``P(X = k)``."""
    return math.exp(poisson_log_pmf(k, lam))


def poisson_cdf(k: int, lam: float) -> float:
    """``P(X <= k)``."""
    _validate(k, lam)
    if lam == 0.0:
        return 1.0
    return upper_regularized_gamma(k + 1.0, lam)


def poisson_sf(k: int, lam: float) -> float:
    """``P(X >= k)`` -- note the *inclusive* tail, matching the paper's
    ``p = sum_{j >= K} P(X = j)`` test statistic."""
    _validate(k, lam)
    if k == 0:
        return 1.0
    if lam == 0.0:
        return 0.0
    return lower_regularized_gamma(float(k), lam)


def poisson_sf_batch(ks: np.ndarray, lams: np.ndarray) -> np.ndarray:
    """Vectorised ``P(X >= k)`` over parallel ``(k, lambda)`` arrays.

    Elementwise equivalent of :func:`poisson_sf` (inclusive tail, same
    gamma-function branch structure), evaluated in a handful of masked
    array sweeps.  This is the kernel behind the batched caller
    engine's screening stage.

    Raises:
        ValueError: for any ``k < 0``, ``lambda < 0`` or NaN lambda.
    """
    ks = np.asarray(ks, dtype=np.float64)
    lams = np.asarray(lams, dtype=np.float64)
    if ks.shape != lams.shape:
        raise ValueError(f"shape mismatch: k{ks.shape} vs lambda{lams.shape}")
    if ks.size == 0:
        return np.empty_like(lams)
    if np.min(ks) < 0:
        raise ValueError("k must be >= 0")
    if np.min(lams) < 0 or np.isnan(lams).any():
        raise ValueError("lambda must be >= 0")
    out = np.zeros_like(lams)
    out[ks == 0] = 1.0
    general = (ks > 0) & (lams > 0)
    if general.any():
        out[general] = lower_regularized_gamma_batch(ks[general], lams[general])
    return out
