"""Call-set analysis: concordance checks and upset plots (Figure 3).

* :mod:`repro.analysis.concordance` -- pairwise comparison of call
  sets (shared / unique / Jaccard), used both by the validation tests
  ("identical variants between versions", Table I) and the CLI.
* :mod:`repro.analysis.accuracy` -- precision/recall scoring against a
  simulated sample's ground-truth panel, with per-frequency-band
  sensitivity breakdown.
* :mod:`repro.analysis.upset` -- exclusive-intersection computation
  over N sets plus an ASCII upset-plot renderer, reproducing the
  paper's Figure 3 view of SNVs shared across the five datasets.
"""

from repro.analysis.accuracy import (
    AccuracyReport,
    frequency_band_recall,
    score_calls,
)
from repro.analysis.concordance import ConcordanceReport, compare_call_sets
from repro.analysis.upset import UpsetResult, compute_upset, render_upset

__all__ = [
    "AccuracyReport",
    "ConcordanceReport",
    "UpsetResult",
    "compare_call_sets",
    "compute_upset",
    "frequency_band_recall",
    "render_upset",
    "score_calls",
]
