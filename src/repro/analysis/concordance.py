"""Pairwise call-set comparison.

The paper's headline accuracy claim is concordance: "the number of
variants called was identical between versions" on all five datasets,
and structurally the improved caller can only ever produce a *subset*
of the original's calls (the approximation only skips).  This module
provides the machinery those checks -- and the equivalent CLI
subcommand -- are built on.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, Set, Tuple

__all__ = ["ConcordanceReport", "compare_call_sets"]

Key = Tuple[str, int, str, str]


@dataclasses.dataclass(frozen=True)
class ConcordanceReport:
    """Outcome of comparing call sets A and B.

    Attributes:
        shared: keys in both.
        only_a / only_b: keys private to one side.
        jaccard: |A & B| / |A | B| (1.0 for two empty sets).
    """

    shared: FrozenSet[Key]
    only_a: FrozenSet[Key]
    only_b: FrozenSet[Key]

    @property
    def identical(self) -> bool:
        return not self.only_a and not self.only_b

    @property
    def a_subset_of_b(self) -> bool:
        return not self.only_a

    @property
    def b_subset_of_a(self) -> bool:
        return not self.only_b

    @property
    def jaccard(self) -> float:
        union = len(self.shared) + len(self.only_a) + len(self.only_b)
        if union == 0:
            return 1.0
        return len(self.shared) / union

    def summary(self, label_a: str = "A", label_b: str = "B") -> str:
        """One-line human-readable report."""
        return (
            f"{label_a}: {len(self.shared) + len(self.only_a)} calls, "
            f"{label_b}: {len(self.shared) + len(self.only_b)} calls, "
            f"shared {len(self.shared)}, "
            f"{label_a}-only {len(self.only_a)}, "
            f"{label_b}-only {len(self.only_b)}, "
            f"jaccard {self.jaccard:.3f}"
        )


def compare_call_sets(
    a: Iterable[Key], b: Iterable[Key]
) -> ConcordanceReport:
    """Compare two collections of variant keys ``(chrom, pos, ref, alt)``."""
    sa: Set[Key] = set(a)
    sb: Set[Key] = set(b)
    return ConcordanceReport(
        shared=frozenset(sa & sb),
        only_a=frozenset(sa - sb),
        only_b=frozenset(sb - sa),
    )
