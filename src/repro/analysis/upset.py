"""Upset-plot computation and ASCII rendering (Figure 3).

An upset plot (Lex et al. 2014, the paper's reference [16]) shows the
sizes of all *exclusive* intersections of N sets: each column is a
subset membership pattern (which sets an element belongs to) and its
bar counts elements with exactly that pattern.  The paper uses one to
show SNVs shared across its five depth datasets; we compute the same
structure from call-set keys and render it as text::

    100000x   . . x . .   |#######  92
    300000x   . x . x .   |###      35
    ...

plus per-set totals (the paper's bottom-left bars).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Tuple

__all__ = ["UpsetResult", "compute_upset", "render_upset"]


@dataclasses.dataclass
class UpsetResult:
    """Exclusive intersection structure over named sets.

    Attributes:
        labels: set names in display order.
        intersections: ``{membership pattern -> count}`` where a
            pattern is a frozenset of labels; only non-empty patterns
            with non-zero counts are stored.
        totals: per-label set sizes.
    """

    labels: List[str]
    intersections: Dict[FrozenSet[str], int]
    totals: Dict[str, int]

    def count(self, *labels: str) -> int:
        """Elements belonging to *exactly* this label combination."""
        return self.intersections.get(frozenset(labels), 0)

    def shared_by_all(self) -> int:
        """Elements present in every set (the paper found exactly 2)."""
        return self.intersections.get(frozenset(self.labels), 0)

    def unique_counts(self) -> Dict[str, int]:
        """Per-set exclusive counts (elements in exactly one set)."""
        return {lab: self.intersections.get(frozenset([lab]), 0) for lab in self.labels}

    def pairwise_shared(self) -> Dict[Tuple[str, str], int]:
        """For every label pair, elements in *both* sets (inclusive --
        the statistic behind "the two highest depth datasets shared
        the most variants for any pair")."""
        out: Dict[Tuple[str, str], int] = {}
        for i, a in enumerate(self.labels):
            for b in self.labels[i + 1 :]:
                total = 0
                for pattern, count in self.intersections.items():
                    if a in pattern and b in pattern:
                        total += count
                out[(a, b)] = total
        return out


def compute_upset(sets: Mapping[str, Iterable[Hashable]]) -> UpsetResult:
    """Compute the exclusive-intersection structure of named sets.

    Raises:
        ValueError: on an empty mapping.
    """
    if not sets:
        raise ValueError("need at least one set")
    materialised = {label: set(items) for label, items in sets.items()}
    labels = list(materialised)
    membership: Dict[Hashable, FrozenSet[str]] = {}
    for label, items in materialised.items():
        for item in items:
            membership[item] = membership.get(item, frozenset()) | {label}
    intersections: Dict[FrozenSet[str], int] = {}
    for pattern in membership.values():
        intersections[pattern] = intersections.get(pattern, 0) + 1
    totals = {label: len(items) for label, items in materialised.items()}
    return UpsetResult(labels=labels, intersections=intersections, totals=totals)


def render_upset(result: UpsetResult, *, max_bar: int = 40) -> str:
    """Render an :class:`UpsetResult` as an ASCII upset plot.

    Columns (intersection patterns) are sorted by descending count;
    rows are the input sets; ``x`` marks membership.  A per-set totals
    block follows (the paper's bottom-left bar chart).
    """
    patterns = sorted(
        result.intersections.items(), key=lambda kv: (-kv[1], sorted(kv[0]))
    )
    if not patterns:
        return "(no elements)"
    peak = max(count for _, count in patterns)
    scale = max_bar / peak if peak > 0 else 1.0

    label_w = max(len(lab) for lab in result.labels)
    lines: List[str] = []
    lines.append("Exclusive intersections (columns sorted by size):")
    for lab in result.labels:
        row = [("x" if lab in pattern else ".") for pattern, _ in patterns]
        lines.append(f"  {lab.rjust(label_w)}  " + " ".join(row))
    counts_row = [str(count) for _, count in patterns]
    lines.append("  " + " " * label_w + "  " + " ".join(counts_row))
    lines.append("")
    lines.append("Intersection sizes:")
    for pattern, count in patterns:
        names = "&".join(sorted(pattern))
        bar = "#" * max(1, int(round(count * scale)))
        lines.append(f"  {count:6d} {bar}  [{names}]")
    lines.append("")
    lines.append("Set totals:")
    peak_total = max(result.totals.values()) or 1
    for lab in result.labels:
        total = result.totals[lab]
        bar = "#" * max(1, int(round(total / peak_total * max_bar)))
        lines.append(f"  {lab.rjust(label_w)} {total:6d} {bar}")
    return "\n".join(lines)
