"""Caller accuracy against a known truth set.

The benchmarking study the paper builds on (Sandmann et al. 2017,
ref [8]) ranks variant callers by sensitivity/precision on data with
known ground truth; simulated samples carry their truth panel, so this
module scores any call set against it: true/false positives, false
negatives, precision, recall, F1, and a per-frequency-band breakdown
(low-frequency sensitivity is the whole point of LoFreq).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Sequence, Tuple

from repro.core.results import VariantCall
from repro.sim.haplotypes import VariantPanel

__all__ = ["AccuracyReport", "score_calls", "frequency_band_recall"]

Key = Tuple[int, str, str]


@dataclasses.dataclass(frozen=True)
class AccuracyReport:
    """Confusion counts and derived rates for one call set.

    Attributes:
        true_positives: called variants present in the truth panel.
        false_positives: called variants absent from the truth panel.
        false_negatives: truth variants not called.
    """

    true_positives: frozenset
    false_positives: frozenset
    false_negatives: frozenset

    @property
    def n_tp(self) -> int:
        return len(self.true_positives)

    @property
    def n_fp(self) -> int:
        return len(self.false_positives)

    @property
    def n_fn(self) -> int:
        return len(self.false_negatives)

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was called."""
        denom = self.n_tp + self.n_fp
        return self.n_tp / denom if denom else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when the truth set is empty."""
        denom = self.n_tp + self.n_fn
        return self.n_tp / denom if denom else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def summary(self) -> str:
        return (
            f"TP={self.n_tp} FP={self.n_fp} FN={self.n_fn} "
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"F1={self.f1:.3f}"
        )


def _call_keys(calls: Iterable[VariantCall]) -> set:
    return {
        (c.pos, c.ref, c.alt) for c in calls if c.filter == "PASS"
    }


def score_calls(
    calls: Sequence[VariantCall], panel: VariantPanel
) -> AccuracyReport:
    """Score PASS calls against a truth panel (position/ref/alt keys)."""
    called = _call_keys(calls)
    truth = {(v.pos, v.ref, v.alt) for v in panel}
    return AccuracyReport(
        true_positives=frozenset(called & truth),
        false_positives=frozenset(called - truth),
        false_negatives=frozenset(truth - called),
    )


def frequency_band_recall(
    calls: Sequence[VariantCall],
    panel: VariantPanel,
    bands: Sequence[Tuple[float, float]] = (
        (0.0, 0.01),
        (0.01, 0.05),
        (0.05, 0.20),
        (0.20, 1.01),
    ),
) -> Dict[Tuple[float, float], Tuple[int, int]]:
    """Recall broken down by true population frequency.

    Returns ``{(lo, hi): (n_called, n_truth)}`` for truth variants with
    ``lo <= frequency < hi``.  Low bands are where depth buys
    sensitivity -- the force shaping Figure 3's per-dataset totals.
    """
    called = _call_keys(calls)
    out: Dict[Tuple[float, float], Tuple[int, int]] = {}
    for lo, hi in bands:
        truths = [v for v in panel if lo <= v.frequency < hi]
        hit = sum(1 for v in truths if (v.pos, v.ref, v.alt) in called)
        out[(lo, hi)] = (hit, len(truths))
    return out
