"""Per-cycle quality-score models.

Illumina base qualities degrade along the read; the model here draws a
smooth mean-quality curve from ``q_start`` to ``q_end`` plus per-base
Gaussian jitter, clamped to the valid Phred range.  The crucial
contract (tested property-style) is *calibration*: the simulator
injects errors with exactly probability ``10**(-Q/10)`` for the quality
it emits, so LoFreq's null model is literally true on simulated data
and any excess mismatch signal is a real variant.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["MapqProfile", "QualityModel"]

_MIN_PHRED = 2
_MAX_PHRED = 41

#: SAM reserves mapping quality 255 for "unavailable", so sampled
#: values are clamped to 0..254.
_MAX_MAPQ = 254


@dataclasses.dataclass(frozen=True)
class QualityModel:
    """A linear-decay quality profile with jitter.

    Attributes:
        q_start: mean quality at the first cycle.
        q_end: mean quality at the last cycle.
        jitter: standard deviation of per-base Gaussian noise.
        name: profile label (written to dataset metadata).
    """

    q_start: float = 37.0
    q_end: float = 30.0
    jitter: float = 3.0
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.q_start < 0 or self.q_end < 0:
            raise ValueError("qualities must be non-negative")

    # -- canned profiles ---------------------------------------------------

    @classmethod
    def hiseq(cls) -> "QualityModel":
        """HiSeq-like profile (the benchmarking study the paper cites
        used simulated HiSeq data): high, slowly decaying quality."""
        return cls(q_start=37.0, q_end=30.0, jitter=3.0, name="hiseq")

    @classmethod
    def miseq(cls) -> "QualityModel":
        """MiSeq-like: slightly lower and noisier."""
        return cls(q_start=35.0, q_end=25.0, jitter=4.0, name="miseq")

    @classmethod
    def long_read(cls) -> "QualityModel":
        """High-error long-read-like profile (Q ~ 12, flat).  The
        Discussion notes the Poisson approximation is *more* accurate
        at high error rates; the ablation bench uses this profile."""
        return cls(q_start=13.0, q_end=11.0, jitter=1.5, name="long_read")

    # -- sampling ----------------------------------------------------------

    def mean_curve(self, read_length: int) -> np.ndarray:
        """Mean quality per cycle (float array of ``read_length``)."""
        if read_length <= 0:
            raise ValueError(f"read length must be positive, got {read_length}")
        return np.linspace(self.q_start, self.q_end, read_length)

    def sample(self, read_length: int, rng: np.random.Generator) -> np.ndarray:
        """Draw one read's quality string (uint8 Phred array)."""
        q = self.mean_curve(read_length) + rng.normal(
            0.0, self.jitter, size=read_length
        )
        return np.clip(np.rint(q), _MIN_PHRED, _MAX_PHRED).astype(np.uint8)

    def sample_many(
        self, n_reads: int, read_length: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw an ``(n_reads, read_length)`` uint8 quality matrix in one
        vectorised call (the bulk path the read simulator uses)."""
        q = self.mean_curve(read_length)[None, :] + rng.normal(
            0.0, self.jitter, size=(n_reads, read_length)
        )
        return np.clip(np.rint(q), _MIN_PHRED, _MAX_PHRED).astype(np.uint8)

    def expected_error_rate(self, read_length: int) -> float:
        """Mean per-base error probability implied by the profile
        (ignoring jitter's second-order effect)."""
        return float(
            np.mean(np.power(10.0, -self.mean_curve(read_length) / 10.0))
        )


@dataclasses.dataclass(frozen=True)
class MapqProfile:
    """A per-read *mapping*-quality profile.

    Real aligners emit a mixture: most reads map uniquely at the
    aligner's ceiling (BWA: 60), a tail maps ambiguously at much lower
    quality.  Sampling per-read mapq from such a mixture is what lets
    ``--min-mapq`` (read dropping) and ``--merge-mapq`` (folding the
    mapping error into the call model) be exercised end to end on
    simulated data instead of no-oping against a constant.

    Attributes:
        mapq: mapping quality of the well-mapped component.
        low_mapq: mean mapping quality of the ambiguous component.
        low_fraction: fraction of reads drawn from the ambiguous
            component.
        jitter: standard deviation of Gaussian noise added to the
            ambiguous component (the well-mapped ceiling is exact, as
            aligners emit it).
        name: profile label (written to dataset metadata).
    """

    mapq: int = 60
    low_mapq: int = 20
    low_fraction: float = 0.0
    jitter: float = 0.0
    name: str = "constant"

    def __post_init__(self) -> None:
        if not 0 <= self.mapq <= _MAX_MAPQ:
            raise ValueError(f"mapq must be in 0..{_MAX_MAPQ}, got {self.mapq}")
        if not 0 <= self.low_mapq <= _MAX_MAPQ:
            raise ValueError(
                f"low_mapq must be in 0..{_MAX_MAPQ}, got {self.low_mapq}"
            )
        if not 0.0 <= self.low_fraction <= 1.0:
            raise ValueError(
                f"low_fraction must be in [0, 1], got {self.low_fraction}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    # -- canned profiles ---------------------------------------------------

    @classmethod
    def constant(cls, mapq: int = 60) -> "MapqProfile":
        """Every read at one mapping quality (the historical default)."""
        return cls(mapq=mapq, low_fraction=0.0, name="constant")

    @classmethod
    def aligner_like(cls) -> "MapqProfile":
        """A BWA-shaped mixture: ~92% unique mappers at 60, an ~8%
        ambiguous tail around 20 with spread -- enough low-mapq reads
        that ``--min-mapq 30`` visibly changes depths."""
        return cls(
            mapq=60,
            low_mapq=20,
            low_fraction=0.08,
            jitter=6.0,
            name="aligner_like",
        )

    # -- sampling ----------------------------------------------------------

    def sample(self, n_reads: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n_reads`` per-read mapping qualities (uint8 array,
        clamped to 0..254 -- SAM reserves 255 for "unavailable")."""
        out = np.full(n_reads, self.mapq, dtype=np.float64)
        if self.low_fraction > 0.0:
            low = rng.random(n_reads) < self.low_fraction
            n_low = int(low.sum())
            if n_low:
                draws = float(self.low_mapq) + rng.normal(
                    0.0, self.jitter, size=n_low
                )
                out[low] = draws
        return np.clip(np.rint(out), 0, _MAX_MAPQ).astype(np.uint8)
