"""Per-cycle quality-score models.

Illumina base qualities degrade along the read; the model here draws a
smooth mean-quality curve from ``q_start`` to ``q_end`` plus per-base
Gaussian jitter, clamped to the valid Phred range.  The crucial
contract (tested property-style) is *calibration*: the simulator
injects errors with exactly probability ``10**(-Q/10)`` for the quality
it emits, so LoFreq's null model is literally true on simulated data
and any excess mismatch signal is a real variant.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["QualityModel"]

_MIN_PHRED = 2
_MAX_PHRED = 41


@dataclasses.dataclass(frozen=True)
class QualityModel:
    """A linear-decay quality profile with jitter.

    Attributes:
        q_start: mean quality at the first cycle.
        q_end: mean quality at the last cycle.
        jitter: standard deviation of per-base Gaussian noise.
        name: profile label (written to dataset metadata).
    """

    q_start: float = 37.0
    q_end: float = 30.0
    jitter: float = 3.0
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.q_start < 0 or self.q_end < 0:
            raise ValueError("qualities must be non-negative")

    # -- canned profiles ---------------------------------------------------

    @classmethod
    def hiseq(cls) -> "QualityModel":
        """HiSeq-like profile (the benchmarking study the paper cites
        used simulated HiSeq data): high, slowly decaying quality."""
        return cls(q_start=37.0, q_end=30.0, jitter=3.0, name="hiseq")

    @classmethod
    def miseq(cls) -> "QualityModel":
        """MiSeq-like: slightly lower and noisier."""
        return cls(q_start=35.0, q_end=25.0, jitter=4.0, name="miseq")

    @classmethod
    def long_read(cls) -> "QualityModel":
        """High-error long-read-like profile (Q ~ 12, flat).  The
        Discussion notes the Poisson approximation is *more* accurate
        at high error rates; the ablation bench uses this profile."""
        return cls(q_start=13.0, q_end=11.0, jitter=1.5, name="long_read")

    # -- sampling ----------------------------------------------------------

    def mean_curve(self, read_length: int) -> np.ndarray:
        """Mean quality per cycle (float array of ``read_length``)."""
        if read_length <= 0:
            raise ValueError(f"read length must be positive, got {read_length}")
        return np.linspace(self.q_start, self.q_end, read_length)

    def sample(self, read_length: int, rng: np.random.Generator) -> np.ndarray:
        """Draw one read's quality string (uint8 Phred array)."""
        q = self.mean_curve(read_length) + rng.normal(
            0.0, self.jitter, size=read_length
        )
        return np.clip(np.rint(q), _MIN_PHRED, _MAX_PHRED).astype(np.uint8)

    def sample_many(
        self, n_reads: int, read_length: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw an ``(n_reads, read_length)`` uint8 quality matrix in one
        vectorised call (the bulk path the read simulator uses)."""
        q = self.mean_curve(read_length)[None, :] + rng.normal(
            0.0, self.jitter, size=(n_reads, read_length)
        )
        return np.clip(np.rint(q), _MIN_PHRED, _MAX_PHRED).astype(np.uint8)

    def expected_error_rate(self, read_length: int) -> float:
        """Mean per-base error probability implied by the profile
        (ignoring jitter's second-order effect)."""
        return float(
            np.mean(np.power(10.0, -self.mean_curve(read_length) / 10.0))
        )
