"""The read simulator.

Fully vectorised: a sample's reads are represented as NumPy matrices
(start positions, base-code matrix, quality matrix, strand vector) and
only materialised into :class:`~repro.io.records.AlignedRead` objects
lazily -- ultra-deep samples stay cheap until something actually needs
per-read objects (e.g. BAM writing), and the pure-compute benchmarks
can consume the arrays directly.

Simulation model (single-end, ungapped, matching the paper's
column-oriented view of the data):

1. read starts uniform over ``[0, L - read_length]``, then sorted so
   output is coordinate-sorted;
2. each read copies the reference, then at every panel position it
   covers, flips to the alternate allele with the variant's population
   frequency (independent per read -- intra-host quasispecies);
3. sequencing errors: every base flips to a uniformly-chosen other
   base with probability ``10**(-Q/10)`` for its emitted quality Q.
   This *calibration* makes LoFreq's null hypothesis exactly true for
   non-variant sites;
4. reverse-strand reads get their quality curve reversed (cycle order
   runs 3'->5' against the reference for them).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional

import numpy as np

from repro.io.cigar import CigarOp
from repro.io.fasta import FastaRecord
from repro.io.records import FLAG_REVERSE, AlignedRead, SamHeader
from repro.pileup.column import BASES
from repro.sim.haplotypes import ArtifactSpec, VariantPanel
from repro.sim.quality import MapqProfile, QualityModel

__all__ = ["ReadSimulator", "SimulatedSample"]

_CODE_TO_ASCII = np.frombuffer("ACGTN".encode("ascii"), dtype=np.uint8)
_ASCII_TO_CODE = np.full(256, 4, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _ASCII_TO_CODE[ord(_b)] = _i


def encode_sequence(seq: str) -> np.ndarray:
    """Map an ACGTN string to uint8 base codes (unknown -> N)."""
    raw = np.frombuffer(seq.upper().encode("ascii"), dtype=np.uint8)
    return _ASCII_TO_CODE[raw]


def decode_row(codes: np.ndarray) -> str:
    """Map a base-code vector back to a string."""
    return _CODE_TO_ASCII[codes].tobytes().decode("ascii")


@dataclasses.dataclass
class SimulatedSample:
    """A simulated sequencing run in columnar (matrix) form.

    Attributes:
        genome: the reference the reads were drawn from.
        panel: the ground-truth variants injected.
        starts: int64 ``(n,)`` sorted read start positions.
        codes: uint8 ``(n, read_length)`` base-code matrix.
        quals: uint8 ``(n, read_length)`` Phred matrix.
        reverse: bool ``(n,)`` strand vector.
        seed: RNG seed that produced the sample.
        mapq: mapping quality stamped on every read when no per-read
            vector was sampled.
        mapqs: optional uint8 ``(n,)`` per-read mapping qualities
            (present when the simulator was given a
            :class:`~repro.sim.quality.MapqProfile`); overrides
            ``mapq`` everywhere when set.
    """

    genome: FastaRecord
    panel: VariantPanel
    starts: np.ndarray
    codes: np.ndarray
    quals: np.ndarray
    reverse: np.ndarray
    seed: int
    mapq: int = 60
    mapqs: Optional[np.ndarray] = None

    @property
    def n_reads(self) -> int:
        return int(self.starts.size)

    @property
    def read_length(self) -> int:
        return int(self.codes.shape[1]) if self.codes.ndim == 2 else 0

    @property
    def mean_depth(self) -> float:
        """Average coverage implied by the read count."""
        if len(self.genome) == 0:
            return 0.0
        return self.n_reads * self.read_length / len(self.genome)

    def header(self) -> SamHeader:
        hdr = SamHeader(sort_order="coordinate")
        hdr.references.append((self.genome.name, len(self.genome)))
        hdr.programs.append({"ID": "repro-sim", "PN": "repro-sim"})
        return hdr

    def reads(self) -> Iterator[AlignedRead]:
        """Lazily materialise :class:`AlignedRead` objects in
        coordinate order."""
        rl = self.read_length
        rname = self.genome.name
        for i in range(self.n_reads):
            yield AlignedRead(
                qname=f"sim.{self.seed}.{i}",
                flag=FLAG_REVERSE if self.reverse[i] else 0,
                rname=rname,
                pos=int(self.starts[i]),
                mapq=(
                    int(self.mapqs[i]) if self.mapqs is not None else self.mapq
                ),
                cigar=[(CigarOp.M, rl)],
                seq=decode_row(self.codes[i]),
                qual=self.quals[i],
            )

    def read_list(self) -> List[AlignedRead]:
        """Materialise every read (convenience for small samples)."""
        return list(self.reads())

    def write_bam(self, path) -> int:
        """Stream the sample to a BAM file; returns the record count."""
        from repro.io.bam import BamWriter

        with BamWriter(path, self.header()) as writer:
            for read in self.reads():
                writer.write(read)
            return writer.records_written


class ReadSimulator:
    """Generates :class:`SimulatedSample` objects for one genome/panel.

    Args:
        genome: reference record.
        panel: true variants to inject (may be empty for pure-noise
            null datasets, used by the false-positive tests).
        quality_model: per-cycle quality profile.
        read_length: read length in bases; must not exceed the genome.
        mapq_profile: per-read mapping-quality profile
            (:class:`~repro.sim.quality.MapqProfile`).  ``None`` keeps
            the historical constant-60 stamp (and, deliberately, draws
            nothing from the RNG, so existing seeds reproduce
            byte-identical samples); a profile samples a per-read
            ``mapqs`` vector so ``--min-mapq`` / ``--merge-mapq`` are
            exercised end to end on simulated data.

    Raises:
        ValueError: on inconsistent arguments (panel refs not matching
            the genome, read length too long, ...).
    """

    def __init__(
        self,
        genome: FastaRecord,
        panel: Optional[VariantPanel] = None,
        *,
        quality_model: Optional[QualityModel] = None,
        read_length: int = 100,
        artifacts: Optional[List[ArtifactSpec]] = None,
        mapq_profile: Optional[MapqProfile] = None,
    ) -> None:
        if read_length <= 0:
            raise ValueError(f"read_length must be positive, got {read_length}")
        if read_length > len(genome):
            raise ValueError(
                f"read_length {read_length} exceeds genome length {len(genome)}"
            )
        self.genome = genome
        self.panel = panel or VariantPanel()
        self.panel.validate_against(genome.sequence)
        self.quality_model = quality_model or QualityModel.hiseq()
        self.read_length = read_length
        self.mapq_profile = mapq_profile
        self.artifacts = list(artifacts or [])
        for art in self.artifacts:
            if art.pos >= len(genome):
                raise ValueError(
                    f"artifact position {art.pos} beyond genome length"
                )
        self._genome_codes = encode_sequence(genome.sequence)

    def n_reads_for_depth(self, depth: float) -> int:
        """Read count giving the requested mean coverage."""
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        return max(1, round(depth * len(self.genome) / self.read_length))

    def simulate(self, depth: float, *, seed: int = 0) -> SimulatedSample:
        """Simulate a sample at the given mean depth.

        The same ``(simulator arguments, depth, seed)`` triple always
        produces the same sample.
        """
        n = self.n_reads_for_depth(depth)
        rng = np.random.default_rng(seed)
        rl = self.read_length
        L = len(self.genome)

        starts = np.sort(rng.integers(0, L - rl + 1, size=n)).astype(np.int64)
        reverse = rng.random(n) < 0.5

        # Reference copy for every read: (n, rl) gather.
        codes = self._genome_codes[starts[:, None] + np.arange(rl)[None, :]].copy()

        # True variant injection, one vectorised pass per panel site.
        for variant in self.panel:
            lo = np.searchsorted(starts, variant.pos - rl + 1, side="left")
            hi = np.searchsorted(starts, variant.pos, side="right")
            if hi <= lo:
                continue
            rows = np.arange(lo, hi)
            cols = variant.pos - starts[lo:hi]
            keep = (cols >= 0) & (cols < rl)
            rows, cols = rows[keep], cols[keep]
            flip = rng.random(rows.size) < variant.frequency
            codes[rows[flip], cols[flip]] = BASES.index(variant.alt)

        # Qualities; reverse-strand reads see the cycle curve flipped.
        quals = self.quality_model.sample_many(n, rl, rng)
        if np.any(reverse):
            quals[reverse] = quals[reverse, ::-1]

        # Calibrated sequencing errors: P(error) == 10^(-Q/10) exactly.
        err_prob = np.power(10.0, -quals.astype(np.float64) / 10.0)
        err_mask = rng.random((n, rl)) < err_prob
        if np.any(err_mask):
            offsets = rng.integers(1, 4, size=int(err_mask.sum()))
            flat = codes[err_mask]
            # Uniform over the other three bases; N bases (code 4) stay N.
            flipped = np.where(flat < 4, (flat + offsets) % 4, flat)
            codes[err_mask] = flipped.astype(np.uint8)

        # Strand-biased artifacts (after errors: they are systematic,
        # not quality-driven).
        for art in self.artifacts:
            lo = np.searchsorted(starts, art.pos - rl + 1, side="left")
            hi = np.searchsorted(starts, art.pos, side="right")
            if hi <= lo:
                continue
            rows = np.arange(lo, hi)
            cols = art.pos - starts[lo:hi]
            keep = (cols >= 0) & (cols < rl) & (reverse[lo:hi] == art.on_reverse)
            rows, cols = rows[keep], cols[keep]
            flip = rng.random(rows.size) < art.rate
            codes[rows[flip], cols[flip]] = BASES.index(art.alt)

        # Per-read mapping qualities come last so that a profile-less
        # run consumes exactly the pre-existing RNG stream (historical
        # seeds keep reproducing byte-identical samples).
        mapqs = (
            self.mapq_profile.sample(n, rng)
            if self.mapq_profile is not None
            else None
        )

        return SimulatedSample(
            genome=self.genome,
            panel=self.panel,
            starts=starts,
            codes=codes,
            quals=quals,
            reverse=reverse,
            seed=seed,
            mapqs=mapqs,
        )
