"""Low-frequency variant panels.

A :class:`VariantPanel` is the ground truth a simulated sample carries:
a set of single-nucleotide variants, each present in the viral
population at some frequency (the paper's subject is exactly these
intra-host low-frequency variants).  Panels support set algebra on
variant identity, which the Figure 3 suite uses to build five samples
with a designed intersection structure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = ["VariantSpec", "VariantPanel", "ArtifactSpec", "random_panel"]

_ALT_CHOICES = {
    "A": "CGT",
    "C": "AGT",
    "G": "ACT",
    "T": "ACG",
}


@dataclasses.dataclass(frozen=True)
class VariantSpec:
    """One true single-nucleotide variant.

    Attributes:
        pos: 0-based genome position.
        ref: reference base there.
        alt: alternate base.
        frequency: population frequency in (0, 1].
    """

    pos: int
    ref: str
    alt: str
    frequency: float

    def __post_init__(self) -> None:
        if not (0.0 < self.frequency <= 1.0):
            raise ValueError(
                f"variant frequency must be in (0, 1], got {self.frequency}"
            )
        if self.ref == self.alt:
            raise ValueError(f"ref and alt are both {self.ref!r}")
        if self.pos < 0:
            raise ValueError(f"negative variant position {self.pos}")

    @property
    def key(self) -> Tuple[int, str, str]:
        """Identity ignoring frequency: ``(pos, ref, alt)``."""
        return (self.pos, self.ref, self.alt)


@dataclasses.dataclass(frozen=True)
class ArtifactSpec:
    """A strand-biased systematic error (e.g. a primer or alignment
    artifact in amplicon data).

    Unlike a true variant, the alternate base appears on only one
    strand -- the signature LoFreq's strand-bias filter exists to
    catch.  The simulator injects these after sequencing errors.

    Attributes:
        pos: 0-based genome position.
        alt: the erroneous base produced.
        rate: per-read probability of the artifact on the affected
            strand.
        on_reverse: affect reverse-strand reads (False = forward).
    """

    pos: int
    alt: str
    rate: float
    on_reverse: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.rate <= 1.0):
            raise ValueError(f"artifact rate must be in (0, 1], got {self.rate}")
        if self.pos < 0:
            raise ValueError(f"negative artifact position {self.pos}")
        if self.alt not in "ACGT":
            raise ValueError(f"artifact alt must be ACGT, got {self.alt!r}")


class VariantPanel:
    """An ordered, position-unique collection of variants."""

    def __init__(self, variants: Iterable[VariantSpec] = ()) -> None:
        self._by_pos: Dict[int, VariantSpec] = {}
        for v in variants:
            self.add(v)

    def add(self, variant: VariantSpec) -> None:
        """Add a variant.

        Raises:
            ValueError: if another variant already occupies the position
                (multi-allelic sites are out of scope, as in the paper).
        """
        if variant.pos in self._by_pos:
            raise ValueError(f"duplicate variant at position {variant.pos}")
        self._by_pos[variant.pos] = variant

    def __len__(self) -> int:
        return len(self._by_pos)

    def __iter__(self) -> Iterator[VariantSpec]:
        return iter(sorted(self._by_pos.values(), key=lambda v: v.pos))

    def __contains__(self, pos: int) -> bool:
        return pos in self._by_pos

    def at(self, pos: int) -> Optional[VariantSpec]:
        """The variant at ``pos`` or ``None``."""
        return self._by_pos.get(pos)

    def keys(self) -> Set[Tuple[int, str, str]]:
        """Identity set for intersection analysis."""
        return {v.key for v in self._by_pos.values()}

    def positions(self) -> List[int]:
        return sorted(self._by_pos)

    def validate_against(self, genome: str) -> None:
        """Check every variant's ref base matches the genome.

        Raises:
            ValueError: on the first mismatching or out-of-range variant.
        """
        for v in self:
            if v.pos >= len(genome):
                raise ValueError(
                    f"variant position {v.pos} beyond genome length {len(genome)}"
                )
            if genome[v.pos].upper() != v.ref:
                raise ValueError(
                    f"variant at {v.pos} claims ref {v.ref!r} but genome has "
                    f"{genome[v.pos]!r}"
                )


def random_panel(
    genome: str,
    n_variants: int,
    *,
    freq_range: Tuple[float, float] = (0.005, 0.10),
    seed: int = 0,
    exclude_positions: Optional[Set[int]] = None,
    positions: Optional[Sequence[int]] = None,
) -> VariantPanel:
    """Draw a random variant panel over ``genome``.

    Args:
        genome: reference sequence.
        n_variants: number of variants to place.
        freq_range: population frequencies drawn log-uniformly in this
            interval (low-frequency variants are the paper's regime).
        seed: RNG seed.
        exclude_positions: positions to avoid (so suites can control
            panel overlap exactly).
        positions: explicit positions to use instead of sampling; must
            have length ``n_variants``.

    Raises:
        ValueError: if the genome cannot host that many distinct
            variant positions.
    """
    rng = np.random.default_rng(seed)
    length = len(genome)
    excluded = exclude_positions or set()
    if positions is not None:
        if len(positions) != n_variants:
            raise ValueError("positions length must equal n_variants")
        chosen = list(positions)
    else:
        available = np.array(
            [i for i in range(length) if i not in excluded and genome[i] in "ACGT"]
        )
        if available.size < n_variants:
            raise ValueError(
                f"cannot place {n_variants} variants in {available.size} "
                "available positions"
            )
        chosen = sorted(rng.choice(available, size=n_variants, replace=False))
    lo, hi = freq_range
    if not (0.0 < lo <= hi <= 1.0):
        raise ValueError(f"invalid frequency range {freq_range}")
    freqs = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_variants))
    panel = VariantPanel()
    for pos, freq in zip(chosen, freqs):
        ref = genome[int(pos)].upper()
        alt = _ALT_CHOICES[ref][rng.integers(0, 3)]
        panel.add(VariantSpec(int(pos), ref, alt, float(freq)))
    return panel
