"""Sequencing simulation: the data substrate.

The paper evaluates on ultra-deep SARS-CoV-2 amplicon datasets
(1,000x - 1,000,000x coverage) that we cannot ship; this subpackage
generates synthetic equivalents that exercise the same code paths:

* :mod:`repro.sim.genome` -- reproducible random genomes, including a
  SARS-CoV-2-sized default.
* :mod:`repro.sim.haplotypes` -- low-frequency variant panels and the
  intersection-structured five-panel suite behind Figure 3.
* :mod:`repro.sim.quality` -- Illumina-like per-cycle quality models
  (plus a long-read-like high-error profile for the Discussion's
  "optimise for high-error data" avenue).
* :mod:`repro.sim.reads` -- the read simulator: samples fragments,
  injects true variants at their designed frequencies, then injects
  sequencing errors *at exactly the rate the emitted quality scores
  imply* -- the property that makes the Poisson-binomial null model
  correct and that the test suite verifies empirically.
* :mod:`repro.sim.datasets` -- the packaged paper workloads (Table I /
  Figure 3 five-dataset suite) at laptop scale.
"""

from repro.sim.genome import random_genome, sars_cov_2_like
from repro.sim.haplotypes import VariantSpec, VariantPanel, random_panel
from repro.sim.quality import MapqProfile, QualityModel
from repro.sim.reads import ReadSimulator, SimulatedSample
from repro.sim.datasets import DatasetSpec, SimulatedDataset, paper_dataset_suite

__all__ = [
    "DatasetSpec",
    "MapqProfile",
    "QualityModel",
    "ReadSimulator",
    "SimulatedDataset",
    "SimulatedSample",
    "VariantPanel",
    "VariantSpec",
    "paper_dataset_suite",
    "random_genome",
    "random_panel",
    "sars_cov_2_like",
]
