"""The packaged paper workloads.

The paper evaluates on five ultra-deep SARS-CoV-2 samples at average
depths 1,000x / 30,000x / 100,000x / 300,000x / 1,000,000x (Table I)
and analyses the SNVs shared between them (Figure 3: 134-885 SNVs per
sample, exactly two shared by all five, the two deepest sharing the
most for any pair, the 100,000x sample holding the most unique SNVs).

:func:`paper_dataset_suite` rebuilds that structure at laptop scale:

* depths are divided by ``depth_scale`` (default 50: 20x ... 20,000x);
* panel sizes are divided by ``panel_scale`` relative to the genome;
* the five panels are drawn from a master position pool partitioned
  into an all-five core (2 sites, like the paper), a deepest-pair
  extra-shared block, and per-sample unique blocks sized so the
  100,000x-analogue has the most unique sites.

Because the five samples are *different biological samples* (their
true variant sets differ by construction), the upset structure of the
calls is driven by the designed panel intersections plus depth-driven
sensitivity -- the same two forces at work in the paper's Figure 3.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.io.fasta import FastaRecord
from repro.sim.genome import sars_cov_2_like
from repro.sim.haplotypes import VariantPanel, VariantSpec
from repro.sim.quality import QualityModel
from repro.sim.reads import ReadSimulator, SimulatedSample

__all__ = ["DatasetSpec", "SimulatedDataset", "paper_dataset_suite", "PAPER_DEPTHS"]

#: The paper's five average depths (Table I).
PAPER_DEPTHS: Tuple[int, ...] = (1_000, 30_000, 100_000, 300_000, 1_000_000)

#: Paper dataset labels, keyed by depth.
PAPER_LABELS: Tuple[str, ...] = ("1000x", "30000x", "100000x", "300000x", "1000000x")


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one simulated dataset."""

    label: str
    depth: float
    paper_depth: int
    n_variants: int
    seed: int


@dataclasses.dataclass
class SimulatedDataset:
    """A realised dataset: spec + sample (and its ground truth)."""

    spec: DatasetSpec
    sample: SimulatedSample

    @property
    def panel(self) -> VariantPanel:
        return self.sample.panel

    @property
    def label(self) -> str:
        return self.spec.label


def _partition_pool(
    rng: np.random.Generator,
    genome: str,
    pool_size: int,
    edge_margin: int,
) -> List[int]:
    """Distinct ACGT positions forming the master variant-site pool.

    Genome edges (within ``edge_margin``, normally one read length) are
    excluded: coverage tapers there, which would entangle the designed
    intersection structure with edge effects.  The pool is returned in
    random order so consecutive ``take()`` slices are unbiased in
    position.
    """
    lo = min(edge_margin, len(genome) // 4)
    hi = len(genome) - lo
    candidates = np.array(
        [i for i in range(lo, hi) if genome[i] in "ACGT"]
    )
    if candidates.size < pool_size:
        raise ValueError(
            f"genome too short: need {pool_size} sites, have {candidates.size}"
        )
    chosen = rng.choice(candidates, pool_size, replace=False)
    rng.shuffle(chosen)
    return [int(x) for x in chosen]


def paper_dataset_suite(
    *,
    genome: Optional[FastaRecord] = None,
    genome_length: int = 3_000,
    depth_scale: float = 50.0,
    panel_scale: float = 8.0,
    read_length: int = 100,
    quality_model: Optional[QualityModel] = None,
    seed: int = 1234,
    min_depth: float = 25.0,
) -> List[SimulatedDataset]:
    """Build the five-dataset suite behind Table I and Figure 3.

    Args:
        genome: reference to use; defaults to a fresh
            :func:`~repro.sim.genome.sars_cov_2_like` genome truncated
            to ``genome_length``.
        genome_length: synthetic genome length (the real 29,903 nt is
            unnecessary at scaled depths and slows the benches).
        depth_scale: divide the paper's depths by this (50 -> depths
            20x..20,000x).
        panel_scale: divide the paper's per-sample SNV counts by this.
        read_length: simulated read length.
        quality_model: defaults to the HiSeq-like profile.
        seed: master seed; every dataset derives its own stream.
        min_depth: floor applied after scaling, so aggressive scaling
            never produces a dataset too shallow to call anything (the
            paper's shallowest dataset is 1,000x -- deep in absolute
            terms).

    Returns:
        Five :class:`SimulatedDataset`, shallowest first, with panel
        intersections structured like the paper's Figure 3.
    """
    rng = np.random.default_rng(seed)
    if genome is None:
        genome = sars_cov_2_like(length=genome_length, seed=seed)
    qm = quality_model or QualityModel.hiseq()

    # Paper per-sample SNV counts: min 134 ... max 885; the 100,000x
    # sample had 735 unique SNVs.  Scale them down.
    paper_counts = {
        "1000x": 134,
        "30000x": 300,
        "100000x": 885,
        "300000x": 420,
        "1000000x": 450,
    }
    counts = {
        k: max(4, round(v / panel_scale)) for k, v in paper_counts.items()
    }
    n_core = 2  # exactly two SNVs shared by all five (paper, Fig. 3)
    n_deep_pair = max(3, round(60 / panel_scale))  # extra 300000x/1000000x overlap

    pool_size = n_core + n_deep_pair + sum(counts.values())
    pool = _partition_pool(rng, genome.sequence, pool_size, read_length)
    cursor = 0

    def take(n: int) -> List[int]:
        nonlocal cursor
        out = pool[cursor : cursor + n]
        cursor += n
        return out

    core_sites = take(n_core)
    deep_pair_sites = take(n_deep_pair)
    unique_sites = {label: take(counts[label]) for label in PAPER_LABELS}

    datasets: List[SimulatedDataset] = []
    for i, (label, paper_depth) in enumerate(zip(PAPER_LABELS, PAPER_DEPTHS)):
        depth = max(min_depth, paper_depth / depth_scale)
        # Frequencies must be detectable at this dataset's own depth:
        # aim for >= ~8 expected alt reads at the lowest frequency.
        min_freq = min(0.5, max(0.01, 10.0 / depth))
        max_freq = min(0.6, max(0.12, 4.0 * min_freq))
        sites = list(unique_sites[label])
        if label in ("300000x", "1000000x"):
            sites += deep_pair_sites
        sites += core_sites

        panel = VariantPanel()
        site_rng = np.random.default_rng(seed + 101 * (i + 1))
        for pos in sorted(sites):
            ref = genome.sequence[pos]
            alts = [b for b in "ACGT" if b != ref]
            # Core sites use a fixed alt so all five datasets carry the
            # *identical* variant (same (pos, ref, alt) key).
            if pos in core_sites:
                alt = alts[0]
                freq = 0.25
            else:
                alt = alts[site_rng.integers(0, 3)]
                freq = float(
                    np.exp(
                        site_rng.uniform(np.log(min_freq), np.log(max_freq))
                    )
                )
            panel.add(VariantSpec(pos, ref, alt, freq))

        simulator = ReadSimulator(
            genome, panel, quality_model=qm, read_length=read_length
        )
        sample = simulator.simulate(depth, seed=seed + 977 * (i + 1))
        datasets.append(
            SimulatedDataset(
                spec=DatasetSpec(
                    label=label,
                    depth=depth,
                    paper_depth=paper_depth,
                    n_variants=len(panel),
                    seed=seed,
                ),
                sample=sample,
            )
        )
    return datasets
