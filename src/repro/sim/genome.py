"""Reproducible synthetic genomes.

SARS-CoV-2 (NC_045512.2) is 29,903 nt with ~38% GC; the generator
reproduces those gross statistics.  All randomness flows through a
caller-supplied seed so datasets are bit-reproducible across runs --
the benchmark harness depends on this.
"""

from __future__ import annotations

import numpy as np

from repro.io.fasta import FastaRecord

__all__ = ["random_genome", "sars_cov_2_like", "SARS_COV_2_LENGTH"]

#: Length of the real SARS-CoV-2 reference (NC_045512.2).
SARS_COV_2_LENGTH = 29_903

#: GC content of SARS-CoV-2 (~37.97%).
SARS_COV_2_GC = 0.38


def random_genome(
    length: int,
    *,
    gc_content: float = 0.5,
    name: str = "chrSim",
    description: str = "simulated genome",
    seed: int = 0,
) -> FastaRecord:
    """Generate a random genome with the given GC fraction.

    Args:
        length: genome length in bases.
        gc_content: target fraction of G+C bases (each of G and C gets
            half of it).
        name: FASTA record name.
        description: FASTA description field.
        seed: RNG seed; the same arguments always produce the same
            sequence.

    Raises:
        ValueError: for non-positive length or GC outside [0, 1].
    """
    if length <= 0:
        raise ValueError(f"genome length must be positive, got {length}")
    if not (0.0 <= gc_content <= 1.0):
        raise ValueError(f"gc_content must be in [0, 1], got {gc_content}")
    rng = np.random.default_rng(seed)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    bases = rng.choice(
        np.array(list("ACGT")), size=length, p=[at, gc, gc, at]
    )
    return FastaRecord(name, description, "".join(bases))


def sars_cov_2_like(
    *, length: int = SARS_COV_2_LENGTH, seed: int = 2019
) -> FastaRecord:
    """A SARS-CoV-2-sized, SARS-CoV-2-GC random genome.

    The default seed is fixed so every component of the reproduction
    sees the same "virus".  ``length`` can be shrunk for fast tests.
    """
    return random_genome(
        length,
        gc_content=SARS_COV_2_GC,
        name="NC_045512.2-sim",
        description="synthetic SARS-CoV-2-like genome",
        seed=seed,
    )
