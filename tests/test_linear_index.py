"""Unit tests for the linear BAM index."""

import pytest

from repro.io.bam import BamReader, write_bam
from repro.io.linear_index import LinearIndex, build_index
from repro.io.records import AlignedRead, SamHeader

# This module covers the legacy single-contig surface on purpose; the
# shim's DeprecationWarning itself is asserted in tests/test_bai.py.
pytestmark = pytest.mark.filterwarnings(
    "ignore:build_index is deprecated:DeprecationWarning"
)


@pytest.fixture
def indexed_bam(tmp_path):
    header = SamHeader(references=[("chr1", 100_000)], sort_order="coordinate")
    reads = [
        AlignedRead.simple(f"r{i}", "chr1", i * 7, "ACGTACGTAC", [30] * 10)
        for i in range(1000)
    ]
    path = tmp_path / "idx.bam"
    write_bam(path, header, reads)
    return path


class TestBuild:
    def test_checkpoints_at_granularity(self, indexed_bam):
        index = build_index(indexed_bam, granularity=100)
        assert len(index.checkpoints) == 10  # 1000 reads / 100
        positions = [p for p, _ in index.checkpoints]
        assert positions == sorted(positions)

    def test_max_read_span(self, indexed_bam):
        index = build_index(indexed_bam)
        assert index.max_read_span == 10

    def test_unsorted_bam_rejected(self, tmp_path):
        header = SamHeader(references=[("chr1", 1000)])
        reads = [
            AlignedRead.simple("a", "chr1", 50, "AC", [30, 30]),
            AlignedRead.simple("b", "chr1", 10, "AC", [30, 30]),
        ]
        path = tmp_path / "unsorted.bam"
        write_bam(path, header, reads)
        with pytest.raises(ValueError, match="unsorted"):
            build_index(path)

    def test_bad_granularity_raises(self, indexed_bam):
        with pytest.raises(ValueError):
            build_index(indexed_bam, granularity=0)


class TestQuery:
    def test_seek_covers_all_overlapping_reads(self, indexed_bam):
        """Scanning from query(p) must see every read overlapping p."""
        index = build_index(indexed_bam, granularity=64)
        with BamReader(indexed_bam) as reader:
            all_reads = list(reader)
        for pos in (0, 35, 500, 3500, 6990):
            expected = {
                r.qname for r in all_reads if r.pos <= pos < r.reference_end
            }
            with BamReader(indexed_bam) as reader:
                reader.seek(index.query(pos))
                seen = set()
                while True:
                    rec = reader.read_record()
                    if rec is None or rec.pos > pos:
                        break
                    if rec.pos <= pos < rec.reference_end:
                        seen.add(rec.qname)
            assert expected <= seen

    def test_query_before_first_read_returns_data_start(self, indexed_bam):
        index = build_index(indexed_bam)
        with BamReader(indexed_bam) as reader:
            reader.seek(index.query(0))
            rec = reader.read_record()
            assert rec is not None
            assert rec.qname == "r0"


class TestPersistence:
    def test_save_load_round_trip(self, indexed_bam, tmp_path):
        index = build_index(indexed_bam, granularity=128)
        path = tmp_path / "x.rli"
        index.save(path)
        loaded = LinearIndex.load(path)
        assert loaded.checkpoints == index.checkpoints
        assert loaded.max_read_span == index.max_read_span
        assert loaded.data_start == index.data_start

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.rli"
        path.write_bytes(b"not an index")
        with pytest.raises(ValueError, match="magic"):
            LinearIndex.load(path)
