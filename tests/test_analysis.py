"""Tests for concordance reports and the upset computation."""

import pytest

from repro.analysis.concordance import compare_call_sets
from repro.analysis.upset import compute_upset, render_upset


class TestConcordance:
    def test_identical(self):
        keys = {("c", 1, "A", "T"), ("c", 5, "G", "C")}
        report = compare_call_sets(keys, set(keys))
        assert report.identical
        assert report.jaccard == 1.0

    def test_partial_overlap(self):
        a = {("c", 1, "A", "T"), ("c", 2, "A", "T")}
        b = {("c", 2, "A", "T"), ("c", 3, "A", "T")}
        report = compare_call_sets(a, b)
        assert not report.identical
        assert len(report.shared) == 1
        assert len(report.only_a) == 1
        assert len(report.only_b) == 1
        assert report.jaccard == pytest.approx(1 / 3)

    def test_subset_relations(self):
        a = {("c", 1, "A", "T")}
        b = {("c", 1, "A", "T"), ("c", 2, "A", "T")}
        report = compare_call_sets(a, b)
        assert report.a_subset_of_b
        assert not report.b_subset_of_a

    def test_empty_sets(self):
        report = compare_call_sets([], [])
        assert report.identical
        assert report.jaccard == 1.0

    def test_summary_is_readable(self):
        report = compare_call_sets({("c", 1, "A", "T")}, set())
        text = report.summary("new", "old")
        assert "new" in text and "old" in text and "shared 0" in text


class TestUpset:
    @pytest.fixture
    def sets(self):
        return {
            "s1": {1, 2, 3, 10},
            "s2": {2, 3, 20},
            "s3": {3, 30, 31},
        }

    def test_exclusive_intersections(self, sets):
        result = compute_upset(sets)
        assert result.count("s1") == 2  # 1, 10
        assert result.count("s2") == 1  # 20
        assert result.count("s3") == 2  # 30, 31
        assert result.count("s1", "s2") == 1  # 2
        assert result.count("s1", "s2", "s3") == 1  # 3
        assert result.count("s1", "s3") == 0

    def test_counts_partition_the_universe(self, sets):
        result = compute_upset(sets)
        universe = set().union(*sets.values())
        assert sum(result.intersections.values()) == len(universe)

    def test_totals(self, sets):
        result = compute_upset(sets)
        assert result.totals == {"s1": 4, "s2": 3, "s3": 3}

    def test_shared_by_all(self, sets):
        assert compute_upset(sets).shared_by_all() == 1

    def test_unique_counts(self, sets):
        assert compute_upset(sets).unique_counts() == {
            "s1": 2, "s2": 1, "s3": 2
        }

    def test_pairwise_shared_inclusive(self, sets):
        pairs = compute_upset(sets).pairwise_shared()
        assert pairs[("s1", "s2")] == 2  # {2, 3}
        assert pairs[("s1", "s3")] == 1  # {3}
        assert pairs[("s2", "s3")] == 1  # {3}

    def test_empty_mapping_raises(self):
        with pytest.raises(ValueError):
            compute_upset({})

    def test_disjoint_sets(self):
        result = compute_upset({"a": {1}, "b": {2}})
        assert result.shared_by_all() == 0
        assert result.count("a") == 1


class TestRender:
    def test_render_contains_structure(self):
        result = compute_upset({"alpha": {1, 2}, "beta": {2, 3}})
        text = render_upset(result)
        assert "alpha" in text and "beta" in text
        assert "x" in text
        assert "Set totals:" in text
        assert "#" in text

    def test_render_empty_sets(self):
        result = compute_upset({"a": set(), "b": set()})
        assert render_upset(result) == "(no elements)"

    def test_membership_matrix_consistent(self):
        """Each pattern column's x-marks must match a stored pattern."""
        sets = {"A": {1, 2}, "B": {2}, "C": {3}}
        result = compute_upset(sets)
        text = render_upset(result)
        rows = {
            line.split()[0]: line.split()[1:]
            for line in text.splitlines()[1:4]
        }
        n_columns = len(result.intersections)
        assert all(len(marks) == n_columns for marks in rows.values())
