"""Concurrency tests for the shared decompressed-block cache.

The :class:`repro.io.bgzf.SharedBlockCache` lets every worker reader
of one BAM draw from a single lock-guarded LRU.  These tests hammer it
from many threads at once: bytes must stay identical to serial reads,
counters must stay consistent (hits + misses == lookups), and a
capacity-1 budget under contention must neither deadlock nor corrupt
a block.
"""

import io
import threading

import pytest

from repro.io.bgzf import (
    BgzfReader,
    BgzfWriter,
    SharedBlockCache,
    block_offsets,
    make_virtual_offset,
)

N_THREADS = 8


@pytest.fixture(scope="module")
def stream():
    """A multi-block BGZF stream plus its payload."""
    payload = bytes((i * 31 + j) & 0xFF for i in range(8) for j in range(60_000))
    buf = io.BytesIO()
    with BgzfWriter(buf) as writer:
        writer.write(payload)
    return buf.getvalue(), payload


def _hammer(raw, payload, cache, *, decompress_threads=0, rounds=6):
    """N threads re-reading overlapping block ranges through one
    shared cache; returns the per-thread error list."""
    offsets = block_offsets(io.BytesIO(raw))
    # Full blocks hold MAX_BLOCK_DATA payload bytes each, so block k
    # starts at payload offset k * MAX_BLOCK_DATA.
    from repro.io.bgzf import MAX_BLOCK_DATA

    errors = []

    def worker(tid):
        try:
            reader = BgzfReader(
                io.BytesIO(raw),
                cache=cache,
                cache_key="bam",
                decompress_threads=decompress_threads,
            )
            try:
                for r in range(rounds):
                    # Overlapping windows: thread t re-reads blocks
                    # [t % k, ...] so every block is contended.
                    k = (tid + r) % len(offsets)
                    reader.seek(make_virtual_offset(offsets[k], 0))
                    got = reader.read(70_000)
                    lo = k * MAX_BLOCK_DATA
                    if payload[lo : lo + len(got)] != got:
                        raise AssertionError(f"thread {tid} corrupt bytes")
            finally:
                reader.close()
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "shared-cache worker deadlocked"
    return errors


class TestSharedCacheConcurrency:
    def test_overlapping_readers_byte_identical(self, stream):
        raw, payload = stream
        cache = SharedBlockCache(16)
        errors = _hammer(raw, payload, cache)
        assert errors == []
        assert cache.hits > 0  # contended blocks were actually shared

    def test_counters_consistent_under_contention(self, stream):
        raw, payload = stream
        cache = SharedBlockCache(16)
        errors = _hammer(raw, payload, cache, decompress_threads=2)
        assert errors == []
        assert cache.hits + cache.misses == cache.lookups
        assert len(cache) <= cache.capacity

    def test_one_block_budget_never_deadlocks_or_corrupts(self, stream):
        raw, payload = stream
        cache = SharedBlockCache(1)
        errors = _hammer(raw, payload, cache, rounds=8)
        assert errors == []
        # Constant thrash: nearly every fetch evicts, residency stays 1.
        assert cache.evictions > 0
        assert len(cache) <= 1

    def test_one_block_budget_with_pools(self, stream):
        raw, payload = stream
        cache = SharedBlockCache(1)
        errors = _hammer(raw, payload, cache, decompress_threads=3, rounds=4)
        assert errors == []
        assert len(cache) <= 1

    def test_per_file_keys_do_not_collide(self, stream):
        raw, payload = stream
        other = io.BytesIO()
        with BgzfWriter(other) as writer:
            writer.write(payload[::-1])
        cache = SharedBlockCache(32)
        a = BgzfReader(io.BytesIO(raw), cache=cache, cache_key="a")
        b = BgzfReader(other, cache=cache, cache_key="b")
        try:
            assert a.read() == payload
            assert b.read() == payload[::-1]
            # Re-read through the shared store: still distinct.
            a.seek(0)
            b.seek(0)
            assert a.read() == payload
            assert b.read() == payload[::-1]
            assert a.cache_hits > 0 and b.cache_hits > 0
        finally:
            a.close()
            b.close()

    def test_eviction_deltas_sum_to_global_total(self, stream):
        raw, payload = stream
        cache = SharedBlockCache(2)
        readers = [
            BgzfReader(io.BytesIO(raw), cache=cache, cache_key="bam")
            for _ in range(3)
        ]
        try:
            for reader in readers:
                reader.read()
        finally:
            for reader in readers:
                reader.close()
        assert (
            sum(r.cache_evictions for r in readers) == cache.evictions > 0
        )


class TestSharedCacheBamSource:
    """End to end: a shared-cache BamSource produces identical pileups."""

    def test_pipeline_identical_with_shared_cache(self, tmp_path):
        import dataclasses

        from repro.core import CallerConfig
        from repro.pipeline import BamSource, ExecutionPolicy, Pipeline
        from repro.sim.genome import random_genome
        from repro.sim.haplotypes import random_panel
        from repro.sim.reads import ReadSimulator

        genome = random_genome(800, gc_content=0.45, name="chrC", seed=41)
        panel = random_panel(
            genome.sequence, 5, freq_range=(0.05, 0.2), seed=42
        )
        sample = ReadSimulator(genome, panel, read_length=80).simulate(
            depth=120, seed=43
        )
        bam = tmp_path / "shared.bam"
        sample.write_bam(bam)
        policy = ExecutionPolicy(mode="thread", n_workers=4, chunk_columns=96)
        results = {}
        for label, kwargs in (
            ("private", {}),
            ("shared", {"shared_cache": True, "cache_blocks": 4}),
            (
                "shared_pooled",
                {
                    "shared_cache": True,
                    "cache_blocks": 4,
                    "decompress_threads": 2,
                },
            ),
        ):
            source = BamSource(bam, genome.sequence, **kwargs)
            results[label] = Pipeline(
                source, config=CallerConfig(), policy=policy
            ).run()
        base = [dataclasses.astuple(c) for c in results["private"].calls]
        for label in ("shared", "shared_pooled"):
            assert [
                dataclasses.astuple(c) for c in results[label].calls
            ] == base
