"""Tests for Fisher's exact test (vs SciPy) and Bonferroni correction."""

import pytest
from scipy import stats as sstats

from repro.stats.correction import (
    ALT_ALLELES_PER_SITE,
    bonferroni_alpha,
    default_test_count,
)
from repro.stats.fisher import (
    fisher_exact,
    fisher_exact_batch,
    hypergeom_log_pmf,
    strand_bias_phred,
    strand_bias_phred_batch,
)

TABLES = [
    ((8, 2), (1, 5)),
    ((10, 10), (10, 10)),
    ((0, 5), (5, 0)),
    ((100, 50), (40, 110)),
    ((1, 0), (0, 1)),
    ((0, 0), (0, 3)),
    ((500, 480), (12, 3)),
]


class TestFisherExact:
    @pytest.mark.parametrize("table", TABLES)
    def test_two_sided_matches_scipy(self, table):
        expected = sstats.fisher_exact(table, alternative="two-sided")[1]
        assert fisher_exact(table) == pytest.approx(expected, rel=1e-9, abs=1e-12)

    @pytest.mark.parametrize("table", TABLES)
    def test_greater_matches_scipy(self, table):
        expected = sstats.fisher_exact(table, alternative="greater")[1]
        assert fisher_exact(table, "greater") == pytest.approx(
            expected, rel=1e-9, abs=1e-12
        )

    @pytest.mark.parametrize("table", TABLES)
    def test_less_matches_scipy(self, table):
        expected = sstats.fisher_exact(table, alternative="less")[1]
        assert fisher_exact(table, "less") == pytest.approx(
            expected, rel=1e-9, abs=1e-12
        )

    def test_empty_table(self):
        assert fisher_exact(((0, 0), (0, 0))) == 1.0

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            fisher_exact(((1, -1), (0, 2)))

    def test_unknown_alternative_raises(self):
        with pytest.raises(ValueError):
            fisher_exact(((1, 1), (1, 1)), "sideways")

    def test_hypergeom_log_pmf_matches_scipy(self):
        # scipy.stats.hypergeom(M, n, N).pmf(k)
        import math

        for k, M, n, N in [(2, 20, 7, 12), (0, 10, 3, 3), (5, 50, 25, 10)]:
            got = math.exp(hypergeom_log_pmf(k, M, n, N))
            want = sstats.hypergeom(M, n, N).pmf(k)
            assert got == pytest.approx(want, rel=1e-10)


class TestStrandBias:
    def test_balanced_strands_low_score(self):
        # Alt spread evenly across strands like the ref: no bias.
        assert strand_bias_phred(500, 500, 10, 10) < 1.0

    def test_one_sided_alt_high_score(self):
        # All alt reads on one strand: strong bias.
        assert strand_bias_phred(500, 500, 20, 0) > 13.0

    def test_monotone_in_imbalance(self):
        balanced = strand_bias_phred(100, 100, 5, 5)
        skewed = strand_bias_phred(100, 100, 10, 0)
        assert skewed > balanced

    def test_capped(self):
        assert strand_bias_phred(10_000, 10_000, 300, 0) <= 2000.0


class TestFisherExactBatch:
    """The vectorised kernel behind the batched engine's per-call
    strand-bias scoring (and, as a batch of one, the scalar's)."""

    def _tables(self):
        import numpy as np

        rng = np.random.default_rng(7)
        a = rng.integers(0, 400, 200)
        b = rng.integers(0, 400, 200)
        c = rng.integers(0, 50, 200)
        d = rng.integers(0, 50, 200)
        # Make sure the canned edge tables are in the batch too.
        for i, ((ta, tb), (tc, td)) in enumerate(TABLES):
            a[i], b[i], c[i], d[i] = ta, tb, tc, td
        return a, b, c, d

    def test_matches_scalar_fisher_exact(self):
        import numpy as np

        a, b, c, d = self._tables()
        p_batch = fisher_exact_batch(a, b, c, d)
        for i in range(a.size):
            p_scalar = fisher_exact(
                ((int(a[i]), int(b[i])), (int(c[i]), int(d[i])))
            )
            assert p_batch[i] == pytest.approx(
                p_scalar, rel=1e-12, abs=1e-300
            )
        assert np.all((p_batch >= 0) & (p_batch <= 1))

    def test_matches_scipy(self):
        a, b, c, d = self._tables()
        p_batch = fisher_exact_batch(a[:40], b[:40], c[:40], d[:40])
        for i in range(40):
            expected = sstats.fisher_exact(
                [[int(a[i]), int(b[i])], [int(c[i]), int(d[i])]],
                alternative="two-sided",
            )[1]
            assert p_batch[i] == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_composition_invariant_bitwise(self):
        """A table's p-value must not depend on what else is in the
        batch -- the property that keeps the streaming engine (batch
        of one) and the batched engine byte-identical."""
        import numpy as np

        a, b, c, d = self._tables()
        whole = fisher_exact_batch(a, b, c, d)
        singles = np.array(
            [
                fisher_exact_batch(
                    a[i : i + 1], b[i : i + 1], c[i : i + 1], d[i : i + 1]
                )[0]
                for i in range(a.size)
            ]
        )
        assert np.array_equal(whole, singles)

    def test_strand_bias_scalar_is_batch_of_one(self):
        import numpy as np

        a, b, c, d = self._tables()
        batch = strand_bias_phred_batch(a, b, c, d)
        scalars = np.array(
            [
                strand_bias_phred(int(a[i]), int(b[i]), int(c[i]), int(d[i]))
                for i in range(a.size)
            ]
        )
        assert np.array_equal(batch, scalars)

    def test_empty_and_degenerate(self):
        import numpy as np

        assert fisher_exact_batch(
            np.zeros(0, int), np.zeros(0, int), np.zeros(0, int),
            np.zeros(0, int),
        ).size == 0
        z = np.zeros(1, int)
        assert fisher_exact_batch(z, z, z, z)[0] == 1.0
        with pytest.raises(ValueError, match="non-negative"):
            fisher_exact_batch(z - 1, z, z, z)

    def test_plane_budget_slicing_is_invisible(self, monkeypatch):
        """Forcing tiny plane slices must not change a single bit
        (the memory bound is pure mechanics)."""
        import numpy as np

        from repro.stats import fisher as fisher_mod

        a, b, c, d = self._tables()
        whole = fisher_exact_batch(a, b, c, d)
        monkeypatch.setattr(fisher_mod, "FISHER_PLANE_ELEMENTS", 512)
        sliced = fisher_exact_batch(a, b, c, d)
        assert np.array_equal(whole, sliced)

    def test_strand_bias_cap(self):
        import numpy as np

        sb = strand_bias_phred_batch(
            np.array([10_000]), np.array([10_000]), np.array([300]),
            np.array([0]),
        )
        assert sb[0] <= 2000.0


class TestBonferroni:
    def test_default_test_count(self):
        assert default_test_count(29_903) == 29_903 * ALT_ALLELES_PER_SITE

    def test_alpha_division(self):
        assert bonferroni_alpha(0.05, 1000) == pytest.approx(5e-5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bonferroni_alpha(0.0, 10)
        with pytest.raises(ValueError):
            bonferroni_alpha(1.5, 10)
        with pytest.raises(ValueError):
            bonferroni_alpha(0.05, 0)
        with pytest.raises(ValueError):
            default_test_count(0)
