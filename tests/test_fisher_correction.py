"""Tests for Fisher's exact test (vs SciPy) and Bonferroni correction."""

import pytest
from scipy import stats as sstats

from repro.stats.correction import (
    ALT_ALLELES_PER_SITE,
    bonferroni_alpha,
    default_test_count,
)
from repro.stats.fisher import fisher_exact, hypergeom_log_pmf, strand_bias_phred

TABLES = [
    ((8, 2), (1, 5)),
    ((10, 10), (10, 10)),
    ((0, 5), (5, 0)),
    ((100, 50), (40, 110)),
    ((1, 0), (0, 1)),
    ((0, 0), (0, 3)),
    ((500, 480), (12, 3)),
]


class TestFisherExact:
    @pytest.mark.parametrize("table", TABLES)
    def test_two_sided_matches_scipy(self, table):
        expected = sstats.fisher_exact(table, alternative="two-sided")[1]
        assert fisher_exact(table) == pytest.approx(expected, rel=1e-9, abs=1e-12)

    @pytest.mark.parametrize("table", TABLES)
    def test_greater_matches_scipy(self, table):
        expected = sstats.fisher_exact(table, alternative="greater")[1]
        assert fisher_exact(table, "greater") == pytest.approx(
            expected, rel=1e-9, abs=1e-12
        )

    @pytest.mark.parametrize("table", TABLES)
    def test_less_matches_scipy(self, table):
        expected = sstats.fisher_exact(table, alternative="less")[1]
        assert fisher_exact(table, "less") == pytest.approx(
            expected, rel=1e-9, abs=1e-12
        )

    def test_empty_table(self):
        assert fisher_exact(((0, 0), (0, 0))) == 1.0

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            fisher_exact(((1, -1), (0, 2)))

    def test_unknown_alternative_raises(self):
        with pytest.raises(ValueError):
            fisher_exact(((1, 1), (1, 1)), "sideways")

    def test_hypergeom_log_pmf_matches_scipy(self):
        # scipy.stats.hypergeom(M, n, N).pmf(k)
        import math

        for k, M, n, N in [(2, 20, 7, 12), (0, 10, 3, 3), (5, 50, 25, 10)]:
            got = math.exp(hypergeom_log_pmf(k, M, n, N))
            want = sstats.hypergeom(M, n, N).pmf(k)
            assert got == pytest.approx(want, rel=1e-10)


class TestStrandBias:
    def test_balanced_strands_low_score(self):
        # Alt spread evenly across strands like the ref: no bias.
        assert strand_bias_phred(500, 500, 10, 10) < 1.0

    def test_one_sided_alt_high_score(self):
        # All alt reads on one strand: strong bias.
        assert strand_bias_phred(500, 500, 20, 0) > 13.0

    def test_monotone_in_imbalance(self):
        balanced = strand_bias_phred(100, 100, 5, 5)
        skewed = strand_bias_phred(100, 100, 10, 0)
        assert skewed > balanced

    def test_capped(self):
        assert strand_bias_phred(10_000, 10_000, 300, 0) <= 2000.0


class TestBonferroni:
    def test_default_test_count(self):
        assert default_test_count(29_903) == 29_903 * ALT_ALLELES_PER_SITE

    def test_alpha_division(self):
        assert bonferroni_alpha(0.05, 1000) == pytest.approx(5e-5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bonferroni_alpha(0.0, 10)
        with pytest.raises(ValueError):
            bonferroni_alpha(1.5, 10)
        with pytest.raises(ValueError):
            bonferroni_alpha(0.05, 0)
        with pytest.raises(ValueError):
            default_test_count(0)
