"""Tests for CallerConfig and the error model."""

import numpy as np
import pytest

from repro.core.config import CallerConfig
from repro.core.model import (
    MISCALL_FRACTION,
    allele_error_probabilities,
    candidate_alleles,
)
from repro.pileup.column import BASE_TO_CODE, PileupColumn


def make_column(bases, ref="A", quals=None):
    codes = np.array([BASE_TO_CODE[b] for b in bases], dtype=np.uint8)
    n = len(bases)
    return PileupColumn(
        chrom="c", pos=0, ref_base=ref,
        base_codes=codes,
        quals=np.array(quals or [30] * n, dtype=np.uint8),
        reverse=np.zeros(n, dtype=bool),
        mapqs=np.full(n, 60, dtype=np.uint8),
    )


class TestConfig:
    def test_presets(self):
        assert CallerConfig.improved().use_approximation
        assert not CallerConfig.original().use_approximation

    def test_paper_defaults(self):
        cfg = CallerConfig.improved()
        assert cfg.alpha == 0.05
        assert cfg.approx_margin == 0.01
        assert cfg.approx_min_depth == 100

    def test_dynamic_bonferroni(self):
        cfg = CallerConfig()
        assert cfg.n_tests(1000) == 3000
        assert cfg.corrected_alpha(1000) == pytest.approx(0.05 / 3000)

    def test_explicit_bonferroni(self):
        cfg = CallerConfig(bonferroni=500)
        assert cfg.n_tests(123456) == 500

    def test_adaptive_margin_shrinks_with_depth(self):
        cfg = CallerConfig(adaptive_margin=1000)
        assert cfg.margin_for_depth(500) == cfg.approx_margin
        assert cfg.margin_for_depth(4000) == pytest.approx(
            cfg.approx_margin * 0.5
        )
        assert cfg.margin_for_depth(100_000) < cfg.margin_for_depth(10_000)

    def test_constant_margin_without_adaptive(self):
        cfg = CallerConfig()
        assert cfg.margin_for_depth(10) == cfg.margin_for_depth(1_000_000)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"approx_margin": -0.1},
            {"approx_min_depth": -1},
            {"bonferroni": 0},
            {"min_af": 1.5},
            {"min_coverage": -1},
            {"engine": "turbo"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CallerConfig(**kwargs)

    @pytest.mark.parametrize("engine", ["streaming", "batched"])
    def test_engine_knob_accepted(self, engine):
        assert CallerConfig(engine=engine).engine == engine
        assert CallerConfig.improved(engine=engine).engine == engine


class TestErrorModel:
    def test_specific_allele_divides_by_three(self):
        col = make_column("AAAA", quals=[30, 30, 30, 30])
        probs = allele_error_probabilities(col)
        assert np.allclose(probs, 1e-3 * MISCALL_FRACTION)

    def test_full_depth_vector(self):
        col = make_column("AATT")
        assert allele_error_probabilities(col).shape == (4,)

    def test_candidates_exclude_ref_and_n(self):
        col = make_column("AATTGN", ref="A")
        cands = candidate_alleles(col)
        codes = [c for c, _ in cands]
        assert BASE_TO_CODE["A"] not in codes
        assert BASE_TO_CODE["N"] not in codes

    def test_candidates_sorted_by_count(self):
        col = make_column("AATTTG", ref="A")
        cands = candidate_alleles(col)
        assert cands[0] == (BASE_TO_CODE["T"], 3)
        assert cands[1] == (BASE_TO_CODE["G"], 1)

    def test_no_candidates_on_clean_column(self):
        assert candidate_alleles(make_column("AAAA", ref="A")) == []
