"""Tests for the vectorised (batch) statistics kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.approximation import (
    poisson_lambda,
    poisson_tail_approx,
    poisson_tail_approx_batch,
)
from repro.stats.poisson import poisson_sf, poisson_sf_batch
from repro.stats.poisson_binomial import (
    poibin_sf_brute_force,
    poibin_sf_dp,
    poibin_sf_dp_batch,
)
from repro.stats.special import (
    log_gamma,
    log_gamma_batch,
    lower_regularized_gamma,
    lower_regularized_gamma_batch,
)


class TestLogGammaBatch:
    def test_matches_scalar(self):
        xs = np.array([0.5, 1.0, 2.5, 7.0, 100.0, 1e6])
        batch = log_gamma_batch(xs)
        scalar = np.array([log_gamma(float(x)) for x in xs])
        assert np.allclose(batch, scalar, rtol=1e-13, atol=0)

    def test_rejects_reflection_region(self):
        with pytest.raises(ValueError):
            log_gamma_batch(np.array([0.25, 1.0]))

    def test_empty(self):
        assert log_gamma_batch(np.array([])).shape == (0,)


class TestLowerRegularizedGammaBatch:
    def test_matches_scalar_both_branches(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(0.5, 50.0, size=500)
        # Half below the series/fraction split, half above it.
        x = np.where(
            rng.random(500) < 0.5,
            rng.uniform(0.0, 1.0, size=500) * (a + 1.0),
            (a + 1.0) + rng.uniform(0.0, 50.0, size=500),
        )
        batch = lower_regularized_gamma_batch(a, x)
        scalar = np.array(
            [lower_regularized_gamma(float(ai), float(xi)) for ai, xi in zip(a, x)]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-300)

    def test_mostly_bitwise_identical_to_scalar(self):
        """The batch kernel replays the scalar iteration elementwise;
        the overwhelming majority of lanes must agree bit-for-bit (the
        rest only in the last ulp -- the engine's guard band exists for
        those)."""
        rng = np.random.default_rng(4)
        a = rng.integers(1, 200, size=2000).astype(np.float64)
        x = rng.uniform(0.0, 250.0, size=2000)
        batch = lower_regularized_gamma_batch(a, x)
        scalar = np.array(
            [lower_regularized_gamma(float(ai), float(xi)) for ai, xi in zip(a, x)]
        )
        assert np.mean(batch == scalar) > 0.9
        assert np.max(np.abs(batch - scalar)) < 1e-13

    def test_x_zero(self):
        out = lower_regularized_gamma_batch(
            np.array([1.0, 5.0]), np.array([0.0, 0.0])
        )
        assert np.array_equal(out, np.zeros(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            lower_regularized_gamma_batch(np.array([1.0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            lower_regularized_gamma_batch(np.array([0.1]), np.array([1.0]))
        with pytest.raises(ValueError):
            lower_regularized_gamma_batch(np.array([1.0, 2.0]), np.array([1.0]))


class TestPoissonSfBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(5)
        ks = rng.integers(0, 100, size=1000).astype(np.float64)
        lams = rng.uniform(0.0, 60.0, size=1000)
        lams[::11] = 0.0
        batch = poisson_sf_batch(ks, lams)
        scalar = np.array(
            [poisson_sf(int(k), float(lam)) for k, lam in zip(ks, lams)]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=0)

    def test_edge_cases(self):
        ks = np.array([0.0, 0.0, 3.0])
        lams = np.array([0.0, 2.0, 0.0])
        assert np.array_equal(poisson_sf_batch(ks, lams), [1.0, 1.0, 0.0])

    def test_empty(self):
        assert poisson_sf_batch(np.array([]), np.array([])).shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_sf_batch(np.array([-1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            poisson_sf_batch(np.array([1.0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            poisson_sf_batch(np.array([1.0]), np.array([np.nan]))

    def test_monotone_in_k_and_lambda(self):
        lam = np.full(30, 7.5)
        ks = np.arange(1.0, 31.0)
        tails = poisson_sf_batch(ks, lam)
        assert np.all(np.diff(tails) <= 0)
        lams = np.linspace(0.5, 40.0, 30)
        tails = poisson_sf_batch(np.full(30, 10.0), lams)
        assert np.all(np.diff(tails) >= 0)


def _ragged_plane(rows):
    """Pack ragged probability rows into (ks-free) plane + lengths."""
    lens = np.array([len(r) for r in rows], dtype=np.int64)
    width = int(lens.max()) if len(rows) else 0
    plane = np.zeros((len(rows), max(width, 1)), dtype=np.float64)
    for i, r in enumerate(rows):
        plane[i, : len(r)] = r
    return plane, lens


#: One hypothesis lane: ragged probabilities (with genuine zeros
#: possible) plus a tail point that may be degenerate (0 or > d).
_lane = st.tuples(
    st.lists(
        st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=18
    ),
    st.integers(0, 21),
)


class TestPoibinSfDpBatch:
    """The 2-D DP must be bit-for-bit the scalar DP per lane."""

    @given(st.lists(_lane, min_size=1, max_size=12))
    @settings(max_examples=120, deadline=None)
    def test_matches_scalar_bitwise(self, lanes):
        plane, lens = _ragged_plane([r for r, _ in lanes])
        ks = np.array([min(k, len(r) + 2) for r, k in lanes])
        res = poibin_sf_dp_batch(ks, plane, lens)
        for i, (row, _) in enumerate(lanes):
            ref = poibin_sf_dp(int(ks[i]), np.array(row))
            assert res.pvalues[i] == ref.pvalue  # bitwise, not approx
            assert bool(res.complete[i]) == ref.complete
            assert int(res.steps[i]) == ref.steps

    @given(
        st.lists(_lane, min_size=1, max_size=10),
        st.floats(1e-9, 0.5, allow_nan=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_early_stop_parity(self, lanes, prune):
        """Pruned lanes freeze at the exact step (and lower bound) the
        scalar early stop would -- including lanes with interior zero
        probabilities, where the scalar loop skips the check."""
        plane, lens = _ragged_plane([r for r, _ in lanes])
        ks = np.array([min(k, len(r) + 2) for r, k in lanes])
        res = poibin_sf_dp_batch(ks, plane, lens, prune_above=prune)
        for i, (row, _) in enumerate(lanes):
            ref = poibin_sf_dp(int(ks[i]), np.array(row), prune_above=prune)
            assert res.pvalues[i] == ref.pvalue
            assert bool(res.complete[i]) == ref.complete
            assert int(res.steps[i]) == ref.steps

    @given(st.lists(_lane, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, lanes):
        """Ground truth: complete lanes agree with 2^d enumeration."""
        plane, lens = _ragged_plane([r for r, _ in lanes])
        ks = np.array([min(k, len(r) + 2) for r, k in lanes])
        res = poibin_sf_dp_batch(ks, plane, lens)
        for i, (row, _) in enumerate(lanes):
            oracle = poibin_sf_brute_force(int(ks[i]), np.array(row))
            assert res.pvalues[i] == pytest.approx(oracle, abs=1e-11)

    def test_empty_lane_set(self):
        res = poibin_sf_dp_batch(
            np.zeros(0, dtype=np.int64), np.zeros((0, 4)), np.zeros(0)
        )
        assert res.pvalues.shape == (0,)
        assert res.complete.shape == (0,)
        assert res.steps.shape == (0,)

    def test_degenerate_lanes(self):
        """k = 0 and k > d resolve without any sweep, like the scalar
        special cases, even mixed into a batch with live lanes."""
        plane, lens = _ragged_plane([[0.3, 0.2], [0.1], [0.5, 0.5, 0.5]])
        res = poibin_sf_dp_batch(np.array([0, 2, 2]), plane, lens)
        assert res.pvalues[0] == 1.0 and res.steps[0] == 0
        assert res.pvalues[1] == 0.0 and res.steps[1] == 0
        assert res.complete.all()
        assert res.pvalues[2] == poibin_sf_dp(2, np.array([0.5] * 3)).pvalue

    def test_all_lanes_prune_immediately(self):
        plane, lens = _ragged_plane([[0.9, 0.9]] * 4)
        res = poibin_sf_dp_batch(
            np.array([1] * 4), plane, lens, prune_above=1e-6
        )
        assert not res.complete.any()
        assert (res.steps == 1).all()

    def test_default_lengths_are_full_width(self):
        plane = np.array([[0.1, 0.2], [0.3, 0.4]])
        res = poibin_sf_dp_batch(np.array([1, 2]), plane)
        assert res.pvalues[0] == poibin_sf_dp(1, plane[0]).pvalue
        assert res.pvalues[1] == poibin_sf_dp(2, plane[1]).pvalue

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            poibin_sf_dp_batch(np.array([1]), np.array([0.5]))
        with pytest.raises(ValueError, match="shape"):
            poibin_sf_dp_batch(np.array([1, 2]), np.zeros((1, 3)))
        with pytest.raises(ValueError, match="k must be"):
            poibin_sf_dp_batch(np.array([-1]), np.zeros((1, 3)))
        with pytest.raises(ValueError, match="lie in"):
            poibin_sf_dp_batch(
                np.array([1]), np.array([[1.5, 0.0]]), np.array([2])
            )
        with pytest.raises(ValueError, match="lengths"):
            poibin_sf_dp_batch(
                np.array([1]), np.zeros((1, 3)), np.array([4])
            )
        with pytest.raises(ValueError, match="zero-padded"):
            poibin_sf_dp_batch(
                np.array([1]), np.array([[0.5, 0.5]]), np.array([1])
            )


class TestPoissonTailApproxBatch:
    def test_matches_per_allele_scalar_path(self):
        """The batched screen computes lambda once per column and
        broadcasts it; the result must equal the streaming path that
        re-derives lambda from the probability vector per allele."""
        rng = np.random.default_rng(6)
        ks, lams, scalars = [], [], []
        for _ in range(50):
            depth = int(rng.integers(100, 3000))
            quals = rng.uniform(15, 40, size=depth)
            probs = (10.0 ** (-quals / 10.0)) / 3.0
            lam = poisson_lambda(probs)
            for k in rng.integers(1, 40, size=3):
                ks.append(float(k))
                lams.append(lam)
                scalars.append(poisson_tail_approx(int(k), probs))
        batch = poisson_tail_approx_batch(np.array(ks), np.array(lams))
        np.testing.assert_allclose(batch, np.array(scalars), rtol=1e-12)
