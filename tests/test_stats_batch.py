"""Tests for the vectorised (batch) statistics kernels."""

import numpy as np
import pytest

from repro.stats.approximation import (
    poisson_lambda,
    poisson_tail_approx,
    poisson_tail_approx_batch,
)
from repro.stats.poisson import poisson_sf, poisson_sf_batch
from repro.stats.special import (
    log_gamma,
    log_gamma_batch,
    lower_regularized_gamma,
    lower_regularized_gamma_batch,
)


class TestLogGammaBatch:
    def test_matches_scalar(self):
        xs = np.array([0.5, 1.0, 2.5, 7.0, 100.0, 1e6])
        batch = log_gamma_batch(xs)
        scalar = np.array([log_gamma(float(x)) for x in xs])
        assert np.allclose(batch, scalar, rtol=1e-13, atol=0)

    def test_rejects_reflection_region(self):
        with pytest.raises(ValueError):
            log_gamma_batch(np.array([0.25, 1.0]))

    def test_empty(self):
        assert log_gamma_batch(np.array([])).shape == (0,)


class TestLowerRegularizedGammaBatch:
    def test_matches_scalar_both_branches(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(0.5, 50.0, size=500)
        # Half below the series/fraction split, half above it.
        x = np.where(
            rng.random(500) < 0.5,
            rng.uniform(0.0, 1.0, size=500) * (a + 1.0),
            (a + 1.0) + rng.uniform(0.0, 50.0, size=500),
        )
        batch = lower_regularized_gamma_batch(a, x)
        scalar = np.array(
            [lower_regularized_gamma(float(ai), float(xi)) for ai, xi in zip(a, x)]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-300)

    def test_mostly_bitwise_identical_to_scalar(self):
        """The batch kernel replays the scalar iteration elementwise;
        the overwhelming majority of lanes must agree bit-for-bit (the
        rest only in the last ulp -- the engine's guard band exists for
        those)."""
        rng = np.random.default_rng(4)
        a = rng.integers(1, 200, size=2000).astype(np.float64)
        x = rng.uniform(0.0, 250.0, size=2000)
        batch = lower_regularized_gamma_batch(a, x)
        scalar = np.array(
            [lower_regularized_gamma(float(ai), float(xi)) for ai, xi in zip(a, x)]
        )
        assert np.mean(batch == scalar) > 0.9
        assert np.max(np.abs(batch - scalar)) < 1e-13

    def test_x_zero(self):
        out = lower_regularized_gamma_batch(
            np.array([1.0, 5.0]), np.array([0.0, 0.0])
        )
        assert np.array_equal(out, np.zeros(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            lower_regularized_gamma_batch(np.array([1.0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            lower_regularized_gamma_batch(np.array([0.1]), np.array([1.0]))
        with pytest.raises(ValueError):
            lower_regularized_gamma_batch(np.array([1.0, 2.0]), np.array([1.0]))


class TestPoissonSfBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(5)
        ks = rng.integers(0, 100, size=1000).astype(np.float64)
        lams = rng.uniform(0.0, 60.0, size=1000)
        lams[::11] = 0.0
        batch = poisson_sf_batch(ks, lams)
        scalar = np.array(
            [poisson_sf(int(k), float(lam)) for k, lam in zip(ks, lams)]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=0)

    def test_edge_cases(self):
        ks = np.array([0.0, 0.0, 3.0])
        lams = np.array([0.0, 2.0, 0.0])
        assert np.array_equal(poisson_sf_batch(ks, lams), [1.0, 1.0, 0.0])

    def test_empty(self):
        assert poisson_sf_batch(np.array([]), np.array([])).shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_sf_batch(np.array([-1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            poisson_sf_batch(np.array([1.0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            poisson_sf_batch(np.array([1.0]), np.array([np.nan]))

    def test_monotone_in_k_and_lambda(self):
        lam = np.full(30, 7.5)
        ks = np.arange(1.0, 31.0)
        tails = poisson_sf_batch(ks, lam)
        assert np.all(np.diff(tails) <= 0)
        lams = np.linspace(0.5, 40.0, 30)
        tails = poisson_sf_batch(np.full(30, 10.0), lams)
        assert np.all(np.diff(tails) >= 0)


class TestPoissonTailApproxBatch:
    def test_matches_per_allele_scalar_path(self):
        """The batched screen computes lambda once per column and
        broadcasts it; the result must equal the streaming path that
        re-derives lambda from the probability vector per allele."""
        rng = np.random.default_rng(6)
        ks, lams, scalars = [], [], []
        for _ in range(50):
            depth = int(rng.integers(100, 3000))
            quals = rng.uniform(15, 40, size=depth)
            probs = (10.0 ** (-quals / 10.0)) / 3.0
            lam = poisson_lambda(probs)
            for k in rng.integers(1, 40, size=3):
                ks.append(float(k))
                lams.append(lam)
                scalars.append(poisson_tail_approx(int(k), probs))
        batch = poisson_tail_approx_batch(np.array(ks), np.array(lams))
        np.testing.assert_allclose(batch, np.array(scalars), rtol=1e-12)
