"""Tests for the BAI binning index and the unified random-access API.

Covers the ISSUE 6 acceptance criteria: ``.bai`` files round-trip
through writer -> reader, the writer's layout byte-compares against a
hand-assembled spec-layout fixture (and external-layout fixtures
parse), ``reg2bins`` agrees with brute-force interval overlap, and
region calls planned through a :class:`~repro.io.bai.BaiIndex` are
byte-identical to the linear-index path.
"""

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.bai import (
    BAI_MAGIC,
    MAX_BIN,
    PSEUDO_BIN,
    BaiIndex,
    BaiReference,
    bin_interval,
    build_bai,
    reg2bins,
)
from repro.io.bam import BamReader, BamWriter, reg2bin
from repro.io.index import (
    MAX_VOFFSET,
    Chunk,
    MultiContigIndex,
    RandomAccessIndex,
    build_bai_index,
    build_linear_index,
    load_index,
)
from repro.io.records import SamHeader
from repro.io.regions import Region
from repro.io.vcf import write_vcf
from repro.pipeline import BamSource, Pipeline


@pytest.fixture(scope="module")
def two_contig(tmp_path_factory):
    """A coordinate-sorted two-contig BAM with references and truth."""
    from repro.sim import ReadSimulator, random_panel
    from repro.sim.genome import random_genome

    root = tmp_path_factory.mktemp("bai")
    genome_a = random_genome(900, gc_content=0.4, name="ctgA", seed=31)
    genome_b = random_genome(600, gc_content=0.45, name="ctgB", seed=32)
    panel_a = random_panel(genome_a.sequence, 4, freq_range=(0.08, 0.2), seed=33)
    panel_b = random_panel(genome_b.sequence, 3, freq_range=(0.08, 0.2), seed=34)
    sample_a = ReadSimulator(genome_a, panel_a, read_length=70).simulate(
        depth=150, seed=35
    )
    sample_b = ReadSimulator(genome_b, panel_b, read_length=70).simulate(
        depth=150, seed=36
    )
    bam = root / "two.bam"
    header = SamHeader(
        references=[("ctgA", len(genome_a)), ("ctgB", len(genome_b))],
        sort_order="coordinate",
    )
    with BamWriter(bam, header) as writer:
        for read in sample_a.reads():
            writer.write(read)
        for read in sample_b.reads():
            writer.write(read)
    return {
        "root": root,
        "bam": bam,
        "refs": {"ctgA": genome_a.sequence, "ctgB": genome_b.sequence},
        "lengths": {"ctgA": len(genome_a), "ctgB": len(genome_b)},
    }


def brute_force_overlaps(bam_path, contig, start, end):
    """Oracle: qnames of records overlapping the region, by full scan."""
    out = []
    with BamReader(bam_path) as reader:
        for rec in reader:
            if rec.rname != contig or rec.is_unmapped:
                continue
            if rec.pos < end and rec.reference_end > start:
                out.append(rec.qname)
    return out


def scan_plan(bam_path, plan, contig, start, end):
    """Qnames of in-region records reached by walking a chunk plan."""
    out = []
    with BamReader(bam_path) as reader:
        for chunk in plan:
            reader.seek(chunk.vbegin)
            while True:
                if chunk.vend < MAX_VOFFSET and reader.tell() >= chunk.vend:
                    break
                rec = reader.read_record()
                if rec is None:
                    break
                if rec.rname != contig or rec.pos >= end:
                    continue
                if rec.reference_end > start and not rec.is_unmapped:
                    out.append(rec.qname)
    return out


class TestReg2bins:
    def test_empty_region(self):
        assert reg2bins(100, 100) == []
        assert reg2bins(100, 50) == []

    def test_small_region_levels(self):
        # A sub-16kbp region at the origin touches exactly one bin per
        # level.
        assert reg2bins(0, 1) == [0, 1, 9, 73, 585, 4681]

    def test_ascending_and_unique(self):
        bins = reg2bins(123_456, 9_876_543)
        assert bins == sorted(bins)
        assert len(bins) == len(set(bins))

    @given(
        rec_beg=st.integers(min_value=0, max_value=(1 << 29) - 200),
        rec_len=st.integers(min_value=1, max_value=150),
        q_beg=st.integers(min_value=0, max_value=(1 << 29) - 200),
        q_len=st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=300, deadline=None)
    def test_overlapping_record_bin_is_candidate(
        self, rec_beg, rec_len, q_beg, q_len
    ):
        """Soundness: a record overlapping the query must be filed in
        one of ``reg2bins``' candidate bins."""
        rec_end = rec_beg + rec_len
        q_end = q_beg + q_len
        bin_id = reg2bin(rec_beg, rec_end)
        candidates = reg2bins(q_beg, q_end)
        overlaps = rec_beg < q_end and rec_end > q_beg
        if overlaps:
            assert bin_id in candidates
        # Completeness of the converse: every candidate bin's tile
        # intersects the query.
        for b in candidates:
            beg, end = bin_interval(b)
            assert beg < q_end and end > q_beg


class TestBinInterval:
    @pytest.mark.parametrize("bin_id,beg,width_log2", [
        (0, 0, 29),
        (1, 0, 26),
        (8, 7 << 26, 26),
        (9, 0, 23),
        (73, 0, 20),
        (585, 0, 17),
        (4681, 0, 14),
        (4682, 1 << 14, 14),
    ])
    def test_known_tiles(self, bin_id, beg, width_log2):
        lo, hi = bin_interval(bin_id)
        assert lo == beg
        assert hi - lo == 1 << width_log2

    def test_rejects_pseudo_bin(self):
        with pytest.raises(ValueError):
            bin_interval(PSEUDO_BIN)
        with pytest.raises(ValueError):
            bin_interval(MAX_BIN)

    def test_matches_reg2bin(self):
        # A record exactly filling a bin's tile is filed in that bin.
        for bin_id in (0, 1, 9, 73, 585, 4681, 4700, 37448):
            lo, hi = bin_interval(bin_id)
            assert reg2bin(lo, hi) == bin_id


class TestRoundTrip:
    def test_save_load_byte_identical(self, two_contig):
        index = build_bai(two_contig["bam"])
        path = two_contig["root"] / "rt.bai"
        index.save(path)
        loaded = BaiIndex.load(path)
        assert loaded.to_bytes() == index.to_bytes()
        assert path.read_bytes() == index.to_bytes()

    def test_structure_survives(self, two_contig):
        index = build_bai(two_contig["bam"])
        path = two_contig["root"] / "rt2.bai"
        index.save(path)
        loaded = BaiIndex.load(path)
        assert len(loaded.references) == 2
        for built, parsed in zip(index.references, loaded.references):
            assert parsed.bins == built.bins
            assert parsed.intervals == built.intervals
            assert parsed.mapped == built.mapped
            assert parsed.ref_beg == built.ref_beg
            assert parsed.ref_end == built.ref_end
        assert loaded.n_no_coor == index.n_no_coor

    def test_metadata_counts(self, two_contig):
        index = build_bai(two_contig["bam"])
        with BamReader(two_contig["bam"]) as reader:
            per_contig = {"ctgA": 0, "ctgB": 0}
            for rec in reader:
                per_contig[rec.rname] += 1
        assert index.references[0].mapped == per_contig["ctgA"]
        assert index.references[1].mapped == per_contig["ctgB"]
        assert index.n_no_coor == 0

    def test_loaded_index_needs_names(self, two_contig):
        path = two_contig["root"] / "rt3.bai"
        build_bai(two_contig["bam"]).save(path)
        loaded = BaiIndex.load(path)
        with pytest.raises(ValueError, match="names"):
            loaded.chunks_for("ctgA", 0, 100)
        loaded.attach_names(["ctgA", "ctgB"])
        assert loaded.chunks_for("ctgA", 0, 100)

    def test_attach_names_count_mismatch(self, two_contig):
        index = build_bai(two_contig["bam"])
        with pytest.raises(ValueError, match="references"):
            index.attach_names(["onlyone"])


def spec_layout_bytes():
    """Hand-assembled spec-layout BAI: 2 references; the first holds
    bin 4681 with one chunk and bin 0 with one chunk plus the
    pseudo-bin; the second is empty.  Returns (bytes, BaiIndex equal
    by construction)."""
    raw = bytearray()
    raw += BAI_MAGIC
    raw += struct.pack("<i", 2)  # n_ref
    # -- reference 0: 2 real bins + pseudo-bin
    raw += struct.pack("<i", 3)  # n_bin
    raw += struct.pack("<Ii", 0, 1)  # bin 0, 1 chunk
    raw += struct.pack("<QQ", 200 << 16, 300 << 16)
    raw += struct.pack("<Ii", 4681, 1)  # bin 4681, 1 chunk
    raw += struct.pack("<QQ", 100 << 16, (150 << 16) | 7)
    raw += struct.pack("<Ii", PSEUDO_BIN, 2)  # metadata pseudo-bin
    raw += struct.pack("<QQ", 100 << 16, 300 << 16)  # ref_beg, ref_end
    raw += struct.pack("<QQ", 41, 1)  # mapped, unmapped
    raw += struct.pack("<i", 2)  # n_intv
    raw += struct.pack("<Q", 100 << 16)
    raw += struct.pack("<Q", 180 << 16)
    # -- reference 1: no records
    raw += struct.pack("<i", 0)  # n_bin
    raw += struct.pack("<i", 0)  # n_intv
    raw += struct.pack("<Q", 5)  # n_no_coor trailer
    index = BaiIndex(
        [
            BaiReference(
                bins={
                    0: [Chunk(200 << 16, 300 << 16)],
                    4681: [Chunk(100 << 16, (150 << 16) | 7)],
                },
                intervals=[100 << 16, 180 << 16],
                ref_beg=100 << 16,
                ref_end=300 << 16,
                mapped=41,
                unmapped=1,
            ),
            BaiReference(),
        ],
        n_no_coor=5,
    )
    return bytes(raw), index


class TestInterop:
    def test_parse_external_layout(self):
        """A spec-layout index assembled byte by byte (as an external
        tool would write it) parses into the expected structure."""
        raw, expected = spec_layout_bytes()
        parsed = BaiIndex.from_handle(io.BytesIO(raw))
        assert len(parsed.references) == 2
        ref0 = parsed.references[0]
        assert ref0.bins == expected.references[0].bins
        assert ref0.intervals == expected.references[0].intervals
        assert ref0.ref_beg == 100 << 16
        assert ref0.ref_end == 300 << 16
        assert (ref0.mapped, ref0.unmapped) == (41, 1)
        assert parsed.references[1].bins == {}
        assert parsed.n_no_coor == 5

    def test_writer_matches_spec_layout(self):
        """The writer emits exactly the hand-assembled layout for the
        same logical index -- the byte-compare interop criterion."""
        raw, index = spec_layout_bytes()
        assert index.to_bytes() == raw

    def test_missing_trailer_tolerated(self):
        raw, _ = spec_layout_bytes()
        parsed = BaiIndex.from_handle(io.BytesIO(raw[:-8]))
        assert parsed.n_no_coor is None

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            BaiIndex.from_handle(io.BytesIO(b"BAM\x01" + b"\x00" * 16))

    def test_truncation_rejected(self):
        raw, _ = spec_layout_bytes()
        with pytest.raises(ValueError, match="truncated"):
            BaiIndex.from_handle(io.BytesIO(raw[:20]))

    def test_out_of_range_bin_rejected(self):
        raw = bytearray()
        raw += BAI_MAGIC
        raw += struct.pack("<i", 1)
        raw += struct.pack("<i", 1)
        raw += struct.pack("<Ii", MAX_BIN + 10, 0)  # not the pseudo-bin
        raw += struct.pack("<i", 0)
        with pytest.raises(ValueError, match="out of range"):
            BaiIndex.from_handle(io.BytesIO(bytes(raw)))


class TestQueries:
    @pytest.mark.parametrize("contig,start,end", [
        ("ctgA", 0, 900),
        ("ctgA", 200, 400),
        ("ctgA", 850, 900),
        ("ctgB", 0, 600),
        ("ctgB", 10, 11),
        ("ctgB", 590, 600),
    ])
    def test_plan_reaches_every_overlapping_record(
        self, two_contig, contig, start, end
    ):
        index = build_bai(two_contig["bam"])
        plan = index.chunks_for(contig, start, end)
        got = scan_plan(two_contig["bam"], plan, contig, start, end)
        want = brute_force_overlaps(two_contig["bam"], contig, start, end)
        assert got == want

    def test_plan_sorted_non_overlapping(self, two_contig):
        index = build_bai(two_contig["bam"])
        plan = index.chunks_for("ctgA", 0, 900)
        assert plan == sorted(plan)
        for a, b in zip(plan, plan[1:]):
            assert a.vend < b.vbegin

    def test_unknown_contig_empty(self, two_contig):
        index = build_bai(two_contig["bam"])
        assert index.chunks_for("ctgZ", 0, 100) == []

    def test_empty_region_empty(self, two_contig):
        index = build_bai(two_contig["bam"])
        assert index.chunks_for("ctgA", 50, 50) == []

    def test_protocol_conformance(self, two_contig):
        bai = build_bai(two_contig["bam"])
        linear = build_linear_index(two_contig["bam"])
        assert isinstance(bai, RandomAccessIndex)
        assert isinstance(linear, RandomAccessIndex)
        assert bai.contigs() == ["ctgA", "ctgB"]
        assert linear.contigs() == ["ctgA", "ctgB"]

    def test_linear_plan_equivalent(self, two_contig):
        """The linear index's open-ended plan reaches the same record
        set as the BAI's binned plan."""
        linear = build_linear_index(two_contig["bam"])
        for contig, start, end in [("ctgA", 300, 500), ("ctgB", 100, 250)]:
            plan = linear.chunks_for(contig, start, end)
            assert len(plan) == 1 and plan[0].vend == MAX_VOFFSET
            got = scan_plan(two_contig["bam"], plan, contig, start, end)
            want = brute_force_overlaps(two_contig["bam"], contig, start, end)
            assert got == want


def vcf_bytes(result, contigs):
    buf = io.StringIO()
    write_vcf(buf, [c.to_vcf_record() for c in result.calls], reference=contigs)
    return buf.getvalue()


class TestPipelineEquivalence:
    """BAI-path region calls are byte-identical to the linear path."""

    REGIONS = [
        [Region("ctgA", 100, 700)],
        [Region("ctgB", 50, 550)],
        [Region("ctgA", 0, 900), Region("ctgB", 0, 600)],
    ]

    @pytest.mark.parametrize("regions", REGIONS)
    def test_bai_vs_linear_byte_identical(self, two_contig, regions):
        contigs = [(name, two_contig["lengths"][name])
                   for name in ("ctgA", "ctgB")]
        outputs = {}
        for label, index in [
            ("linear", None),
            ("bai", build_bai_index(two_contig["bam"])),
        ]:
            source = BamSource(
                two_contig["bam"],
                two_contig["refs"],
                regions=regions,
                index=index,
            )
            outputs[label] = vcf_bytes(Pipeline(source).run(), contigs)
        assert outputs["bai"] == outputs["linear"]
        assert outputs["bai"].count("\n") > len(contigs)  # not header-only

    def test_sidecar_path_byte_identical(self, two_contig):
        """``index=<path>`` (the CLI ``--index`` route) loads the
        sidecar and produces the same calls as the in-memory index."""
        contigs = [(name, two_contig["lengths"][name])
                   for name in ("ctgA", "ctgB")]
        bai_path = two_contig["root"] / "sidecar.bai"
        build_bai_index(two_contig["bam"]).save(bai_path)
        regions = [Region("ctgA", 150, 800), Region("ctgB", 0, 400)]
        results = {}
        for label, index in [("memory", None), ("sidecar", bai_path)]:
            source = BamSource(
                two_contig["bam"],
                two_contig["refs"],
                regions=regions,
                index=index,
            )
            results[label] = vcf_bytes(Pipeline(source).run(), contigs)
        assert results["sidecar"] == results["memory"]

    def test_threaded_bai_matches_serial(self, two_contig):
        from repro.pipeline import ExecutionPolicy

        contigs = [(name, two_contig["lengths"][name])
                   for name in ("ctgA", "ctgB")]
        index = build_bai_index(two_contig["bam"])
        serial = Pipeline(
            BamSource(two_contig["bam"], two_contig["refs"], index=index)
        ).run()
        threaded = Pipeline(
            BamSource(two_contig["bam"], two_contig["refs"], index=index),
            policy=ExecutionPolicy(
                mode="thread", n_workers=3, chunk_columns=128
            ),
        ).run()
        assert vcf_bytes(threaded, contigs) == vcf_bytes(serial, contigs)

    def test_cache_stats_reported(self, two_contig):
        source = BamSource(
            two_contig["bam"], two_contig["refs"], cache_blocks=4
        )
        result = Pipeline(source).run()
        stats = result.stats.to_dict()
        assert stats["cache_misses"] > 0
        assert stats["cache_hits"] >= 0
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        io_stats = source.io_stats()
        assert io_stats["blocks_read"] > 0
        assert io_stats["cache_misses"] == stats["cache_misses"]

    def test_invalid_cache_blocks_rejected(self, two_contig):
        with pytest.raises(ValueError, match="cache_blocks"):
            BamSource(
                two_contig["bam"], two_contig["refs"], cache_blocks=0
            )


class TestMultiContigIndexPersistence:
    def test_save_load_round_trip(self, two_contig):
        index = build_linear_index(two_contig["bam"])
        path = two_contig["root"] / "multi.rmi"
        index.save(path)
        loaded = MultiContigIndex.load(path)
        assert list(loaded) == list(index)
        for name in index:
            assert loaded[name].checkpoints == index[name].checkpoints
            assert loaded[name].max_read_span == index[name].max_read_span
            assert loaded[name].data_start == index[name].data_start

    def test_mapping_interface(self, two_contig):
        index = build_linear_index(two_contig["bam"])
        assert len(index) == 2
        assert "ctgA" in index
        assert index.get("nope") is None

    def test_load_index_sniffs_bai(self, two_contig):
        path = two_contig["root"] / "sniff.bai"
        build_bai_index(two_contig["bam"]).save(path)
        index = load_index(path, names=["ctgA", "ctgB"])
        assert isinstance(index, BaiIndex)
        assert index.contigs() == ["ctgA", "ctgB"]

    def test_load_index_sniffs_multi(self, two_contig):
        path = two_contig["root"] / "sniff.rmi"
        build_linear_index(two_contig["bam"]).save(path)
        index = load_index(path)
        assert isinstance(index, MultiContigIndex)
        assert index.contigs() == ["ctgA", "ctgB"]

    def test_load_index_sniffs_legacy_linear(self, two_contig):
        index = build_linear_index(two_contig["bam"])
        path = two_contig["root"] / "sniff.rli"
        index["ctgA"].save(path)
        wrapped = load_index(path, names=["ctgA", "ctgB"])
        assert wrapped.contigs() == ["ctgA"]
        with pytest.raises(ValueError, match="names"):
            load_index(path)

    def test_load_index_unknown_magic(self, two_contig):
        path = two_contig["root"] / "garbage.idx"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="magic"):
            load_index(path)


class TestDeprecationShims:
    def test_build_multi_index_warns_and_matches(self, two_contig):
        from repro.io.linear_index import build_multi_index

        with pytest.warns(DeprecationWarning, match="build_multi_index"):
            old = build_multi_index(two_contig["bam"])
        new = build_linear_index(two_contig["bam"])
        assert isinstance(old, dict)  # byte-identical legacy return type
        assert set(old) == set(new)
        for name in old:
            assert old[name].checkpoints == new[name].checkpoints
            assert old[name].data_start == new[name].data_start

    def test_build_index_warns(self, two_contig):
        from repro.io.linear_index import build_index

        with pytest.warns(DeprecationWarning, match="build_index"):
            with pytest.raises(ValueError, match="contigs"):
                build_index(two_contig["bam"])  # two contigs -> error
