"""Tests for the tracer and the Figure 2 timeline/metrics."""

import threading
import time

from repro.parallel.trace import (
    Category,
    TraceEvent,
    Tracer,
    imbalance_metrics,
    render_timeline,
)


class TestTracer:
    def test_record_and_events(self):
        tr = Tracer()
        tr.record(0, Category.PROB, 1.0, 2.0)
        (event,) = tr.events
        assert event.worker == 0
        assert event.category is Category.PROB
        assert event.duration == 1.0

    def test_span_context_manager(self):
        tr = Tracer()
        with tr.span(3, Category.BAM_ITER):
            time.sleep(0.01)
        (event,) = tr.events
        assert event.worker == 3
        assert event.duration >= 0.009

    def test_thread_safety(self):
        tr = Tracer()

        def spam(w):
            for i in range(500):
                tr.record(w, Category.SCHED, i, i + 0.5)

        threads = [threading.Thread(target=spam, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.events) == 3000

    def test_merge(self):
        a, b = Tracer(), Tracer()
        a.record(0, Category.PROB, 0, 1)
        b.record(1, Category.BARRIER, 1, 2)
        a.merge(b)
        assert len(a.events) == 2


class TestTimeline:
    def test_renders_rows_per_worker(self):
        events = [
            TraceEvent(0, Category.PROB, 0.0, 1.0),
            TraceEvent(1, Category.BAM_ITER, 0.0, 0.5),
            TraceEvent(1, Category.BARRIER, 0.5, 1.0),
        ]
        text = render_timeline(events, width=20)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 workers
        assert "T00" in lines[1] and "T01" in lines[2]
        assert "P" in lines[1]
        assert "b" in lines[2] and "=" in lines[2]

    def test_dominant_category_wins_bucket(self):
        events = [
            TraceEvent(0, Category.PROB, 0.0, 0.9),
            TraceEvent(0, Category.SCHED, 0.9, 1.0),
        ]
        text = render_timeline(events, width=10)
        row = text.splitlines()[1]
        assert row.count("P") >= 8

    def test_empty(self):
        assert render_timeline([]) == "(no events)"


class TestMetrics:
    def test_balanced_run(self):
        events = [
            TraceEvent(w, Category.PROB, 0.0, 1.0) for w in range(4)
        ]
        m = imbalance_metrics(events)
        assert m["imbalance"] == 1.0
        assert m["barrier_total"] == 0.0
        assert m["share_prob"] == 1.0

    def test_straggler_detected(self):
        """One worker stuck with a heavy chunk, as in the paper's
        Figure 2."""
        events = [TraceEvent(w, Category.PROB, 0.0, 1.0) for w in range(3)]
        events.append(TraceEvent(3, Category.PROB, 0.0, 4.0))
        events.extend(
            TraceEvent(w, Category.BARRIER, 1.0, 4.0) for w in range(3)
        )
        m = imbalance_metrics(events)
        assert m["imbalance"] > 2.0
        assert m["barrier_total"] == 9.0

    def test_category_shares_sum_to_one(self):
        events = [
            TraceEvent(0, Category.PROB, 0, 3),
            TraceEvent(0, Category.BAM_ITER, 3, 4),
            TraceEvent(0, Category.DECOMPRESS, 4, 4.5),
        ]
        m = imbalance_metrics(events)
        total = (
            m["share_prob"] + m["share_bam_iter"] + m["share_decompress"]
            + m["share_sched"]
        )
        assert abs(total - 1.0) < 1e-12

    def test_empty(self):
        assert imbalance_metrics([]) == {}
