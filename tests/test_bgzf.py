"""Unit tests for the BGZF codec."""

import gzip
import io

import pytest

from repro.io.bgzf import (
    BGZF_EOF,
    BgzfReader,
    BgzfWriter,
    block_offsets,
    make_virtual_offset,
    split_virtual_offset,
)


def roundtrip(payload: bytes) -> bytes:
    buf = io.BytesIO()
    with BgzfWriter(buf) as writer:
        writer.write(payload)
    buf.seek(0)
    with BgzfReader(buf) as reader:
        return reader.read()


class TestVirtualOffsets:
    def test_pack_unpack(self):
        v = make_virtual_offset(123456, 789)
        assert split_virtual_offset(v) == (123456, 789)

    def test_within_out_of_range_raises(self):
        with pytest.raises(ValueError):
            make_virtual_offset(0, 1 << 16)

    def test_negative_block_raises(self):
        with pytest.raises(ValueError):
            make_virtual_offset(-1, 0)


class TestRoundTrip:
    def test_small_payload(self):
        assert roundtrip(b"hello bgzf") == b"hello bgzf"

    def test_empty_payload(self):
        assert roundtrip(b"") == b""

    def test_multi_block_payload(self):
        payload = bytes(range(256)) * 1024  # 256 KiB -> 4+ blocks
        assert roundtrip(payload) == payload

    def test_exact_block_boundary(self):
        from repro.io.bgzf import MAX_BLOCK_DATA

        payload = b"x" * (2 * MAX_BLOCK_DATA)
        assert roundtrip(payload) == payload

    def test_incompressible_data(self):
        import random

        random.seed(0)
        payload = bytes(random.getrandbits(8) for _ in range(100_000))
        assert roundtrip(payload) == payload


class TestFormatCompliance:
    def test_output_is_valid_gzip(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"gzip compatible payload")
        # Standard gzip must be able to read a BGZF file (concatenated members).
        assert gzip.decompress(buf.getvalue()) == b"gzip compatible payload"

    def test_eof_marker_present(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"data")
        assert buf.getvalue().endswith(BGZF_EOF)

    def test_eof_marker_is_itself_valid_bgzf(self):
        reader = BgzfReader(io.BytesIO(BGZF_EOF))
        assert reader.read() == b""

    def test_non_bgzf_gzip_rejected(self):
        plain = gzip.compress(b"not bgzf")
        with pytest.raises(ValueError, match="FEXTRA|BC"):
            BgzfReader(io.BytesIO(plain))

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            BgzfReader(io.BytesIO(b"garbage data here"))

    def test_crc_corruption_detected(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"A" * 1000)
        raw = bytearray(buf.getvalue())
        # Flip a payload byte in the first block (after the 18-byte header).
        raw[25] ^= 0xFF
        with pytest.raises(Exception):  # zlib error or CRC mismatch
            BgzfReader(io.BytesIO(bytes(raw))).read()


class TestSeek:
    def test_seek_to_recorded_offset(self):
        buf = io.BytesIO()
        writer = BgzfWriter(buf)
        writer.write(b"A" * 1000)
        mark = writer.tell()
        writer.write(b"B" * 1000)
        writer.close()
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.seek(mark)
        assert reader.read(5) == b"BBBBB"

    def test_seek_across_blocks(self):
        from repro.io.bgzf import MAX_BLOCK_DATA

        buf = io.BytesIO()
        writer = BgzfWriter(buf)
        writer.write(b"A" * MAX_BLOCK_DATA)
        mark = writer.tell()
        writer.write(b"C" * 10)
        writer.close()
        buf.seek(0)
        reader = BgzfReader(buf)
        assert reader.seek(mark) == reader.tell()
        assert reader.read() == b"C" * 10

    def test_tell_read_consistency(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(bytes(range(200)))
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.read(100)
        mark = reader.tell()
        rest_a = reader.read()
        reader.seek(mark)
        rest_b = reader.read()
        assert rest_a == rest_b == bytes(range(100, 200))

    def test_readexact_raises_at_eof(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"xy")
        buf.seek(0)
        reader = BgzfReader(buf)
        with pytest.raises(EOFError):
            reader.readexact(10)


class TestBlockOffsets:
    def test_offsets_enumerate_blocks(self):
        from repro.io.bgzf import MAX_BLOCK_DATA

        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"z" * int(MAX_BLOCK_DATA * 2.5))
        buf.seek(0)
        offsets = block_offsets(buf)
        assert len(offsets) == 3
        assert offsets[0] == 0
        assert offsets == sorted(offsets)

    def test_blocks_read_counter(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"q" * 200_000)
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.read()
        assert reader.blocks_read >= 3
        assert reader.time_decompress > 0.0


class TestBlockCache:
    """The decompressed-block LRU behind seek-heavy region queries."""

    @staticmethod
    def _multi_block_stream(n_blocks=4, block_payload=60_000):
        """A BGZF stream of several full blocks; returns (buffer,
        payload)."""
        payload = bytes(
            (i * 7 + j) & 0xFF
            for i in range(n_blocks)
            for j in range(block_payload)
        )
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(payload)
        buf.seek(0)
        return buf, payload

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            BgzfReader(io.BytesIO(BGZF_EOF), cache_blocks=0)

    def test_default_reader_counts_misses_only_forward(self):
        buf, payload = self._multi_block_stream()
        with BgzfReader(buf) as reader:
            assert reader.cache_blocks == 1
            assert reader.read() == payload
            # Forward streaming never revisits a block: all misses
            # (the trailing EOF-marker probe is a miss too, but only
            # real payload blocks count as read).
            assert reader.cache_hits == 0
            assert reader.blocks_read <= reader.cache_misses <= reader.blocks_read + 1

    def test_re_seek_hits_with_cache(self):
        buf, payload = self._multi_block_stream()
        offsets = block_offsets(buf)
        buf.seek(0)
        with BgzfReader(buf, cache_blocks=8) as reader:
            reader.read()  # cold pass inflates every block
            cold_blocks = reader.blocks_read
            for start in offsets[:3]:
                reader.seek(make_virtual_offset(start, 0))
                reader.read(1000)
            # Warm re-reads are served from the buffer: no new
            # inflation, three hits.
            assert reader.blocks_read == cold_blocks
            assert reader.cache_hits >= 3

    def test_single_block_cache_evicts_on_movement(self):
        buf, payload = self._multi_block_stream()
        offsets = block_offsets(buf)
        buf.seek(0)
        with BgzfReader(buf, cache_blocks=1) as reader:
            a = make_virtual_offset(offsets[0], 0)
            b = make_virtual_offset(offsets[1], 0)
            for voffset in (a, b, a, b):
                reader.seek(voffset)
                reader.read(10)
            # Capacity 1 ping-pong: every fetch after the first evicts.
            assert reader.cache_hits == 0
            assert reader.cache_evictions >= 2
            assert reader.blocks_read >= 4

    def test_cache_does_not_change_bytes(self):
        buf, payload = self._multi_block_stream()
        raw = buf.getvalue()
        plain = BgzfReader(io.BytesIO(raw)).read()
        cached_reader = BgzfReader(io.BytesIO(raw), cache_blocks=16)
        first = cached_reader.read()
        cached_reader.seek(0)
        second = cached_reader.read()
        assert plain == payload
        assert first == payload
        assert second == payload

    def test_eviction_bounds_residency(self):
        buf, _ = self._multi_block_stream(n_blocks=6)
        with BgzfReader(buf, cache_blocks=2) as reader:
            reader.read()
            # 6+ blocks streamed through a 2-slot buffer.
            assert reader.cache_evictions >= 4
