"""Unit tests for the BGZF codec."""

import gzip
import io

import pytest

from repro.io.bgzf import (
    BGZF_EOF,
    BgzfReader,
    BgzfWriter,
    block_offsets,
    make_virtual_offset,
    split_virtual_offset,
)


def roundtrip(payload: bytes) -> bytes:
    buf = io.BytesIO()
    with BgzfWriter(buf) as writer:
        writer.write(payload)
    buf.seek(0)
    with BgzfReader(buf) as reader:
        return reader.read()


class TestVirtualOffsets:
    def test_pack_unpack(self):
        v = make_virtual_offset(123456, 789)
        assert split_virtual_offset(v) == (123456, 789)

    def test_within_out_of_range_raises(self):
        with pytest.raises(ValueError):
            make_virtual_offset(0, 1 << 16)

    def test_negative_block_raises(self):
        with pytest.raises(ValueError):
            make_virtual_offset(-1, 0)


class TestRoundTrip:
    def test_small_payload(self):
        assert roundtrip(b"hello bgzf") == b"hello bgzf"

    def test_empty_payload(self):
        assert roundtrip(b"") == b""

    def test_multi_block_payload(self):
        payload = bytes(range(256)) * 1024  # 256 KiB -> 4+ blocks
        assert roundtrip(payload) == payload

    def test_exact_block_boundary(self):
        from repro.io.bgzf import MAX_BLOCK_DATA

        payload = b"x" * (2 * MAX_BLOCK_DATA)
        assert roundtrip(payload) == payload

    def test_incompressible_data(self):
        import random

        random.seed(0)
        payload = bytes(random.getrandbits(8) for _ in range(100_000))
        assert roundtrip(payload) == payload


class TestFormatCompliance:
    def test_output_is_valid_gzip(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"gzip compatible payload")
        # Standard gzip must be able to read a BGZF file (concatenated members).
        assert gzip.decompress(buf.getvalue()) == b"gzip compatible payload"

    def test_eof_marker_present(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"data")
        assert buf.getvalue().endswith(BGZF_EOF)

    def test_eof_marker_is_itself_valid_bgzf(self):
        reader = BgzfReader(io.BytesIO(BGZF_EOF))
        assert reader.read() == b""

    def test_non_bgzf_gzip_rejected(self):
        plain = gzip.compress(b"not bgzf")
        with pytest.raises(ValueError, match="FEXTRA|BC"):
            BgzfReader(io.BytesIO(plain))

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            BgzfReader(io.BytesIO(b"garbage data here"))

    def test_crc_corruption_detected(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"A" * 1000)
        raw = bytearray(buf.getvalue())
        # Flip a payload byte in the first block (after the 18-byte header).
        raw[25] ^= 0xFF
        with pytest.raises(Exception):  # zlib error or CRC mismatch
            BgzfReader(io.BytesIO(bytes(raw))).read()


class TestSeek:
    def test_seek_to_recorded_offset(self):
        buf = io.BytesIO()
        writer = BgzfWriter(buf)
        writer.write(b"A" * 1000)
        mark = writer.tell()
        writer.write(b"B" * 1000)
        writer.close()
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.seek(mark)
        assert reader.read(5) == b"BBBBB"

    def test_seek_across_blocks(self):
        from repro.io.bgzf import MAX_BLOCK_DATA

        buf = io.BytesIO()
        writer = BgzfWriter(buf)
        writer.write(b"A" * MAX_BLOCK_DATA)
        mark = writer.tell()
        writer.write(b"C" * 10)
        writer.close()
        buf.seek(0)
        reader = BgzfReader(buf)
        assert reader.seek(mark) == reader.tell()
        assert reader.read() == b"C" * 10

    def test_tell_read_consistency(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(bytes(range(200)))
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.read(100)
        mark = reader.tell()
        rest_a = reader.read()
        reader.seek(mark)
        rest_b = reader.read()
        assert rest_a == rest_b == bytes(range(100, 200))

    def test_readexact_raises_at_eof(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"xy")
        buf.seek(0)
        reader = BgzfReader(buf)
        with pytest.raises(EOFError):
            reader.readexact(10)


class TestBlockOffsets:
    def test_offsets_enumerate_blocks(self):
        from repro.io.bgzf import MAX_BLOCK_DATA

        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"z" * int(MAX_BLOCK_DATA * 2.5))
        buf.seek(0)
        offsets = block_offsets(buf)
        assert len(offsets) == 3
        assert offsets[0] == 0
        assert offsets == sorted(offsets)

    def test_blocks_read_counter(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"q" * 200_000)
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.read()
        assert reader.blocks_read >= 3
        assert reader.time_decompress > 0.0
