"""Unit tests for the BGZF codec."""

import gzip
import io

import pytest

from repro.io.bgzf import (
    BGZF_EOF,
    BgzfReader,
    BgzfWriter,
    block_offsets,
    make_virtual_offset,
    split_virtual_offset,
)


def roundtrip(payload: bytes) -> bytes:
    buf = io.BytesIO()
    with BgzfWriter(buf) as writer:
        writer.write(payload)
    buf.seek(0)
    with BgzfReader(buf) as reader:
        return reader.read()


class TestVirtualOffsets:
    def test_pack_unpack(self):
        v = make_virtual_offset(123456, 789)
        assert split_virtual_offset(v) == (123456, 789)

    def test_within_out_of_range_raises(self):
        with pytest.raises(ValueError):
            make_virtual_offset(0, 1 << 16)

    def test_negative_block_raises(self):
        with pytest.raises(ValueError):
            make_virtual_offset(-1, 0)


class TestRoundTrip:
    def test_small_payload(self):
        assert roundtrip(b"hello bgzf") == b"hello bgzf"

    def test_empty_payload(self):
        assert roundtrip(b"") == b""

    def test_multi_block_payload(self):
        payload = bytes(range(256)) * 1024  # 256 KiB -> 4+ blocks
        assert roundtrip(payload) == payload

    def test_exact_block_boundary(self):
        from repro.io.bgzf import MAX_BLOCK_DATA

        payload = b"x" * (2 * MAX_BLOCK_DATA)
        assert roundtrip(payload) == payload

    def test_incompressible_data(self):
        import random

        random.seed(0)
        payload = bytes(random.getrandbits(8) for _ in range(100_000))
        assert roundtrip(payload) == payload


class TestFormatCompliance:
    def test_output_is_valid_gzip(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"gzip compatible payload")
        # Standard gzip must be able to read a BGZF file (concatenated members).
        assert gzip.decompress(buf.getvalue()) == b"gzip compatible payload"

    def test_eof_marker_present(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"data")
        assert buf.getvalue().endswith(BGZF_EOF)

    def test_eof_marker_is_itself_valid_bgzf(self):
        reader = BgzfReader(io.BytesIO(BGZF_EOF))
        assert reader.read() == b""

    def test_non_bgzf_gzip_rejected(self):
        plain = gzip.compress(b"not bgzf")
        with pytest.raises(ValueError, match="FEXTRA|BC"):
            BgzfReader(io.BytesIO(plain))

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            BgzfReader(io.BytesIO(b"garbage data here"))

    def test_crc_corruption_detected(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"A" * 1000)
        raw = bytearray(buf.getvalue())
        # Flip a payload byte in the first block (after the 18-byte header).
        raw[25] ^= 0xFF
        with pytest.raises(Exception):  # zlib error or CRC mismatch
            BgzfReader(io.BytesIO(bytes(raw))).read()


class TestSeek:
    def test_seek_to_recorded_offset(self):
        buf = io.BytesIO()
        writer = BgzfWriter(buf)
        writer.write(b"A" * 1000)
        mark = writer.tell()
        writer.write(b"B" * 1000)
        writer.close()
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.seek(mark)
        assert reader.read(5) == b"BBBBB"

    def test_seek_across_blocks(self):
        from repro.io.bgzf import MAX_BLOCK_DATA

        buf = io.BytesIO()
        writer = BgzfWriter(buf)
        writer.write(b"A" * MAX_BLOCK_DATA)
        mark = writer.tell()
        writer.write(b"C" * 10)
        writer.close()
        buf.seek(0)
        reader = BgzfReader(buf)
        assert reader.seek(mark) == reader.tell()
        assert reader.read() == b"C" * 10

    def test_tell_read_consistency(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(bytes(range(200)))
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.read(100)
        mark = reader.tell()
        rest_a = reader.read()
        reader.seek(mark)
        rest_b = reader.read()
        assert rest_a == rest_b == bytes(range(100, 200))

    def test_readexact_raises_at_eof(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"xy")
        buf.seek(0)
        reader = BgzfReader(buf)
        with pytest.raises(EOFError):
            reader.readexact(10)


class TestBlockOffsets:
    def test_offsets_enumerate_blocks(self):
        from repro.io.bgzf import MAX_BLOCK_DATA

        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"z" * int(MAX_BLOCK_DATA * 2.5))
        buf.seek(0)
        offsets = block_offsets(buf)
        assert len(offsets) == 3
        assert offsets[0] == 0
        assert offsets == sorted(offsets)

    def test_blocks_read_counter(self):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(b"q" * 200_000)
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.read()
        assert reader.blocks_read >= 3
        assert reader.time_decompress > 0.0


class TestBlockCache:
    """The decompressed-block LRU behind seek-heavy region queries."""

    @staticmethod
    def _multi_block_stream(n_blocks=4, block_payload=60_000):
        """A BGZF stream of several full blocks; returns (buffer,
        payload)."""
        payload = bytes(
            (i * 7 + j) & 0xFF
            for i in range(n_blocks)
            for j in range(block_payload)
        )
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(payload)
        buf.seek(0)
        return buf, payload

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            BgzfReader(io.BytesIO(BGZF_EOF), cache_blocks=0)

    def test_default_reader_counts_misses_only_forward(self):
        buf, payload = self._multi_block_stream()
        with BgzfReader(buf) as reader:
            assert reader.cache_blocks == 1
            assert reader.read() == payload
            # Forward streaming never revisits a block: all misses
            # (the trailing EOF-marker probe is a miss too, but only
            # real payload blocks count as read).
            assert reader.cache_hits == 0
            assert reader.blocks_read <= reader.cache_misses <= reader.blocks_read + 1

    def test_re_seek_hits_with_cache(self):
        buf, payload = self._multi_block_stream()
        offsets = block_offsets(buf)
        buf.seek(0)
        with BgzfReader(buf, cache_blocks=8) as reader:
            reader.read()  # cold pass inflates every block
            cold_blocks = reader.blocks_read
            for start in offsets[:3]:
                reader.seek(make_virtual_offset(start, 0))
                reader.read(1000)
            # Warm re-reads are served from the buffer: no new
            # inflation, three hits.
            assert reader.blocks_read == cold_blocks
            assert reader.cache_hits >= 3

    def test_single_block_cache_evicts_on_movement(self):
        buf, payload = self._multi_block_stream()
        offsets = block_offsets(buf)
        buf.seek(0)
        with BgzfReader(buf, cache_blocks=1) as reader:
            a = make_virtual_offset(offsets[0], 0)
            b = make_virtual_offset(offsets[1], 0)
            for voffset in (a, b, a, b):
                reader.seek(voffset)
                reader.read(10)
            # Capacity 1 ping-pong: every fetch after the first evicts.
            assert reader.cache_hits == 0
            assert reader.cache_evictions >= 2
            assert reader.blocks_read >= 4

    def test_cache_does_not_change_bytes(self):
        buf, payload = self._multi_block_stream()
        raw = buf.getvalue()
        plain = BgzfReader(io.BytesIO(raw)).read()
        cached_reader = BgzfReader(io.BytesIO(raw), cache_blocks=16)
        first = cached_reader.read()
        cached_reader.seek(0)
        second = cached_reader.read()
        assert plain == payload
        assert first == payload
        assert second == payload

    def test_eviction_bounds_residency(self):
        buf, _ = self._multi_block_stream(n_blocks=6)
        with BgzfReader(buf, cache_blocks=2) as reader:
            reader.read()
            # 6+ blocks streamed through a 2-slot buffer.
            assert reader.cache_evictions >= 4


# -- parallel codec ----------------------------------------------------------

import random as _random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.bgzf import MAX_BLOCK_DATA

THREAD_COUNTS = [0, 1, 2, 4]


def _bgzf_bytes(payload: bytes, level: int = 6) -> bytes:
    buf = io.BytesIO()
    with BgzfWriter(buf, compresslevel=level) as writer:
        writer.write(payload)
    return buf.getvalue()


def _read_outcome(raw: bytes, threads: int):
    """Consume a (possibly malformed) stream; returns either
    ("ok", bytes) or ("err", exception type, message)."""
    try:
        with BgzfReader(
            io.BytesIO(raw), cache_blocks=4, decompress_threads=threads
        ) as reader:
            return ("ok", reader.read())
    except Exception as exc:  # noqa: BLE001 - the outcome IS the test
        return ("err", type(exc), str(exc))


class TestParallelReaderFuzz:
    """Hypothesis: the pooled reader is indistinguishable from serial."""

    @given(
        payload=st.binary(max_size=300_000),
        threads=st.sampled_from(THREAD_COUNTS),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_matches_serial(self, payload, threads):
        raw = _bgzf_bytes(payload)
        with BgzfReader(io.BytesIO(raw)) as serial:
            expect = serial.read()
        with BgzfReader(
            io.BytesIO(raw), cache_blocks=3, decompress_threads=threads
        ) as pooled:
            assert pooled.read() == expect == payload

    @given(
        payload=st.binary(min_size=1, max_size=300_000),
        threads=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_seek_after_prefetch_lands_on_serial_bytes(
        self, payload, threads, seed
    ):
        raw = _bgzf_bytes(payload)
        rng = _random.Random(seed)
        serial = BgzfReader(io.BytesIO(raw))
        pooled = BgzfReader(
            io.BytesIO(raw), cache_blocks=2, decompress_threads=threads
        )
        try:
            for _ in range(8):
                n = rng.randint(0, 4000)
                a, b = serial.read(n), pooled.read(n)
                assert a == b
                assert serial.tell() == pooled.tell()
                if rng.random() < 0.6:
                    # Seek to a virtual offset the serial reader can
                    # name (possibly backwards into cached blocks,
                    # possibly forward past prefetched ones).
                    target = rng.randint(0, len(payload))
                    serial.seek(0)
                    serial.read(target)
                    mark = serial.tell()
                    assert pooled.seek(mark) == mark
                    serial.seek(mark)
        finally:
            serial.close()
            pooled.close()

    @given(
        payload=st.binary(min_size=1, max_size=200_000),
        threads=st.sampled_from(THREAD_COUNTS),
        mode=st.sampled_from(["truncate", "flip", "drop_eof"]),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_corrupt_streams_fail_identically(
        self, payload, threads, mode, seed
    ):
        raw = bytearray(_bgzf_bytes(payload))
        rng = _random.Random(seed)
        if mode == "truncate":
            raw = raw[: rng.randint(1, len(raw) - 1)]
        elif mode == "flip":
            raw[rng.randrange(len(raw) - len(BGZF_EOF))] ^= 0xFF
        else:  # drop_eof
            raw = raw[: -len(BGZF_EOF)]
        raw = bytes(raw)
        serial = _read_outcome(raw, 0)
        pooled = _read_outcome(raw, threads)
        # Same success bytes, or same exception type and message --
        # the pool defers prefetch errors to the consumption point, so
        # even failures are indistinguishable from serial.
        assert pooled == serial


class TestParallelWriterFuzz:
    """Hypothesis: the pooled writer's bytes are bit-identical."""

    @given(
        payload=st.binary(max_size=300_000),
        threads=st.sampled_from(THREAD_COUNTS),
        chunk=st.integers(1, 100_000),
        level=st.sampled_from([1, 6, 9]),
    )
    @settings(max_examples=30, deadline=None)
    def test_bytes_identical_to_serial(self, payload, threads, chunk, level):
        expect = _bgzf_bytes(payload, level)
        buf = io.BytesIO()
        with BgzfWriter(
            buf, compresslevel=level, compress_threads=threads
        ) as writer:
            for i in range(0, len(payload), chunk):
                writer.write(payload[i : i + chunk])
        assert buf.getvalue() == expect

    @given(
        parts=st.lists(st.binary(max_size=80_000), max_size=5),
        threads=st.sampled_from(THREAD_COUNTS),
    )
    @settings(max_examples=20, deadline=None)
    def test_tell_matches_serial_mid_stream(self, parts, threads):
        serial_buf, pooled_buf = io.BytesIO(), io.BytesIO()
        serial = BgzfWriter(serial_buf)
        pooled = BgzfWriter(pooled_buf, compress_threads=threads)
        for part in parts:
            serial.write(part)
            pooled.write(part)
            assert pooled.tell() == serial.tell()
        serial.close()
        pooled.close()
        assert pooled_buf.getvalue() == serial_buf.getvalue()


class TestReaderPool:
    """Deterministic pooled-reader behaviour: knobs and counters."""

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError, match="decompress_threads"):
            BgzfReader(io.BytesIO(BGZF_EOF), decompress_threads=-1)

    def test_non_positive_readahead_rejected(self):
        with pytest.raises(ValueError, match="readahead"):
            BgzfReader(
                io.BytesIO(BGZF_EOF), decompress_threads=2, readahead=0
            )

    def test_sequential_scan_prefetches(self):
        raw = _bgzf_bytes(bytes(range(256)) * 1024)  # several blocks
        with BgzfReader(
            io.BytesIO(raw), cache_blocks=2, decompress_threads=2
        ) as reader:
            reader.read()
            # Every block after the first is produced by the pool.
            assert reader.prefetch_hits == reader.blocks_read - 1
            assert reader.prefetch_wasted == 0
            assert reader.pool_depth_peak >= 1
            # Pool counters never leak into the serial-equivalent ones.
            assert reader.cache_hits == 0
            assert reader.cache_misses == reader.blocks_read

    def test_abandoned_prefetch_counts_wasted(self):
        raw = _bgzf_bytes(bytes(range(256)) * 2048)  # ~8 blocks
        reader = BgzfReader(
            io.BytesIO(raw), cache_blocks=1, decompress_threads=4
        )
        reader.read(10)  # block 0 consumed; blocks 1.. are in flight
        reader.close()  # never consumed
        assert reader.prefetch_wasted > 0
        assert reader.prefetch_hits == 0

    def test_serial_reader_has_zero_pool_counters(self):
        raw = _bgzf_bytes(b"x" * 200_000)
        with BgzfReader(io.BytesIO(raw)) as reader:
            reader.read()
            assert reader.decompress_threads == 0
            assert reader.prefetch_hits == 0
            assert reader.prefetch_wasted == 0
            assert reader.pool_depth_peak == 0


class TestParallelWriterKnobs:
    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError, match="compress_threads"):
            BgzfWriter(io.BytesIO(), compress_threads=-1)

    def test_non_positive_inflight_rejected(self):
        with pytest.raises(ValueError, match="inflight_blocks"):
            BgzfWriter(io.BytesIO(), compress_threads=2, inflight_blocks=0)

    def test_seek_marks_work_with_pool(self):
        buf = io.BytesIO()
        writer = BgzfWriter(buf, compress_threads=3)
        writer.write(b"A" * MAX_BLOCK_DATA)
        mark = writer.tell()
        writer.write(b"B" * 1000)
        writer.close()
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.seek(mark)
        assert reader.read(5) == b"BBBBB"

    def test_pool_depth_peak_tracks_backlog(self):
        buf = io.BytesIO()
        with BgzfWriter(buf, compress_threads=2) as writer:
            writer.write(b"z" * (MAX_BLOCK_DATA * 6))
        assert writer.pool_depth_peak >= 1
        assert writer.blocks_written >= 6


class TestEofProbeRegression:
    """Repeated probes at physical EOF must neither populate the block
    cache nor skew hit/miss counters -- serial and pooled alike."""

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_probes_leave_counters_and_cache_alone(self, threads):
        raw = _bgzf_bytes(bytes(range(256)) * 1024)
        with BgzfReader(
            io.BytesIO(raw), cache_blocks=8, decompress_threads=threads
        ) as reader:
            assert reader.read() == bytes(range(256)) * 1024
            hits, misses = reader.cache_hits, reader.cache_misses
            blocks, evict = reader.blocks_read, reader.cache_evictions
            resident = len(reader._buffers)
            end = reader.tell()
            for _ in range(5):
                reader.seek(end)
                assert reader.read() == b""
            assert reader.cache_hits == hits
            assert reader.cache_misses == misses
            assert reader.blocks_read == blocks
            assert reader.cache_evictions == evict
            assert len(reader._buffers) == resident

    def test_probe_beyond_known_eof_short_circuits(self):
        raw = _bgzf_bytes(b"tiny")
        with BgzfReader(io.BytesIO(raw), decompress_threads=2) as reader:
            reader.read()
            probes = reader._cached_block_at(len(raw))
            assert probes == (b"", 0)
            again = reader._cached_block_at(len(raw) + 100)
            assert again == (b"", 0)
            assert reader.cache_misses == reader.blocks_read
