"""Property-based tests (hypothesis) for the statistics layer.

These encode the DESIGN.md invariants: agreement of independent exact
methods, the Hodges--Le Cam bound, monotonicity, and the conservatism
of the pruned DP.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.approximation import le_cam_bound, poisson_tail_approx
from repro.stats.dftcf import poibin_pmf_dftcf
from repro.stats.normal_approx import poibin_cdf_refined_normal
from repro.stats.poisson import poisson_cdf, poisson_sf
from repro.stats.poisson_binomial import (
    poibin_pmf_dp,
    poibin_sf_brute_force,
    poibin_sf_dp,
)

probs_small = hnp.arrays(
    np.float64,
    st.integers(1, 12),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)

probs_column = hnp.arrays(
    np.float64,
    st.integers(1, 300),
    elements=st.floats(0.0, 0.2, allow_nan=False),
)


class TestExactMethodsAgree:
    @given(probs_small, st.integers(0, 14))
    @settings(max_examples=60, deadline=None)
    def test_dp_equals_brute_force(self, p, k):
        assert poibin_sf_dp(k, p).pvalue == pytest.approx(
            poibin_sf_brute_force(k, p), abs=1e-10
        )

    @given(probs_column)
    @settings(max_examples=40, deadline=None)
    def test_dp_pmf_equals_dftcf_pmf(self, p):
        assert np.allclose(poibin_pmf_dp(p), poibin_pmf_dftcf(p), atol=1e-9)

    @given(probs_column)
    @settings(max_examples=40, deadline=None)
    def test_pmf_is_distribution(self, p):
        pmf = poibin_pmf_dp(p)
        assert pmf.min() >= -1e-15
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)


class TestApproximationBound:
    @given(probs_column, st.integers(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_le_cam_bound_holds(self, p, k):
        exact = poibin_sf_dp(k, p).pvalue
        approx = poisson_tail_approx(k, p)
        assert abs(approx - exact) <= le_cam_bound(p) + 1e-10

    @given(probs_column, st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_rna_bounded(self, p, k):
        v = poibin_cdf_refined_normal(k, p)
        assert 0.0 <= v <= 1.0


class TestMonotonicity:
    @given(probs_column)
    @settings(max_examples=40, deadline=None)
    def test_sf_monotone_in_k(self, p):
        values = [poibin_sf_dp(k, p).pvalue for k in range(0, p.size + 1, max(1, p.size // 7))]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @given(
        st.floats(0.01, 500.0, allow_nan=False),
        st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_poisson_cdf_sf_complement(self, lam, k):
        assert poisson_cdf(k, lam) + poisson_sf(k + 1, lam) == pytest.approx(
            1.0, abs=1e-9
        )


class TestPruningConservatism:
    @given(
        probs_column,
        st.integers(1, 20),
        st.floats(1e-9, 0.5, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_pruned_result_is_lower_bound(self, p, k, threshold):
        """The property the skip logic's safety rests on: whenever the
        DP prunes, the true p-value really is above the threshold."""
        pruned = poibin_sf_dp(k, p, prune_above=threshold)
        exact = poibin_sf_dp(k, p).pvalue
        assert pruned.pvalue <= exact + 1e-12
        if not pruned.complete:
            assert exact > threshold
        else:
            assert pruned.pvalue == pytest.approx(exact, abs=1e-12)

    @given(probs_column, st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_steps_never_exceed_depth(self, p, k):
        res = poibin_sf_dp(k, p, prune_above=0.01)
        assert 0 <= res.steps <= p.size
