"""Property-based tests at the pipeline level: the paper's safety
property under randomised columns, pileup conservation laws, and cache
model sanity."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.cache import SetAssociativeCache
from repro.core.config import CallerConfig
from repro.core.results import RunStats
from repro.core.workflow import evaluate_column
from repro.io.regions import Region
from repro.pileup.column import PileupColumn
from repro.pileup.engine import PileupConfig, pileup
from repro.io.records import AlignedRead


@st.composite
def random_columns(draw):
    depth = draw(st.integers(10, 600))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    ref_code = draw(st.integers(0, 3))
    alt_fraction = draw(st.floats(0.0, 0.2))
    codes = np.full(depth, ref_code, dtype=np.uint8)
    n_alt = int(depth * alt_fraction)
    if n_alt:
        alt_code = (ref_code + 1 + draw(st.integers(0, 2))) % 4
        codes[:n_alt] = alt_code
    quals = rng.integers(5, 41, size=depth).astype(np.uint8)
    return PileupColumn(
        chrom="c",
        pos=0,
        ref_base="ACGT"[ref_code],
        base_codes=codes,
        quals=quals,
        reverse=rng.random(depth) < 0.5,
        mapqs=np.full(depth, 60, dtype=np.uint8),
    )


class TestSafetyProperty:
    """Improved calls must be a subset of original calls on ANY
    column, for ANY threshold -- the paper's central guarantee."""

    @given(random_columns(), st.floats(1e-9, 1e-2))
    @settings(max_examples=50, deadline=None)
    def test_improved_subset_of_original(self, column, corrected_alpha):
        improved = evaluate_column(
            column, corrected_alpha, CallerConfig.improved(), RunStats()
        )
        original = evaluate_column(
            column, corrected_alpha, CallerConfig.original(), RunStats()
        )
        assert {c.key for c in improved} <= {c.key for c in original}

    @given(random_columns(), st.floats(1e-9, 1e-2))
    @settings(max_examples=30, deadline=None)
    def test_emitted_pvalues_below_threshold(self, column, corrected_alpha):
        calls = evaluate_column(
            column, corrected_alpha, CallerConfig.improved(), RunStats()
        )
        for call in calls:
            assert call.pvalue < corrected_alpha
            assert call.used_exact


class TestPileupConservation:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 20)),
                    min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_deposited_bases_conserved(self, read_specs):
        """Sum of column depths == total aligned bases in region."""
        reference = "A" * 100
        reads = []
        read_specs.sort()
        for i, (pos, length) in enumerate(read_specs):
            length = min(length, 100 - pos)
            if length <= 0:
                continue
            reads.append(
                AlignedRead.simple(f"r{i}", "c", pos, "A" * length, [30] * length)
            )
        region = Region("c", 0, 100)
        cfg = PileupConfig(min_baseq=0)
        total_depth = sum(
            col.depth for col in pileup(reads, reference, region, cfg)
        )
        assert total_depth == sum(len(r.seq) for r in reads)


class TestCacheModelProperties:
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_line_touches(self, addrs):
        cache = SetAssociativeCache(size_bytes=1 << 12, line_size=64,
                                    associativity=4)
        stats = cache.run(addrs, size=1)
        assert stats.accesses == len(addrs)

    @given(st.lists(st.integers(0, 1 << 12), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_repeat_pass_never_worse(self, addrs):
        """Replaying the same trace on a warmed cache cannot miss more
        than the cold pass (LRU inclusion property for one stream)."""
        cold = SetAssociativeCache(size_bytes=1 << 12, line_size=64,
                                   associativity=4)
        first = cold.run(addrs, size=1)
        second = cold.run(addrs, size=1)
        assert second.misses <= first.misses
