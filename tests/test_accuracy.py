"""Tests for the accuracy-scoring module."""

import pytest

from repro.analysis.accuracy import frequency_band_recall, score_calls
from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.core.results import VariantCall
from repro.sim.haplotypes import VariantPanel, VariantSpec


def make_call(pos, ref="A", alt="T", filter="PASS"):
    return VariantCall(
        chrom="c", pos=pos, ref=ref, alt=alt, pvalue=1e-9,
        corrected_pvalue=1e-5, depth=100, alt_count=5, af=0.05,
        dp4=(45, 45, 3, 2), strand_bias=1.0, filter=filter,
    )


@pytest.fixture
def truth_panel():
    return VariantPanel(
        [
            VariantSpec(10, "A", "T", 0.005),
            VariantSpec(20, "A", "T", 0.03),
            VariantSpec(30, "A", "T", 0.10),
            VariantSpec(40, "A", "T", 0.50),
        ]
    )


class TestScoreCalls:
    def test_perfect_calls(self, truth_panel):
        calls = [make_call(p) for p in (10, 20, 30, 40)]
        report = score_calls(calls, truth_panel)
        assert report.n_tp == 4
        assert report.n_fp == 0
        assert report.n_fn == 0
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_mixed_calls(self, truth_panel):
        calls = [make_call(10), make_call(20), make_call(99)]
        report = score_calls(calls, truth_panel)
        assert report.n_tp == 2
        assert report.n_fp == 1
        assert report.n_fn == 2
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(0.5)

    def test_alt_allele_must_match(self, truth_panel):
        calls = [make_call(10, alt="G")]  # right position, wrong allele
        report = score_calls(calls, truth_panel)
        assert report.n_tp == 0
        assert report.n_fp == 1

    def test_non_pass_calls_ignored(self, truth_panel):
        calls = [make_call(10, filter="sb")]
        report = score_calls(calls, truth_panel)
        assert report.n_tp == 0
        assert report.n_fn == 4

    def test_empty_everything(self):
        report = score_calls([], VariantPanel())
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_no_calls_nonempty_truth(self, truth_panel):
        report = score_calls([], truth_panel)
        assert report.precision == 1.0
        assert report.recall == 0.0
        assert report.f1 == 0.0

    def test_summary_text(self, truth_panel):
        text = score_calls([make_call(10)], truth_panel).summary()
        assert "TP=1" in text and "FN=3" in text


class TestFrequencyBands:
    def test_band_assignment(self, truth_panel):
        calls = [make_call(10), make_call(30)]
        bands = frequency_band_recall(calls, truth_panel)
        assert bands[(0.0, 0.01)] == (1, 1)     # the 0.5% variant
        assert bands[(0.01, 0.05)] == (0, 1)    # 3% missed
        assert bands[(0.05, 0.20)] == (1, 1)    # 10% hit
        assert bands[(0.20, 1.01)] == (0, 1)    # 50% missed

    def test_custom_bands(self, truth_panel):
        bands = frequency_band_recall(
            [], truth_panel, bands=[(0.0, 1.01)]
        )
        assert bands[(0.0, 1.01)] == (0, 4)


class TestEndToEndAccuracy:
    def test_caller_scores_well_on_its_regime(self, sample, panel):
        result = VariantCaller(CallerConfig.improved()).call_sample(sample)
        report = score_calls(result.calls, panel)
        assert report.recall == 1.0
        assert report.precision == 1.0

    def test_recall_improves_with_depth(self, genome):
        """More depth, more low-frequency sensitivity -- the premise of
        ultra-deep sequencing (paper Introduction)."""
        from repro.sim.haplotypes import random_panel
        from repro.sim.reads import ReadSimulator

        panel = random_panel(
            genome.sequence, 12, freq_range=(0.004, 0.02), seed=31
        )
        sim = ReadSimulator(genome, panel, read_length=80)
        caller = VariantCaller(CallerConfig.improved())
        recalls = []
        for depth in (100, 600, 3000):
            result = caller.call_sample(sim.simulate(depth, seed=32))
            recalls.append(score_calls(result.calls, panel).recall)
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[2] > recalls[0]
        assert recalls[2] > 0.8
