"""Property-based tests (hypothesis) for the I/O codecs: round-trips
must be the identity on arbitrary inputs."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.bam import decode_record, encode_record
from repro.io.bgzf import BgzfReader, BgzfWriter
from repro.io.cigar import CigarOp, cigar_to_string, parse_cigar
from repro.io.fastq import ascii_to_phred, phred_to_ascii
from repro.io.records import AlignedRead, SamHeader
from repro.io.sam import format_record, parse_record

HEADER = SamHeader(references=[("chr1", 1 << 20)], sort_order="coordinate")

dna = st.text(alphabet="ACGTN", min_size=1, max_size=60)
qname = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="@\t"),
    min_size=1,
    max_size=20,
)


@st.composite
def aligned_reads(draw):
    seq = draw(dna)
    qual = draw(
        st.lists(st.integers(0, 93), min_size=len(seq), max_size=len(seq))
    )
    pos = draw(st.integers(0, 10_000))
    flag = draw(st.integers(0, 0xFFF)) & ~0x4  # keep mapped
    mapq = draw(st.integers(0, 254))
    # Simple CIGAR consistent with the sequence: optional clips.
    left = draw(st.integers(0, min(3, len(seq) - 1)))
    right = draw(st.integers(0, min(3, len(seq) - 1 - left)))
    middle = len(seq) - left - right
    cigar = []
    if left:
        cigar.append((CigarOp.S, left))
    cigar.append((CigarOp.M, middle))
    if right:
        cigar.append((CigarOp.S, right))
    return AlignedRead(
        qname=draw(qname),
        flag=flag,
        rname="chr1",
        pos=pos,
        mapq=mapq,
        cigar=cigar,
        seq=seq,
        qual=np.array(qual, dtype=np.uint8),
        tags={"NM": ("i", draw(st.integers(-100, 100)))},
    )


class TestBgzfProperties:
    @given(st.binary(max_size=200_000))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_identity(self, payload):
        buf = io.BytesIO()
        with BgzfWriter(buf) as writer:
            writer.write(payload)
        buf.seek(0)
        assert BgzfReader(buf).read() == payload

    @given(st.lists(st.binary(min_size=0, max_size=5_000), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_chunked_writes_equal_single_write(self, chunks):
        whole = b"".join(chunks)
        buf_a, buf_b = io.BytesIO(), io.BytesIO()
        with BgzfWriter(buf_a) as w:
            for chunk in chunks:
                w.write(chunk)
        with BgzfWriter(buf_b) as w:
            w.write(whole)
        buf_a.seek(0)
        buf_b.seek(0)
        assert BgzfReader(buf_a).read() == BgzfReader(buf_b).read() == whole

    @given(st.binary(min_size=1, max_size=100_000), st.integers(0, 99_999))
    @settings(max_examples=30, deadline=None)
    def test_seek_anywhere(self, payload, offset):
        offset = offset % len(payload)
        buf = io.BytesIO()
        writer = BgzfWriter(buf)
        marks = {}
        for i in range(0, len(payload), 7_000):
            marks[i] = writer.tell()
            writer.write(payload[i : i + 7_000])
        writer.close()
        base = max(i for i in marks if i <= offset)
        buf.seek(0)
        reader = BgzfReader(buf)
        reader.seek(marks[base])
        reader.read(offset - base)
        assert reader.read() == payload[offset:]


class TestRecordCodecProperties:
    @given(aligned_reads())
    @settings(max_examples=60, deadline=None)
    def test_bam_round_trip(self, read):
        back = decode_record(encode_record(read, HEADER), HEADER)
        assert back.qname == read.qname
        assert back.flag == read.flag
        assert back.pos == read.pos
        assert back.mapq == read.mapq
        assert back.cigar == read.cigar
        assert back.seq == read.seq
        assert np.array_equal(back.qual, read.qual)
        assert back.tags == read.tags

    @given(aligned_reads())
    @settings(max_examples=60, deadline=None)
    def test_sam_round_trip(self, read):
        back = parse_record(format_record(read))
        assert back.qname == read.qname
        assert back.pos == read.pos
        assert back.cigar == read.cigar
        assert back.seq == read.seq
        assert np.array_equal(back.qual, read.qual)


class TestTextCodecs:
    @given(st.lists(st.integers(0, 93), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_phred_round_trip(self, quals):
        arr = np.array(quals, dtype=np.uint8)
        assert np.array_equal(ascii_to_phred(phred_to_ascii(arr)), arr)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(CigarOp)), st.integers(1, 10_000)
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_cigar_string_round_trip(self, raw):
        from repro.io.cigar import collapse

        cigar = collapse(raw)
        assert parse_cigar(cigar_to_string(cigar)) == cigar

    @given(dna)
    @settings(max_examples=60, deadline=None)
    def test_seq_nibble_round_trip(self, seq):
        from repro.io.bam import _pack_seq, _unpack_seq

        assert _unpack_seq(_pack_seq(seq), len(seq)) == seq
