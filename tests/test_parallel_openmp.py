"""Tests for the OpenMP-style parallel driver: the correctness
guarantee is exact equivalence with a single-process run, for every
scheduler, worker count and backend."""

import pytest

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.parallel.openmp import ParallelCallOptions, parallel_call
from repro.parallel.trace import Category, Tracer, imbalance_metrics


@pytest.fixture(scope="module")
def single_result(sample):
    return VariantCaller(CallerConfig.improved()).call_sample(sample)


class TestEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4, 7])
    def test_matches_single_process_thread_backend(
        self, sample, genome, single_result, n_workers
    ):
        result = parallel_call(
            sample,
            genome.sequence,
            options=ParallelCallOptions(n_workers=n_workers, backend="thread"),
        )
        assert result.keys() == single_result.keys()

    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    def test_matches_for_every_schedule(
        self, sample, genome, single_result, schedule
    ):
        result = parallel_call(
            sample,
            genome.sequence,
            options=ParallelCallOptions(n_workers=3, schedule=schedule),
        )
        assert result.keys() == single_result.keys()

    def test_matches_serial_backend(self, sample, genome, single_result):
        result = parallel_call(
            sample,
            genome.sequence,
            options=ParallelCallOptions(backend="serial"),
        )
        assert result.keys() == single_result.keys()

    def test_matches_process_backend(self, sample, genome, single_result):
        result = parallel_call(
            sample,
            genome.sequence,
            options=ParallelCallOptions(n_workers=3, backend="process"),
        )
        assert result.keys() == single_result.keys()

    def test_chunk_size_does_not_matter(self, sample, genome, single_result):
        for chunk in (64, 256, 1024):
            result = parallel_call(
                sample,
                genome.sequence,
                options=ParallelCallOptions(n_workers=4, chunk_columns=chunk),
            )
            assert result.keys() == single_result.keys()

    def test_original_config_also_equivalent(self, sample, genome):
        single = VariantCaller(CallerConfig.original()).call_sample(sample)
        parallel = parallel_call(
            sample,
            genome.sequence,
            config=CallerConfig.original(),
            options=ParallelCallOptions(n_workers=4),
        )
        assert parallel.keys() == single.keys()


class TestBamSource:
    def test_bam_parallel_matches_single(self, sample, genome, tmp_path):
        bam = tmp_path / "p.bam"
        sample.write_bam(bam)
        single = VariantCaller().call_bam(bam, genome.sequence)
        for backend in ("thread", "process"):
            result = parallel_call(
                str(bam),
                genome.sequence,
                options=ParallelCallOptions(n_workers=3, backend=backend),
            )
            assert result.keys() == single.keys(), backend

    def test_bam_source_traces_decompression(self, sample, genome, tmp_path):
        bam = tmp_path / "t.bam"
        sample.write_bam(bam)
        tracer = Tracer()
        parallel_call(
            str(bam),
            genome.sequence,
            options=ParallelCallOptions(n_workers=2),
            tracer=tracer,
        )
        cats = {e.category for e in tracer.events}
        assert Category.DECOMPRESS in cats
        assert Category.BAM_ITER in cats
        assert Category.PROB in cats


class TestStatsAndTrace:
    def test_stats_merged_across_workers(self, sample, genome, single_result):
        result = parallel_call(
            sample,
            genome.sequence,
            options=ParallelCallOptions(n_workers=4),
        )
        assert result.stats.columns_seen == single_result.stats.columns_seen
        assert result.stats.tests_run == single_result.stats.tests_run

    def test_trace_covers_all_workers(self, sample, genome):
        tracer = Tracer()
        parallel_call(
            sample,
            genome.sequence,
            options=ParallelCallOptions(n_workers=4),
            tracer=tracer,
        )
        workers = {e.worker for e in tracer.events}
        assert workers == {0, 1, 2, 3}
        metrics = imbalance_metrics(tracer.events)
        assert metrics["imbalance"] >= 1.0
        assert 0.0 < metrics["share_prob"] <= 1.0

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            ParallelCallOptions(n_workers=0)
        with pytest.raises(ValueError):
            ParallelCallOptions(schedule="fifo")
        with pytest.raises(ValueError):
            ParallelCallOptions(backend="gpu")
        with pytest.raises(ValueError):
            ParallelCallOptions(chunk_columns=0)
