"""Tests for the dynamic filter machinery and the double-filter bug."""


import pytest

from repro.core.filters import (
    DynamicFilterPolicy,
    apply_filters,
    filter_once,
    filter_twice,
)
from repro.core.results import VariantCall


def make_call(pos=0, sb=0.0, depth=100, af=0.05, alt="T"):
    return VariantCall(
        chrom="c",
        pos=pos,
        ref="A",
        alt=alt,
        pvalue=1e-10,
        corrected_pvalue=1e-6,
        depth=depth,
        alt_count=max(1, int(depth * af)),
        af=af,
        dp4=(40, 40, 5, 5),
        strand_bias=sb,
    )


class TestPolicyFit:
    def test_cutoff_depends_on_call_count(self):
        policy = DynamicFilterPolicy(sb_alpha=0.001, holm=True)
        few = policy.fit([make_call(pos=i) for i in range(10)])
        many = policy.fit([make_call(pos=i) for i in range(1000)])
        assert many.sb_phred_cutoff > few.sb_phred_cutoff
        assert few.fitted_on == 10
        assert many.fitted_on == 1000

    def test_plain_bonferroni_is_constant(self):
        policy = DynamicFilterPolicy(holm=False)
        a = policy.fit([make_call(pos=i) for i in range(10)])
        b = policy.fit([make_call(pos=i) for i in range(1000)])
        assert a.sb_phred_cutoff == b.sb_phred_cutoff

    def test_cutoff_value(self):
        policy = DynamicFilterPolicy(sb_alpha=0.001, holm=True)
        t = policy.fit([make_call()])
        assert t.sb_phred_cutoff == pytest.approx(30.0)  # -10log10(0.001)


class TestApply:
    def test_pass_and_fail_labels(self):
        policy = DynamicFilterPolicy(sb_alpha=0.001)
        calls = [make_call(sb=5.0), make_call(pos=1, sb=500.0)]
        out = apply_filters(calls, policy.fit(calls))
        assert out[0].filter == "PASS"
        assert "sb" in out[1].filter

    def test_multiple_failures_joined(self):
        policy = DynamicFilterPolicy(min_depth=1000, min_af=0.5)
        calls = [make_call(sb=900.0, depth=10, af=0.1)]
        out = apply_filters(calls, policy.fit(calls))
        assert set(out[0].filter.split(";")) == {"sb", "min_dp", "min_af"}

    def test_originals_not_mutated(self):
        calls = [make_call(sb=900.0)]
        apply_filters(calls, DynamicFilterPolicy().fit(calls))
        assert calls[0].filter == "PASS"  # input untouched


class TestDoubleFilterBug:
    """The mechanism behind the paper's Discussion bug report."""

    def _borderline_calls(self):
        # Strand-bias scores straddling the cutoffs that different
        # call-set sizes produce: Holm cutoff is 30 for n=1, ~60 for
        # n=1000 at sb_alpha=1e-3.
        return [make_call(pos=i, sb=sb) for i, sb in enumerate(
            [5, 10, 33, 36, 39, 45, 50, 200]
        )]

    def test_partitioning_changes_output(self):
        calls = self._borderline_calls()
        policy = DynamicFilterPolicy(sb_alpha=0.001)
        whole = {c.pos for c in filter_twice([calls], policy)
                 if c.filter == "PASS"}
        halves = {c.pos for c in filter_twice(
            [calls[:4], calls[4:]], policy) if c.filter == "PASS"}
        singles = {c.pos for c in filter_twice(
            [[c] for c in calls], policy) if c.filter == "PASS"}
        # The buggy pipeline's output depends on the partitioning.
        assert not (whole == halves == singles)

    def test_single_stage_is_partition_independent(self):
        """filter_once sees the full call set by construction, so its
        output is trivially stable -- the OpenMP fix's guarantee."""
        calls = self._borderline_calls()
        policy = DynamicFilterPolicy(sb_alpha=0.001)
        a = {c.pos for c in filter_once(calls, policy) if c.filter == "PASS"}
        b = {c.pos for c in filter_once(list(reversed(calls)), policy)
             if c.filter == "PASS"}
        assert a == b

    def test_double_filter_can_lose_calls_vs_single(self):
        calls = self._borderline_calls()
        policy = DynamicFilterPolicy(sb_alpha=0.001)
        single = {c.pos for c in filter_once(calls, policy)
                  if c.filter == "PASS"}
        double = {c.pos for c in filter_twice(
            [[c] for c in calls], policy) if c.filter == "PASS"}
        # Per-call partitions use the strictest cutoff (n=1 -> 30):
        # borderline calls above 30 die in stage one.
        assert double < single
