"""Unit tests for FASTA and FASTQ I/O."""

import io

import numpy as np
import pytest

from repro.io.fasta import FastaRecord, load_reference, read_fasta, write_fasta
from repro.io.fastq import (
    FastqRecord,
    ascii_to_phred,
    phred_to_ascii,
    read_fastq,
    write_fastq,
)


class TestFasta:
    def test_round_trip(self, tmp_path):
        records = [
            FastaRecord("seq1", "first sequence", "ACGTACGT" * 20),
            FastaRecord("seq2", "", "TTTT"),
        ]
        path = tmp_path / "test.fa"
        write_fasta(path, records)
        back = list(read_fasta(path))
        assert back == records

    def test_wrapping(self):
        buf = io.StringIO()
        write_fasta(buf, [FastaRecord("s", "", "A" * 150)], width=70)
        lines = buf.getvalue().splitlines()
        assert lines[0] == ">s"
        assert [len(x) for x in lines[1:]] == [70, 70, 10]

    def test_multiline_and_case_normalisation(self):
        text = ">s desc here\nacgt\nACGT\n"
        (rec,) = read_fasta(io.StringIO(text))
        assert rec.name == "s"
        assert rec.description == "desc here"
        assert rec.sequence == "ACGTACGT"

    def test_data_before_defline_raises(self):
        with pytest.raises(ValueError, match="before first"):
            list(read_fasta(io.StringIO("ACGT\n>s\nACGT\n")))

    def test_load_reference(self, tmp_path):
        path = tmp_path / "ref.fa"
        write_fasta(path, [FastaRecord("a", "", "AC"), FastaRecord("b", "", "GT")])
        assert load_reference(path) == {"a": "AC", "b": "GT"}

    def test_load_reference_duplicate_raises(self):
        text = ">a\nAC\n>a\nGT\n"
        with pytest.raises(ValueError, match="duplicate"):
            load_reference(io.StringIO(text))

    def test_empty_file_yields_nothing(self):
        assert list(read_fasta(io.StringIO(""))) == []


class TestPhredCoding:
    def test_round_trip(self):
        q = np.array([0, 10, 41, 93], dtype=np.uint8)
        assert np.array_equal(ascii_to_phred(phred_to_ascii(q)), q)

    def test_known_encoding(self):
        # Phred 0 -> '!', Phred 40 -> 'I'
        assert phred_to_ascii(np.array([0, 40])) == "!I"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            phred_to_ascii(np.array([94]))

    def test_non_phred_character_raises(self):
        with pytest.raises(ValueError):
            ascii_to_phred("\x1f")


class TestFastq:
    def test_round_trip(self, tmp_path):
        records = [
            FastqRecord("r1", "ACGT", np.array([30, 31, 32, 33], dtype=np.uint8)),
            FastqRecord("r2", "GG", np.array([2, 41], dtype=np.uint8)),
        ]
        path = tmp_path / "test.fq"
        write_fastq(path, records)
        back = list(read_fastq(path))
        assert [r.name for r in back] == ["r1", "r2"]
        assert [r.sequence for r in back] == ["ACGT", "GG"]
        for a, b in zip(back, records):
            assert np.array_equal(a.quality, b.quality)

    def test_error_probabilities(self):
        rec = FastqRecord("r", "AC", np.array([10, 20], dtype=np.uint8))
        assert np.allclose(rec.error_probabilities, [0.1, 0.01])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", np.array([30], dtype=np.uint8))

    def test_missing_plus_raises(self):
        text = "@r\nACGT\nXXXX\nIIII\n"
        with pytest.raises(ValueError, match="separator"):
            list(read_fastq(io.StringIO(text)))

    def test_missing_at_raises(self):
        text = "r\nACGT\n+\nIIII\n"
        with pytest.raises(ValueError, match="defline"):
            list(read_fastq(io.StringIO(text)))

    def test_truncated_record_raises(self):
        text = "@r\nACGT\n"
        with pytest.raises(ValueError):
            list(read_fastq(io.StringIO(text)))

    def test_name_stops_at_whitespace(self):
        text = "@read1 extra info\nAC\n+\nII\n"
        (rec,) = read_fastq(io.StringIO(text))
        assert rec.name == "read1"
