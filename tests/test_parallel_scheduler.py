"""Tests for genome partitioning and the three chunk schedulers."""

import threading

import pytest

from repro.io.regions import Region
from repro.parallel.partition import chunk_region, partition_region
from repro.parallel.scheduler import (
    DynamicScheduler,
    GuidedScheduler,
    StaticScheduler,
    make_scheduler,
)


class TestPartition:
    def test_partition_tiles_exactly(self):
        region = Region("c", 0, 103)
        parts = partition_region(region, 4)
        assert parts[0].start == 0
        assert parts[-1].end == 103
        assert sum(len(p) for p in parts) == 103
        for a, b in zip(parts, parts[1:]):
            assert a.end == b.start

    def test_chunk_region_sizes(self):
        chunks = chunk_region(Region("c", 0, 1000), 256)
        assert [len(c) for c in chunks] == [256, 256, 256, 232]

    def test_chunk_region_bad_size(self):
        with pytest.raises(ValueError):
            chunk_region(Region("c", 0, 10), 0)


def drain(scheduler, n_workers):
    """Pull everything out of a scheduler, per worker."""
    out = {w: [] for w in range(n_workers)}
    done = [False] * n_workers
    while not all(done):
        for w in range(n_workers):
            if done[w]:
                continue
            item = scheduler.next(w)
            if item is None:
                done[w] = True
            else:
                out[w].append(item)
    return out


class TestStatic:
    def test_round_robin_coverage(self):
        items = list(range(10))
        sched = StaticScheduler(items, 3)
        out = drain(sched, 3)
        assert out[0] == [0, 3, 6, 9]
        assert out[1] == [1, 4, 7]
        assert out[2] == [2, 5, 8]

    def test_worker_out_of_range(self):
        sched = StaticScheduler([1], 2)
        with pytest.raises(ValueError):
            sched.next(5)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            StaticScheduler([1], 0)


class TestDynamic:
    @pytest.mark.parametrize("n_workers", [0, -1])
    def test_rejects_nonpositive_workers(self, n_workers):
        with pytest.raises(ValueError):
            DynamicScheduler([1, 2, 3], n_workers)

    def test_every_item_exactly_once(self):
        items = list(range(100))
        sched = DynamicScheduler(items, 4)
        out = drain(sched, 4)
        combined = sorted(x for lst in out.values() for x in lst)
        assert combined == items

    def test_thread_safety(self):
        items = list(range(5000))
        sched = DynamicScheduler(items, 8)
        grabbed = [[] for _ in range(8)]

        def worker(w):
            while True:
                item = sched.next(w)
                if item is None:
                    return
                grabbed[w].append(item)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        combined = sorted(x for lst in grabbed for x in lst)
        assert combined == items  # no loss, no duplication


class TestGuided:
    def test_every_item_exactly_once(self):
        items = list(range(100))
        sched = GuidedScheduler(items, 4)
        out = drain(sched, 4)
        combined = sorted(x for span in out.values() for lst in span for x in lst)
        assert combined == items

    def test_spans_shrink(self):
        sched = GuidedScheduler(list(range(1000)), 4)
        sizes = []
        while True:
            span = sched.next(0)
            if span is None:
                break
            sizes.append(len(span))
        assert sizes[0] > sizes[-1]
        assert sizes[0] == 125  # 1000 / (2.0 * 4)

    def test_min_chunk_respected(self):
        sched = GuidedScheduler(list(range(50)), 4, min_chunk=8)
        sizes = []
        while True:
            span = sched.next(0)
            if span is None:
                break
            sizes.append(len(span))
        assert all(s >= 8 or s == sizes[-1] for s in sizes)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            GuidedScheduler([1], 1, min_chunk=0)
        with pytest.raises(ValueError):
            GuidedScheduler([1], 1, factor=0)


class TestFactory:
    @pytest.mark.parametrize("kind", ["static", "dynamic", "guided"])
    def test_known_kinds(self, kind):
        sched = make_scheduler(kind, [1, 2, 3], 2)
        assert sched.name == kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_scheduler("fifo", [1], 1)
