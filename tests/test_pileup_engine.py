"""Tests for the streaming pileup engine, anchored by a brute-force
recount oracle."""

import numpy as np
import pytest

from repro.io.cigar import aligned_pairs
from repro.io.records import (
    FLAG_DUPLICATE,
    FLAG_QCFAIL,
    FLAG_SECONDARY,
    FLAG_UNMAPPED,
    AlignedRead,
)
from repro.io.regions import Region
from repro.pileup.column import CODE_TO_BASE
from repro.pileup.engine import PileupConfig, pileup

REF = "ACGTACGTACGTACGTACGTACGTACGTACGT"  # 32 nt


def simple_read(qname, pos, seq, quals=None, **kwargs):
    return AlignedRead.simple(
        qname, "chr1", pos, seq, quals or [30] * len(seq), **kwargs
    )


def brute_force_counts(reads, region, cfg):
    """Independent recount: expand every read's aligned pairs."""
    out = {}
    for read in reads:
        if not cfg.read_passes(read):
            continue
        for qi, ri in aligned_pairs(read.cigar, read.pos):
            if qi is None or ri is None:
                continue
            if not (region.start <= ri < region.end):
                continue
            if read.qual[qi] < cfg.min_baseq:
                continue
            out.setdefault(ri, []).append(read.seq[qi])
    return out


class TestAgainstOracle:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        reads = []
        pos = 0
        for i in range(60):
            pos += int(rng.integers(0, 3))
            length = int(rng.integers(4, 12))
            if pos + length > len(REF):
                break
            seq = "".join(rng.choice(list("ACGT"), size=length))
            quals = rng.integers(2, 41, size=length).tolist()
            reads.append(simple_read(f"r{i}", pos, seq, quals))
        region = Region("chr1", 0, len(REF))
        cfg = PileupConfig(min_baseq=10)
        expected = brute_force_counts(reads, region, cfg)
        got = {
            col.pos: sorted(CODE_TO_BASE[c] for c in col.base_codes)
            for col in pileup(reads, REF, region, cfg)
        }
        assert got == {p: sorted(b) for p, b in expected.items()}


class TestCigarHandling:
    def test_insertion_skipped_on_reference(self):
        read = simple_read("r", 0, "AAXAA", cigar="2M1I2M")
        cols = list(pileup([read], REF, Region("chr1", 0, 10)))
        assert [c.pos for c in cols] == [0, 1, 2, 3]
        # The inserted base X never lands on the reference.
        assert all(c.depth == 1 for c in cols)

    def test_deletion_leaves_gap(self):
        read = simple_read("r", 0, "AAAA", cigar="2M2D2M")
        cols = list(pileup([read], REF, Region("chr1", 0, 10)))
        assert [c.pos for c in cols] == [0, 1, 4, 5]

    def test_soft_clip_not_deposited(self):
        read = simple_read("r", 5, "TTAA", cigar="2S2M")
        cols = list(pileup([read], REF, Region("chr1", 0, 10)))
        assert [c.pos for c in cols] == [5, 6]
        assert [CODE_TO_BASE[c.base_codes[0]] for c in cols] == ["A", "A"]

    def test_skip_region_n_operator(self):
        read = simple_read("r", 0, "GGGG", cigar="2M10N2M")
        cols = list(pileup([read], REF, Region("chr1", 0, 20)))
        assert [c.pos for c in cols] == [0, 1, 12, 13]


class TestFilters:
    def test_min_baseq_drops_bases(self):
        read = simple_read("r", 0, "ACGT", [5, 30, 5, 30])
        cols = list(
            pileup([read], REF, Region("chr1", 0, 4), PileupConfig(min_baseq=10))
        )
        assert [c.pos for c in cols] == [1, 3]

    def test_min_mapq_drops_reads(self):
        good = simple_read("g", 0, "AC", mapq=60)
        bad = simple_read("b", 0, "AC", mapq=5)
        cols = list(
            pileup(
                [good, bad], REF, Region("chr1", 0, 2),
                PileupConfig(min_mapq=20, min_baseq=0),
            )
        )
        assert all(c.depth == 1 for c in cols)

    @pytest.mark.parametrize(
        "flag", [FLAG_UNMAPPED, FLAG_SECONDARY, FLAG_DUPLICATE, FLAG_QCFAIL]
    )
    def test_flagged_reads_excluded(self, flag):
        read = simple_read("r", 0, "AC")
        read.flag |= flag
        if flag == FLAG_UNMAPPED:
            read.cigar = []
        cols = list(pileup([read], REF, Region("chr1", 0, 2)))
        assert cols == []

    def test_include_duplicates_option(self):
        read = simple_read("r", 0, "AC")
        read.flag |= FLAG_DUPLICATE
        cfg = PileupConfig(include_duplicates=True)
        cols = list(pileup([read], REF, Region("chr1", 0, 2), cfg))
        assert len(cols) == 2


class TestDepthCap:
    def test_cap_applied_first_come(self):
        reads = [simple_read(f"r{i}", 0, "AC") for i in range(10)]
        cfg = PileupConfig(max_depth=4)
        cols = list(pileup(reads, REF, Region("chr1", 0, 2), cfg))
        assert all(c.depth == 4 for c in cols)
        assert all(c.n_capped == 6 for c in cols)


class TestRegionSemantics:
    def test_columns_restricted_to_region(self):
        reads = [simple_read("r", 2, "AAAAAA")]
        cols = list(pileup(reads, REF, Region("chr1", 4, 6)))
        assert [c.pos for c in cols] == [4, 5]

    def test_read_straddling_region_start_included(self):
        reads = [simple_read("r", 0, "AAAAAAAA")]
        cols = list(pileup(reads, REF, Region("chr1", 4, 6)))
        assert all(c.depth == 1 for c in cols)

    def test_emit_empty_columns(self):
        reads = [simple_read("r", 2, "AA")]
        cols = list(
            pileup(reads, REF, Region("chr1", 0, 6), emit_empty=True)
        )
        assert [c.pos for c in cols] == [0, 1, 2, 3, 4, 5]
        assert [c.depth for c in cols] == [0, 0, 1, 1, 0, 0]

    def test_unsorted_input_rejected(self):
        reads = [simple_read("a", 10, "AC"), simple_read("b", 5, "AC")]
        with pytest.raises(ValueError, match="sorted"):
            list(pileup(reads, REF, Region("chr1", 0, 20)))

    def test_ref_base_comes_from_reference(self):
        reads = [simple_read("r", 3, "GG")]
        cols = list(pileup(reads, REF, Region("chr1", 0, 10)))
        assert [c.ref_base for c in cols] == [REF[3], REF[4]]

    def test_other_chromosome_skipped(self):
        read = AlignedRead.simple("r", "chrX", 0, "AC", [30, 30])
        cols = list(pileup([read], REF, Region("chr1", 0, 5)))
        assert cols == []
