"""Tests for the VariantCall <-> VCF bridge and CallResult algebra."""


import pytest

from repro.core.results import CallResult, RunStats, VariantCall
from repro.io.vcf import VcfRecord


def make_call(pos=5, pvalue=1e-8, filter="PASS", alt="T"):
    return VariantCall(
        chrom="chr1", pos=pos, ref="A", alt=alt, pvalue=pvalue,
        corrected_pvalue=min(1.0, pvalue * 1000), depth=500, alt_count=12,
        af=0.024, dp4=(240, 248, 7, 5), strand_bias=2.5, filter=filter,
    )


class TestVcfBridge:
    def test_record_fields(self):
        rec = make_call().to_vcf_record()
        assert rec.chrom == "chr1"
        assert rec.pos == 5
        assert rec.ref == "A"
        assert rec.alt == "T"
        assert rec.filter == "PASS"
        assert rec.info["DP"] == 500
        assert rec.info["AF"] == pytest.approx(0.024)
        assert rec.info["DP4"] == (240, 248, 7, 5)
        assert rec.info["SB"] == 2  # rounded Phred

    def test_quality_is_phred_of_pvalue(self):
        call = make_call(pvalue=1e-8)
        assert call.quality == pytest.approx(80.0)
        rec = call.to_vcf_record()
        assert rec.qual == pytest.approx(80.0)

    def test_quality_capped_for_zero_pvalue(self):
        assert make_call(pvalue=0.0).quality == 3000.0

    def test_vcf_line_round_trip(self):
        rec = make_call().to_vcf_record()
        back = VcfRecord.from_line(rec.to_line())
        assert back.key == rec.key
        assert back.info["DP4"] == (240, 248, 7, 5)

    def test_failed_filter_propagates(self):
        rec = make_call(filter="sb;min_dp").to_vcf_record()
        assert rec.filter == "sb;min_dp"


class TestCallResult:
    def test_passed_excludes_failures(self):
        result = CallResult(
            calls=[make_call(pos=1), make_call(pos=2, filter="sb")],
            stats=RunStats(),
        )
        assert [c.pos for c in result.passed] == [1]
        assert result.keys() == {("chr1", 1, "A", "T")}

    def test_merge_sorts_and_accumulates(self):
        a = CallResult(
            calls=[make_call(pos=9)], stats=RunStats(columns_seen=5)
        )
        b = CallResult(
            calls=[make_call(pos=3)], stats=RunStats(columns_seen=7)
        )
        a.merge(b)
        assert [c.pos for c in a.calls] == [3, 9]
        assert a.stats.columns_seen == 12

    def test_merge_timings(self):
        a = CallResult(calls=[], stats=RunStats(time_stats=1.0, time_total=2.0))
        b = CallResult(calls=[], stats=RunStats(time_stats=0.5, time_total=1.0))
        a.merge(b)
        assert a.stats.time_stats == pytest.approx(1.5)
        assert a.stats.time_total == pytest.approx(3.0)

    def test_key_includes_allele(self):
        result = CallResult(
            calls=[make_call(alt="T"), make_call(alt="G")], stats=RunStats()
        )
        assert len(result.keys()) == 2
