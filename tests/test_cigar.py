"""Unit tests for CIGAR parsing and algebra."""

import pytest

from repro.io.cigar import (
    CigarOp,
    aligned_pairs,
    cigar_to_string,
    clip_lengths,
    collapse,
    parse_cigar,
    query_length,
    reference_length,
    validate_cigar,
)


class TestParse:
    def test_simple_match(self):
        assert parse_cigar("100M") == [(CigarOp.M, 100)]

    def test_mixed_operations(self):
        assert parse_cigar("5S10M2I3D20M") == [
            (CigarOp.S, 5),
            (CigarOp.M, 10),
            (CigarOp.I, 2),
            (CigarOp.D, 3),
            (CigarOp.M, 20),
        ]

    def test_star_is_empty(self):
        assert parse_cigar("*") == []

    def test_empty_string_is_empty(self):
        assert parse_cigar("") == []

    def test_all_nine_operations(self):
        cigar = parse_cigar("1M2I3D4N5S6H7P8=9X")
        assert [op for op, _ in cigar] == [
            CigarOp.M, CigarOp.I, CigarOp.D, CigarOp.N, CigarOp.S,
            CigarOp.H, CigarOp.P, CigarOp.EQ, CigarOp.X,
        ]
        assert [length for _, length in cigar] == list(range(1, 10))

    @pytest.mark.parametrize("bad", ["M", "10", "10Z", "3M4", "-3M", "3m"])
    def test_malformed_raises(self, bad):
        with pytest.raises(ValueError):
            parse_cigar(bad)

    def test_zero_length_raises(self):
        with pytest.raises(ValueError):
            parse_cigar("0M")


class TestRender:
    def test_round_trip(self):
        text = "5S10M2I3D20M4H"
        assert cigar_to_string(parse_cigar(text)) == text

    def test_empty_renders_star(self):
        assert cigar_to_string([]) == "*"


class TestLengths:
    def test_query_length_counts_misdnsp(self):
        cigar = parse_cigar("5S10M2I3D20M")
        assert query_length(cigar) == 5 + 10 + 2 + 20

    def test_reference_length_counts_mdn(self):
        cigar = parse_cigar("5S10M2I3D20M")
        assert reference_length(cigar) == 10 + 3 + 20

    def test_skip_region_consumes_reference(self):
        assert reference_length(parse_cigar("10M100N10M")) == 120

    def test_hard_clip_consumes_nothing(self):
        assert query_length(parse_cigar("5H10M")) == 10
        assert reference_length(parse_cigar("5H10M")) == 10

    def test_eq_and_x_behave_like_m(self):
        assert query_length(parse_cigar("5=3X")) == 8
        assert reference_length(parse_cigar("5=3X")) == 8


class TestClipLengths:
    def test_both_clips(self):
        assert clip_lengths(parse_cigar("4S10M6S")) == (4, 6)

    def test_no_clips(self):
        assert clip_lengths(parse_cigar("10M")) == (0, 0)

    def test_hard_clips_ignored(self):
        assert clip_lengths(parse_cigar("3H10M2H")) == (0, 0)


class TestAlignedPairs:
    def test_pure_match(self):
        pairs = list(aligned_pairs(parse_cigar("3M"), pos=10))
        assert pairs == [(0, 10), (1, 11), (2, 12)]

    def test_insertion_has_no_reference(self):
        pairs = list(aligned_pairs(parse_cigar("2M1I2M"), pos=0))
        assert pairs == [(0, 0), (1, 1), (2, None), (3, 2), (4, 3)]

    def test_deletion_has_no_query(self):
        pairs = list(aligned_pairs(parse_cigar("2M1D2M"), pos=0))
        assert pairs == [(0, 0), (1, 1), (None, 2), (2, 3), (3, 4)]

    def test_soft_clip_has_no_reference(self):
        pairs = list(aligned_pairs(parse_cigar("2S2M"), pos=5))
        assert pairs == [(0, None), (1, None), (2, 5), (3, 6)]

    def test_total_query_positions_match_query_length(self):
        cigar = parse_cigar("3S10M2I4D8M1S")
        q_positions = [q for q, _ in aligned_pairs(cigar, 0) if q is not None]
        assert len(q_positions) == query_length(cigar)
        assert q_positions == list(range(len(q_positions)))


class TestValidate:
    def test_valid_passes(self):
        validate_cigar(parse_cigar("3S10M2S"), seq_len=15)

    def test_seq_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="query bases"):
            validate_cigar(parse_cigar("10M"), seq_len=12)

    def test_internal_hard_clip_raises(self):
        with pytest.raises(ValueError, match="hard clip"):
            validate_cigar([(CigarOp.M, 5), (CigarOp.H, 2), (CigarOp.M, 5)])

    def test_internal_soft_clip_raises(self):
        with pytest.raises(ValueError, match="soft clip"):
            validate_cigar([(CigarOp.M, 5), (CigarOp.S, 2), (CigarOp.M, 5)])

    def test_soft_clip_inside_hard_clip_ok(self):
        validate_cigar(parse_cigar("2H3S10M"), seq_len=13)


class TestCollapse:
    def test_merges_adjacent_same_ops(self):
        assert collapse([(CigarOp.M, 3), (CigarOp.M, 4)]) == [(CigarOp.M, 7)]

    def test_drops_zero_lengths(self):
        assert collapse([(CigarOp.M, 3), (CigarOp.I, 0), (CigarOp.M, 2)]) == [
            (CigarOp.M, 5)
        ]

    def test_preserves_distinct_ops(self):
        cigar = [(CigarOp.M, 3), (CigarOp.D, 1), (CigarOp.M, 2)]
        assert collapse(cigar) == cigar
