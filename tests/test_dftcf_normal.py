"""Tests for the DFT-CF exact method and the refined normal
approximation (the paper's references [12] and [11])."""

import numpy as np
import pytest

from repro.stats.dftcf import poibin_pmf_dftcf, poibin_sf_dftcf
from repro.stats.normal_approx import (
    poibin_cdf_refined_normal,
    poibin_sf_refined_normal,
)
from repro.stats.poisson_binomial import poibin_pmf_dp, poibin_sf, poibin_sf_brute_force


class TestDftCf:
    def test_matches_dp_small(self, rng):
        p = rng.uniform(0, 1, size=10)
        assert np.allclose(poibin_pmf_dftcf(p), poibin_pmf_dp(p), atol=1e-12)

    def test_matches_dp_moderate(self, rng):
        p = rng.uniform(0.0001, 0.05, size=800)
        assert np.allclose(poibin_pmf_dftcf(p), poibin_pmf_dp(p), atol=1e-10)

    def test_matches_brute_force(self, rng):
        p = rng.uniform(0, 1, size=9)
        for k in range(10):
            assert poibin_sf_dftcf(k, p) == pytest.approx(
                poibin_sf_brute_force(k, p), abs=1e-10
            )

    def test_block_boundary_sizes(self, rng):
        """Sizes straddling the internal CF block size must agree."""
        for d in (255, 256, 257, 512):
            p = rng.uniform(0.001, 0.01, size=d)
            assert poibin_sf_dftcf(2, p) == pytest.approx(
                poibin_sf(2, p), rel=1e-8, abs=1e-12
            )

    def test_sums_to_one(self, rng):
        p = rng.uniform(0, 0.3, size=300)
        assert poibin_pmf_dftcf(p).sum() == pytest.approx(1.0, rel=1e-10)

    def test_no_negative_entries(self, rng):
        p = rng.uniform(0, 1, size=100)
        assert (poibin_pmf_dftcf(p) >= 0).all()

    def test_k_edge_cases(self):
        p = np.array([0.5, 0.5])
        assert poibin_sf_dftcf(0, p) == 1.0
        assert poibin_sf_dftcf(3, p) == 0.0

    def test_invalid_input_raises(self):
        with pytest.raises(ValueError):
            poibin_pmf_dftcf(np.array([1.5]))


class TestRefinedNormal:
    def test_tracks_exact_at_depth(self, rng):
        """RNA error shrinks with d; for a lambda ~ 11 count
        distribution the skew-corrected cdf lands within ~1e-2."""
        p = rng.uniform(0.001, 0.01, size=2000)
        pmf = poibin_pmf_dp(p)
        cdf_exact = np.cumsum(pmf)
        mean = p.sum()
        for k in (int(mean) - 5, int(mean), int(mean) + 5, int(mean) + 10):
            approx = poibin_cdf_refined_normal(k, p)
            assert approx == pytest.approx(float(cdf_exact[k]), abs=1e-2)

    def test_beats_uncorrected_normal(self, rng):
        """The skewness term must actually help in the small-p regime."""
        import math

        p = rng.uniform(0.001, 0.01, size=2000)
        pmf = poibin_pmf_dp(p)
        cdf_exact = np.cumsum(pmf)
        mu = p.sum()
        sigma = math.sqrt(float((p * (1 - p)).sum()))
        err_rna = err_plain = 0.0
        for k in range(int(mu) - 6, int(mu) + 11):
            plain = 0.5 * math.erfc(-((k + 0.5 - mu) / sigma) / math.sqrt(2))
            err_plain = max(err_plain, abs(plain - float(cdf_exact[k])))
            err_rna = max(
                err_rna,
                abs(poibin_cdf_refined_normal(k, p) - float(cdf_exact[k])),
            )
        assert err_rna < err_plain

    def test_sf_complementarity(self, rng):
        p = rng.uniform(0.01, 0.05, size=500)
        for k in (3, 8, 15):
            total = poibin_cdf_refined_normal(k - 1, p) + poibin_sf_refined_normal(k, p)
            assert total == pytest.approx(1.0, abs=1e-12)

    def test_k_zero_is_one(self, rng):
        assert poibin_sf_refined_normal(0, rng.uniform(0, 1, 10)) == 1.0

    def test_degenerate_variance(self):
        p = np.array([1.0, 1.0, 0.0])
        # Point mass at 2.
        assert poibin_cdf_refined_normal(1, p) == 0.0
        assert poibin_cdf_refined_normal(2, p) == 1.0

    def test_clipped_to_unit_interval(self, rng):
        p = rng.uniform(0.4, 0.6, size=5)
        for k in range(6):
            v = poibin_cdf_refined_normal(k, p)
            assert 0.0 <= v <= 1.0
