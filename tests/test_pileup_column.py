"""Unit tests for the PileupColumn value type."""

import numpy as np
import pytest

from repro.pileup.column import BASE_TO_CODE, CODE_TO_BASE, PileupColumn


def make_column(bases="AAAT", quals=None, reverse=None, ref="A", mapqs=None):
    codes = np.array([BASE_TO_CODE[b] for b in bases], dtype=np.uint8)
    n = len(bases)
    quals = np.array(quals if quals is not None else [30] * n, dtype=np.uint8)
    reverse = np.array(
        reverse if reverse is not None else [False] * n, dtype=bool
    )
    mapqs = np.array(mapqs if mapqs is not None else [60] * n, dtype=np.uint8)
    return PileupColumn(
        chrom="c", pos=10, ref_base=ref, base_codes=codes,
        quals=quals, reverse=reverse, mapqs=mapqs,
    )


class TestBasics:
    def test_depth(self):
        assert make_column("ACGT").depth == 4

    def test_base_counts(self):
        col = make_column("AACGTTTN")
        counts = col.base_counts()
        assert list(counts) == [2, 1, 1, 3, 1]

    def test_ref_code(self):
        assert make_column(ref="G").ref_code == BASE_TO_CODE["G"]

    def test_ambiguous_ref_maps_to_n(self):
        assert make_column(ref="R").ref_code == BASE_TO_CODE["N"]

    def test_parallel_array_mismatch_raises(self):
        with pytest.raises(ValueError, match="parallel"):
            PileupColumn(
                chrom="c", pos=0, ref_base="A",
                base_codes=np.zeros(3, dtype=np.uint8),
                quals=np.zeros(2, dtype=np.uint8),
                reverse=np.zeros(3, dtype=bool),
                mapqs=np.zeros(3, dtype=np.uint8),
            )


class TestMismatches:
    def test_mismatch_count_excludes_n(self):
        col = make_column("AATNG", ref="A")
        assert col.mismatch_count() == 2  # T and G; N excluded

    def test_allele_depth(self):
        col = make_column("AATTT", ref="A")
        assert col.allele_depth(BASE_TO_CODE["T"]) == 3
        assert col.allele_depth(BASE_TO_CODE["C"]) == 0

    def test_strand_counts(self):
        col = make_column("ATAT", reverse=[False, False, True, True])
        fwd, rev = col.strand_counts(BASE_TO_CODE["T"])
        assert (fwd, rev) == (1, 1)

    def test_dp4(self):
        col = make_column(
            "AAATT", ref="A", reverse=[False, True, True, False, True]
        )
        rf, rr, af, ar = col.dp4(BASE_TO_CODE["T"])
        assert (rf, rr) == (1, 2)
        assert (af, ar) == (1, 1)


class TestErrorProbabilities:
    def test_phred_conversion(self):
        col = make_column("AA", quals=[10, 20])
        assert np.allclose(col.error_probabilities(), [0.1, 0.01])

    def test_merge_mapq(self):
        col = make_column("A", quals=[10], mapqs=[10])
        merged = col.error_probabilities(merge_mapq=True)
        assert merged[0] == pytest.approx(1 - 0.9 * 0.9)

    def test_merged_probability_never_lower(self):
        col = make_column("ACGT", quals=[10, 20, 30, 40], mapqs=[20] * 4)
        base = col.error_probabilities()
        merged = col.error_probabilities(merge_mapq=True)
        assert (merged >= base).all()


class TestSubset:
    def test_subset_filters_all_arrays(self):
        col = make_column("ACGT", quals=[10, 20, 30, 40],
                          reverse=[True, False, True, False])
        sub = col.subset(np.array([True, False, True, False]))
        assert sub.depth == 2
        assert [CODE_TO_BASE[c] for c in sub.base_codes] == ["A", "G"]
        assert list(sub.quals) == [10, 30]
        assert list(sub.reverse) == [True, True]
