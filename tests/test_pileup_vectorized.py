"""Equivalence tests: vectorised pileup vs the streaming engine."""

import numpy as np
import pytest

from repro.io.regions import Region
from repro.pileup.engine import PileupConfig, pileup
from repro.pileup.vectorized import pileup_from_arrays, pileup_sample


def columns_equal(a, b):
    assert a.pos == b.pos, f"position {a.pos} != {b.pos}"
    assert a.ref_base == b.ref_base
    assert np.array_equal(np.sort(a.base_codes), np.sort(b.base_codes))
    assert np.array_equal(np.sort(a.quals), np.sort(b.quals))
    assert a.reverse.sum() == b.reverse.sum()


class TestEquivalence:
    def test_matches_streaming_engine(self, sample, genome, whole_region):
        cfg = PileupConfig(min_baseq=10)
        vec = list(pileup_sample(sample, whole_region, cfg))
        reads = sample.read_list()
        stream = list(pileup(reads, genome.sequence, whole_region, cfg))
        assert len(vec) == len(stream)
        for a, b in zip(vec, stream):
            columns_equal(a, b)

    def test_matches_on_subregion(self, sample, genome):
        region = Region(genome.name, 300, 450)
        cfg = PileupConfig()
        vec = list(pileup_sample(sample, region, cfg))
        stream = list(
            pileup(sample.read_list(), genome.sequence, region, cfg)
        )
        assert len(vec) == len(stream)
        for a, b in zip(vec, stream):
            columns_equal(a, b)

    def test_depth_cap_consistent(self, sample, genome, whole_region):
        cfg = PileupConfig(max_depth=50)
        vec = list(pileup_sample(sample, whole_region, cfg))
        assert all(c.depth <= 50 for c in vec)
        capped = [c for c in vec if c.n_capped > 0]
        assert capped, "200x sample should exceed a 50x cap somewhere"


class TestDirect:
    def test_single_read_matrix(self):
        starts = np.array([2], dtype=np.int64)
        codes = np.array([[0, 1, 2]], dtype=np.uint8)  # A C G
        quals = np.full((1, 3), 30, dtype=np.uint8)
        rev = np.array([False])
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TTTTTTT", Region("c", 0, 7)
            )
        )
        assert [c.pos for c in cols] == [2, 3, 4]
        assert [c.depth for c in cols] == [1, 1, 1]

    def test_baseq_filter(self):
        starts = np.array([0], dtype=np.int64)
        codes = np.array([[0, 0]], dtype=np.uint8)
        quals = np.array([[5, 30]], dtype=np.uint8)
        rev = np.array([False])
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(min_baseq=10),
            )
        )
        assert [c.pos for c in cols] == [1]

    def test_mapq_below_threshold_drops_everything(self):
        starts = np.array([0], dtype=np.int64)
        codes = np.zeros((1, 2), dtype=np.uint8)
        quals = np.full((1, 2), 30, dtype=np.uint8)
        rev = np.array([False])
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(min_mapq=70), mapq=60,
            )
        )
        assert cols == []

    def _one_read(self):
        starts = np.array([0], dtype=np.int64)
        codes = np.zeros((1, 2), dtype=np.uint8)
        quals = np.full((1, 2), 30, dtype=np.uint8)
        rev = np.array([False])
        return starts, codes, quals, rev

    def test_mapq_above_255_passes_filter_and_saturates(self):
        """A mapq above the uint8 ceiling must still be compared raw
        against min_mapq (300 > 260 passes) and only saturate to 255 in
        the stored column arrays."""
        starts, codes, quals, rev = self._one_read()
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(min_mapq=260), mapq=300,
            )
        )
        assert [c.pos for c in cols] == [0, 1]
        assert all(int(c.mapqs[0]) == 255 for c in cols)

    def test_mapq_above_255_below_threshold_drops(self):
        starts, codes, quals, rev = self._one_read()
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(min_mapq=400), mapq=300,
            )
        )
        assert cols == []

    def test_negative_mapq_raises(self):
        starts, codes, quals, rev = self._one_read()
        with pytest.raises(ValueError, match="mapq"):
            list(
                pileup_from_arrays(
                    starts, codes, quals, rev, "TT", Region("c", 0, 2),
                    mapq=-1,
                )
            )

    def test_flag_filters_documented_as_inapplicable(self):
        """Matrix input has no SAM flags: toggling the flag-based
        filters must not change the pileup."""
        starts, codes, quals, rev = self._one_read()
        base = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(),
            )
        )
        toggled = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(
                    include_duplicates=True,
                    include_secondary=True,
                    include_qcfail=True,
                ),
            )
        )
        assert [c.depth for c in base] == [c.depth for c in toggled]

    def test_inconsistent_shapes_raise(self):
        with pytest.raises(ValueError, match="consistent"):
            list(
                pileup_from_arrays(
                    np.zeros(2, dtype=np.int64),
                    np.zeros((1, 3), dtype=np.uint8),
                    np.zeros((1, 3), dtype=np.uint8),
                    np.zeros(1, dtype=bool),
                    "TTT",
                    Region("c", 0, 3),
                )
            )

    def test_empty_region(self, sample, genome):
        cols = list(pileup_sample(sample, Region(genome.name, 0, 0)))
        assert cols == []


class TestPerReadMapq:
    """Per-read mapping-quality vectors in the matrix path (PR 4)."""

    def _three_reads(self):
        starts = np.array([0, 1, 2], dtype=np.int64)
        codes = np.tile(
            np.array([[0, 1]], dtype=np.uint8), (3, 1)
        )  # A C per read
        quals = np.full((3, 2), 30, dtype=np.uint8)
        rev = np.array([False, True, False])
        return starts, codes, quals, rev

    def test_vector_stamps_per_read_values(self):
        starts, codes, quals, rev = self._three_reads()
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TTTTT", Region("c", 0, 5),
                mapq=np.array([10, 20, 30]),
            )
        )
        # Column 1 holds read 0 (deposited first) then read 1.
        by_pos = {c.pos: c for c in cols}
        assert by_pos[1].mapqs.tolist() == [10, 20]
        assert by_pos[2].mapqs.tolist() == [20, 30]

    def test_vector_min_mapq_drops_exactly_failing_reads(self):
        starts, codes, quals, rev = self._three_reads()
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TTTTT", Region("c", 0, 5),
                PileupConfig(min_mapq=20),
                mapq=np.array([10, 20, 30]),
            )
        )
        by_pos = {c.pos: c for c in cols}
        assert 0 not in by_pos  # only read 0 covered position 0
        assert by_pos[1].mapqs.tolist() == [20]
        assert by_pos[2].mapqs.tolist() == [20, 30]

    def test_vector_matches_streaming_reads_path(self, genome):
        """A matrix with per-read mapq must pileup identically to the
        same reads streamed through the CIGAR-aware engine (which has
        always applied ``min_mapq`` per read)."""
        from repro.io.records import AlignedRead
        from repro.pileup.column import CODE_TO_BASE
        from repro.pileup.vectorized import pileup_batch_from_arrays

        rng = np.random.default_rng(5)
        n, rl = 40, 30
        starts = np.sort(rng.integers(0, 200, size=n)).astype(np.int64)
        codes = rng.integers(0, 4, size=(n, rl)).astype(np.uint8)
        quals = rng.integers(10, 40, size=(n, rl)).astype(np.uint8)
        rev = rng.random(n) < 0.5
        mapqs = rng.integers(0, 60, size=n)
        region = Region(genome.name, 0, 240)
        cfg = PileupConfig(min_mapq=25)

        batch = pileup_batch_from_arrays(
            starts, codes, quals, rev, genome.sequence, region, cfg,
            mapq=mapqs,
        )
        reads = [
            AlignedRead(
                qname=f"r{i}",
                flag=16 if rev[i] else 0,
                rname=genome.name,
                pos=int(starts[i]),
                mapq=int(mapqs[i]),
                cigar=[(0, rl)],
                seq="".join(CODE_TO_BASE[c] for c in codes[i]),
                qual=quals[i],
            )
            for i in range(n)
        ]
        stream = list(pileup(reads, genome.sequence, region, cfg))
        batch_cols = list(batch.columns())
        assert len(batch_cols) == len(stream)
        for a, b in zip(batch_cols, stream):
            assert a.pos == b.pos
            assert np.array_equal(a.base_codes, b.base_codes)
            assert np.array_equal(a.quals, b.quals)
            assert np.array_equal(a.reverse, b.reverse)
            assert np.array_equal(a.mapqs, b.mapqs)

    def test_unsorted_fallback_carries_vector(self):
        starts = np.array([2, 0], dtype=np.int64)  # unsorted on purpose
        codes = np.tile(np.array([[0, 1]], dtype=np.uint8), (2, 1))
        quals = np.full((2, 2), 30, dtype=np.uint8)
        rev = np.array([False, False])
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TTTTT", Region("c", 0, 5),
                mapq=np.array([7, 9]),
            )
        )
        by_pos = {c.pos: c for c in cols}
        assert by_pos[0].mapqs.tolist() == [9]
        assert by_pos[2].mapqs.tolist() == [7]

    def test_vector_saturates_above_255(self):
        starts, codes, quals, rev = self._three_reads()
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TTTTT", Region("c", 0, 5),
                PileupConfig(min_mapq=260),
                mapq=np.array([300, 100, 400]),
            )
        )
        flat = np.concatenate([c.mapqs for c in cols])
        assert set(flat.tolist()) == {255}  # reads 0 and 2 survive

    def test_vector_validation(self):
        starts, codes, quals, rev = self._three_reads()
        with pytest.raises(ValueError, match="shape"):
            list(
                pileup_from_arrays(
                    starts, codes, quals, rev, "TTTTT", Region("c", 0, 5),
                    mapq=np.array([1, 2]),
                )
            )
        with pytest.raises(ValueError, match="non-negative"):
            list(
                pileup_from_arrays(
                    starts, codes, quals, rev, "TTTTT", Region("c", 0, 5),
                    mapq=np.array([1, -2, 3]),
                )
            )

    def test_all_reads_filtered_yields_empty(self):
        starts, codes, quals, rev = self._three_reads()
        batch_cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TTTTT", Region("c", 0, 5),
                PileupConfig(min_mapq=50),
                mapq=np.array([1, 2, 3]),
            )
        )
        assert batch_cols == []
