"""Equivalence tests: vectorised pileup vs the streaming engine."""

import numpy as np
import pytest

from repro.io.regions import Region
from repro.pileup.engine import PileupConfig, pileup
from repro.pileup.vectorized import pileup_from_arrays, pileup_sample


def columns_equal(a, b):
    assert a.pos == b.pos, f"position {a.pos} != {b.pos}"
    assert a.ref_base == b.ref_base
    assert np.array_equal(np.sort(a.base_codes), np.sort(b.base_codes))
    assert np.array_equal(np.sort(a.quals), np.sort(b.quals))
    assert a.reverse.sum() == b.reverse.sum()


class TestEquivalence:
    def test_matches_streaming_engine(self, sample, genome, whole_region):
        cfg = PileupConfig(min_baseq=10)
        vec = list(pileup_sample(sample, whole_region, cfg))
        reads = sample.read_list()
        stream = list(pileup(reads, genome.sequence, whole_region, cfg))
        assert len(vec) == len(stream)
        for a, b in zip(vec, stream):
            columns_equal(a, b)

    def test_matches_on_subregion(self, sample, genome):
        region = Region(genome.name, 300, 450)
        cfg = PileupConfig()
        vec = list(pileup_sample(sample, region, cfg))
        stream = list(
            pileup(sample.read_list(), genome.sequence, region, cfg)
        )
        assert len(vec) == len(stream)
        for a, b in zip(vec, stream):
            columns_equal(a, b)

    def test_depth_cap_consistent(self, sample, genome, whole_region):
        cfg = PileupConfig(max_depth=50)
        vec = list(pileup_sample(sample, whole_region, cfg))
        assert all(c.depth <= 50 for c in vec)
        capped = [c for c in vec if c.n_capped > 0]
        assert capped, "200x sample should exceed a 50x cap somewhere"


class TestDirect:
    def test_single_read_matrix(self):
        starts = np.array([2], dtype=np.int64)
        codes = np.array([[0, 1, 2]], dtype=np.uint8)  # A C G
        quals = np.full((1, 3), 30, dtype=np.uint8)
        rev = np.array([False])
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TTTTTTT", Region("c", 0, 7)
            )
        )
        assert [c.pos for c in cols] == [2, 3, 4]
        assert [c.depth for c in cols] == [1, 1, 1]

    def test_baseq_filter(self):
        starts = np.array([0], dtype=np.int64)
        codes = np.array([[0, 0]], dtype=np.uint8)
        quals = np.array([[5, 30]], dtype=np.uint8)
        rev = np.array([False])
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(min_baseq=10),
            )
        )
        assert [c.pos for c in cols] == [1]

    def test_mapq_below_threshold_drops_everything(self):
        starts = np.array([0], dtype=np.int64)
        codes = np.zeros((1, 2), dtype=np.uint8)
        quals = np.full((1, 2), 30, dtype=np.uint8)
        rev = np.array([False])
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(min_mapq=70), mapq=60,
            )
        )
        assert cols == []

    def _one_read(self):
        starts = np.array([0], dtype=np.int64)
        codes = np.zeros((1, 2), dtype=np.uint8)
        quals = np.full((1, 2), 30, dtype=np.uint8)
        rev = np.array([False])
        return starts, codes, quals, rev

    def test_mapq_above_255_passes_filter_and_saturates(self):
        """A mapq above the uint8 ceiling must still be compared raw
        against min_mapq (300 > 260 passes) and only saturate to 255 in
        the stored column arrays."""
        starts, codes, quals, rev = self._one_read()
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(min_mapq=260), mapq=300,
            )
        )
        assert [c.pos for c in cols] == [0, 1]
        assert all(int(c.mapqs[0]) == 255 for c in cols)

    def test_mapq_above_255_below_threshold_drops(self):
        starts, codes, quals, rev = self._one_read()
        cols = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(min_mapq=400), mapq=300,
            )
        )
        assert cols == []

    def test_negative_mapq_raises(self):
        starts, codes, quals, rev = self._one_read()
        with pytest.raises(ValueError, match="mapq"):
            list(
                pileup_from_arrays(
                    starts, codes, quals, rev, "TT", Region("c", 0, 2),
                    mapq=-1,
                )
            )

    def test_flag_filters_documented_as_inapplicable(self):
        """Matrix input has no SAM flags: toggling the flag-based
        filters must not change the pileup."""
        starts, codes, quals, rev = self._one_read()
        base = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(),
            )
        )
        toggled = list(
            pileup_from_arrays(
                starts, codes, quals, rev, "TT", Region("c", 0, 2),
                PileupConfig(
                    include_duplicates=True,
                    include_secondary=True,
                    include_qcfail=True,
                ),
            )
        )
        assert [c.depth for c in base] == [c.depth for c in toggled]

    def test_inconsistent_shapes_raise(self):
        with pytest.raises(ValueError, match="consistent"):
            list(
                pileup_from_arrays(
                    np.zeros(2, dtype=np.int64),
                    np.zeros((1, 3), dtype=np.uint8),
                    np.zeros((1, 3), dtype=np.uint8),
                    np.zeros(1, dtype=bool),
                    "TTT",
                    Region("c", 0, 3),
                )
            )

    def test_empty_region(self, sample, genome):
        cols = list(pileup_sample(sample, Region(genome.name, 0, 0)))
        assert cols == []
