"""Tests for the genome generator and variant panels."""

import pytest

from repro.sim.genome import SARS_COV_2_LENGTH, random_genome, sars_cov_2_like
from repro.sim.haplotypes import VariantPanel, VariantSpec, random_panel


class TestGenome:
    def test_reproducible(self):
        a = random_genome(500, seed=3)
        b = random_genome(500, seed=3)
        assert a.sequence == b.sequence

    def test_different_seeds_differ(self):
        assert random_genome(500, seed=1).sequence != random_genome(500, seed=2).sequence

    def test_length(self):
        assert len(random_genome(777)) == 777

    def test_gc_content_respected(self):
        g = random_genome(50_000, gc_content=0.3, seed=0)
        gc = sum(1 for b in g.sequence if b in "GC") / len(g)
        assert gc == pytest.approx(0.3, abs=0.01)

    def test_alphabet(self):
        g = random_genome(1000, seed=1)
        assert set(g.sequence) <= set("ACGT")

    def test_sars_cov_2_defaults(self):
        g = sars_cov_2_like(length=2000)
        assert len(g) == 2000
        assert g.name == "NC_045512.2-sim"

    def test_sars_cov_2_full_length_constant(self):
        assert SARS_COV_2_LENGTH == 29_903

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_genome(0)
        with pytest.raises(ValueError):
            random_genome(10, gc_content=1.5)


class TestVariantSpec:
    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            VariantSpec(0, "A", "T", 0.0)
        with pytest.raises(ValueError):
            VariantSpec(0, "A", "T", 1.5)

    def test_ref_equals_alt_raises(self):
        with pytest.raises(ValueError):
            VariantSpec(0, "A", "A", 0.5)

    def test_key_ignores_frequency(self):
        a = VariantSpec(5, "A", "T", 0.1)
        b = VariantSpec(5, "A", "T", 0.9)
        assert a.key == b.key


class TestPanel:
    def test_duplicate_position_rejected(self):
        panel = VariantPanel([VariantSpec(3, "A", "T", 0.1)])
        with pytest.raises(ValueError, match="duplicate"):
            panel.add(VariantSpec(3, "A", "G", 0.1))

    def test_iteration_sorted_by_position(self):
        panel = VariantPanel(
            [VariantSpec(9, "A", "T", 0.1), VariantSpec(2, "C", "G", 0.1)]
        )
        assert [v.pos for v in panel] == [2, 9]

    def test_membership_and_lookup(self):
        v = VariantSpec(4, "G", "C", 0.2)
        panel = VariantPanel([v])
        assert 4 in panel
        assert 5 not in panel
        assert panel.at(4) == v
        assert panel.at(5) is None

    def test_validate_against_genome(self):
        panel = VariantPanel([VariantSpec(1, "C", "T", 0.1)])
        panel.validate_against("ACGT")  # fine
        bad = VariantPanel([VariantSpec(1, "G", "T", 0.1)])
        with pytest.raises(ValueError, match="claims ref"):
            bad.validate_against("ACGT")
        beyond = VariantPanel([VariantSpec(10, "A", "T", 0.1)])
        with pytest.raises(ValueError, match="beyond"):
            beyond.validate_against("ACGT")


class TestRandomPanel:
    def test_reproducible(self):
        g = random_genome(2000, seed=1).sequence
        a = random_panel(g, 10, seed=5)
        b = random_panel(g, 10, seed=5)
        assert a.keys() == b.keys()

    def test_respects_exclusions(self):
        g = random_genome(100, seed=1).sequence
        excluded = set(range(0, 100, 2))
        panel = random_panel(g, 20, seed=0, exclude_positions=excluded)
        assert not (set(panel.positions()) & excluded)

    def test_frequency_range(self):
        g = random_genome(2000, seed=1).sequence
        panel = random_panel(g, 50, freq_range=(0.01, 0.02), seed=0)
        for v in panel:
            assert 0.01 <= v.frequency <= 0.02

    def test_refs_match_genome(self):
        g = random_genome(500, seed=2).sequence
        panel = random_panel(g, 20, seed=3)
        panel.validate_against(g)

    def test_explicit_positions(self):
        g = random_genome(100, seed=1).sequence
        panel = random_panel(g, 3, positions=[5, 10, 15], seed=0)
        assert panel.positions() == [5, 10, 15]

    def test_too_many_variants_raises(self):
        g = random_genome(10, seed=1).sequence
        with pytest.raises(ValueError, match="cannot place"):
            random_panel(g, 50, seed=0)
