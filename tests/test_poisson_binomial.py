"""Tests for the exact Poisson-binomial implementations."""

import numpy as np
import pytest

from repro.stats.poisson_binomial import (
    poibin_mean_variance,
    poibin_pmf_dp,
    poibin_sf,
    poibin_sf_binomial,
    poibin_sf_brute_force,
    poibin_sf_dp,
    poibin_sf_dp_batch,
)


@pytest.fixture
def hetero_probs(rng):
    return rng.uniform(0.0005, 0.02, size=500)


class TestPmfDp:
    def test_matches_brute_force_small(self, rng):
        p = rng.uniform(0, 1, size=8)
        pmf = poibin_pmf_dp(p)
        for k in range(9):
            tail = pmf[k:].sum()
            assert tail == pytest.approx(
                poibin_sf_brute_force(k, p), abs=1e-12
            )

    def test_sums_to_one(self, hetero_probs):
        assert poibin_pmf_dp(hetero_probs).sum() == pytest.approx(1.0, rel=1e-12)

    def test_degenerate_all_zero(self):
        pmf = poibin_pmf_dp(np.zeros(5))
        assert pmf[0] == 1.0
        assert pmf[1:].sum() == 0.0

    def test_degenerate_all_one(self):
        pmf = poibin_pmf_dp(np.ones(5))
        assert pmf[5] == pytest.approx(1.0)
        assert pmf[:5].sum() == pytest.approx(0.0, abs=1e-15)

    def test_empty(self):
        pmf = poibin_pmf_dp(np.array([]))
        assert list(pmf) == [1.0]

    def test_mean_variance_match_pmf(self, rng):
        p = rng.uniform(0, 1, size=30)
        pmf = poibin_pmf_dp(p)
        ks = np.arange(31)
        mean, var = poibin_mean_variance(p)
        assert (pmf * ks).sum() == pytest.approx(mean, rel=1e-10)
        assert (pmf * (ks - mean) ** 2).sum() == pytest.approx(var, rel=1e-8)

    def test_invalid_probs_raise(self):
        with pytest.raises(ValueError):
            poibin_pmf_dp(np.array([0.5, 1.2]))
        with pytest.raises(ValueError):
            poibin_pmf_dp(np.array([[0.5]]))


class TestSfDp:
    def test_matches_full_pmf(self, hetero_probs):
        pmf = poibin_pmf_dp(hetero_probs)
        for k in (1, 2, 5, 10, 20):
            got = poibin_sf_dp(k, hetero_probs).pvalue
            assert got == pytest.approx(float(pmf[k:].sum()), rel=1e-9, abs=1e-14)

    def test_matches_binomial_special_case(self):
        d, p = 400, 0.003
        probs = np.full(d, p)
        for k in (1, 2, 4, 8):
            assert poibin_sf(k, probs) == pytest.approx(
                poibin_sf_binomial(k, d, p), rel=1e-9
            )

    def test_k_zero_is_one(self):
        assert poibin_sf_dp(0, np.array([0.1, 0.2])).pvalue == 1.0

    def test_k_beyond_d_is_zero(self):
        assert poibin_sf_dp(5, np.array([0.5, 0.5])).pvalue == 0.0

    def test_zero_probabilities_skipped(self):
        p = np.array([0.0, 0.3, 0.0, 0.2])
        assert poibin_sf(1, p) == pytest.approx(1 - 0.7 * 0.8, rel=1e-12)

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            poibin_sf_dp(-1, np.array([0.5]))


class TestPruning:
    def test_running_tail_is_monotone_lower_bound(self, rng):
        """Early-stopped p-value must lower-bound the exact value."""
        p = rng.uniform(0.001, 0.05, size=300)
        exact = poibin_sf_dp(3, p).pvalue
        pruned = poibin_sf_dp(3, p, prune_above=exact / 10)
        assert not pruned.complete
        assert pruned.pvalue <= exact
        assert pruned.steps < 300

    def test_prune_triggers_early_on_clear_columns(self, rng):
        """A K far below lambda stops long before d reads."""
        p = np.full(5000, 0.01)  # lambda = 50
        res = poibin_sf_dp(5, p, prune_above=1e-6)
        assert not res.complete
        assert res.steps < 2500

    def test_no_prune_on_significant_columns(self):
        """A K far above lambda must run to completion (it is the
        variant case; the exact p-value is needed)."""
        p = np.full(1000, 0.001)  # lambda = 1
        res = poibin_sf_dp(30, p, prune_above=0.05)
        assert res.complete
        assert res.steps == 1000
        assert res.pvalue < 1e-20

    def test_pruned_verdict_agrees_with_exact(self, rng):
        """Whenever pruning fires, 'p > threshold' must be the truth."""
        for seed in range(20):
            r = np.random.default_rng(seed)
            p = r.uniform(0.0, 0.05, size=200)
            k = int(r.integers(1, 12))
            threshold = 10.0 ** -r.uniform(1, 8)
            pruned = poibin_sf_dp(k, p, prune_above=threshold)
            if not pruned.complete:
                exact = poibin_sf_dp(k, p).pvalue
                assert exact > threshold


class TestCrossValidation:
    def test_dp_vs_brute_force_random(self):
        for seed in range(25):
            rng = np.random.default_rng(seed)
            d = int(rng.integers(1, 13))
            p = rng.uniform(0, 1, size=d)
            k = int(rng.integers(0, d + 2))
            assert poibin_sf(k, p) == pytest.approx(
                poibin_sf_brute_force(k, p), abs=1e-11
            )

    def test_batch_dp_vs_brute_force_random(self):
        """The 2-D batch DP against the 2^d oracle, lanes ragged."""
        for seed in range(10):
            rng = np.random.default_rng(seed)
            rows = [
                rng.uniform(0, 1, size=int(rng.integers(1, 13)))
                for _ in range(8)
            ]
            ks = np.array([int(rng.integers(0, r.size + 2)) for r in rows])
            lens = np.array([r.size for r in rows])
            plane = np.zeros((8, int(lens.max())))
            for i, r in enumerate(rows):
                plane[i, : r.size] = r
            res = poibin_sf_dp_batch(ks, plane, lens)
            for i, r in enumerate(rows):
                assert res.pvalues[i] == pytest.approx(
                    poibin_sf_brute_force(int(ks[i]), r), abs=1e-11
                )
                assert res.pvalues[i] == poibin_sf_dp(int(ks[i]), r).pvalue

    def test_brute_force_limits(self):
        with pytest.raises(ValueError):
            poibin_sf_brute_force(1, np.full(25, 0.5))

    def test_binomial_extremes(self):
        assert poibin_sf_binomial(0, 10, 0.5) == 1.0
        assert poibin_sf_binomial(11, 10, 0.5) == 0.0
        assert poibin_sf_binomial(5, 10, 0.0) == 0.0
        assert poibin_sf_binomial(5, 10, 1.0) == 1.0
