"""Unit tests for the alignment record and header models."""

import numpy as np
import pytest

from repro.io.cigar import CigarOp
from repro.io.records import (
    FLAG_DUPLICATE,
    FLAG_REVERSE,
    FLAG_SECONDARY,
    FLAG_SUPPLEMENTARY,
    FLAG_UNMAPPED,
    AlignedRead,
    SamHeader,
)


def make_read(**kwargs):
    defaults = dict(
        qname="r1",
        flag=0,
        rname="chr1",
        pos=100,
        mapq=60,
        cigar=[(CigarOp.M, 4)],
        seq="ACGT",
        qual=np.array([30, 31, 32, 33], dtype=np.uint8),
    )
    defaults.update(kwargs)
    return AlignedRead(**defaults)


class TestAlignedRead:
    def test_reference_end(self):
        read = make_read()
        assert read.reference_end == 104

    def test_reference_end_with_deletion(self):
        read = make_read(cigar=[(CigarOp.M, 2), (CigarOp.D, 3), (CigarOp.M, 2)])
        assert read.reference_end == 100 + 2 + 3 + 2

    def test_seq_qual_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="QUAL length"):
            make_read(qual=np.array([30, 30], dtype=np.uint8))

    def test_cigar_seq_mismatch_raises(self):
        with pytest.raises(ValueError):
            make_read(cigar=[(CigarOp.M, 7)])

    def test_flag_predicates(self):
        assert make_read(flag=FLAG_REVERSE).is_reverse
        assert make_read(flag=FLAG_UNMAPPED, cigar=[]).is_unmapped
        assert make_read(flag=FLAG_SECONDARY).is_secondary
        assert make_read(flag=FLAG_DUPLICATE).is_duplicate
        assert not make_read().is_reverse

    def test_is_primary(self):
        assert make_read().is_primary
        assert not make_read(flag=FLAG_SECONDARY).is_primary
        assert not make_read(flag=FLAG_SUPPLEMENTARY).is_primary
        assert not make_read(flag=FLAG_UNMAPPED, cigar=[]).is_primary

    def test_overlaps(self):
        read = make_read()  # spans [100, 104)
        assert read.overlaps(100, 101)
        assert read.overlaps(103, 200)
        assert not read.overlaps(104, 200)
        assert not read.overlaps(0, 100)

    def test_simple_constructor(self):
        read = AlignedRead.simple("r", "chr1", 5, "ACG", [30, 30, 30])
        assert read.cigar == [(CigarOp.M, 3)]
        assert read.pos == 5
        assert not read.is_reverse

    def test_simple_reverse(self):
        read = AlignedRead.simple(
            "r", "chr1", 5, "ACG", [30, 30, 30], reverse=True
        )
        assert read.is_reverse

    def test_qual_coerced_to_uint8(self):
        read = make_read(qual=[30, 31, 32, 33])
        assert read.qual.dtype == np.uint8


class TestSamHeader:
    def test_reference_id(self):
        hdr = SamHeader(references=[("chr1", 100), ("chr2", 200)])
        assert hdr.reference_id("chr1") == 0
        assert hdr.reference_id("chr2") == 1
        assert hdr.reference_id("chrX") == -1

    def test_reference_length(self):
        hdr = SamHeader(references=[("chr1", 100)])
        assert hdr.reference_length("chr1") == 100
        with pytest.raises(KeyError):
            hdr.reference_length("chrX")

    def test_text_round_trip(self):
        hdr = SamHeader(
            references=[("chr1", 100), ("chr2", 200)],
            read_groups=[{"ID": "rg1", "SM": "s1"}],
            programs=[{"ID": "p1", "PN": "prog"}],
            sort_order="coordinate",
            comments=["hello world"],
        )
        parsed = SamHeader.from_text(hdr.to_text())
        assert parsed.references == hdr.references
        assert parsed.read_groups == hdr.read_groups
        assert parsed.programs == hdr.programs
        assert parsed.sort_order == "coordinate"
        assert parsed.comments == ["hello world"]

    def test_sort_key_orders_by_reference_then_position(self):
        hdr = SamHeader(references=[("chr1", 100), ("chr2", 200)])
        a = make_read(rname="chr1", pos=50)
        b = make_read(rname="chr2", pos=10)
        c = make_read(rname="chr1", pos=10)
        ordered = sorted([a, b, c], key=lambda r: r.sort_key(hdr))
        assert [(r.rname, r.pos) for r in ordered] == [
            ("chr1", 10),
            ("chr1", 50),
            ("chr2", 10),
        ]
