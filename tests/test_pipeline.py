"""Tests for the composable pipeline API (sources -> engine -> sinks).

Covers the ISSUE 2 acceptance criteria: multi-contig BAMs round-trip
through ``Pipeline.run()`` and the CLI with calls on every contig, and
the pre-redesign surfaces (``VariantCaller.call_bam``,
``parallel_call``, the CLI ``call`` subcommand) are byte-identical to
their old behaviour on single-contig inputs.
"""

import io
import json

import pytest

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.core.filters import DynamicFilterPolicy
from repro.io.bam import BamReader, BamWriter
from repro.io.fasta import write_fasta
from repro.io.records import SamHeader
from repro.io.regions import Region
from repro.io.vcf import read_vcf, write_vcf
from repro.pileup.engine import pileup
from repro.pipeline import (
    BamSource,
    ColumnsSource,
    ExecutionPolicy,
    JsonlSink,
    Pipeline,
    ReadsSource,
    SampleSource,
    StatsSink,
    TeeSink,
    VcfSink,
)


def reference_call_bam(caller, bam_path, reference, region=None):
    """The pre-redesign ``VariantCaller.call_bam`` body, kept verbatim
    as the equivalence oracle for the pipeline-backed shim."""
    with BamReader(bam_path) as reader:
        if region is None:
            name, length = reader.header.references[0]
            region = Region(name, 0, length)
        columns = pileup(
            iter(reader), reference, region, caller.pileup_config
        )
        return caller.call_columns(columns, len(region))


def vcf_bytes(result, contigs):
    buf = io.StringIO()
    write_vcf(buf, [c.to_vcf_record() for c in result.calls], reference=contigs)
    return buf.getvalue()


@pytest.fixture(scope="module")
def bam_workspace(tmp_path_factory, sample, genome):
    root = tmp_path_factory.mktemp("pipeline")
    bam = root / "single.bam"
    sample.write_bam(bam)
    return root, bam


# -- multi-contig fixtures ----------------------------------------------------


@pytest.fixture(scope="module")
def multi_contig(tmp_path_factory):
    """A coordinate-sorted BAM over two contigs, plus truth and FASTA."""
    from repro.sim import ReadSimulator, random_panel
    from repro.sim.genome import random_genome

    root = tmp_path_factory.mktemp("multictg")
    genome_a = random_genome(700, gc_content=0.4, name="ctgA", seed=5)
    genome_b = random_genome(500, gc_content=0.45, name="ctgB", seed=6)
    panel_a = random_panel(genome_a.sequence, 4, freq_range=(0.06, 0.2), seed=7)
    panel_b = random_panel(genome_b.sequence, 3, freq_range=(0.06, 0.2), seed=8)
    sample_a = ReadSimulator(genome_a, panel_a, read_length=80).simulate(
        depth=200, seed=9
    )
    sample_b = ReadSimulator(genome_b, panel_b, read_length=80).simulate(
        depth=200, seed=10
    )
    bam = root / "multi.bam"
    header = SamHeader(
        references=[("ctgA", len(genome_a)), ("ctgB", len(genome_b))],
        sort_order="coordinate",
    )
    with BamWriter(bam, header) as writer:
        for read in sample_a.reads():
            writer.write(read)
        for read in sample_b.reads():
            writer.write(read)
    fasta = root / "multi.fa"
    write_fasta(fasta, [genome_a, genome_b])
    fasta_b_only = root / "onlyB.fa"
    write_fasta(fasta_b_only, [genome_b])
    refmap = {"ctgA": genome_a.sequence, "ctgB": genome_b.sequence}
    truth = {
        "ctgA": {(v.pos, v.ref, v.alt) for v in panel_a},
        "ctgB": {(v.pos, v.ref, v.alt) for v in panel_b},
    }
    return {
        "root": root,
        "bam": bam,
        "fasta": fasta,
        "fasta_b_only": fasta_b_only,
        "refmap": refmap,
        "truth": truth,
    }


class TestShimEquivalence:
    """Old entry points are byte-identical adapters over the pipeline."""

    def test_call_bam_vcf_byte_identical(self, bam_workspace, genome):
        _, bam = bam_workspace
        contigs = [(genome.name, len(genome))]
        old = reference_call_bam(VariantCaller(), bam, genome.sequence)
        new = VariantCaller().call_bam(bam, genome.sequence)
        assert vcf_bytes(old, contigs) == vcf_bytes(new, contigs)

    def test_call_bam_region_byte_identical(self, bam_workspace, genome):
        _, bam = bam_workspace
        region = Region(genome.name, 100, 900)
        contigs = [(genome.name, len(genome))]
        old = reference_call_bam(VariantCaller(), bam, genome.sequence, region)
        new = VariantCaller().call_bam(bam, genome.sequence, region)
        assert vcf_bytes(old, contigs) == vcf_bytes(new, contigs)

    def test_parallel_call_vcf_byte_identical(self, bam_workspace, genome):
        from repro.parallel import ParallelCallOptions, parallel_call

        _, bam = bam_workspace
        contigs = [(genome.name, len(genome))]
        old = reference_call_bam(VariantCaller(), bam, genome.sequence)
        for backend in ("serial", "thread"):
            new = parallel_call(
                str(bam),
                genome.sequence,
                options=ParallelCallOptions(n_workers=3, backend=backend),
            )
            assert vcf_bytes(old, contigs) == vcf_bytes(new, contigs), backend

    def test_call_bam_stats_counters_match(self, bam_workspace, genome):
        _, bam = bam_workspace
        old = reference_call_bam(VariantCaller(), bam, genome.sequence)
        new = VariantCaller().call_bam(bam, genome.sequence)
        assert old.stats.columns_seen == new.stats.columns_seen
        assert old.stats.tests_run == new.stats.tests_run
        assert old.stats.decisions == new.stats.decisions

    def test_legacy_call_bam_matches_inline_legacy(self, bam_workspace, genome):
        """legacy_call_bam (relocated from cli.py) reproduces the old
        inline _legacy_call_bam output exactly."""
        from repro.core.filters import apply_filters
        from repro.core.results import CallResult, RunStats
        from repro.parallel import legacy_call_bam
        from repro.parallel.partition import partition_region

        _, bam = bam_workspace
        config = CallerConfig.improved()
        policy = DynamicFilterPolicy()
        region = Region(genome.name, 0, len(genome))
        merged_stats = RunStats()
        survivors = []
        for part in partition_region(region, 4):
            caller = VariantCaller(config, filter_policy=None)
            res = reference_call_bam(caller, bam, genome.sequence, part)
            merged_stats.merge(res.stats)
            filtered = apply_filters(res.calls, policy.fit(res.calls))
            survivors.extend(c for c in filtered if c.filter == "PASS")
        survivors.sort(key=lambda c: (c.chrom, c.pos, c.alt))
        oracle = CallResult(
            calls=apply_filters(survivors, policy.fit(survivors)),
            stats=merged_stats,
        )
        got = legacy_call_bam(bam, genome.sequence, config=config, n_partitions=4)
        contigs = [(genome.name, len(genome))]
        assert vcf_bytes(oracle, contigs) == vcf_bytes(got, contigs)

    def test_legacy_pipeline_matches_legacy_parallel_call(self, sample, genome):
        from repro.parallel import legacy_parallel_call

        oracle = legacy_parallel_call(sample, genome.sequence, n_partitions=4)
        got = Pipeline(
            SampleSource(sample),
            policy=ExecutionPolicy(mode="legacy", n_workers=4),
        ).run()
        assert [c.key for c in oracle.calls] == [c.key for c in got.calls]
        assert [c.filter for c in oracle.calls] == [c.filter for c in got.calls]


class TestSources:
    def test_columns_source(self, columns, whole_region, sample):
        single = VariantCaller().call_sample(sample)
        result = Pipeline(ColumnsSource(iter(columns), whole_region)).run()
        assert result.keys() == single.keys()

    def test_columns_source_chunked(self, columns, whole_region, sample):
        single = VariantCaller().call_sample(sample)
        result = Pipeline(
            ColumnsSource(columns, whole_region),
            policy=ExecutionPolicy(mode="thread", n_workers=3, chunk_columns=128),
        ).run()
        assert result.keys() == single.keys()

    def test_reads_source_streaming(self, sample, genome, whole_region):
        single = VariantCaller().call_sample(sample)
        result = Pipeline(
            ReadsSource(sample.reads(), genome.sequence, whole_region)
        ).run()
        assert result.keys() == single.keys()

    def test_reads_source_one_shot_iterator_guard(self, sample, genome, whole_region):
        source = ReadsSource(sample.reads(), genome.sequence, whole_region)
        list(source.columns_for(whole_region))
        with pytest.raises(ValueError, match="single pass"):
            source.columns_for(whole_region)

    def test_reads_source_list_rewinds(self, sample, genome, whole_region):
        source = ReadsSource(
            sample.read_list(), genome.sequence, whole_region
        )
        a = list(source.columns_for(whole_region))
        b = list(source.columns_for(whole_region))
        assert len(a) == len(b) > 0

    def test_bam_source_default_regions_cover_header(self, multi_contig):
        source = BamSource(multi_contig["bam"], multi_contig["refmap"])
        assert [r.chrom for r in source.regions()] == ["ctgA", "ctgB"]
        assert source.contigs == [("ctgA", 700), ("ctgB", 500)]

    def test_bam_source_str_reference_defaults_to_first_contig(self, multi_contig):
        """Legacy call_bam scope: a plain-string reference on a
        multi-contig BAM restricts the default regions to the first
        header reference instead of failing."""
        source = BamSource(
            multi_contig["bam"], multi_contig["refmap"]["ctgA"]
        )
        assert [r.chrom for r in source.regions()] == ["ctgA"]

    def test_bam_source_str_reference_multi_contig_regions_rejected(
        self, multi_contig
    ):
        regions = [Region("ctgA", 0, 700), Region("ctgB", 0, 500)]
        with pytest.raises(ValueError, match="single reference string"):
            BamSource(multi_contig["bam"], "ACGT" * 200, regions=regions)


class TestMultiContig:
    def test_serial_calls_every_contig(self, multi_contig):
        result = Pipeline(
            BamSource(multi_contig["bam"], multi_contig["refmap"])
        ).run()
        for chrom, truth in multi_contig["truth"].items():
            called = {
                (c.pos, c.ref, c.alt) for c in result.passed if c.chrom == chrom
            }
            assert truth <= called, chrom

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_parallel_matches_serial(self, multi_contig, mode):
        serial = Pipeline(
            BamSource(multi_contig["bam"], multi_contig["refmap"])
        ).run()
        result = Pipeline(
            BamSource(multi_contig["bam"], multi_contig["refmap"]),
            policy=ExecutionPolicy(mode=mode, n_workers=3, chunk_columns=128),
        ).run()
        assert result.keys() == serial.keys()
        assert result.stats.columns_seen == serial.stats.columns_seen

    def test_bonferroni_scope_is_total_length(self, multi_contig):
        source = BamSource(multi_contig["bam"], multi_contig["refmap"])
        total = sum(len(r) for r in source.regions())
        assert total == 1200
        # A genome-wide run must correct over both contigs: a config
        # with an explicit matching bonferroni gives identical calls.
        implicit = Pipeline(
            BamSource(multi_contig["bam"], multi_contig["refmap"])
        ).run()
        explicit = Pipeline(
            BamSource(multi_contig["bam"], multi_contig["refmap"]),
            config=CallerConfig.improved(bonferroni=3 * total),
        ).run()
        assert implicit.keys() == explicit.keys()

    def test_cli_all_contigs_round_trip(self, multi_contig):
        from repro.cli import main

        out = multi_contig["root"] / "cli_multi.vcf"
        rc = main(
            [
                "call", str(multi_contig["bam"]),
                "--reference", str(multi_contig["fasta"]),
                "--out", str(out),
                "--all-contigs",
            ]
        )
        assert rc == 0
        headers, records = read_vcf(out)
        assert "##contig=<ID=ctgA,length=700>" in headers
        assert "##contig=<ID=ctgB,length=500>" in headers
        by_chrom = {r.chrom for r in records if r.filter == "PASS"}
        assert by_chrom == {"ctgA", "ctgB"}

    def test_cli_region_resolves_contig_not_first_reference(self, multi_contig):
        """Satellite: --region ctgB must work even when the FASTA lacks
        the BAM's first reference."""
        from repro.cli import main

        out = multi_contig["root"] / "cli_b_only.vcf"
        rc = main(
            [
                "call", str(multi_contig["bam"]),
                "--reference", str(multi_contig["fasta_b_only"]),
                "--out", str(out),
                "--region", "ctgB",
            ]
        )
        assert rc == 0
        _, records = read_vcf(out)
        assert records and all(r.chrom == "ctgB" for r in records)
        truth = multi_contig["truth"]["ctgB"]
        called = {(r.pos, r.ref, r.alt) for r in records if r.filter == "PASS"}
        assert truth <= called

    def test_cli_region_and_all_contigs_conflict(self, multi_contig, capsys):
        from repro.cli import main

        rc = main(
            [
                "call", str(multi_contig["bam"]),
                "--reference", str(multi_contig["fasta"]),
                "--out", str(multi_contig["root"] / "y.vcf"),
                "--all-contigs", "--region", "ctgA:1-100",
            ]
        )
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cli_region_unknown_contig_errors(self, multi_contig, capsys):
        from repro.cli import main

        rc = main(
            [
                "call", str(multi_contig["bam"]),
                "--reference", str(multi_contig["fasta"]),
                "--out", str(multi_contig["root"] / "x.vcf"),
                "--region", "ctgZ:1-100",
            ]
        )
        assert rc == 2
        assert "ctgZ" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["ctgA:bogus", "ctgA:900-100"])
    def test_cli_malformed_region_errors_cleanly(self, multi_contig, capsys, bad):
        from repro.cli import main

        rc = main(
            [
                "call", str(multi_contig["bam"]),
                "--reference", str(multi_contig["fasta"]),
                "--out", str(multi_contig["root"] / "z.vcf"),
                "--region", bad,
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestSinks:
    def test_vcf_sink_matches_write_vcf(self, sample, genome, tmp_path):
        out = tmp_path / "sink.vcf"
        contigs = [(genome.name, len(genome))]
        result = Pipeline(
            SampleSource(sample), sinks=[VcfSink(out, contigs=contigs)]
        ).run()
        assert out.read_text() == vcf_bytes(result, contigs)

    def test_jsonl_sink(self, sample, tmp_path):
        out = tmp_path / "calls.jsonl"
        result = Pipeline(SampleSource(sample), sinks=[JsonlSink(out)]).run()
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == len(result.calls)
        assert lines[0]["chrom"] == result.calls[0].chrom
        assert lines[0]["pos"] == result.calls[0].pos
        assert {"ref", "alt", "af", "dp4", "filter"} <= set(lines[0])

    def test_stats_sink(self, sample, tmp_path):
        out = tmp_path / "stats.json"
        result = Pipeline(SampleSource(sample), sinks=[StatsSink(out)]).run()
        payload = json.loads(out.read_text())
        assert payload["n_calls"] == len(result.calls)
        assert payload["n_pass"] == len(result.passed)
        assert payload["stats"] == result.stats.to_dict()
        assert payload["stats"]["columns_seen"] == result.stats.columns_seen

    def test_tee_sink(self, sample, genome, tmp_path):
        vcf_out = tmp_path / "tee.vcf"
        stats_out = tmp_path / "tee.json"
        Pipeline(
            SampleSource(sample),
            sinks=[
                TeeSink(
                    VcfSink(vcf_out, contigs=[(genome.name, len(genome))]),
                    StatsSink(stats_out),
                )
            ],
        ).run()
        assert vcf_out.stat().st_size > 0
        assert json.loads(stats_out.read_text())["stats"]["columns_seen"] > 0

    def test_sink_accepts_text_handle(self, sample, genome):
        buf = io.StringIO()
        result = Pipeline(
            SampleSource(sample),
            sinks=[VcfSink(buf, contigs=[(genome.name, len(genome))])],
        ).run()
        assert buf.getvalue().count("\nchrT\t") == len(result.calls)


class TestExecutionPolicy:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(mode="gpu")
        with pytest.raises(ValueError):
            ExecutionPolicy(n_workers=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(chunk_columns=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(schedule="fifo")

    def test_empty_source_rejected(self):
        class Empty:
            def regions(self):
                return []

            def columns_for(self, chunk, tracer=None, worker=0):
                return []

        with pytest.raises(ValueError, match="no regions"):
            Pipeline(Empty()).run()

    def test_no_filter_policy_leaves_calls_raw(self, sample):
        result = Pipeline(SampleSource(sample), filter_policy=None).run()
        assert all(c.filter == "PASS" for c in result.calls)

    def test_thread_worker_failure_propagates(self, multi_contig):
        """A dead worker must fail the run, not silently shrink the
        output (and corrupt the post-filter fit)."""
        refmap = {"ctgA": multi_contig["refmap"]["ctgA"]}  # ctgB missing
        with pytest.raises(ValueError, match="ctgB"):
            Pipeline(
                BamSource(multi_contig["bam"], refmap),
                policy=ExecutionPolicy(
                    mode="thread", n_workers=3, chunk_columns=128
                ),
            ).run()

    def test_failed_run_leaves_no_output_file(self, multi_contig, tmp_path):
        out = tmp_path / "partial.vcf"
        refmap = {"ctgA": multi_contig["refmap"]["ctgA"]}
        with pytest.raises(ValueError):
            Pipeline(
                BamSource(multi_contig["bam"], refmap),
                sinks=[VcfSink(out)],
            ).run()
        assert not out.exists()

    def test_batched_engine_through_pipeline(self, sample):
        streaming = Pipeline(SampleSource(sample)).run()
        batched = Pipeline(
            SampleSource(sample),
            config=CallerConfig.improved(engine="batched"),
        ).run()
        assert streaming.keys() == batched.keys()
        assert streaming.stats.decisions == batched.stats.decisions


class TestBamSourceBatchColumns:
    """Source-side streaming construction (PR 5): chunks are built
    incrementally by ``ColumnBatchBuilder`` and handed to the engine
    as a lazy stream of bounded work units."""

    def test_default_single_unit_below_cap(self, bam_workspace, genome):
        _, bam = bam_workspace
        source = BamSource(bam, genome.sequence)
        region = source.regions()[0]
        batches = list(source.batches_for(region))
        assert len(batches) == 1  # 1200 columns < default 16384 cap

    def test_batches_stream_lazily(self, bam_workspace, genome):
        """batches_for is a generator: pulling the first batch must not
        build the rest of the chunk."""
        _, bam = bam_workspace
        source = BamSource(bam, genome.sequence, batch_columns=100)
        region = source.regions()[0]
        stream = source.batches_for(region)
        assert not isinstance(stream, (list, tuple))
        first = next(iter(stream))
        assert first.n_columns <= 100

    def test_cap_streams_bounded_units(self, bam_workspace, genome):
        _, bam = bam_workspace
        source = BamSource(bam, genome.sequence, batch_columns=100)
        region = source.regions()[0]
        batches = list(source.batches_for(region))
        assert len(batches) > 1
        assert all(b.n_columns <= 100 for b in batches)
        # Together the streamed batches are exactly the whole-chunk
        # batch, column for column.
        whole = next(
            iter(
                BamSource(
                    bam, genome.sequence, batch_columns=None
                ).batches_for(region)
            )
        )
        import numpy as np

        assert sum(b.n_columns for b in batches) == whole.n_columns
        assert np.array_equal(
            np.concatenate([b.positions for b in batches]), whole.positions
        )
        assert np.array_equal(
            np.concatenate([b.quals for b in batches]), whole.quals
        )
        assert np.array_equal(
            np.concatenate([b.base_codes for b in batches]),
            whole.base_codes,
        )
        # Strand/mapq planes stay lazy on every streamed unit.
        assert all(not b.planes_materialised for b in batches)

    def test_resliced_pipeline_byte_identical(self, bam_workspace, genome):
        _, bam = bam_workspace
        results = {}
        for label, cap in (("whole", None), ("sliced", 64)):
            results[label] = Pipeline(
                BamSource(bam, genome.sequence, batch_columns=cap),
                config=CallerConfig(engine="batched"),
            ).run()
        contigs = [(genome.name, len(genome))]
        assert vcf_bytes(results["whole"], contigs) == vcf_bytes(
            results["sliced"], contigs
        )
        assert (
            results["whole"].stats.decisions
            == results["sliced"].stats.decisions
        )

    def test_invalid_cap_rejected(self, bam_workspace, genome):
        _, bam = bam_workspace
        with pytest.raises(ValueError, match="batch_columns"):
            BamSource(bam, genome.sequence, batch_columns=0)


class TestMultiIndex:
    def test_multi_index_covers_both_contigs(self, multi_contig):
        from repro.io.index import build_linear_index

        indexes = build_linear_index(multi_contig["bam"])
        assert set(indexes) == {"ctgA", "ctgB"}
        assert indexes["ctgA"].data_start < indexes["ctgB"].data_start
        # Seeking through the ctgB index must land on ctgB records.
        with BamReader(multi_contig["bam"]) as reader:
            reader.seek(indexes["ctgB"].query(0))
            record = reader.read_record()
        assert record.rname == "ctgB"

    def test_single_contig_index_unchanged(self, bam_workspace):
        from repro.io.index import build_linear_index
        from repro.io.linear_index import build_index

        _, bam = bam_workspace
        with pytest.warns(DeprecationWarning, match="build_index"):
            flat = build_index(bam)
        multi = build_linear_index(bam)
        (name,) = multi.keys()
        assert multi[name].checkpoints == flat.checkpoints
        assert multi[name].max_read_span == flat.max_read_span


class TestIoStatsBackends:
    """ISSUE 7 satellite: block-cache counters reach RunStats on every
    backend, including forked process workers (PR 6 deferral)."""

    def test_process_backend_reports_child_cache_counters(
        self, bam_workspace, genome
    ):
        _, bam = bam_workspace
        source = BamSource(bam, genome.sequence)
        result = Pipeline(
            source,
            policy=ExecutionPolicy(
                mode="process", n_workers=2, chunk_columns=200
            ),
        ).run()
        # Child readers live in the forked workers; before the fix
        # their hits/misses were dropped on the floor and these
        # counters were (parent-only) zero.
        total = result.stats.cache_hits + result.stats.cache_misses
        assert total > 0, result.stats.to_dict()

    def test_serial_and_process_counters_both_complete(
        self, bam_workspace, genome
    ):
        _, bam = bam_workspace
        serial = Pipeline(BamSource(bam, genome.sequence)).run()
        process = Pipeline(
            BamSource(bam, genome.sequence),
            policy=ExecutionPolicy(
                mode="process", n_workers=2, chunk_columns=200
            ),
        ).run()
        assert serial.stats.cache_misses > 0
        assert process.stats.cache_misses > 0
        # Identical calls either way -- the counters describe I/O, not
        # output.
        assert [c.key for c in process.calls] == [c.key for c in serial.calls]


class TestStreamingColumnsFor:
    """ISSUE 7 satellite: BamSource.columns_for streams the pileup()
    generator per column (PR 5 deferral) instead of materialising the
    chunk's column list."""

    def test_columns_for_is_lazy(self, bam_workspace, genome):
        import inspect

        _, bam = bam_workspace
        source = BamSource(bam, genome.sequence)
        (region,) = source.regions()
        stream = source.columns_for(region)
        assert inspect.isgenerator(stream)
        first = next(stream)
        assert first.pos >= region.start
        stream.close()  # abandoning a partial stream must be safe

    def test_streamed_columns_match_eager_pileup(self, bam_workspace, genome):
        _, bam = bam_workspace
        source = BamSource(bam, genome.sequence)
        (region,) = source.regions()
        streamed = list(source.columns_for(region))
        with BamReader(bam) as reader:
            eager = list(
                pileup(iter(reader), genome.sequence, region)
            )
        assert len(streamed) == len(eager)
        for got, want in zip(streamed, eager):
            assert got.pos == want.pos
            assert got.depth == want.depth
            assert list(got.base_codes) == list(want.base_codes)

    def test_streaming_engine_pipeline_unchanged(self, bam_workspace, genome):
        _, bam = bam_workspace
        caller = VariantCaller()
        expected = reference_call_bam(caller, str(bam), genome.sequence)
        result = Pipeline(
            BamSource(bam, genome.sequence),
            policy=ExecutionPolicy(mode="thread", n_workers=3, chunk_columns=128),
        ).run()
        assert result.keys() == expected.keys()
