"""Property tests for the columnar ``ColumnBatch`` spine.

Seeded-random equivalence over many generated workloads: the
streaming sweep, the batch-emitting sweep, the vectorised matrix path
and the BAM columnar deposit path must all produce *identical*
batches -- same flat arrays, same offsets, same ``n_capped`` -- and
identical per-column :class:`PileupColumn` views, across quality
filters, depth caps and sub-regions.
"""

import io

import numpy as np
import pytest

from repro.io.bam import BamReader, BamWriter, aligned_base_arrays
from repro.io.cigar import CigarOp
from repro.io.records import AlignedRead
from repro.io.regions import Region
from repro.pileup.column import ColumnBatch, PileupColumn, encode_read_bases
from repro.pileup.engine import PileupConfig, pileup, pileup_batches
from repro.pileup.vectorized import (
    pileup_batch_from_arrays,
    pileup_batch_from_reads,
    pileup_sample_batch,
)
from repro.sim.genome import random_genome
from repro.sim.haplotypes import random_panel
from repro.sim.reads import ReadSimulator


def assert_columns_identical(a: PileupColumn, b: PileupColumn) -> None:
    assert a.chrom == b.chrom
    assert a.pos == b.pos
    assert a.ref_base == b.ref_base
    assert a.n_capped == b.n_capped
    assert np.array_equal(a.base_codes, b.base_codes)
    assert np.array_equal(a.quals, b.quals)
    assert np.array_equal(a.reverse, b.reverse)
    assert np.array_equal(a.mapqs, b.mapqs)


def assert_batches_identical(a: ColumnBatch, b: ColumnBatch) -> None:
    assert a.chrom == b.chrom
    assert a.ref_bases == b.ref_bases
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.offsets, b.offsets)
    assert np.array_equal(a.n_capped, b.n_capped)
    assert np.array_equal(a.base_codes, b.base_codes)
    assert np.array_equal(a.quals, b.quals)
    assert np.array_equal(a.reverse, b.reverse)
    assert np.array_equal(a.mapqs, b.mapqs)


def _bam_round_trip(sample):
    buf = io.BytesIO()
    writer = BamWriter(buf, sample.header())
    for read in sample.reads():
        writer.write(read)
    writer.close()
    buf.seek(0)
    with BamReader(buf) as reader:
        return list(reader)


def _workload(seed):
    """One seeded-random workload: genome, panel, sample, config, region."""
    rng = np.random.default_rng(seed)
    length = int(rng.integers(300, 800))
    read_length = int(rng.integers(40, 101))
    genome = random_genome(
        length, gc_content=float(rng.uniform(0.3, 0.6)), name="chrP",
        seed=seed,
    )
    panel = random_panel(
        genome.sequence, int(rng.integers(0, 6)),
        freq_range=(0.05, 0.3), seed=seed + 1,
    )
    sample = ReadSimulator(
        genome, panel, read_length=read_length
    ).simulate(depth=float(rng.uniform(30, 120)), seed=seed + 2)
    config = PileupConfig(
        min_baseq=int(rng.integers(0, 25)),
        max_depth=int(rng.integers(20, 200)),
    )
    if rng.random() < 0.5:
        lo = int(rng.integers(0, length // 2))
        hi = int(rng.integers(lo + 1, length + 1))
        region = Region(genome.name, lo, hi)
    else:
        region = Region(genome.name, 0, length)
    return genome, sample, config, region


class TestFourPathEquivalence:
    """Streaming / sweep / matrix / BAM must agree batch-for-batch."""

    @pytest.mark.parametrize("seed", [101, 202, 303, 404, 505, 606])
    def test_all_paths_identical(self, seed):
        genome, sample, config, region = _workload(seed)
        reads = sample.read_list()

        streaming = ColumnBatch.from_columns(
            list(pileup(iter(reads), genome.sequence, region, config)),
            chrom=region.chrom,
        )
        swept = list(
            pileup_batches(
                iter(reads), genome.sequence, region, config,
                batch_columns=max(1, streaming.n_columns or 1),
            )
        )
        assert len(swept) <= 1
        sweep = swept[0] if swept else ColumnBatch.empty(region.chrom)
        matrix = pileup_sample_batch(sample, region, config)
        bam = pileup_batch_from_reads(
            iter(_bam_round_trip(sample)), genome.sequence, region, config
        )

        assert_batches_identical(streaming, sweep)
        assert_batches_identical(streaming, matrix)
        assert_batches_identical(streaming, bam)

    @pytest.mark.parametrize("seed", [17, 29])
    def test_column_views_identical(self, seed):
        genome, sample, config, region = _workload(seed)
        stream_cols = list(
            pileup(
                iter(sample.read_list()), genome.sequence, region, config
            )
        )
        batch = pileup_sample_batch(sample, region, config)
        batch_cols = list(batch.columns())
        assert len(batch_cols) == len(stream_cols)
        for a, b in zip(batch_cols, stream_cols):
            assert_columns_identical(a, b)

    @pytest.mark.parametrize("seed", [42, 77])
    def test_max_depth_capping_parity(self, seed):
        """A tight cap must drop the *same* reads on every path and
        census them identically in ``n_capped``."""
        genome, sample, _, _ = _workload(seed)
        region = Region(genome.name, 0, len(genome))
        config = PileupConfig(max_depth=15)
        streaming = ColumnBatch.from_columns(
            list(
                pileup(
                    iter(sample.read_list()), genome.sequence, region, config
                )
            ),
            chrom=region.chrom,
        )
        matrix = pileup_sample_batch(sample, region, config)
        bam = pileup_batch_from_reads(
            iter(_bam_round_trip(sample)), genome.sequence, region, config
        )
        assert int(streaming.n_capped.sum()) > 0, "cap never engaged"
        assert (streaming.depths <= 15).all()
        assert_batches_identical(streaming, matrix)
        assert_batches_identical(streaming, bam)

    def test_sweep_batch_boundaries(self):
        """Splitting the sweep into small batches re-concatenates to
        the single-batch result."""
        genome, sample, config, region = _workload(808)
        reads = sample.read_list()
        whole = pileup_batch_from_reads(
            iter(reads), genome.sequence, region, config
        )
        pieces = list(
            pileup_batches(
                iter(reads), genome.sequence, region, config,
                batch_columns=7,
            )
        )
        assert all(p.n_columns <= 7 for p in pieces)
        merged = ColumnBatch.from_columns(
            [c for p in pieces for c in p.columns()], chrom=region.chrom
        )
        assert_batches_identical(whole, merged)


class TestColumnBatchBuilder:
    """The incremental bounded-memory builder (PR 5): streamed batches
    must re-concatenate to the whole-chunk build bit-for-bit, across
    flush boundaries, filters and the depth cap."""

    def _merged(self, pieces, chrom):
        return ColumnBatch.from_columns(
            [c for p in pieces for c in p.columns()], chrom=chrom
        )

    @pytest.mark.parametrize("seed", [101, 404])
    @pytest.mark.parametrize("batch_columns", [1, 7, 64, 4096])
    def test_streamed_equals_whole_chunk(self, seed, batch_columns):
        from repro.pileup.vectorized import iter_pileup_batches

        genome, sample, config, region = _workload(seed)
        reads = sample.read_list()
        whole = pileup_batch_from_reads(
            iter(reads), genome.sequence, region, config
        )
        pieces = list(
            iter_pileup_batches(
                iter(reads), genome.sequence, region, config,
                batch_columns=batch_columns,
            )
        )
        assert all(p.n_columns <= batch_columns for p in pieces)
        assert all(p.n_columns > 0 for p in pieces)
        assert_batches_identical(
            whole, self._merged(pieces, region.chrom)
        )

    def test_reads_span_flush_boundaries(self):
        """With a flush window far smaller than the read length every
        read straddles several boundaries; each window must still get
        exactly its bases, in streaming deposit order."""
        from repro.pileup.vectorized import iter_pileup_batches

        genome, sample, config, region = _workload(202)
        reads = sample.read_list()
        rl = sample.read_length
        batch_columns = max(2, rl // 8)  # windows much narrower than a read
        whole = pileup_batch_from_reads(
            iter(reads), genome.sequence, region, config
        )
        pieces = list(
            iter_pileup_batches(
                iter(reads), genome.sequence, region, config,
                batch_columns=batch_columns,
            )
        )
        assert len(pieces) > 3
        assert_batches_identical(whole, self._merged(pieces, region.chrom))
        # And the per-column views match the streaming engine exactly.
        stream_cols = list(
            pileup(iter(reads), genome.sequence, region, config)
        )
        flat_cols = [c for p in pieces for c in p.columns()]
        assert len(flat_cols) == len(stream_cols)
        for a, b in zip(flat_cols, stream_cols):
            assert_columns_identical(a, b)

    def test_flushed_batches_keep_planes_lazy(self):
        from repro.pileup.vectorized import iter_pileup_batches

        genome, sample, config, region = _workload(303)
        pieces = list(
            iter_pileup_batches(
                iter(sample.read_list()), genome.sequence, region, config,
                batch_columns=16,
            )
        )
        assert pieces
        assert all(not p.planes_materialised for p in pieces)

    def test_empty_input_yields_no_batches(self):
        from repro.pileup.vectorized import ColumnBatchBuilder, iter_pileup_batches

        region = Region("chrE", 0, 500)
        assert (
            list(iter_pileup_batches(iter([]), "A" * 500, region)) == []
        )
        builder = ColumnBatchBuilder("A" * 500, region, batch_columns=8)
        assert builder.finish() == []
        with pytest.raises(ValueError, match="finished"):
            builder.add_read(
                AlignedRead(
                    qname="r", flag=0, rname="chrE", pos=0, mapq=60,
                    cigar=[(CigarOp.M, 4)], seq="ACGT",
                    qual=np.full(4, 30, dtype=np.uint8),
                )
            )

    def test_all_filtered_input_yields_no_batches(self):
        """Bases all below min_baseq: windows assemble to nothing and
        no empty batches leak out."""
        from repro.pileup.vectorized import iter_pileup_batches

        genome, sample, _, region = _workload(505)
        config = PileupConfig(min_baseq=60)  # above every emitted qual
        pieces = list(
            iter_pileup_batches(
                iter(sample.read_list()), genome.sequence, region, config,
                batch_columns=8,
            )
        )
        assert pieces == []

    def test_max_depth_caps_at_flush_boundaries(self):
        """A tight cap must drop the same reads whether a column sits
        mid-window or exactly at a flush boundary."""
        from repro.pileup.vectorized import iter_pileup_batches

        genome, sample, _, _ = _workload(42)
        region = Region(genome.name, 0, len(genome))
        config = PileupConfig(max_depth=15)
        reads = sample.read_list()
        whole = pileup_batch_from_reads(
            iter(reads), genome.sequence, region, config
        )
        assert int(whole.n_capped.sum()) > 0, "cap never engaged"
        for batch_columns in (1, 3, 50):
            pieces = list(
                iter_pileup_batches(
                    iter(reads), genome.sequence, region, config,
                    batch_columns=batch_columns,
                )
            )
            merged = self._merged(pieces, region.chrom)
            assert_batches_identical(whole, merged)
            assert (merged.depths <= 15).all()

    def test_unsorted_input_raises(self):
        from repro.pileup.vectorized import ColumnBatchBuilder

        def read_at(pos, name):
            return AlignedRead(
                qname=name, flag=0, rname="chrU", pos=pos, mapq=60,
                cigar=[(CigarOp.M, 4)], seq="ACGT",
                qual=np.full(4, 30, dtype=np.uint8),
            )

        builder = ColumnBatchBuilder("A" * 100, Region("chrU", 0, 100))
        builder.add_read(read_at(50, "a"))
        with pytest.raises(ValueError, match="coordinate-sorted"):
            builder.add_read(read_at(10, "b"))
        # The pre-decoded deposit path enforces the same contract.
        builder2 = ColumnBatchBuilder("A" * 100, Region("chrU", 0, 100))
        pos = np.arange(50, 54, dtype=np.int64)
        codes = np.zeros(4, dtype=np.uint8)
        quals = np.full(4, 30, dtype=np.uint8)
        builder2.add(pos, codes, quals, False, 60)
        with pytest.raises(ValueError, match="coordinate-sorted"):
            builder2.add(pos - 20, codes, quals, False, 60)

    def test_invalid_batch_columns_rejected(self):
        from repro.pileup.vectorized import ColumnBatchBuilder

        with pytest.raises(ValueError, match="batch_columns"):
            ColumnBatchBuilder(
                "A" * 10, Region("c", 0, 10), batch_columns=0
            )

    def test_done_flag_stops_the_scan(self):
        from repro.pileup.vectorized import ColumnBatchBuilder

        region = Region("chrD", 10, 20)
        builder = ColumnBatchBuilder("A" * 100, region)
        read = AlignedRead(
            qname="late", flag=0, rname="chrD", pos=25, mapq=60,
            cigar=[(CigarOp.M, 4)], seq="ACGT",
            qual=np.full(4, 30, dtype=np.uint8),
        )
        assert builder.add_read(read) == []
        assert builder.done


class TestColumnBatchValueType:
    def test_from_columns_round_trip(self, columns):
        batch = ColumnBatch.from_columns(columns)
        assert batch.n_columns == len(columns)
        for a, b in zip(batch.columns(), columns):
            assert_columns_identical(a, b)

    def test_empty_batch(self):
        batch = ColumnBatch.empty("chrE")
        assert batch.n_columns == 0
        assert len(batch) == 0
        assert list(batch.columns()) == []
        assert batch.ref_codes.size == 0

    def test_from_columns_empty_requires_chrom(self):
        with pytest.raises(ValueError, match="chrom"):
            ColumnBatch.from_columns([])
        assert ColumnBatch.from_columns([], chrom="c").n_columns == 0

    def test_from_columns_rejects_mixed_chroms(self, columns):
        import dataclasses

        other = dataclasses.replace(columns[0], chrom="chrOther")
        with pytest.raises(ValueError, match="one chromosome"):
            ColumnBatch.from_columns([columns[0], other])

    def test_parallel_array_validation(self):
        with pytest.raises(ValueError, match="parallel"):
            ColumnBatch(
                chrom="c",
                positions=np.array([0]),
                ref_bases="A",
                base_codes=np.zeros(2, dtype=np.uint8),
                quals=np.zeros(1, dtype=np.uint8),
                reverse=np.zeros(2, dtype=bool),
                mapqs=np.zeros(2, dtype=np.uint8),
                offsets=np.array([0, 2]),
                n_capped=np.array([0]),
            )

    def test_offsets_validation(self):
        with pytest.raises(ValueError, match="offsets"):
            ColumnBatch(
                chrom="c",
                positions=np.array([0, 1]),
                ref_bases="AC",
                base_codes=np.zeros(2, dtype=np.uint8),
                quals=np.zeros(2, dtype=np.uint8),
                reverse=np.zeros(2, dtype=bool),
                mapqs=np.zeros(2, dtype=np.uint8),
                offsets=np.array([0, 2]),
                n_capped=np.array([0, 0]),
            )

    def test_ref_bases_validation(self):
        with pytest.raises(ValueError, match="reference base"):
            ColumnBatch(
                chrom="c",
                positions=np.array([0, 1]),
                ref_bases="A",
                base_codes=np.zeros(0, dtype=np.uint8),
                quals=np.zeros(0, dtype=np.uint8),
                reverse=np.zeros(0, dtype=bool),
                mapqs=np.zeros(0, dtype=np.uint8),
                offsets=np.array([0, 0, 0]),
                n_capped=np.array([0, 0]),
            )

    def test_slice_columns(self, columns):
        batch = ColumnBatch.from_columns(columns)
        lo, hi = 3, 17
        sub = batch.slice_columns(lo, hi)
        assert sub.n_columns == hi - lo
        for a, b in zip(sub.columns(), columns[lo:hi]):
            assert_columns_identical(a, b)
        # Views, not copies: the flat arrays share memory.
        assert np.shares_memory(sub.base_codes, batch.base_codes)

    def test_depths_and_ref_codes(self, columns):
        batch = ColumnBatch.from_columns(columns)
        assert np.array_equal(
            batch.depths, np.array([c.depth for c in columns])
        )
        assert np.array_equal(
            batch.ref_codes, np.array([c.ref_code for c in columns])
        )

    def test_views_are_zero_copy(self, columns):
        batch = ColumnBatch.from_columns(columns)
        col = batch.column(0)
        assert np.shares_memory(col.base_codes, batch.base_codes)


class TestLazyPlanes:
    """Deferred strand/mapq planes (PR 4): built on first access,
    bit-identical to eager construction, laziness preserved by
    ``slice_columns``."""

    def _lazy_and_eager(self, seed=17):
        genome, sample, config, region = _workload(seed)
        eager = pileup_batch_from_reads(
            iter(_bam_round_trip(sample)), genome.sequence, region, config
        )
        # pileup_batch_from_reads itself defers the planes; force an
        # eager twin through the constructor.
        lazy = pileup_batch_from_reads(
            iter(_bam_round_trip(sample)), genome.sequence, region, config
        )
        forced = ColumnBatch(
            chrom=eager.chrom,
            positions=eager.positions,
            ref_bases=eager.ref_bases,
            base_codes=eager.base_codes,
            quals=eager.quals,
            reverse=eager.reverse,
            mapqs=eager.mapqs,
            offsets=eager.offsets,
            n_capped=eager.n_capped,
        )
        return lazy, forced

    def test_from_reads_defers_planes(self):
        lazy, forced = self._lazy_and_eager()
        assert not lazy.planes_materialised
        assert forced.planes_materialised
        # Everything the screen reads is available without touching
        # the planes.
        assert lazy.depths.sum() == forced.depths.sum()
        assert not lazy.planes_materialised

    def test_materialised_planes_identical(self):
        lazy, forced = self._lazy_and_eager()
        assert np.array_equal(lazy.reverse, forced.reverse)
        assert np.array_equal(lazy.mapqs, forced.mapqs)
        assert lazy.planes_materialised

    def test_slice_preserves_laziness(self):
        lazy, forced = self._lazy_and_eager()
        n = lazy.n_columns
        sub = lazy.slice_columns(1, n - 1)
        assert not lazy.planes_materialised
        assert not sub.planes_materialised
        sub_forced = forced.slice_columns(1, n - 1)
        assert np.array_equal(sub.reverse, sub_forced.reverse)
        assert np.array_equal(sub.mapqs, sub_forced.mapqs)
        assert sub.planes_materialised
        # Materialising a slice does not materialise the parent's own
        # cached planes eagerly... but the thunk chain reads through
        # the parent, which materialises it as a side effect.
        assert lazy.planes_materialised

    def test_column_view_materialises(self):
        lazy, forced = self._lazy_and_eager()
        col = lazy.column(0)
        assert lazy.planes_materialised
        assert np.array_equal(col.mapqs, forced.column(0).mapqs)

    def test_depth_cap_composes_with_lazy_planes(self):
        genome, sample, _, _ = _workload(42)
        region = Region(genome.name, 0, len(genome))
        config = PileupConfig(max_depth=15)
        lazy = pileup_batch_from_reads(
            iter(_bam_round_trip(sample)), genome.sequence, region, config
        )
        assert not lazy.planes_materialised
        streaming = ColumnBatch.from_columns(
            list(
                pileup(
                    iter(sample.read_list()), genome.sequence, region, config
                )
            ),
            chrom=region.chrom,
        )
        assert int(streaming.n_capped.sum()) > 0, "cap never engaged"
        assert_batches_identical(streaming, lazy)

    def test_constructor_validation(self):
        base = dict(
            chrom="c",
            positions=np.array([0]),
            ref_bases="A",
            base_codes=np.zeros(1, dtype=np.uint8),
            quals=np.zeros(1, dtype=np.uint8),
            offsets=np.array([0, 1]),
            n_capped=np.array([0]),
        )
        with pytest.raises(ValueError, match="reverse and mapqs"):
            ColumnBatch(**base)
        with pytest.raises(ValueError, match="either"):
            ColumnBatch(
                **base,
                reverse=np.zeros(1, dtype=bool),
                mapqs=np.zeros(1, dtype=np.uint8),
                planes=lambda: (None, None),
            )
        # A thunk returning non-parallel planes fails at access time.
        bad = ColumnBatch(
            **base,
            planes=lambda: (
                np.zeros(2, dtype=bool),
                np.zeros(2, dtype=np.uint8),
            ),
        )
        with pytest.raises(ValueError, match="parallel"):
            bad.reverse


class TestEncodeReadBases:
    def test_matches_scalar_lookup(self):
        from repro.pileup.column import BASE_TO_CODE, N_CODE

        seq = "ACGTNacgtRYKM=.*X"
        expected = [BASE_TO_CODE.get(c, N_CODE) for c in seq]
        assert encode_read_bases(seq).tolist() == expected

    def test_empty(self):
        assert encode_read_bases("").size == 0


class TestAlignedBaseArrays:
    def _read(self, cigar, seq, qual=None, pos=10):
        qual = (
            np.asarray(qual, dtype=np.uint8)
            if qual is not None
            else np.full(len(seq), 30, dtype=np.uint8)
        )
        return AlignedRead(
            qname="r1", flag=0, rname="c", pos=pos, mapq=60,
            cigar=cigar, seq=seq, qual=qual,
        )

    def test_simple_match(self):
        read = self._read([(CigarOp.M, 4)], "ACGT")
        positions, codes, quals = aligned_base_arrays(read)
        assert positions.tolist() == [10, 11, 12, 13]
        assert codes.tolist() == [0, 1, 2, 3]
        assert quals.tolist() == [30] * 4

    def test_insertion_consumes_query_only(self):
        read = self._read(
            [(CigarOp.M, 2), (CigarOp.I, 2), (CigarOp.M, 2)], "ACGTAC"
        )
        positions, codes, quals = aligned_base_arrays(read)
        assert positions.tolist() == [10, 11, 12, 13]
        assert codes.tolist() == [0, 1, 0, 1]  # A C | (GT skipped) | A C

    def test_deletion_consumes_reference_only(self):
        read = self._read(
            [(CigarOp.M, 2), (CigarOp.D, 3), (CigarOp.M, 2)], "ACGT"
        )
        positions, codes, _ = aligned_base_arrays(read)
        assert positions.tolist() == [10, 11, 15, 16]
        assert codes.tolist() == [0, 1, 2, 3]

    def test_soft_clip(self):
        read = self._read(
            [(CigarOp.S, 2), (CigarOp.M, 2)], "GGAC"
        )
        positions, codes, _ = aligned_base_arrays(read)
        assert positions.tolist() == [10, 11]
        assert codes.tolist() == [0, 1]

    def test_missing_quality_reads_as_zero(self):
        read = self._read([(CigarOp.M, 3)], "ACG", qual=[])
        _, _, quals = aligned_base_arrays(read)
        assert quals.tolist() == [0, 0, 0]

    def test_matches_streaming_deposit(self):
        """The CIGAR-aware arrays reproduce the streaming engine's
        per-base deposit over a gapped read exactly."""
        read = self._read(
            [(CigarOp.S, 1), (CigarOp.M, 3), (CigarOp.D, 2), (CigarOp.M, 2)],
            "NACGTC",
        )
        region = Region("c", 0, 40)
        reference = "T" * 40
        config = PileupConfig(min_baseq=0)
        stream = list(pileup([read], reference, region, config))
        positions, codes, quals = aligned_base_arrays(read)
        assert [c.pos for c in stream] == positions.tolist()
        assert [int(c.base_codes[0]) for c in stream] == codes.tolist()
        assert [int(c.quals[0]) for c in stream] == quals.tolist()
