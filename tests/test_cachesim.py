"""Tests for the cache simulator and the DP/approximation traces."""

import pytest

from repro.cachesim.cache import SetAssociativeCache
from repro.cachesim.lru import LruCache
from repro.cachesim.traces import (
    approx_column_trace,
    dp_column_trace,
    interleave_traces,
    replay,
)


class TestGeometry:
    def test_sets_computed(self):
        c = SetAssociativeCache(size_bytes=1 << 16, line_size=64, associativity=4)
        assert c.n_sets == (1 << 16) // (64 * 4)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(line_size=48)
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=1000, line_size=64, associativity=4)
        with pytest.raises(ValueError):
            SetAssociativeCache(associativity=0)


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache()
        assert c.access(0) == 1  # cold miss
        assert c.access(0) == 0  # hit
        assert c.access(8) == 0  # same line
        assert c.access(64) == 1  # next line

    def test_straddling_access(self):
        c = SetAssociativeCache(line_size=64)
        assert c.access(60, size=8) == 2  # touches two lines

    def test_lru_eviction_within_set(self):
        # Direct-mapped tiny cache: two addresses in the same set evict
        # each other.
        c = SetAssociativeCache(size_bytes=128, line_size=64, associativity=1)
        a, b = 0, 128  # same set (2 sets; both map to set 0)
        assert c.access(a) == 1
        assert c.access(b) == 1
        assert c.access(a) == 1  # was evicted

    def test_associativity_prevents_conflict(self):
        c = SetAssociativeCache(size_bytes=256, line_size=64, associativity=2)
        a, b = 0, 128  # same set, 2 ways
        c.access(a)
        c.access(b)
        assert c.access(a) == 0  # still resident

    def test_working_set_within_capacity_converges_to_hits(self):
        c = SetAssociativeCache(size_bytes=1 << 14, line_size=64, associativity=16)
        addrs = list(range(0, 1 << 13, 8))  # 8 KiB working set
        c.run(addrs)  # cold pass
        stats = c.run(addrs * 3)  # warm passes
        assert stats.miss_rate == 0.0

    def test_cyclic_sweep_larger_than_cache_always_misses(self):
        """Classic LRU pathology: working set = cache size + 1 line."""
        c = SetAssociativeCache(size_bytes=1 << 10, line_size=64,
                                associativity=16)  # fully associative
        n_lines = (1 << 10) // 64 + 1
        addrs = [i * 64 for i in range(n_lines)]
        c.run(addrs)  # cold
        stats = c.run(addrs * 5)
        assert stats.miss_rate == 1.0

    def test_contains_has_no_side_effects(self):
        c = SetAssociativeCache()
        c.access(0)
        h, m = c.stats.hits, c.stats.misses
        assert c.contains(0)
        assert not c.contains(1 << 30)
        assert (c.stats.hits, c.stats.misses) == (h, m)

    def test_flush(self):
        c = SetAssociativeCache()
        c.access(0)
        c.flush()
        assert not c.contains(0)


class TestTraces:
    def test_dp_trace_length(self):
        # d reads: 1 qual access + 2*(n+1) probvec accesses each.
        d = 10
        n_accesses = sum(1 + 2 * (n + 1) for n in range(d))
        assert len(list(dp_column_trace(d))) == n_accesses

    def test_approx_trace_length(self):
        assert len(list(approx_column_trace(123))) == 123

    def test_trace_thread_separation(self):
        t0 = set(dp_column_trace(5, thread=0))
        t1 = set(dp_column_trace(5, thread=1))
        assert not (t0 & t1)

    def test_interleave_preserves_all(self):
        merged = list(interleave_traces([[1, 2, 3], [10, 20], [100]]))
        assert sorted(merged) == [1, 2, 3, 10, 20, 100]

    def test_negative_depth_raises(self):
        with pytest.raises(ValueError):
            list(dp_column_trace(-1))
        with pytest.raises(ValueError):
            list(approx_column_trace(-1))


class TestPaperDirection:
    """The Discussion claim, directionally: at depths where the DP
    array exceeds the cache, the DP misses far more than the
    approximation's single pass."""

    def test_dp_misses_dwarf_approx_misses_at_depth(self):
        cache = SetAssociativeCache(size_bytes=1 << 15)  # 32 KiB (tiny, fast test)
        d = 8192  # probvec = 64 KiB > cache
        dp_stats = replay(dp_column_trace(d, stride_reads=64), cache)
        cache2 = SetAssociativeCache(size_bytes=1 << 15)
        ap_stats = replay(approx_column_trace(d), cache2)
        assert dp_stats.misses > 50 * ap_stats.misses

    def test_dp_cache_resident_when_shallow(self):
        """Below the gate depth the DP array fits: miss rate collapses
        (why the paper keeps the original path for depth < 100)."""
        cache = SetAssociativeCache(size_bytes=1 << 15)
        shallow = replay(dp_column_trace(100), cache)
        assert shallow.miss_rate < 0.01


class TestLruCache:
    """The production LRU (graduated from the simulator into
    :class:`repro.io.bgzf.BgzfReader`)."""

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LruCache(0)
        with pytest.raises(ValueError):
            LruCache(-3)

    def test_eviction_order_is_lru(self):
        cache = LruCache(capacity=3)
        for k in "abc":
            cache.put(k, k.upper())
        cache.get("a")  # promote "a": eviction order is now b, c, a
        cache.put("d", "D")  # evicts "b"
        assert "b" not in cache
        assert list(cache) == ["c", "a", "d"]
        cache.put("e", "E")  # evicts "c"
        assert "c" not in cache
        assert cache.evictions == 2

    def test_put_refresh_promotes_without_evicting(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        assert len(cache) == 2
        assert cache.evictions == 0
        cache.put("c", 3)  # now "b" is LRU
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_hit_miss_counters_and_rate(self):
        cache = LruCache(capacity=2)
        assert cache.hit_rate == 0.0
        cache.put("x", 1)
        assert cache.get("x") == 1
        assert cache.get("x") == 1
        assert cache.get("y") is None
        assert cache.get("y", default=-1) == -1
        assert (cache.hits, cache.misses) == (2, 2)
        assert cache.hit_rate == 0.5

    def test_contains_is_side_effect_free(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # must NOT promote "a"
        cache.put("c", 3)  # evicts "a" (still LRU)
        assert "a" not in cache
        assert (cache.hits, cache.misses) == (0, 0)

    def test_clear_preserves_counters(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (1, 1)

    def test_cached_none_is_a_hit(self):
        cache = LruCache(capacity=2)
        cache.put("k", None)
        assert cache.get("k", default="fallback") is None
        assert cache.hits == 1
