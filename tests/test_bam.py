"""Unit tests for the BAM binary codec."""

import io

import numpy as np
import pytest

from repro.io.bam import (
    BamReader,
    BamWriter,
    decode_record,
    encode_record,
    read_bam,
    reg2bin,
    write_bam,
)
from repro.io.cigar import parse_cigar
from repro.io.records import AlignedRead, SamHeader


@pytest.fixture
def header():
    return SamHeader(
        references=[("chr1", 10_000), ("chr2", 5_000)], sort_order="coordinate"
    )


def make_read(**kwargs):
    defaults = dict(
        qname="read/1",
        flag=16,
        rname="chr1",
        pos=1234,
        mapq=42,
        cigar=parse_cigar("3S10M2I5M"),
        seq="ACGTACGTACGTACGTACGT",
        qual=np.arange(20, dtype=np.uint8) + 20,
        rnext="chr2",
        pnext=99,
        tlen=-150,
        tags={"NM": ("i", 3), "RG": ("Z", "grp1"), "XF": ("f", 1.5)},
    )
    defaults.update(kwargs)
    return AlignedRead(**defaults)


class TestRecordCodec:
    def test_round_trip_all_fields(self, header):
        read = make_read()
        back = decode_record(encode_record(read, header), header)
        assert back.qname == read.qname
        assert back.flag == read.flag
        assert back.rname == read.rname
        assert back.pos == read.pos
        assert back.mapq == read.mapq
        assert back.cigar == read.cigar
        assert back.seq == read.seq
        assert np.array_equal(back.qual, read.qual)
        assert back.rnext == read.rnext
        assert back.pnext == read.pnext
        assert back.tlen == read.tlen
        assert back.tags["NM"] == ("i", 3)
        assert back.tags["RG"] == ("Z", "grp1")
        assert back.tags["XF"][0] == "f"
        assert back.tags["XF"][1] == pytest.approx(1.5)

    def test_odd_length_sequence(self, header):
        read = make_read(
            cigar=parse_cigar("5M"), seq="ACGTN",
            qual=np.array([1, 2, 3, 4, 5], dtype=np.uint8),
        )
        back = decode_record(encode_record(read, header), header)
        assert back.seq == "ACGTN"

    def test_b_array_tag(self, header):
        arr = np.array([1, 2, 3], dtype=np.int32)
        read = make_read(tags={"ZB": ("B", ("i", arr))})
        back = decode_record(encode_record(read, header), header)
        sub, vals = back.tags["ZB"][1]
        assert sub == "i"
        assert np.array_equal(vals, arr)

    def test_a_char_tag(self, header):
        read = make_read(tags={"XT": ("A", "U")})
        back = decode_record(encode_record(read, header), header)
        assert back.tags["XT"] == ("A", "U")

    def test_unknown_reference_raises(self, header):
        read = make_read(rname="chrX")
        with pytest.raises(ValueError, match="not in header"):
            encode_record(read, header)

    def test_long_name_raises(self, header):
        read = make_read(qname="q" * 300)
        with pytest.raises(ValueError, match="name"):
            encode_record(read, header)


class TestReg2Bin:
    def test_small_interval_deep_bin(self):
        assert reg2bin(0, 1) == 4681

    def test_known_levels(self):
        # Intervals crossing a 16 kb boundary climb a level.
        assert reg2bin(0, 1 << 14) == 4681
        assert reg2bin(0, (1 << 14) + 1) == 585

    def test_whole_chromosome_is_root(self):
        assert reg2bin(0, 1 << 29) == 0


class TestBamFile:
    def test_file_round_trip(self, header, tmp_path):
        reads = [
            make_read(qname=f"r{i}", pos=100 * i, flag=0, rnext="*", pnext=-1)
            for i in range(50)
        ]
        path = tmp_path / "t.bam"
        assert write_bam(path, header, reads) == 50
        hdr_back, back = read_bam(path)
        assert hdr_back.references == header.references
        assert len(back) == 50
        for a, b in zip(back, reads):
            assert a.qname == b.qname
            assert a.pos == b.pos
            assert a.seq == b.seq

    def test_in_memory_round_trip(self, header):
        buf = io.BytesIO()
        with BamWriter(buf, header) as writer:
            writer.write(make_read())
        buf.seek(0)
        with BamReader(buf) as reader:
            records = list(reader)
        assert len(records) == 1
        assert records[0].qname == "read/1"

    def test_magic_check(self):
        from repro.io.bgzf import BgzfWriter

        buf = io.BytesIO()
        with BgzfWriter(buf) as w:
            w.write(b"NOTBAM..")
        buf.seek(0)
        with pytest.raises(ValueError, match="magic"):
            BamReader(buf)

    def test_seek_to_written_voffset(self, header, tmp_path):
        path = tmp_path / "seek.bam"
        offsets = {}
        with BamWriter(path, header) as writer:
            for i in range(200):
                offsets[i] = writer.write(
                    make_read(qname=f"r{i}", pos=i, flag=0, rnext="*", pnext=-1)
                )
        with BamReader(path) as reader:
            reader.seek(offsets[150])
            rec = reader.read_record()
            assert rec.qname == "r150"
            reader.rewind()
            assert reader.read_record().qname == "r0"

    def test_empty_bam(self, header, tmp_path):
        path = tmp_path / "empty.bam"
        write_bam(path, header, [])
        hdr_back, records = read_bam(path)
        assert records == []
        assert hdr_back.references == header.references

    def test_large_file_many_blocks(self, header, tmp_path):
        path = tmp_path / "big.bam"
        reads = (
            make_read(qname=f"r{i}", pos=i, flag=0, rnext="*", pnext=-1)
            for i in range(5000)
        )
        write_bam(path, header, reads)
        with BamReader(path) as reader:
            n = sum(1 for _ in reader)
            assert n == 5000
            assert reader.blocks_read > 1
