"""Streaming vs batched engine equivalence.

The batched engine's contract (ISSUE: "only false negatives vs. the
original, byte-for-byte") is that swapping ``engine="batched"`` in
changes *nothing* observable: identical call records (down to the raw
p-values), identical VCF bytes, identical :class:`RunStats` decision
censuses -- across datasets, both ``use_approximation`` settings, the
depth cap, and the parallel driver.
"""

import dataclasses

import pytest

from repro.core import CallerConfig, VariantCaller
from repro.io.vcf import write_vcf
from repro.parallel import ParallelCallOptions, parallel_call
from repro.pileup.engine import PileupConfig
from repro.sim.genome import random_genome, sars_cov_2_like
from repro.sim.haplotypes import VariantPanel, random_panel
from repro.sim.reads import ReadSimulator


def _dataset(kind):
    """Three structurally different simulated datasets."""
    if kind == "shallow":
        # Below approx_min_depth everywhere: screening never engages.
        genome = random_genome(900, gc_content=0.45, name="chrS", seed=5)
        panel = random_panel(genome.sequence, 6, freq_range=(0.05, 0.2), seed=6)
        sample = ReadSimulator(genome, panel, read_length=80).simulate(
            depth=60, seed=7
        )
    elif kind == "deep":
        # Deep enough that most tests resolve in the screening pass.
        genome = sars_cov_2_like(length=600, seed=15)
        panel = random_panel(
            genome.sequence, 8, freq_range=(0.02, 0.1), seed=16
        )
        sample = ReadSimulator(genome, panel, read_length=100).simulate(
            depth=1200, seed=17
        )
    elif kind == "null":
        # No true variants: every candidate is sequencing error.
        genome = random_genome(700, gc_content=0.5, name="chrN", seed=25)
        sample = ReadSimulator(
            genome, VariantPanel(), read_length=80
        ).simulate(depth=400, seed=27)
    else:  # pragma: no cover - guard against fixture typos
        raise ValueError(kind)
    return sample


@pytest.fixture(scope="module", params=["shallow", "deep", "null"])
def dataset(request):
    return _dataset(request.param)


def call_tuple(c):
    """Every observable field of a VariantCall, for exact comparison."""
    return dataclasses.astuple(c)


def assert_equivalent(streaming, batched):
    assert [call_tuple(c) for c in streaming.calls] == [
        call_tuple(c) for c in batched.calls
    ]
    s, b = streaming.stats, batched.stats
    assert s.decisions == b.decisions
    assert s.columns_seen == b.columns_seen
    assert s.tests_run == b.tests_run
    assert s.dp_invocations == b.dp_invocations
    assert s.dp_steps == b.dp_steps
    assert s.approx_invocations == b.approx_invocations
    assert s.exact_skipped == b.exact_skipped


@pytest.mark.parametrize("use_approximation", [True, False])
def test_engines_identical(dataset, use_approximation):
    streaming = VariantCaller(
        CallerConfig(use_approximation=use_approximation)
    ).call_sample(dataset)
    batched = VariantCaller(
        CallerConfig(use_approximation=use_approximation, engine="batched")
    ).call_sample(dataset)
    assert_equivalent(streaming, batched)


@pytest.mark.parametrize("use_approximation", [True, False])
def test_engines_identical_merge_mapq(dataset, use_approximation):
    """The merged (base x mapping) quality model runs columnar in the
    batched engine (no per-column fallback since PR 4); its calls and
    censuses must still match the streaming engine byte-for-byte."""
    streaming = VariantCaller(
        CallerConfig(use_approximation=use_approximation, merge_mapq=True)
    ).call_sample(dataset)
    batched = VariantCaller(
        CallerConfig(
            use_approximation=use_approximation,
            merge_mapq=True,
            engine="batched",
        )
    ).call_sample(dataset)
    assert_equivalent(streaming, batched)


@pytest.mark.parametrize("use_approximation", [True, False])
def test_engines_identical_at_depth_cap(dataset, use_approximation):
    """With a tight max_depth the columns are capped; both engines must
    consume the capped columns identically (n_capped is a pileup
    property, so calls and censuses still match exactly)."""
    pileup_config = PileupConfig(max_depth=40)
    streaming = VariantCaller(
        CallerConfig(use_approximation=use_approximation),
        pileup_config=pileup_config,
    ).call_sample(dataset)
    batched = VariantCaller(
        CallerConfig(use_approximation=use_approximation, engine="batched"),
        pileup_config=pileup_config,
    ).call_sample(dataset)
    assert_equivalent(streaming, batched)
    # The cap genuinely engaged somewhere on every dataset (all are
    # deeper than 40x on average), so this is not a vacuous check.
    from repro.pileup.vectorized import pileup_sample

    columns = list(pileup_sample(dataset, config=pileup_config))
    assert any(c.n_capped > 0 for c in columns)
    assert all(c.depth <= 40 for c in columns)


def test_vcf_bytes_identical(tmp_path, dataset):
    paths = {}
    for engine in ("streaming", "batched"):
        result = VariantCaller(
            CallerConfig(engine=engine)
        ).call_sample(dataset)
        path = tmp_path / f"{engine}.vcf"
        write_vcf(
            path,
            [c.to_vcf_record() for c in result.calls],
            reference=[(dataset.genome.name, len(dataset.genome))],
        )
        paths[engine] = path
    assert paths["streaming"].read_bytes() == paths["batched"].read_bytes()


def test_batched_engine_under_parallel_driver():
    """config.engine dispatches per chunk inside the parallel driver;
    the merged result must match the streaming parallel run exactly."""
    dataset = _dataset("deep")
    results = {}
    for engine in ("streaming", "batched"):
        results[engine] = parallel_call(
            dataset,
            dataset.genome.sequence,
            config=CallerConfig(engine=engine),
            options=ParallelCallOptions(
                n_workers=2, chunk_columns=128, backend="thread"
            ),
        )
    assert_equivalent(results["streaming"], results["batched"])


def test_qual_prob_table_bitwise_identical():
    """The batched engine's Phred lookup table must reproduce the
    scalar error model bit-for-bit for every possible uint8 quality --
    this is what lets table-derived vectors feed the exact DP without
    perturbing any output."""
    import numpy as np

    from repro.core.batched import qual_prob_table
    from repro.core.model import allele_error_probabilities
    from repro.pileup.column import PileupColumn

    quals = np.arange(256, dtype=np.uint8)
    n = quals.size
    column = PileupColumn(
        chrom="c",
        pos=0,
        ref_base="A",
        base_codes=np.zeros(n, dtype=np.uint8),
        quals=quals,
        reverse=np.zeros(n, dtype=bool),
        mapqs=np.full(n, 60, dtype=np.uint8),
    )
    table = qual_prob_table()
    assert np.array_equal(table[quals], allele_error_probabilities(column))
    assert not table.flags.writeable


def test_batched_skips_most_tests_when_deep():
    """Sanity: on the deep dataset the screening pass does the bulk of
    the work (the paper's whole point), so the equivalence above is
    exercising the vectorised skip path, not an empty batch."""
    result = VariantCaller(
        CallerConfig(engine="batched")
    ).call_sample(_dataset("deep"))
    assert result.stats.skip_fraction() > 0.5
    assert result.stats.exact_skipped > 100


# -- the columnar ColumnBatch spine -------------------------------------------


def test_call_columns_accepts_column_batch(dataset):
    """Feeding one ColumnBatch to call_columns must equal feeding the
    same columns loosely, under both engines."""
    from repro.pileup.vectorized import pileup_sample, pileup_sample_batch

    batch = pileup_sample_batch(dataset)
    columns = list(pileup_sample(dataset))
    scope = len(dataset.genome)
    for engine in ("streaming", "batched"):
        caller = VariantCaller(CallerConfig(engine=engine))
        from_batch = caller.call_columns(batch, scope)
        from_columns = caller.call_columns(columns, scope)
        assert_equivalent(from_columns, from_batch)


def test_batched_engine_over_bam_pipeline(tmp_path):
    """The BAM columnar deposit path (BamSource.batches_for) must
    yield byte-identical calls and censuses to the streaming engine
    over the same file."""
    from repro.pipeline import BamSource, Pipeline

    dataset = _dataset("deep")
    bam = tmp_path / "deep.bam"
    dataset.write_bam(bam)
    results = {}
    for engine in ("streaming", "batched"):
        results[engine] = Pipeline(
            BamSource(bam, dataset.genome.sequence),
            config=CallerConfig(engine=engine),
        ).run()
    assert_equivalent(results["streaming"], results["batched"])
    assert results["batched"].stats.exact_skipped > 100


def test_batched_engine_under_parallel_driver_with_batches():
    """Chunked parallel execution streams per-chunk batches through
    the native screen; the merged result must still match streaming."""
    dataset = _dataset("deep")
    results = {}
    for engine in ("streaming", "batched"):
        results[engine] = parallel_call(
            dataset,
            dataset.genome.sequence,
            config=CallerConfig(engine=engine),
            options=ParallelCallOptions(
                n_workers=3, chunk_columns=97, backend="thread"
            ),
        )
    assert_equivalent(results["streaming"], results["batched"])


class _ColumnCensus:
    """Counts every PileupColumn construction while installed."""

    def __init__(self, monkeypatch):
        from repro.pileup.column import PileupColumn

        self.constructed = 0
        original = PileupColumn.__post_init__

        def counting(column):
            self.constructed += 1
            return original(column)

        monkeypatch.setattr(PileupColumn, "__post_init__", counting)


def test_screened_out_columns_build_no_python_objects(monkeypatch):
    """Evaluating a ColumnBatch whose every allele is screened out
    constructs zero PileupColumn objects."""
    import numpy as np

    from repro.core.batched import evaluate_batch
    from repro.core.results import RunStats
    from repro.pileup.vectorized import pileup_sample_batch

    dataset = _dataset("null")  # no true variants: everything screens out
    config = CallerConfig()
    batch = pileup_sample_batch(dataset)
    # Restrict to columns above the approximation gate so every pair
    # is eligible for screening.
    deep_enough = np.nonzero(batch.depths >= config.approx_min_depth)[0]
    lo, hi = int(deep_enough[0]), int(deep_enough[-1]) + 1
    batch = batch.slice_columns(lo, hi)
    assert bool((batch.depths >= config.approx_min_depth).all())

    census = _ColumnCensus(monkeypatch)
    stats = RunStats()
    calls = evaluate_batch(
        batch, config.corrected_alpha(len(dataset.genome)), config, stats
    )
    assert stats.tests_run > 50
    assert stats.exact_skipped == stats.tests_run, (
        "premise broken: a pair survived screening on the null dataset"
    )
    assert calls == []
    assert census.constructed == 0, (
        f"{census.constructed} PileupColumn objects built for "
        "screened-out columns"
    )


@pytest.mark.parametrize("merge_mapq", [False, True])
def test_batched_engine_zero_pileup_columns_end_to_end(
    monkeypatch, merge_mapq
):
    """The PR 4 acceptance claim: the batched engine constructs **no**
    PileupColumn anywhere, end to end -- screened-out columns, exact-DP
    survivors, emitted calls, ``merge_mapq`` included -- while staying
    byte-identical to the streaming engine."""
    dataset = _dataset("deep")  # has survivors and emitted calls
    streaming = VariantCaller(
        CallerConfig(merge_mapq=merge_mapq)
    ).call_sample(dataset)

    census = _ColumnCensus(monkeypatch)
    batched = VariantCaller(
        CallerConfig(merge_mapq=merge_mapq, engine="batched")
    ).call_sample(dataset)
    assert census.constructed == 0, (
        f"{census.constructed} PileupColumn objects built by the "
        "batched engine end-to-end"
    )
    # The run genuinely exercised the exact stage, not just the screen.
    assert batched.stats.dp_invocations > 0
    assert len(batched.calls) > 0
    assert_equivalent(streaming, batched)


def test_batched_engine_zero_pileup_columns_over_bam(monkeypatch, tmp_path):
    """Same census over the BAM pipeline: decode -> columnar deposit
    -> screen -> batch exact stage, zero per-column objects."""
    from repro.pipeline import BamSource, Pipeline

    dataset = _dataset("deep")
    bam = tmp_path / "census.bam"
    dataset.write_bam(bam)
    streaming = Pipeline(
        BamSource(bam, dataset.genome.sequence),
        config=CallerConfig(engine="streaming"),
    ).run()

    census = _ColumnCensus(monkeypatch)
    batched = Pipeline(
        BamSource(bam, dataset.genome.sequence),
        config=CallerConfig(engine="batched"),
    ).run()
    assert census.constructed == 0
    assert len(batched.calls) > 0
    assert_equivalent(streaming, batched)


def test_merged_qual_prob_table_bitwise_identical():
    """The fused (base quality x mapping quality) table must reproduce
    the scalar merged error model bit-for-bit for every possible pair
    of uint8 qualities -- what licenses the columnar merge_mapq path."""
    import numpy as np

    from repro.core.batched import merged_qual_prob_table
    from repro.core.model import allele_error_probabilities
    from repro.pileup.column import PileupColumn

    rng = np.random.default_rng(99)
    quals = rng.integers(0, 256, size=4096).astype(np.uint8)
    mapqs = rng.integers(0, 256, size=4096).astype(np.uint8)
    column = PileupColumn(
        chrom="c",
        pos=0,
        ref_base="A",
        base_codes=np.zeros(4096, dtype=np.uint8),
        quals=quals,
        reverse=np.zeros(4096, dtype=bool),
        mapqs=mapqs,
    )
    table = merged_qual_prob_table()
    assert np.array_equal(
        table[quals, mapqs],
        allele_error_probabilities(column, merge_mapq=True),
    )
    assert not table.flags.writeable


def test_screen_leaves_lazy_planes_untouched(tmp_path):
    """The ROADMAP deferral, regression-tested: a BAM-built batch
    carries its strand/mapq planes lazily, a pure screen-out pass
    never materialises them, and the screen's results are unchanged
    from an eager batch."""
    from repro.core.batched import screen_batch
    from repro.core.results import RunStats
    from repro.io.regions import Region
    from repro.pileup.column import ColumnBatch
    from repro.pileup.vectorized import pileup_batch_from_reads

    dataset = _dataset("null")
    bam = tmp_path / "lazy.bam"
    dataset.write_bam(bam)
    from repro.io.bam import BamReader

    config = CallerConfig()
    corrected_alpha = config.corrected_alpha(len(dataset.genome))
    region = Region(dataset.genome.name, 0, len(dataset.genome))

    def build():
        with BamReader(bam) as reader:
            return pileup_batch_from_reads(
                iter(reader), dataset.genome.sequence, region
            )

    lazy = build()
    assert not lazy.planes_materialised
    lazy_stats = RunStats()
    lazy_survivors = screen_batch(lazy, corrected_alpha, config, lazy_stats)
    assert not lazy.planes_materialised, (
        "screening alone materialised the strand/mapq planes"
    )

    eager_src = build()
    eager = ColumnBatch(
        chrom=eager_src.chrom,
        positions=eager_src.positions,
        ref_bases=eager_src.ref_bases,
        base_codes=eager_src.base_codes,
        quals=eager_src.quals,
        reverse=eager_src.reverse,  # materialises
        mapqs=eager_src.mapqs,
        offsets=eager_src.offsets,
        n_capped=eager_src.n_capped,
    )
    eager_stats = RunStats()
    eager_survivors = screen_batch(
        eager, corrected_alpha, config, eager_stats
    )
    assert lazy_survivors == eager_survivors
    assert lazy_stats.decisions == eager_stats.decisions
    assert lazy_stats.exact_skipped == eager_stats.exact_skipped
    # The planes themselves are identical once materialised.
    import numpy as np

    assert np.array_equal(lazy.reverse, eager.reverse)
    assert np.array_equal(lazy.mapqs, eager.mapqs)


# -- the streaming columnar builder (PR 5) ------------------------------------


def test_builder_streamed_bam_pipeline_byte_identical(monkeypatch, tmp_path):
    """The PR 5 acceptance claim: with BamSource streaming bounded
    batches straight out of ColumnBatchBuilder (many flushes, reads
    spanning every boundary), the batched engine's calls, stats and
    censuses stay byte-identical to streaming -- and still zero
    PileupColumn constructions end to end."""
    from repro.pipeline import BamSource, Pipeline

    dataset = _dataset("deep")
    bam = tmp_path / "builder.bam"
    dataset.write_bam(bam)
    streaming = Pipeline(
        BamSource(bam, dataset.genome.sequence),
        config=CallerConfig(engine="streaming"),
    ).run()

    census = _ColumnCensus(monkeypatch)
    batched = Pipeline(
        # 64-column flushes: every 100-base read spans boundaries.
        BamSource(bam, dataset.genome.sequence, batch_columns=64),
        config=CallerConfig(engine="batched"),
    ).run()
    assert census.constructed == 0, (
        f"{census.constructed} PileupColumn objects built on the "
        "builder-streamed path"
    )
    assert len(batched.calls) > 0
    assert_equivalent(streaming, batched)


@pytest.mark.parametrize("merge_mapq", [False, True])
def test_builder_batch_size_does_not_change_output(tmp_path, merge_mapq):
    """Flush granularity is an implementation knob: any batch_columns
    must produce identical calls and censuses."""
    from repro.pipeline import BamSource, Pipeline

    dataset = _dataset("shallow")
    bam = tmp_path / "sizes.bam"
    dataset.write_bam(bam)
    results = []
    for cap in (None, 17, 256):
        results.append(
            Pipeline(
                BamSource(
                    bam, dataset.genome.sequence, batch_columns=cap
                ),
                config=CallerConfig(
                    engine="batched", merge_mapq=merge_mapq
                ),
            ).run()
        )
    for other in results[1:]:
        assert_equivalent(results[0], other)


def test_dp4_batch_matches_per_column():
    """The fused DP4 bincount must reproduce PileupColumn.dp4 for
    every (column, alt) pair, duplicates included."""
    import numpy as np

    from repro.core.batched import dp4_batch
    from repro.pileup.vectorized import pileup_sample_batch

    dataset = _dataset("deep")
    batch = pileup_sample_batch(dataset)
    rng = np.random.default_rng(3)
    cols = rng.integers(0, batch.n_columns, size=200)
    cols = np.concatenate([cols, cols[:20]])  # duplicate pairs
    alts = rng.integers(0, 4, size=cols.size)
    ref_codes = batch.ref_codes.astype(np.int64)[cols]
    rf, rr, af, ar = dp4_batch(batch, cols, ref_codes, alts)
    for i in range(cols.size):
        column = batch.column(int(cols[i]))
        expected = column.dp4(int(alts[i]))
        assert (int(rf[i]), int(rr[i]), int(af[i]), int(ar[i])) == expected


def test_mapq_profile_engine_equivalence():
    """Per-read mapq sampled from a profile, min_mapq filtering and
    merge_mapq on: both engines must still agree byte-for-byte."""
    from repro.pileup.engine import PileupConfig
    from repro.sim.quality import MapqProfile

    genome = random_genome(700, gc_content=0.5, name="chrQ", seed=55)
    panel = random_panel(genome.sequence, 5, freq_range=(0.03, 0.15), seed=56)
    sample = ReadSimulator(
        genome, panel, read_length=80,
        mapq_profile=MapqProfile.aligner_like(),
    ).simulate(depth=300, seed=57)
    pileup_config = PileupConfig(min_mapq=25)
    for merge_mapq in (False, True):
        streaming = VariantCaller(
            CallerConfig(merge_mapq=merge_mapq),
            pileup_config=pileup_config,
        ).call_sample(sample)
        batched = VariantCaller(
            CallerConfig(merge_mapq=merge_mapq, engine="batched"),
            pileup_config=pileup_config,
        ).call_sample(sample)
        assert_equivalent(streaming, batched)


def _sink_bytes(source, engine, sink_kind, contigs):
    """Pipeline.run() output bytes through a VCF or JSONL sink."""
    import io as _io

    from repro.pipeline import JsonlSink, Pipeline, VcfSink

    buf = _io.StringIO()
    sink = (
        VcfSink(buf, contigs=contigs)
        if sink_kind == "vcf"
        else JsonlSink(buf)
    )
    Pipeline(
        source, config=CallerConfig(engine=engine), sinks=[sink]
    ).run()
    return buf.getvalue()


@pytest.mark.parametrize("engine", ["streaming", "batched"])
@pytest.mark.parametrize("sink_kind", ["vcf", "jsonl"])
def test_decompress_threads_byte_identical_across_sources(
    tmp_path, dataset, engine, sink_kind
):
    """Pipeline output with a pooled BGZF reader (threads 2 and 8) is
    bit-for-bit the serial output -- and all four source flavours
    agree on it, for both engines and both sink formats."""
    from repro.io.regions import Region
    from repro.pileup.vectorized import pileup_sample
    from repro.pipeline import (
        BamSource,
        ColumnsSource,
        ReadsSource,
        SampleSource,
    )

    genome = dataset.genome
    region = Region(genome.name, 0, len(genome))
    contigs = [(genome.name, len(genome))]
    bam = tmp_path / "equiv.bam"
    dataset.write_bam(bam)

    baseline = _sink_bytes(SampleSource(dataset), engine, sink_kind, contigs)
    assert (
        _sink_bytes(
            ReadsSource(dataset.reads(), genome.sequence, region),
            engine,
            sink_kind,
            contigs,
        )
        == baseline
    )
    assert (
        _sink_bytes(
            ColumnsSource(list(pileup_sample(dataset, region)), region),
            engine,
            sink_kind,
            contigs,
        )
        == baseline
    )
    for threads in (0, 2, 8):
        got = _sink_bytes(
            BamSource(
                bam, genome.sequence, decompress_threads=threads
            ),
            engine,
            sink_kind,
            contigs,
        )
        assert got == baseline, f"decompress_threads={threads} diverged"


def test_decompress_threads_identical_under_thread_backend(tmp_path):
    """The pooled reader composes with the threaded execution backend
    (readers per worker, each with its own pool) without changing a
    byte of the merged result."""
    import dataclasses as _dc

    from repro.pipeline import BamSource, ExecutionPolicy, Pipeline

    dataset = _dataset("deep")
    bam = tmp_path / "deep.bam"
    dataset.write_bam(bam)
    policy = ExecutionPolicy(mode="thread", n_workers=3, chunk_columns=128)
    results = {}
    for threads in (0, 4):
        results[threads] = Pipeline(
            BamSource(bam, dataset.genome.sequence, decompress_threads=threads),
            config=CallerConfig(engine="batched"),
            policy=policy,
        ).run()
    assert [_dc.astuple(c) for c in results[4].calls] == [
        _dc.astuple(c) for c in results[0].calls
    ]
    assert results[4].stats.decisions == results[0].stats.decisions
