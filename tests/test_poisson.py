"""Tests for the Poisson distribution functions against SciPy."""

import numpy as np
import pytest
from scipy import stats as sstats

from repro.stats.poisson import poisson_cdf, poisson_log_pmf, poisson_pmf, poisson_sf


class TestPmf:
    @pytest.mark.parametrize("lam", [0.01, 0.5, 1.0, 5.0, 50.0, 500.0])
    @pytest.mark.parametrize("k", [0, 1, 3, 10, 100])
    def test_matches_scipy(self, k, lam):
        assert poisson_pmf(k, lam) == pytest.approx(
            sstats.poisson.pmf(k, lam), rel=1e-10, abs=1e-300
        )

    def test_lam_zero(self):
        assert poisson_pmf(0, 0.0) == 1.0
        assert poisson_pmf(1, 0.0) == 0.0

    def test_pmf_sums_to_one(self):
        lam = 7.3
        total = sum(poisson_pmf(k, lam) for k in range(200))
        assert total == pytest.approx(1.0, rel=1e-12)

    def test_log_pmf_large_k_no_overflow(self):
        val = poisson_log_pmf(100_000, 100_000.0)
        assert np.isfinite(val)


class TestCdfSf:
    @pytest.mark.parametrize("lam", [0.1, 1.0, 10.0, 1000.0])
    @pytest.mark.parametrize("k", [0, 1, 5, 50, 900, 1100])
    def test_cdf_matches_scipy(self, k, lam):
        assert poisson_cdf(k, lam) == pytest.approx(
            sstats.poisson.cdf(k, lam), rel=1e-9, abs=1e-300
        )

    @pytest.mark.parametrize("lam", [0.1, 1.0, 10.0, 1000.0])
    @pytest.mark.parametrize("k", [0, 1, 5, 50, 900, 1100])
    def test_sf_is_inclusive_tail(self, k, lam):
        # Our sf is P(X >= k) = scipy's sf(k-1).
        expected = sstats.poisson.sf(k - 1, lam) if k > 0 else 1.0
        assert poisson_sf(k, lam) == pytest.approx(expected, rel=1e-9, abs=1e-300)

    def test_cdf_sf_complementarity(self):
        lam = 12.0
        for k in range(40):
            assert poisson_cdf(k, lam) + poisson_sf(k + 1, lam) == pytest.approx(
                1.0, rel=1e-10
            )

    def test_sf_at_zero_is_one(self):
        assert poisson_sf(0, 5.0) == 1.0
        assert poisson_sf(0, 0.0) == 1.0

    def test_sf_lam_zero(self):
        assert poisson_sf(3, 0.0) == 0.0

    def test_sf_monotone_decreasing_in_k(self):
        lam = 8.0
        values = [poisson_sf(k, lam) for k in range(30)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_sf_monotone_increasing_in_lam(self):
        k = 10
        values = [poisson_sf(k, lam) for lam in (1.0, 2.0, 5.0, 10.0, 20.0)]
        assert values == sorted(values)

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            poisson_sf(-1, 1.0)

    def test_negative_lam_raises(self):
        with pytest.raises(ValueError):
            poisson_cdf(1, -0.5)

    def test_ultra_deep_regime(self):
        """The paper's 1M-depth columns: lambda in the hundreds."""
        lam = 400.0  # 1e6 reads * ~4e-4 error / 3 alleles-ish
        assert poisson_sf(400, lam) == pytest.approx(
            sstats.poisson.sf(399, lam), rel=1e-8
        )
        assert poisson_sf(600, lam) == pytest.approx(
            sstats.poisson.sf(599, lam), rel=1e-6
        )
