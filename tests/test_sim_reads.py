"""Tests for the read simulator, most importantly the *calibration*
property: injected error rates must equal quality-implied rates, which
is what makes the caller's null model correct on simulated data."""

import numpy as np
import pytest

from repro.io.regions import Region
from repro.pileup.vectorized import pileup_sample
from repro.sim.genome import random_genome
from repro.sim.haplotypes import VariantPanel, VariantSpec
from repro.sim.quality import MapqProfile, QualityModel
from repro.sim.reads import ReadSimulator, decode_row, encode_sequence


@pytest.fixture(scope="module")
def flat_genome():
    return random_genome(600, seed=77)


class TestEncoding:
    def test_round_trip(self):
        seq = "ACGTNACGT"
        assert decode_row(encode_sequence(seq)) == seq

    def test_unknown_maps_to_n(self):
        assert decode_row(encode_sequence("AXB")) == "ANN"


class TestBasicProperties:
    def test_reproducible(self, flat_genome):
        sim = ReadSimulator(flat_genome, read_length=50)
        a = sim.simulate(depth=30, seed=4)
        b = sim.simulate(depth=30, seed=4)
        assert np.array_equal(a.codes, b.codes)
        assert np.array_equal(a.quals, b.quals)
        assert np.array_equal(a.starts, b.starts)

    def test_starts_sorted(self, flat_genome):
        sample = ReadSimulator(flat_genome, read_length=50).simulate(30, seed=1)
        assert np.all(np.diff(sample.starts) >= 0)

    def test_reads_within_genome(self, flat_genome):
        sample = ReadSimulator(flat_genome, read_length=50).simulate(30, seed=1)
        assert sample.starts.min() >= 0
        assert (sample.starts + 50).max() <= len(flat_genome)

    def test_mean_depth_close_to_requested(self, flat_genome):
        sample = ReadSimulator(flat_genome, read_length=50).simulate(100, seed=2)
        assert sample.mean_depth == pytest.approx(100, rel=0.02)

    def test_both_strands_present(self, flat_genome):
        sample = ReadSimulator(flat_genome, read_length=50).simulate(50, seed=3)
        frac_rev = sample.reverse.mean()
        assert 0.4 < frac_rev < 0.6

    def test_read_length_validation(self, flat_genome):
        with pytest.raises(ValueError):
            ReadSimulator(flat_genome, read_length=0)
        with pytest.raises(ValueError):
            ReadSimulator(flat_genome, read_length=10_000)

    def test_depth_validation(self, flat_genome):
        sim = ReadSimulator(flat_genome, read_length=50)
        with pytest.raises(ValueError):
            sim.simulate(0)

    def test_read_objects_match_matrices(self, flat_genome):
        sim = ReadSimulator(flat_genome, read_length=40)
        sample = sim.simulate(10, seed=5)
        reads = sample.read_list()
        assert len(reads) == sample.n_reads
        for i in (0, len(reads) // 2, -1):
            read = reads[i]
            assert read.pos == sample.starts[i]
            assert read.seq == decode_row(sample.codes[i])
            assert np.array_equal(read.qual, sample.quals[i])
            assert read.is_reverse == bool(sample.reverse[i])


class TestCalibration:
    """The statistical contract with the caller."""

    def test_error_rate_matches_quality(self):
        """Empirical mismatch rate == mean quality-implied error rate,
        on a variant-free sample."""
        genome = random_genome(400, seed=9)
        sim = ReadSimulator(
            genome,
            quality_model=QualityModel(q_start=25, q_end=25, jitter=0.0),
            read_length=60,
        )
        sample = sim.simulate(depth=800, seed=10)
        ref_codes = encode_sequence(genome.sequence)
        expected_rate = 10 ** (-25 / 10)
        window = ref_codes[sample.starts[:, None] + np.arange(60)[None, :]]
        mismatches = (sample.codes != window).mean()
        # ~1.9M bases observed; binomial noise is tiny.
        assert mismatches == pytest.approx(expected_rate, rel=0.05)

    def test_per_quality_calibration(self):
        """Bucket by emitted quality score: each bucket's mismatch rate
        must match its own implied probability."""
        genome = random_genome(300, seed=12)
        sim = ReadSimulator(
            genome,
            quality_model=QualityModel(q_start=35, q_end=15, jitter=4.0),
            read_length=50,
        )
        sample = sim.simulate(depth=2000, seed=13)
        ref_codes = encode_sequence(genome.sequence)
        window = ref_codes[sample.starts[:, None] + np.arange(50)[None, :]]
        mism = sample.codes != window
        for q in (15, 20, 25, 30):
            mask = sample.quals == q
            if mask.sum() < 50_000:
                continue
            rate = mism[mask].mean()
            assert rate == pytest.approx(10 ** (-q / 10), rel=0.15)

    def test_variant_frequency_concentrates(self):
        """Observed allele frequency ~ designed frequency."""
        genome = random_genome(300, seed=20)
        pos = 150
        ref = genome.sequence[pos]
        alt = "A" if ref != "A" else "C"
        panel = VariantPanel([VariantSpec(pos, ref, alt, 0.10)])
        sim = ReadSimulator(genome, panel, read_length=50)
        sample = sim.simulate(depth=3000, seed=21)
        region = Region(genome.name, pos, pos + 1)
        (col,) = list(pileup_sample(sample, region))
        from repro.pileup.column import BASE_TO_CODE

        af = col.allele_depth(BASE_TO_CODE[alt]) / col.depth
        assert af == pytest.approx(0.10, abs=0.02)

    def test_null_sample_has_no_high_af_sites(self, null_sample):
        """Without injected variants no column should show an allele
        at >5% frequency at 300x (errors are ~0.1%)."""
        from repro.pileup.column import BASE_TO_CODE

        for col in pileup_sample(
            null_sample, Region(null_sample.genome.name, 0, 300)
        ):
            for code in range(4):
                if code == col.ref_code:
                    continue
                af = col.allele_depth(code) / max(1, col.depth)
                assert af < 0.05


class TestQualityModel:
    def test_sample_shape_and_range(self, rng):
        qm = QualityModel.hiseq()
        q = qm.sample_many(100, 50, rng)
        assert q.shape == (100, 50)
        assert q.min() >= 2
        assert q.max() <= 41

    def test_decay_along_read(self, rng):
        qm = QualityModel(q_start=40, q_end=20, jitter=0.0)
        q = qm.sample(100, rng)
        assert q[0] > q[-1]
        assert q[0] == 40
        assert q[-1] == 20

    def test_long_read_profile_is_high_error(self):
        lr = QualityModel.long_read()
        hs = QualityModel.hiseq()
        assert lr.expected_error_rate(100) > 10 * hs.expected_error_rate(100)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            QualityModel(jitter=-1.0)
        with pytest.raises(ValueError):
            QualityModel().mean_curve(0)

    def test_reverse_reads_have_flipped_curve(self):
        genome = random_genome(300, seed=30)
        sim = ReadSimulator(
            genome,
            quality_model=QualityModel(q_start=40, q_end=10, jitter=0.0),
            read_length=50,
        )
        sample = sim.simulate(depth=50, seed=31)
        fwd = sample.quals[~sample.reverse]
        rev = sample.quals[sample.reverse]
        assert fwd[:, 0].mean() > fwd[:, -1].mean()
        assert rev[:, 0].mean() < rev[:, -1].mean()


class TestMapqProfile:
    """Per-read mapping qualities sampled from a profile (PR 5): the
    ROADMAP deferral that lets --min-mapq / --merge-mapq engage end to
    end on simulated data."""

    def test_constant_profile_and_default_agree(self):
        genome = random_genome(300, seed=40)
        base = ReadSimulator(genome, read_length=50).simulate(
            depth=40, seed=41
        )
        assert base.mapqs is None
        # No profile means no extra RNG draws: historical seeds keep
        # reproducing byte-identical samples.
        again = ReadSimulator(genome, read_length=50).simulate(
            depth=40, seed=41
        )
        assert np.array_equal(base.codes, again.codes)
        assert np.array_equal(base.quals, again.quals)
        const = ReadSimulator(
            genome, read_length=50, mapq_profile=MapqProfile.constant(60)
        ).simulate(depth=40, seed=41)
        assert const.mapqs is not None
        assert np.all(const.mapqs == 60)
        # The base-call matrices are untouched by the extra mapq draw.
        assert np.array_equal(base.codes, const.codes)
        assert np.array_equal(base.quals, const.quals)

    def test_mixture_shape_and_determinism(self):
        profile = MapqProfile.aligner_like()
        rng = np.random.default_rng(5)
        m = profile.sample(20_000, rng)
        assert m.dtype == np.uint8
        assert m.max() <= 254
        low_frac = float((m < 40).mean())
        assert 0.04 < low_frac < 0.12
        rng2 = np.random.default_rng(5)
        assert np.array_equal(m, profile.sample(20_000, rng2))

    def test_reads_and_bam_carry_per_read_mapq(self, tmp_path):
        from repro.io.bam import read_bam

        genome = random_genome(300, seed=42)
        sample = ReadSimulator(
            genome, read_length=50,
            mapq_profile=MapqProfile.aligner_like(),
        ).simulate(depth=30, seed=43)
        assert len(np.unique(sample.mapqs)) > 1
        reads = sample.read_list()
        assert [r.mapq for r in reads] == sample.mapqs.tolist()
        bam = tmp_path / "mapq.bam"
        sample.write_bam(bam)
        _, decoded = read_bam(bam)
        assert [r.mapq for r in decoded] == sample.mapqs.tolist()

    def test_min_mapq_filter_engages_end_to_end(self):
        """The vectorised sample path and the streaming read path must
        drop exactly the same low-mapq reads."""
        from repro.pileup.engine import PileupConfig, pileup
        from repro.pileup.vectorized import pileup_sample_batch

        genome = random_genome(400, seed=44)
        sample = ReadSimulator(
            genome, read_length=60,
            mapq_profile=MapqProfile.aligner_like(),
        ).simulate(depth=50, seed=45)
        config = PileupConfig(min_mapq=30)
        region = Region(genome.name, 0, len(genome))
        batch = pileup_sample_batch(sample, region, config)
        stream = list(
            pileup(iter(sample.read_list()), genome.sequence, region, config)
        )
        batch_cols = list(batch.columns())
        assert len(batch_cols) == len(stream)
        for a, b in zip(batch_cols, stream):
            assert a.pos == b.pos
            assert np.array_equal(a.base_codes, b.base_codes)
            assert np.array_equal(a.mapqs, b.mapqs)
        # The filter genuinely dropped reads somewhere.
        unfiltered = pileup_sample_batch(sample, region, PileupConfig())
        assert int(batch.depths.sum()) < int(unfiltered.depths.sum())

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="low_fraction"):
            MapqProfile(low_fraction=1.5)
        with pytest.raises(ValueError, match="mapq"):
            MapqProfile(mapq=300)
        with pytest.raises(ValueError, match="jitter"):
            MapqProfile(jitter=-1.0)
