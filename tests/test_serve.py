"""Tests for the calling service (repro.serve).

Covers the ISSUE 7 concurrency contract: coalesced duplicate in-flight
requests compute once, backpressure rejects (or queues) beyond the
bound, shutdown drains cleanly, served bodies are byte-identical to
offline Pipeline.run() output, and a BAM rewritten in place (same
path) misses the result cache by fingerprint construction.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import threading
import time

import pytest

from repro.core.config import CallerConfig
from repro.io.fasta import write_fasta
from repro.pileup.engine import PileupConfig
from repro.pipeline import BamSource, JsonlSink, Pipeline, VcfSink
from repro.serve import (
    CallRequest,
    CallService,
    FileFingerprint,
    ResultCache,
    ResultKey,
    ServeClient,
    ServerClosedError,
    ServerOverloadedError,
    ShardMap,
    ShardWorker,
    ValidationError,
    config_hash,
    serve_tcp,
)
from repro.serve.cache import CachedResult
from repro.sim import ReadSimulator, random_panel, sars_cov_2_like


def _simulate(path_dir, *, seed=11, length=600, depth=250, variants=4):
    genome = sars_cov_2_like(length=length, seed=seed)
    panel = random_panel(
        genome.sequence, variants, freq_range=(0.03, 0.09), seed=seed
    )
    sample = ReadSimulator(genome, panel, read_length=80).simulate(
        depth, seed=seed
    )
    bam = os.path.join(path_dir, "sample.bam")
    ref = os.path.join(path_dir, "ref.fa")
    sample.write_bam(bam)
    write_fasta(ref, [genome])
    return genome, bam, ref


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    d = tmp_path_factory.mktemp("serve")
    genome, bam, ref = _simulate(str(d))
    return {"dir": str(d), "genome": genome, "bam": bam, "ref": ref}


@pytest.fixture()
def client(dataset):
    with ServeClient(default_reference=dataset["ref"], n_workers=2) as c:
        yield c


class TestModels:
    def test_fingerprint_identity(self, dataset):
        a = FileFingerprint.of(dataset["bam"])
        b = FileFingerprint.of(dataset["bam"])
        assert a == b
        assert os.path.isabs(a.path)

    def test_fingerprint_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot stat"):
            FileFingerprint.of(tmp_path / "nope.bam")

    def test_config_hash_sensitivity(self, dataset):
        ref = FileFingerprint.of(dataset["ref"])
        base = config_hash(
            CallerConfig.improved(), PileupConfig(), "vcf", ref
        )
        assert base == config_hash(
            CallerConfig.improved(), PileupConfig(), "vcf", ref
        )
        assert base != config_hash(
            CallerConfig.improved(alpha=0.01), PileupConfig(), "vcf", ref
        )
        assert base != config_hash(
            CallerConfig.improved(), PileupConfig(min_baseq=20), "vcf", ref
        )
        assert base != config_hash(
            CallerConfig.improved(), PileupConfig(), "jsonl", ref
        )

    def test_request_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown request fields"):
            CallRequest.from_dict({"bam": "x.bam", "wat": 1})
        with pytest.raises(ValidationError, match="'bam'"):
            CallRequest.from_dict({})
        with pytest.raises(ValidationError, match="bad request config"):
            CallRequest.from_dict({"bam": "x.bam", "config": {"alpha": 2.0}})

    def test_validated_rejects_bad_requests(self, dataset):
        good = CallRequest(bam=dataset["bam"], reference=dataset["ref"])
        assert good.validated() is good
        with pytest.raises(ValidationError, match="output_format"):
            CallRequest(
                bam=dataset["bam"],
                reference=dataset["ref"],
                output_format="bcf",
            ).validated()
        with pytest.raises(ValidationError, match="malformed region"):
            CallRequest(
                bam=dataset["bam"],
                reference=dataset["ref"],
                region="::bad::",
            ).validated()
        with pytest.raises(ValidationError, match="no default"):
            CallRequest(bam=dataset["bam"]).validated()
        with pytest.raises(ValidationError, match="does not exist"):
            CallRequest(
                bam=dataset["bam"], reference="/no/such/ref.fa"
            ).validated()


class TestShardMap:
    def test_routing_is_deterministic_and_contig_sticky(self, dataset):
        fp = FileFingerprint.of(dataset["bam"])
        shards = ShardMap(4)
        key_a = ResultKey(bam=fp, region="ctgA:1-100", config="c1")
        key_b = ResultKey(bam=fp, region="ctgA:200-300", config="c2")
        # Same file+contig -> same shard, regardless of span or config.
        assert shards.shard_for(key_a) == shards.shard_for(key_b)
        assert 0 <= shards.shard_for(key_a) < 4
        # Stable across instances (content-addressed, not hash()).
        assert ShardMap(4).shard_for(key_a) == shards.shard_for(key_a)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardMap(0)


class TestResultCache:
    def _entry(self, body="x"):
        return CachedResult(
            body=body, output_format="vcf", stats={}, n_calls=0, n_pass=0
        )

    def _key(self, dataset, region):
        return ResultKey(
            bam=FileFingerprint.of(dataset["bam"]), region=region, config="c"
        )

    def test_lru_eviction_and_counters(self, dataset):
        cache = ResultCache(2)
        k1, k2, k3 = (self._key(dataset, r) for r in ("a", "b", "c"))
        cache.put(k1, self._entry("1"))
        cache.put(k2, self._entry("2"))
        assert cache.get(k1).body == "1"
        cache.put(k3, self._entry("3"))  # evicts k2 (LRU)
        assert cache.get(k2) is None
        stats = cache.to_dict()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1


class TestServeBasics:
    def test_cold_then_warm_byte_identical(self, dataset, client):
        cold = client.call(dataset["bam"])
        warm = client.call(dataset["bam"])
        assert not cold.cached and warm.cached
        assert warm.body == cold.body
        assert cold.stats["columns_seen"] > 0
        assert warm.stats["serve"]["result_cache_hit"] is True
        assert warm.stats["serve"]["result_cache"]["hits"] >= 1

    def test_vcf_body_matches_offline_pipeline(self, dataset, client):
        served = client.call(dataset["bam"])
        source = BamSource(
            dataset["bam"],
            {dataset["genome"].name: dataset["genome"].sequence},
        )
        buf = io.StringIO()
        Pipeline(source, sinks=[VcfSink(buf, contigs=source.contigs)]).run()
        assert served.body == buf.getvalue()

    def test_jsonl_body_matches_offline_pipeline(self, dataset, client):
        served = client.call(dataset["bam"], output_format="jsonl")
        source = BamSource(
            dataset["bam"],
            {dataset["genome"].name: dataset["genome"].sequence},
        )
        buf = io.StringIO()
        Pipeline(source, sinks=[JsonlSink(buf)]).run()
        assert served.body == buf.getvalue()
        assert all(json.loads(line) for line in served.body.splitlines())

    def test_region_request_scopes_calls(self, dataset, client):
        name = dataset["genome"].name
        whole = client.call(dataset["bam"])
        half = client.call(dataset["bam"], region=f"{name}:1-300")
        assert not half.cached  # different key than the whole-file body
        assert half.body != whole.body
        # The offline equivalent: same contigs header, half the scope.
        from repro.io.regions import Region

        source = BamSource(
            dataset["bam"],
            {name: dataset["genome"].sequence},
            regions=[Region(name, 0, 300)],
        )
        buf = io.StringIO()
        Pipeline(
            source, sinks=[VcfSink(buf, contigs=[(name, 600)])]
        ).run()
        assert half.body == buf.getvalue()

    def test_region_unknown_contig_fails_validation(self, dataset, client):
        with pytest.raises(ValidationError, match="not in the BAM header"):
            client.call(dataset["bam"], region="ctgZ:1-10")

    def test_distinct_configs_get_distinct_entries(self, dataset, client):
        a = client.call(dataset["bam"], config=CallerConfig.improved())
        b = client.call(
            dataset["bam"], config=CallerConfig.improved(alpha=0.001)
        )
        assert not b.cached
        assert a.key != b.key

    def test_warm_source_reused_across_requests(self, dataset, client):
        # Two distinct regions of one contig: the shard map routes by
        # (bam path, contig), so both deterministically land on the
        # same worker and the second reuses its warm source.  (A
        # whole-file request keys contig '', which may route to a
        # different shard than the named contig.)
        name = dataset["genome"].name
        client.call(dataset["bam"], region=f"{name}:1-200")
        client.call(dataset["bam"], region=f"{name}:201-400")
        stats = client.stats()
        hits = sum(w["warm_source_hits"] for w in stats["workers"])
        assert hits >= 1, stats["workers"]


class TestStaleFingerprint:
    def test_rewritten_bam_misses_and_recomputes(self, tmp_path):
        genome, bam, ref = _simulate(str(tmp_path), seed=21)
        with ServeClient(default_reference=ref, n_workers=1) as client:
            first = client.call(bam)
            fp_before = FileFingerprint.of(bam)
            # Rewrite the BAM in place: same path, different reads
            # (different seed -> different errors/variant support).
            panel = random_panel(
                genome.sequence, 4, freq_range=(0.03, 0.09), seed=99
            )
            sample = ReadSimulator(
                genome, panel, read_length=80
            ).simulate(250, seed=99)
            sample.write_bam(bam)
            # Force a different mtime even on coarse-grained clocks.
            st = os.stat(bam)
            os.utime(bam, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
            fp_after = FileFingerprint.of(bam)
            assert fp_before != fp_after
            second = client.call(bam)
            assert second.cached is False, (
                "stale fingerprint must miss the result cache"
            )
            assert second.key.bam == fp_after
            assert second.body != first.body
            # And the *new* body is immediately warm under the new key.
            third = client.call(bam)
            assert third.cached and third.body == second.body


def _slow_render(monkeypatch, delay=0.15, release=None):
    """Patch ShardWorker._render to count invocations (and optionally
    block on an event) while still producing the real body."""
    calls = []
    original = ShardWorker._render

    def patched(self, request, key):
        calls.append(key)
        if release is not None:
            assert release.wait(timeout=30.0), "renderer never released"
        elif delay:
            time.sleep(delay)
        return original(self, request, key)

    monkeypatch.setattr(ShardWorker, "_render", patched)
    return calls


class TestConcurrency:
    def test_coalesced_duplicates_compute_once(self, dataset, monkeypatch):
        calls = _slow_render(monkeypatch, delay=0.2)
        service = CallService(default_reference=dataset["ref"], n_workers=2)
        request = CallRequest(bam=dataset["bam"], reference=dataset["ref"])

        async def burst():
            return await asyncio.gather(
                *(service.submit(request) for _ in range(6))
            )

        try:
            responses = asyncio.run(burst())
        finally:
            service.close()
        assert len(calls) == 1, "duplicate in-flight requests recomputed"
        bodies = {r.body for r in responses}
        assert len(bodies) == 1
        assert sum(1 for r in responses if r.coalesced) == 5
        assert sum(1 for r in responses if not r.coalesced and not r.cached) == 1
        stats = service.stats()
        assert stats["coalesced"] == 5 and stats["computed"] == 1

    def test_backpressure_rejects_beyond_bound(self, dataset, monkeypatch):
        release = threading.Event()
        _slow_render(monkeypatch, release=release)
        service = CallService(
            default_reference=dataset["ref"],
            n_workers=1,
            max_pending=1,
            on_full="reject",
        )
        name = dataset["genome"].name
        req_a = CallRequest(
            bam=dataset["bam"], reference=dataset["ref"], region=f"{name}:1-100"
        )
        req_b = CallRequest(
            bam=dataset["bam"], reference=dataset["ref"], region=f"{name}:101-200"
        )

        async def scenario():
            task_a = asyncio.create_task(service.submit(req_a))
            await asyncio.sleep(0.1)  # let A occupy the only slot
            with pytest.raises(ServerOverloadedError):
                await service.submit(req_b)
            # A duplicate of the in-flight request coalesces instead of
            # rejecting -- it needs no slot of its own.
            task_dup = asyncio.create_task(service.submit(req_a))
            await asyncio.sleep(0.05)
            release.set()
            a, dup = await asyncio.gather(task_a, task_dup)
            return a, dup

        try:
            a, dup = asyncio.run(scenario())
        finally:
            release.set()
            service.close()
        assert a.body == dup.body
        assert dup.coalesced
        assert service.stats()["rejected"] == 1

    def test_backpressure_wait_mode_queues(self, dataset, monkeypatch):
        _slow_render(monkeypatch, delay=0.1)
        service = CallService(
            default_reference=dataset["ref"],
            n_workers=1,
            max_pending=1,
            on_full="wait",
        )
        name = dataset["genome"].name
        requests = [
            CallRequest(
                bam=dataset["bam"],
                reference=dataset["ref"],
                region=f"{name}:{lo}-{lo + 99}",
            )
            for lo in (1, 101, 201)
        ]

        async def scenario():
            return await asyncio.gather(
                *(service.submit(r) for r in requests)
            )

        try:
            responses = asyncio.run(scenario())
        finally:
            service.close()
        assert len(responses) == 3
        assert all(r.body for r in responses)
        assert service.stats()["rejected"] == 0
        assert service.stats()["computed"] == 3

    def test_shutdown_drains_in_flight_requests(self, dataset, monkeypatch):
        _slow_render(monkeypatch, delay=0.15)
        service = CallService(default_reference=dataset["ref"], n_workers=2)
        name = dataset["genome"].name
        requests = [
            CallRequest(
                bam=dataset["bam"],
                reference=dataset["ref"],
                region=f"{name}:{lo}-{lo + 49}",
            )
            for lo in (1, 51, 101, 151)
        ]

        async def scenario():
            tasks = [
                asyncio.create_task(service.submit(r)) for r in requests
            ]
            await asyncio.sleep(0.05)  # all enqueued, none finished
            await service.shutdown()
            # Every in-flight request still completes with a real body.
            responses = await asyncio.gather(*tasks)
            with pytest.raises(ServerClosedError):
                await service.submit(requests[0])
            return responses

        responses = asyncio.run(scenario())
        assert len(responses) == 4
        assert all(r.body.startswith("##fileformat") for r in responses)
        assert service.stats()["computed"] == 4

    def test_worker_error_does_not_kill_the_worker(self, dataset, client):
        with pytest.raises(ValidationError):
            client.call(dataset["bam"], region="ctgZ")
        # The same worker still serves the next request.
        ok = client.call(dataset["bam"])
        assert ok.body
        assert client.stats()["errors"] == 1


class TestTcpFrontEnd:
    def test_tcp_round_trip_cold_warm_and_stats(self, dataset):
        service = CallService(default_reference=dataset["ref"], n_workers=1)

        async def scenario():
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def roundtrip(payload):
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            cold = await roundtrip({"bam": dataset["bam"]})
            warm = await roundtrip({"bam": dataset["bam"]})
            bad = await roundtrip({"bam": dataset["bam"], "wat": 1})
            garbage = await roundtrip({"op": "stats"})
            writer.close()
            server.close()
            await server.wait_closed()
            return cold, warm, bad, garbage

        try:
            cold, warm, bad, stats = asyncio.run(scenario())
        finally:
            service.close()
        assert cold["status"] == "ok" and not cold["cached"]
        assert warm["status"] == "ok" and warm["cached"]
        assert warm["body"] == cold["body"]
        assert bad["status"] == "error" and bad["kind"] == "ValidationError"
        assert stats["status"] == "ok"
        assert stats["stats"]["computed"] == 1


class TestDecompressThreads:
    """The pooled BGZF reader behind the serve path changes no bytes."""

    @pytest.mark.parametrize("threads", [0, 2, 8])
    @pytest.mark.parametrize("output_format", ["vcf", "jsonl"])
    def test_served_body_identical_with_pool(
        self, dataset, threads, output_format
    ):
        source = BamSource(
            dataset["bam"],
            {dataset["genome"].name: dataset["genome"].sequence},
        )
        buf = io.StringIO()
        sink = (
            VcfSink(buf, contigs=source.contigs)
            if output_format == "vcf"
            else JsonlSink(buf)
        )
        Pipeline(source, sinks=[sink]).run()
        with ServeClient(
            default_reference=dataset["ref"],
            n_workers=2,
            decompress_threads=threads,
        ) as client:
            served = client.call(
                dataset["bam"], output_format=output_format
            )
        assert served.body == buf.getvalue()

    def test_pool_counters_surface_in_served_stats(self, dataset):
        with ServeClient(
            default_reference=dataset["ref"],
            n_workers=1,
            decompress_threads=2,
        ) as client:
            served = client.call(dataset["bam"])
        # Pipeline.run folds the RegionView's io_stats() delta into the
        # RunStats that the serve layer snapshots into the response.
        assert served.stats["prefetch_hits"] > 0
        assert "prefetch_wasted" in served.stats

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError, match="decompress_threads"):
            CallService(decompress_threads=-1)

    def test_warm_source_key_includes_threads(self, dataset):
        worker = ShardWorker(0, warm_sources=4, decompress_threads=2)
        from repro.serve.models import CallRequest, FileFingerprint

        request = CallRequest(bam=dataset["bam"], reference=dataset["ref"])
        bam_fp = FileFingerprint.of(dataset["bam"])
        a = worker._source_for(request, bam_fp)
        assert worker._source_for(request, bam_fp) is a
        assert a.decompress_threads == 2
        other = ShardWorker(1, warm_sources=4)
        b = other._source_for(request, bam_fp)
        assert b.decompress_threads == 0
