"""Unit tests for the VCF codec."""

import io
import math

import pytest

from repro.io.vcf import VcfRecord, iter_vcf, read_vcf, write_vcf


def make_record(**kwargs):
    defaults = dict(
        chrom="chr1",
        pos=99,
        ref="A",
        alt="T",
        qual=77.5,
        filter="PASS",
        info={"DP": 1000, "AF": 0.013, "SB": 3, "DP4": (480, 490, 7, 6)},
    )
    defaults.update(kwargs)
    return VcfRecord(**defaults)


class TestRecord:
    def test_to_line_is_one_based(self):
        line = make_record().to_line()
        fields = line.split("\t")
        assert fields[0] == "chr1"
        assert fields[1] == "100"
        assert fields[3] == "A"
        assert fields[4] == "T"

    def test_line_round_trip(self):
        rec = make_record()
        back = VcfRecord.from_line(rec.to_line())
        assert back.chrom == rec.chrom
        assert back.pos == rec.pos
        assert back.ref == rec.ref
        assert back.alt == rec.alt
        assert back.qual == pytest.approx(rec.qual)
        assert back.filter == "PASS"
        assert back.info["DP"] == 1000
        assert back.info["AF"] == pytest.approx(0.013)
        assert back.info["DP4"] == (480, 490, 7, 6)

    def test_missing_qual(self):
        rec = make_record(qual=float("nan"))
        line = rec.to_line()
        assert line.split("\t")[5] == "."
        assert math.isnan(VcfRecord.from_line(line).qual)

    def test_flag_info(self):
        rec = make_record(info={"TRUTH": True})
        back = VcfRecord.from_line(rec.to_line())
        assert back.info["TRUTH"] is True

    def test_key(self):
        assert make_record().key == ("chr1", 99, "A", "T")

    def test_short_line_raises(self):
        with pytest.raises(ValueError, match="columns"):
            VcfRecord.from_line("chr1\t100\t.\tA")


class TestFile:
    def test_file_round_trip(self, tmp_path):
        records = [make_record(pos=i) for i in range(10)]
        path = tmp_path / "x.vcf"
        assert write_vcf(path, records, reference=[("chr1", 1000)]) == 10
        headers, back = read_vcf(path)
        assert len(back) == 10
        assert any("fileformat=VCFv4.2" in h for h in headers)
        assert any("contig=<ID=chr1" in h for h in headers)
        assert [r.pos for r in back] == list(range(10))

    def test_header_structure(self):
        buf = io.StringIO()
        write_vcf(buf, [make_record()], extra_headers=["##extra=1"])
        text = buf.getvalue()
        lines = text.splitlines()
        assert lines[0] == "##fileformat=VCFv4.2"
        assert "##extra=1" in lines
        chrom_line = [l for l in lines if l.startswith("#CHROM")]
        assert len(chrom_line) == 1

    def test_iter_vcf_skips_headers(self, tmp_path):
        path = tmp_path / "y.vcf"
        write_vcf(path, [make_record(pos=5)])
        records = list(iter_vcf(path))
        assert len(records) == 1
        assert records[0].pos == 5

    def test_empty_vcf(self, tmp_path):
        path = tmp_path / "empty.vcf"
        write_vcf(path, [])
        headers, records = read_vcf(path)
        assert records == []
        assert headers
