"""Shared fixtures: a small genome, a variant panel, samples at two
depths, and pre-built pileup columns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.regions import Region
from repro.sim.genome import random_genome
from repro.sim.haplotypes import VariantPanel, random_panel
from repro.sim.quality import QualityModel
from repro.sim.reads import ReadSimulator


@pytest.fixture(scope="session")
def genome():
    """A 1200 nt reproducible genome."""
    return random_genome(1200, gc_content=0.4, name="chrT", seed=42)


@pytest.fixture(scope="session")
def panel(genome):
    """Eight mid-frequency variants, detectable at modest depth."""
    return random_panel(genome.sequence, 8, freq_range=(0.05, 0.2), seed=11)


@pytest.fixture(scope="session")
def simulator(genome, panel):
    return ReadSimulator(
        genome, panel, quality_model=QualityModel.hiseq(), read_length=80
    )


@pytest.fixture(scope="session")
def sample(simulator):
    """A 200x sample carrying the panel."""
    return simulator.simulate(depth=200, seed=7)


@pytest.fixture(scope="session")
def deep_sample(simulator):
    """A 1500x sample (deep enough for the approximation path)."""
    return simulator.simulate(depth=1500, seed=8)


@pytest.fixture(scope="session")
def null_sample(genome):
    """A sample with no true variants (false-positive control)."""
    sim = ReadSimulator(genome, VariantPanel(), read_length=80)
    return sim.simulate(depth=300, seed=9)


@pytest.fixture(scope="session")
def whole_region(genome):
    return Region(genome.name, 0, len(genome))


@pytest.fixture(scope="session")
def columns(sample, whole_region):
    """All pileup columns of the 200x sample (vectorised path)."""
    from repro.pileup.vectorized import pileup_sample

    return list(pileup_sample(sample, whole_region))


@pytest.fixture
def rng():
    return np.random.default_rng(123)
