"""Unit tests for genomic region parsing and arithmetic."""

import pytest

from repro.io.regions import Region, merge_regions, parse_region, split_region


class TestRegion:
    def test_length_and_contains(self):
        r = Region("c", 10, 20)
        assert len(r) == 10
        assert 10 in r
        assert 19 in r
        assert 20 not in r
        assert 9 not in r

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Region("c", -1, 5)
        with pytest.raises(ValueError):
            Region("c", 10, 5)

    def test_overlaps(self):
        a = Region("c", 0, 10)
        assert a.overlaps(Region("c", 9, 20))
        assert not a.overlaps(Region("c", 10, 20))
        assert not a.overlaps(Region("d", 0, 10))

    def test_intersect(self):
        a = Region("c", 0, 10)
        assert a.intersect(Region("c", 5, 20)) == Region("c", 5, 10)
        assert a.intersect(Region("c", 10, 20)) is None

    def test_to_samtools(self):
        assert Region("chr1", 0, 100).to_samtools() == "chr1:1-100"


class TestParse:
    def test_full_form(self):
        assert parse_region("chr1:11-20") == Region("chr1", 10, 20)

    def test_round_trips_samtools_text(self):
        r = Region("chrX", 123, 456)
        assert parse_region(r.to_samtools()) == r

    def test_thousands_separators(self):
        assert parse_region("c:1,001-2,000") == Region("c", 1000, 2000)

    def test_bare_chromosome_needs_length(self):
        assert parse_region("chr2", reference_length=500) == Region("chr2", 0, 500)
        with pytest.raises(ValueError):
            parse_region("chr2")

    def test_open_ended(self):
        assert parse_region("c:101", reference_length=300) == Region("c", 100, 300)

    def test_zero_start_raises(self):
        with pytest.raises(ValueError):
            parse_region("c:0-10")


class TestSplit:
    def test_exact_tiling(self):
        parts = split_region(Region("c", 0, 10), 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert parts[0].start == 0
        assert parts[-1].end == 10
        for a, b in zip(parts, parts[1:]):
            assert a.end == b.start

    def test_more_chunks_than_length(self):
        parts = split_region(Region("c", 0, 2), 5)
        assert len(parts) == 2
        assert all(len(p) == 1 for p in parts)

    def test_single_chunk(self):
        (part,) = split_region(Region("c", 5, 9), 1)
        assert part == Region("c", 5, 9)

    def test_bad_count_raises(self):
        with pytest.raises(ValueError):
            split_region(Region("c", 0, 10), 0)


class TestMerge:
    def test_merges_overlapping(self):
        merged = merge_regions([Region("c", 0, 5), Region("c", 3, 10)])
        assert merged == [Region("c", 0, 10)]

    def test_merges_adjacent(self):
        merged = merge_regions([Region("c", 0, 5), Region("c", 5, 8)])
        assert merged == [Region("c", 0, 8)]

    def test_keeps_disjoint(self):
        merged = merge_regions([Region("c", 0, 2), Region("c", 5, 8)])
        assert merged == [Region("c", 0, 2), Region("c", 5, 8)]

    def test_multiple_chromosomes(self):
        merged = merge_regions(
            [Region("b", 0, 2), Region("a", 0, 4), Region("a", 1, 2)]
        )
        assert merged == [Region("a", 0, 4), Region("b", 0, 2)]
