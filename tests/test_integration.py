"""Cross-module integration tests: the full pipeline end to end,
including the paper-suite structure and the workflow-census behaviour
Figure 1b describes."""

import numpy as np
import pytest

from repro.analysis.concordance import compare_call_sets
from repro.analysis.upset import compute_upset
from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.io.bam import BamReader
from repro.io.fasta import FastaRecord, write_fasta, load_reference
from repro.io.regions import Region
from repro.io.vcf import read_vcf, write_vcf
from repro.sim.datasets import paper_dataset_suite
from repro.sim.genome import random_genome
from repro.sim.haplotypes import random_panel
from repro.sim.reads import ReadSimulator


class TestFullPipelineOnDisk:
    """simulate -> BAM on disk -> call -> VCF on disk -> analyse."""

    def test_files_round_trip_through_pipeline(self, tmp_path):
        genome = random_genome(700, seed=55)
        panel = random_panel(
            genome.sequence, 5, freq_range=(0.08, 0.2), seed=56
        )
        sample = ReadSimulator(genome, panel, read_length=70).simulate(
            depth=250, seed=57
        )

        # Write everything through the real file formats.
        ref_path = tmp_path / "ref.fa"
        bam_path = tmp_path / "s.bam"
        vcf_path = tmp_path / "calls.vcf"
        write_fasta(ref_path, [genome])
        sample.write_bam(bam_path)

        reference = load_reference(ref_path)[genome.name]
        caller = VariantCaller(CallerConfig.improved())
        result = caller.call_bam(bam_path, reference)
        write_vcf(
            vcf_path,
            [c.to_vcf_record() for c in result.calls],
            reference=[(genome.name, len(genome))],
        )

        _, records = read_vcf(vcf_path)
        called = {
            (r.pos, r.ref, r.alt) for r in records if r.filter == "PASS"
        }
        truth = {(v.pos, v.ref, v.alt) for v in panel}
        assert truth <= called

        # VCF INFO integrity.
        for r in records:
            assert r.info["DP"] > 0
            assert 0 < r.info["AF"] <= 1
            assert len(r.info["DP4"]) == 4

    def test_bam_header_survives(self, tmp_path):
        genome = random_genome(300, seed=60)
        sample = ReadSimulator(genome, read_length=50).simulate(30, seed=61)
        bam_path = tmp_path / "h.bam"
        sample.write_bam(bam_path)
        with BamReader(bam_path) as reader:
            assert reader.header.references == [(genome.name, len(genome))]
            assert reader.header.sort_order == "coordinate"


class TestPaperSuiteEndToEnd:
    """Scaled-down Figure 3: call the five datasets, intersect."""

    @pytest.fixture(scope="class")
    def suite_calls(self):
        suite = paper_dataset_suite(
            genome_length=800, depth_scale=400.0, panel_scale=15.0, seed=17
        )
        caller = VariantCaller(CallerConfig.improved())
        return {
            ds.label: (ds, caller.call_sample(ds.sample)) for ds in suite
        }

    def test_calls_track_truth_panels(self, suite_calls):
        for label, (ds, result) in suite_calls.items():
            truth = {("NC_045512.2-sim", v.pos, v.ref, v.alt) for v in ds.panel}
            called = result.keys()
            recall = len(truth & called) / len(truth)
            assert recall > 0.5, f"{label}: recall {recall:.2f}"

    def test_upset_core_recovered(self, suite_calls):
        """The two all-five core variants must be called everywhere."""
        sets = {label: r.keys() for label, (_, r) in suite_calls.items()}
        upset = compute_upset(sets)
        assert upset.shared_by_all() >= 2

    def test_improved_equals_original_on_all_five(self, suite_calls):
        original = VariantCaller(CallerConfig.original())
        for label, (ds, improved_result) in suite_calls.items():
            original_result = original.call_sample(ds.sample)
            report = compare_call_sets(
                improved_result.keys(), original_result.keys()
            )
            assert report.identical, f"{label}: {report.summary()}"


class TestWorkflowCensus:
    """Figure 1b as numbers: where do columns go at depth?"""

    def test_skip_dominates_at_depth(self, deep_sample):
        result = VariantCaller(CallerConfig.improved()).call_sample(deep_sample)
        stats = result.stats
        d = stats.decisions
        # At 1500x every column has candidates; the vast majority are
        # resolved by the approximation alone.
        assert stats.skip_fraction() > 0.8
        assert d.get("skipped_approx", 0) > 10 * d.get("exact_pruned", 0)

    def test_census_sums_to_tests_plus_short_circuits(self, deep_sample):
        result = VariantCaller(CallerConfig.improved()).call_sample(deep_sample)
        d = result.stats.decisions
        allele_level = (
            d.get("skipped_approx", 0)
            + d.get("exact_pruned", 0)
            + d.get("exact_not_significant", 0)
            + d.get("called", 0)
            + d.get("rejected_filter", 0)
        )
        assert allele_level == result.stats.tests_run

    def test_timings_recorded(self, deep_sample):
        result = VariantCaller().call_sample(deep_sample)
        assert result.stats.time_total > 0
        assert 0 < result.stats.time_stats <= result.stats.time_total


class TestMixedCigarPipeline:
    """Reads with clips and indels flow through SAM->pileup->caller."""

    def test_clipped_reads_still_call(self):
        genome = FastaRecord("g", "", "ACGT" * 100)
        seq = genome.sequence
        from repro.io.records import AlignedRead

        reads = []
        pos = 0
        rng = np.random.default_rng(3)
        for i in range(800):
            pos = int(rng.integers(0, 340))
            window = seq[pos : pos + 50]
            # Put a variant at genome position 200 in half the reads.
            if pos <= 200 < pos + 50 and rng.random() < 0.5:
                j = 200 - pos
                window = window[:j] + ("G" if window[j] != "G" else "T") + window[j + 1:]
            reads.append(
                AlignedRead(
                    qname=f"r{i}", flag=0, rname="g", pos=pos, mapq=60,
                    cigar=[(0, 50)], seq=window,
                    qual=np.full(50, 35, dtype=np.uint8),
                )
            )
        reads.sort(key=lambda r: r.pos)
        caller = VariantCaller(CallerConfig.improved())
        result = caller.call_reads(reads, seq, Region("g", 0, 400))
        assert any(c.pos == 200 for c in result.passed)
