"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A simulated BAM + reference + truth VCF built via the CLI."""
    root = tmp_path_factory.mktemp("cli")
    bam = root / "sample.bam"
    ref = root / "ref.fa"
    truth = root / "truth.vcf"
    rc = main(
        [
            "simulate",
            "--genome-length", "900",
            "--depth", "250",
            "--variants", "6",
            "--min-freq", "0.05",
            "--max-freq", "0.2",
            "--seed", "21",
            "--out-bam", str(bam),
            "--out-reference", str(ref),
            "--out-truth", str(truth),
        ]
    )
    assert rc == 0
    return root


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--out-bam", "x.bam"],
            ["call", "in.bam", "--reference", "r.fa", "--out", "o.vcf"],
            ["compare", "a.vcf", "b.vcf"],
            ["upset", "a.vcf", "b.vcf"],
        ],
    )
    def test_valid_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestSimulate:
    def test_outputs_exist(self, workspace):
        assert (workspace / "sample.bam").stat().st_size > 0
        assert (workspace / "ref.fa").stat().st_size > 0
        assert (workspace / "truth.vcf").stat().st_size > 0

    def test_truth_vcf_well_formed(self, workspace):
        from repro.io.vcf import read_vcf

        headers, records = read_vcf(workspace / "truth.vcf")
        assert len(records) == 6
        assert all("AF" in r.info for r in records)

    def test_bam_is_readable(self, workspace):
        from repro.io.bam import BamReader

        with BamReader(workspace / "sample.bam") as reader:
            n = sum(1 for _ in reader)
        assert n > 1000


class TestCall:
    def test_call_improved(self, workspace, capsys):
        out = workspace / "calls.vcf"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--stats",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "PASS calls" in text
        assert "approx first-pass" in text
        assert out.exists()

    def test_call_recovers_truth(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls2.vcf"
        main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
            ]
        )
        _, calls = read_vcf(out)
        _, truth = read_vcf(workspace / "truth.vcf")
        called = {(r.pos, r.ref, r.alt) for r in calls if r.filter == "PASS"}
        expected = {(r.pos, r.ref, r.alt) for r in truth}
        assert expected <= called

    def test_original_and_improved_agree(self, workspace):
        from repro.io.vcf import read_vcf

        outs = {}
        for algo in ("improved", "original"):
            out = workspace / f"calls_{algo}.vcf"
            main(
                [
                    "call", str(workspace / "sample.bam"),
                    "--reference", str(workspace / "ref.fa"),
                    "--out", str(out),
                    "--algorithm", algo,
                ]
            )
            _, records = read_vcf(out)
            outs[algo] = {(r.pos, r.ref, r.alt) for r in records}
        assert outs["improved"] == outs["original"]

    def test_engine_option_batched_identical(self, workspace):
        outs = {}
        for engine in ("streaming", "batched"):
            out = workspace / f"calls_{engine}.vcf"
            rc = main(
                [
                    "call", str(workspace / "sample.bam"),
                    "--reference", str(workspace / "ref.fa"),
                    "--out", str(out),
                    "--engine", engine,
                ]
            )
            assert rc == 0
            outs[engine] = out.read_bytes()
        assert outs["streaming"] == outs["batched"]

    def test_engine_option_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["call", "in.bam", "--reference", "r.fa", "--out", "o.vcf",
                 "--engine", "warp"]
            )

    def test_parallel_call(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls_par.vcf"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--workers", "3",
            ]
        )
        assert rc == 0
        _, serial = read_vcf(workspace / "calls2.vcf")
        _, par = read_vcf(out)
        assert {(r.pos, r.alt) for r in par} == {(r.pos, r.alt) for r in serial}

    def test_region_option(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls_region.vcf"
        main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--region", "NC_045512.2-sim:1-300",
            ]
        )
        _, records = read_vcf(out)
        assert all(r.pos < 300 for r in records)

    def test_bad_reference_errors(self, workspace, tmp_path):
        from repro.io.fasta import FastaRecord, write_fasta

        bad_ref = tmp_path / "wrong.fa"
        write_fasta(bad_ref, [FastaRecord("other", "", "ACGT" * 100)])
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(bad_ref),
                "--out", str(tmp_path / "x.vcf"),
            ]
        )
        assert rc == 2


class TestCompareUpset:
    def test_compare_identical(self, workspace, capsys):
        rc = main(
            ["compare", str(workspace / "calls2.vcf"), str(workspace / "calls2.vcf")]
        )
        assert rc == 0
        assert "jaccard 1.000" in capsys.readouterr().out

    def test_compare_different(self, workspace, capsys):
        rc = main(
            ["compare", str(workspace / "calls2.vcf"), str(workspace / "truth.vcf")]
        )
        # truth has filter '.', compare counts it; sets may differ -> rc 1 or 0
        out = capsys.readouterr().out
        assert "shared" in out

    def test_upset_renders(self, workspace, capsys):
        rc = main(
            [
                "upset",
                str(workspace / "calls2.vcf"),
                str(workspace / "truth.vcf"),
                "--labels", "calls", "truth",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "calls" in out and "truth" in out
        assert "Set totals:" in out

    def test_upset_label_mismatch(self, workspace, capsys):
        rc = main(
            [
                "upset", str(workspace / "calls2.vcf"),
                "--labels", "a", "b",
            ]
        )
        assert rc == 2


class TestLegacyParallelFlag:
    def test_legacy_flag_runs_and_warns(self, workspace, capsys):
        out = workspace / "calls_legacy.vcf"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--legacy-parallel", "--workers", "4",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "double-filtering" in captured.err
        assert out.exists()

    def test_legacy_flag_output_well_formed(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls_legacy2.vcf"
        main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--legacy-parallel", "--workers", "2",
            ]
        )
        _, records = read_vcf(out)
        assert records, "legacy mode should still find the strong variants"
